#!/usr/bin/env python
"""Mini Table II: compare inflation strategies on contest designs.

Trains a small congestion model, then runs the four Table-II teams
(UTDA / SEU / MPKU-Improve / Ours) on a subset of designs and prints the
contest scorecard — the end-to-end experiment of Section V-C at example
scale.  Use ``benchmarks/test_table2_placement.py`` for the full run.

Run:  python examples/contest_flow.py \
          [--designs Design_116 Design_197] [--epochs 12]
"""

from __future__ import annotations

import argparse

from repro.contest import contest_teams, format_table2, run_table2
from repro.models import MFATransformerNet
from repro.netlist import MLCAD2023_SPECS
from repro.train import CongestionDataset, DatasetConfig, TrainConfig, Trainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", nargs="+",
                        default=["Design_116", "Design_197"],
                        choices=sorted(MLCAD2023_SPECS))
    parser.add_argument("--placements", type=int, default=3)
    parser.add_argument("--epochs", type=int, default=12)
    parser.add_argument("--grid", type=int, default=64)
    parser.add_argument("--scale", type=float, default=64.0)
    args = parser.parse_args()

    print("Step 1/3 — dataset (placement sweep + router labels) ...")
    config = DatasetConfig(
        grid=args.grid,
        placements_per_design=args.placements,
        design_scale=1.0 / args.scale,
        seed=7,
    )
    specs = [MLCAD2023_SPECS[name] for name in args.designs]
    dataset = CongestionDataset.build(specs, config)
    print(f"  {len(dataset.train)} training samples")

    print("Step 2/3 — training the congestion model ...")
    model = MFATransformerNet(
        base_channels=12, num_transformer_layers=4, grid=args.grid, seed=0
    )
    trainer = Trainer(
        TrainConfig(epochs=args.epochs, batch_size=8, lr=2e-3,
                    max_class_weight=4.0)
    )
    result = trainer.train(model, dataset)
    metrics = Trainer.evaluate(model, dataset.eval)
    print(f"  loss {result.losses[0]:.3f} -> {result.losses[-1]:.3f}; "
          f"eval ACC={metrics['ACC']:.3f} R2={metrics['R2']:.3f}")

    print("Step 3/3 — running the four teams (this is the slow part) ...")
    teams = contest_teams(model=model, model_grid=args.grid)
    table = run_table2(
        teams, design_names=tuple(args.designs), scale=1.0 / args.scale,
        verbose=True,
    )
    print()
    print(format_table2(table))


if __name__ == "__main__":
    main()
