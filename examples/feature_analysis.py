#!/usr/bin/env python
"""Quantify how the six input features correlate with routed congestion.

Section III-B picks its features because they are "strongly correlated
with congestion".  This example measures that on real placements:
it generates a few labelled samples, reports per-feature Pearson and
Spearman correlation against the router's congestion level map, and a
greedy forward-selection ranking (how much each feature adds on top of
the already-selected ones).

Run:  python examples/feature_analysis.py [--design Design_116] [--samples 3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import correlate_features, forward_selection
from repro.netlist import MLCAD2023_SPECS
from repro.train import DatasetConfig, generate_samples


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="Design_116",
                        choices=sorted(MLCAD2023_SPECS))
    parser.add_argument("--samples", type=int, default=3)
    parser.add_argument("--grid", type=int, default=48)
    parser.add_argument("--scale", type=float, default=64.0)
    args = parser.parse_args()

    print(f"Generating {args.samples} labelled placements of {args.design} ...")
    config = DatasetConfig(
        grid=args.grid,
        placements_per_design=args.samples,
        design_scale=1.0 / args.scale,
        seed=11,
    )
    samples = generate_samples(MLCAD2023_SPECS[args.design], config)
    features = np.stack([s.features for s in samples])
    labels = np.stack([s.labels for s in samples])
    hist = np.bincount(labels.ravel(), minlength=8)
    print(f"  congestion level histogram: {hist.tolist()}")

    print("\nPer-feature correlation with the congestion level map:")
    for result in sorted(
        correlate_features(features, labels),
        key=lambda r: -abs(r.pearson),
    ):
        print("  " + result.row())

    print("\nGreedy forward selection (cumulative linear-fit R2):")
    for name, r2 in forward_selection(features, labels):
        print(f"  +{name:<16} R2={r2:.3f}")


if __name__ == "__main__":
    main()
