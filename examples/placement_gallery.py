#!/usr/bin/env python
"""Render a placement gallery: floorplan, macros, congestion images.

Runs the Fig. 6 flow on one design and writes a set of images to
``--out-dir`` (PGM/PPM, viewable anywhere):

* ``floorplan.ppm``        — the device's column stripes;
* ``macros.ppm``           — floorplan with the legalized macros overlaid;
* ``cells.ppm``            — floorplan with all instances overlaid;
* ``congestion.ppm``       — routed congestion levels, Fig. 1 color ramp;
* ``rudy.pgm``             — the RUDY demand estimate for comparison.

Also prints the ASCII floorplan and the Vivado-style congestion summary.

Run:  python examples/placement_gallery.py [--design Design_156] \
          [--scale 64] [--out-dir gallery]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.features import FeatureExtractor
from repro.netlist import MLCAD2023_SPECS, generate_design
from repro.placement import GPConfig, PlacerConfig, place_design
from repro.routing import congestion_report, route_design
from repro.viz import (
    floorplan_ascii,
    floorplan_image,
    level_colormap,
    write_pgm,
    write_ppm,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="Design_156",
                        choices=sorted(MLCAD2023_SPECS))
    parser.add_argument("--scale", type=float, default=64.0)
    parser.add_argument("--out-dir", default="gallery")
    args = parser.parse_args()

    design = generate_design(MLCAD2023_SPECS[args.design], scale=1.0 / args.scale)
    device = design.device

    print(f"=== {device.name} floorplan ===")
    print(floorplan_ascii(device, rows=4))

    outcome = place_design(
        design, config=PlacerConfig(gp=GPConfig(bins=32))
    )
    print(f"\nplaced {design.name}: hpwl={outcome.hpwl:,.0f} "
          f"legal={outcome.legal}")

    routing = route_design(design)
    report = congestion_report(routing)
    print("\n" + report.summary())

    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    write_ppm(floorplan_image(device), out / "floorplan.ppm")
    write_ppm(
        floorplan_image(device, design.x, design.y, marker=design.macro_mask),
        out / "macros.ppm",
    )
    write_ppm(
        floorplan_image(device, design.x, design.y), out / "cells.ppm"
    )
    write_ppm(level_colormap(report.level_map), out / "congestion.ppm")
    rudy = FeatureExtractor(grid=device.tile_cols)(design)[3]
    write_pgm(rudy, out / "rudy.pgm")
    print(f"\nimages written to {out}/")


if __name__ == "__main__":
    main()
