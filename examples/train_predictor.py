#!/usr/bin/env python
"""Train the MFA+transformer congestion predictor (Section III + V-A).

Builds the Section V-A dataset (placement sweep with varied parameters,
router-labelled, rotation-augmented), trains the proposed model with
Adam at the paper's learning rate, reports per-design ACC / R² / NRMS,
and saves a reusable checkpoint.

Run:  python examples/train_predictor.py \
          [--designs Design_116 Design_197] [--epochs 20] \
          [--placements 4] [--grid 64] [--out model.npz]
"""

from __future__ import annotations

import argparse

from repro.models import MFATransformerNet
from repro.netlist import MLCAD2023_SPECS, TABLE1_DESIGNS
from repro.nn import save_module
from repro.train import CongestionDataset, DatasetConfig, TrainConfig, Trainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--designs", nargs="+", default=list(TABLE1_DESIGNS[:3]),
                        choices=sorted(MLCAD2023_SPECS))
    parser.add_argument("--placements", type=int, default=4,
                        help="placements per design (paper: 30)")
    parser.add_argument("--grid", type=int, default=64,
                        help="feature/label resolution (paper: 256)")
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--layers", type=int, default=4,
                        help="transformer layers L (paper: 12)")
    parser.add_argument("--channels", type=int, default=12,
                        help="base channels C (Fig. 5)")
    parser.add_argument("--scale", type=float, default=64.0)
    parser.add_argument("--out", default="congestion_model.npz")
    args = parser.parse_args()

    print(f"Building dataset: {len(args.designs)} designs x "
          f"{args.placements} placements x 4 rotations ...")
    config = DatasetConfig(
        grid=args.grid,
        placements_per_design=args.placements,
        design_scale=1.0 / args.scale,
        seed=2023,
    )
    specs = [MLCAD2023_SPECS[name] for name in args.designs]
    dataset = CongestionDataset.build(specs, config)
    print(f"  train={len(dataset.train)} samples, eval={len(dataset.eval)}")
    freq = dataset.class_frequencies()
    print(f"  congestion level histogram: {freq.astype(int).tolist()}")

    model = MFATransformerNet(
        base_channels=args.channels,
        num_transformer_layers=args.layers,
        grid=args.grid,
        seed=0,
    )
    print(f"\nTraining MFATransformerNet "
          f"({model.num_parameters():,} parameters, "
          f"L={args.layers} transformer layers) ...")
    trainer = Trainer(
        TrainConfig(epochs=args.epochs, batch_size=8, lr=1e-3,
                    max_class_weight=4.0, log_every=max(1, args.epochs // 10))
    )
    result = trainer.train(model, dataset)
    print(f"Trained {result.epochs} epochs in {result.seconds:.0f}s; "
          f"loss {result.losses[0]:.3f} -> {result.losses[-1]:.3f}")

    print("\nPer-design evaluation (Table I metrics):")
    for design, metrics in Trainer.evaluate_by_design(model, dataset).items():
        print(f"  {design:<12} ACC={metrics['ACC']:.3f} "
              f"R2={metrics['R2']:6.3f} NRMS={metrics['NRMS']:.3f}")

    save_module(model, args.out)
    print(f"\nCheckpoint written to {args.out}")
    print("Reload with:")
    print("  from repro.models import MFATransformerNet")
    print("  from repro.nn import load_module")
    print(f"  model = MFATransformerNet(base_channels={args.channels}, "
          f"num_transformer_layers={args.layers}, grid={args.grid})")
    print(f"  load_module(model, {args.out!r})")


if __name__ == "__main__":
    main()
