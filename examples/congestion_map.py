#!/usr/bin/env python
"""Visualize placement features, routed congestion and RUDY error (Fig. 1).

Places and routes one design, then renders side by side (as ASCII art):

* the routed congestion *level map* the contest scores (Fig. 1),
* the RUDY estimate quantized to levels (what the contest winners used),
* their disagreement map — the grids where an analytical estimator
  misjudges the router, which is precisely the gap the paper's learned
  model closes.

With ``--out-dir`` the maps are additionally written as PGM/PPM images
(the congestion levels use the Fig. 1 color ramp).

Run:  python examples/congestion_map.py [--design Design_176] [--scale 64]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro.features import FeatureExtractor, resize_map
from repro.netlist import MLCAD2023_SPECS, generate_design
from repro.placement import GPConfig, PlacerConfig, RudyEstimator, place_design
from repro.routing import congestion_report, route_design
from repro.viz import ascii_heatmap as ascii_heat
from repro.viz import level_colormap, write_pgm, write_ppm


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="Design_176",
                        choices=sorted(MLCAD2023_SPECS))
    parser.add_argument("--scale", type=float, default=64.0)
    parser.add_argument("--out-dir", default=None,
                        help="also write PGM/PPM images here")
    args = parser.parse_args()

    design = generate_design(MLCAD2023_SPECS[args.design], scale=1.0 / args.scale)
    place_design(design, config=PlacerConfig(gp=GPConfig(bins=32)))

    routing = route_design(design)
    report = congestion_report(routing)
    gw, gh = report.level_map.shape

    print(f"=== {design.name}: routed congestion levels (Fig. 1) ===")
    print(report.ascii_map())

    rudy_levels = RudyEstimator(grid=gw)(design, design.x, design.y)
    rudy_levels = resize_map(rudy_levels, gw, gh)
    print("\n=== RUDY estimate, quantized to levels ===")
    print(ascii_heat(rudy_levels, vmax=7))

    error = np.abs(rudy_levels - report.level_map)
    print("\n=== |RUDY - router| disagreement (darker = worse estimate) ===")
    print(ascii_heat(error, vmax=4))
    print(f"\nmean abs level error of RUDY: {error.mean():.2f}")
    print(f"grids RUDY misses by >= 2 levels: {(error >= 2).mean() * 100:.1f}%")

    print("\n=== input features (Section III-B), max-normalized ===")
    features = FeatureExtractor(grid=min(gw, gh))(design)
    names = ("macro map", "H net density", "V net density",
             "RUDY", "pin RUDY", "cell density")
    for name, feature in zip(names, features):
        print(f"\n--- {name} ---")
        print(ascii_heat(feature))

    if args.out_dir:
        out = Path(args.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        write_ppm(level_colormap(report.level_map), out / "congestion.ppm")
        write_pgm(rudy_levels, out / "rudy_levels.pgm")
        write_pgm(error, out / "rudy_error.pgm")
        for name, feature in zip(names, features):
            write_pgm(feature, out / f"{name.replace(' ', '_')}.pgm")
        print(f"\nimages written to {out}/")


if __name__ == "__main__":
    main()
