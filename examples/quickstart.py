#!/usr/bin/env python
"""Quickstart: generate a contest design, place it, route it, score it.

This walks the whole public API in one page:

1. instantiate a synthetic MLCAD-2023-like benchmark (``repro.netlist``),
2. run the routability-driven macro placement flow of Fig. 6
   (``repro.placement``),
3. route the placement and quantize congestion levels (``repro.routing``),
4. compute the contest scores of Eqs. 1-3 (``repro.contest``).

Run:  python examples/quickstart.py [--scale 64] [--design Design_116]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.contest import ContestScore, initial_routing_score
from repro.netlist import MLCAD2023_SPECS, design_row, generate_design
from repro.placement import GPConfig, PlacerConfig, place_design
from repro.routing import DetailedRoutingModel, congestion_report, route_design


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--design", default="Design_116",
                        choices=sorted(MLCAD2023_SPECS))
    parser.add_argument("--scale", type=float, default=64.0,
                        help="downscale factor (64 -> 1/64 of full size)")
    args = parser.parse_args()

    # 1. Benchmark generation ------------------------------------------------
    design = generate_design(MLCAD2023_SPECS[args.design], scale=1.0 / args.scale)
    row = design_row(design)
    print(f"Generated {design.name} at 1/{args.scale:g} scale:")
    print(f"  nominal (paper) stats : {row['#LUT']} LUT, {row['#FF']} FF, "
          f"{row['#DSP']} DSP, {row['#BRAM']} BRAM")
    print(f"  instantiated          : {row['instantiated']}")
    print(f"  nets={design.num_nets} pins={design.num_pins} "
          f"cascades={len(design.cascades)} regions={len(design.regions)}")

    # 2. Routability-driven macro placement (Fig. 6 flow) --------------------
    outcome = place_design(
        design, config=PlacerConfig(gp=GPConfig(bins=32, max_iters=500))
    )
    print(f"\nPlacement finished in {outcome.t_macro_minutes * 60:.1f}s "
          f"(T_macro={outcome.t_macro_minutes:.2f} min)")
    print(f"  HPWL            : {outcome.hpwl:,.0f}")
    print(f"  legal           : {outcome.legal}")
    print(f"  final overflow  : "
          f"{ {k: round(v, 3) for k, v in outcome.final_overflow.items()} }")

    # 3. Routing + congestion levels ------------------------------------------
    routing = route_design(design)
    report = congestion_report(routing)
    hist = np.bincount(report.level_map.ravel(), minlength=8)
    print(f"\nRouted {routing.num_connections} connections in "
          f"{routing.iterations} negotiation iterations "
          f"(converged={routing.converged})")
    print(f"  congestion level histogram: {hist.tolist()}")
    print(f"  L_short per direction (E,S,W,N): {report.max_short_by_direction()}")
    print(f"  L_global per direction (E,S,W,N): {report.max_global_by_direction()}")

    # 4. Contest scoring (Eqs. 1-3) ---------------------------------------------
    s_ir = initial_routing_score(report)
    detailed = DetailedRoutingModel().evaluate(routing, report)
    score = ContestScore(
        design=design.name,
        team="quickstart",
        s_ir=s_ir,
        s_dr=detailed.iterations,
        t_macro_minutes=outcome.t_macro_minutes,
        t_pr_hours=detailed.hours,
    )
    print(f"\nContest scores: S_IR={score.s_ir} S_DR={score.s_dr} "
          f"S_R={score.s_r:.0f} T_P&R={score.t_pr_hours:.2f}h "
          f"S_score={score.s_score:.2f}")


if __name__ == "__main__":
    main()
