"""Table I — prediction comparison of U-Net / PGNN / PROS 2.0 / Ours.

Regenerates the paper's Table I on the synthetic MLCAD suite: every
model is trained under the same budget on the placement-sweep dataset
and evaluated per design with ACC / R² / NRMS; measured rows are printed
next to the paper's and written to ``results/table1.txt``.

``pytest-benchmark`` times each model's inference (the quantity that
matters when the predictor sits inside the placement loop) plus the
per-design evaluation pass that generates the table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import MODEL_NAMES
from repro.train import Trainer

from .conftest import write_artifact
from .paper_reference import TABLE1_PAPER, TABLE1_PAPER_AVERAGE


@pytest.fixture(scope="module")
def table1(dataset, trained_models):
    """Per-design metrics for all four models."""
    results = {}
    for name in MODEL_NAMES:
        model = trained_models["models"][name]
        results[name] = Trainer.evaluate_by_design(model, dataset)
    return results


def _fmt(metrics: dict[str, float]) -> str:
    return (
        f"ACC={metrics['ACC']:.3f} R2={metrics['R2']:6.3f} "
        f"NRMS={metrics['NRMS']:.3f}"
    )


def _render_table1(table1, trained_models, profile) -> str:
    lines = [
        f"TABLE I — prediction comparison "
        f"({profile.name} profile, grid {profile.grid}, "
        f"{profile.epochs} epochs, {profile.placements_per_design} "
        f"placements/design)",
        "",
    ]
    designs = sorted(d for d in next(iter(table1.values())) if d != "Average")
    for design in designs:
        lines.append(design)
        for name in MODEL_NAMES:
            measured = table1[name][design]
            paper = TABLE1_PAPER.get(design, {}).get(name)
            paper_str = (
                f"   paper: ACC={paper[0]:.3f} R2={paper[1]:.3f} "
                f"NRMS={paper[2]:.3f}" if paper else ""
            )
            lines.append(f"  {name:<6} {_fmt(measured)}{paper_str}")
        lines.append("")
    lines.append("Average")
    for name in MODEL_NAMES:
        avg = table1[name]["Average"]
        paper = TABLE1_PAPER_AVERAGE[name]
        lines.append(
            f"  {name:<6} {_fmt(avg)}   paper: ACC={paper[0]:.3f} "
            f"R2={paper[1]:.3f} NRMS={paper[2]:.3f} "
            f"(train {trained_models['timings'][name]:.0f}s)"
        )
    return "\n".join(lines)


def _rudy_as_predictor(dataset) -> dict[str, float]:
    """Quantized-RUDY baseline (the analytical method the paper replaces)."""
    from repro.routing import utilization_to_level
    from repro.train import evaluate_predictions

    pred = np.stack(
        [utilization_to_level(s.features[3]) for s in dataset.eval]
    )
    true = np.stack([s.labels for s in dataset.eval])
    return evaluate_predictions(pred, true)


def test_table1_report(benchmark, table1, trained_models, dataset, profile):
    """Generate and persist Table I; the timed unit is the evaluation
    pass of the proposed model over the held-out set."""
    ours = trained_models["models"]["ours"]
    benchmark.pedantic(
        lambda: Trainer.evaluate(ours, dataset.eval), rounds=1, iterations=1
    )
    rudy = _rudy_as_predictor(dataset)
    text = _render_table1(table1, trained_models, profile)
    text += (
        f"\n  rudy   {_fmt(rudy)}   (quantized RUDY as predictor — the "
        "analytical method every learned model must beat)"
    )
    # Per-level recall: the paper claims the transformer "improves the
    # difference between various congestion levels" — this is where that
    # shows (especially the penalized levels >= 4).
    from repro.train import per_level_recall

    true = np.stack([s.labels for s in dataset.eval])
    text += "\n\nPer-level recall (levels 0-7; >=4 are Eq.1-penalized):"
    for name in MODEL_NAMES:
        pred = trained_models["models"][name].predict_levels(
            np.stack([s.features for s in dataset.eval])
        )
        recall = per_level_recall(pred, true)
        cells = " ".join(
            "  --" if np.isnan(r) else f"{r:.2f}" for r in recall
        )
        text += f"\n  {name:<6} {cells}"
    write_artifact("table1", text)

    # Every learned model must beat quantized RUDY by a wide margin on
    # every metric — the core premise of replacing RUDY with a model.
    for name in MODEL_NAMES:
        avg = table1[name]["Average"]
        if profile.name != "smoke":
            assert avg["ACC"] > rudy["ACC"] + 0.1, name
            assert avg["NRMS"] < rudy["NRMS"] - 0.05, name
    if profile.name == "smoke":
        return  # smoke exercises plumbing only; too few epochs for shape

    # Sanity floor: every model beats chance by a wide margin.
    for name in MODEL_NAMES:
        avg = table1[name]["Average"]
        assert avg["ACC"] > 0.3, f"{name} below sanity floor"
        assert avg["NRMS"] < 0.35, f"{name} below sanity floor"

    # Shape of the headline claims: Ours leads U-Net and is not
    # dominated by any baseline on average accuracy.
    ours_avg = table1["ours"]["Average"]
    unet_avg = table1["unet"]["Average"]
    assert ours_avg["ACC"] >= unet_avg["ACC"] - 0.02
    assert ours_avg["NRMS"] <= unet_avg["NRMS"] + 0.02
    best_baseline = max(
        table1[name]["Average"]["ACC"] for name in ("unet", "pgnn", "pros2")
    )
    assert ours_avg["ACC"] >= best_baseline - 0.03


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_inference_speed(benchmark, name, trained_models, dataset):
    """Time one forward prediction (the in-flow congestion query)."""
    model = trained_models["models"][name]
    features = dataset.eval[0].features[None]
    benchmark.pedantic(
        lambda: model.predict_expected(features), rounds=3, iterations=1
    )
