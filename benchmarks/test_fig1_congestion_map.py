"""Fig. 1 — the interconnect-tile congestion level map.

The paper's Fig. 1 shows the target FPGA's interconnect tile grid with
per-tile congestion levels (darker = more congested).  This bench
regenerates that artifact from a routed placement — the per-tile level
map rendered as ASCII digits, the level histogram, and the
per-direction maxima that feed Eq. 1 — writing it to
``results/fig1.txt``.  The router itself is what gets timed: it is the
label generator for the entire training pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.contest import initial_routing_score
from repro.netlist import MLCAD2023_SPECS, generate_design
from repro.placement import GPConfig, PlacerConfig, place_design
from repro.routing import congestion_report, route_design

from .conftest import write_artifact


@pytest.fixture(scope="module")
def routed_design(profile):
    design = generate_design(
        MLCAD2023_SPECS["Design_116"], scale=profile.design_scale
    )
    place_design(
        design,
        config=PlacerConfig(gp=GPConfig(bins=32, max_iters=profile.gp_iters)),
    )
    return design


def test_fig1_report(benchmark, routed_design):
    """Route, quantize and persist the Fig. 1 congestion map."""
    result = benchmark.pedantic(
        lambda: route_design(routed_design), rounds=1, iterations=1
    )
    report = congestion_report(result)
    hist = np.bincount(report.level_map.ravel(), minlength=8)
    text = "\n".join(
        [
            "FIG. 1 — interconnect tile congestion level map (Design_116)",
            "(one digit per tile, levels 0-7, row 0 at the bottom)",
            "",
            report.ascii_map(),
            "",
            f"level histogram: {dict(enumerate(hist.tolist()))}",
            f"L_short per direction (E,S,W,N): {report.max_short_by_direction()}",
            f"L_global per direction (E,S,W,N): {report.max_global_by_direction()}",
            f"S_IR (Eq. 1): {initial_routing_score(report)}",
        ]
    )
    write_artifact("fig1", text)

    # A congested contest design shows a graded map with localized
    # hotspots, not a flat or fully saturated one.
    assert np.unique(report.level_map).size >= 3
    assert report.congested_fraction(threshold=4) < 0.25


def test_router_speed(benchmark, routed_design):
    """Time the full negotiated routing pass (the label generator)."""
    benchmark.pedantic(
        lambda: route_design(routed_design), rounds=3, iterations=1
    )
