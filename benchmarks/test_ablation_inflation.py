"""Inflation-strategy ablation: none → RUDY → pin-aware → oracle.

Table II's causal chain is "better congestion estimation → better
inflation → better routability".  This bench validates that chain on
our substrate by sweeping estimator quality from nothing (no inflation)
through the analytical estimators up to the ground-truth oracle (the
router itself), holding everything else fixed.  Persisted to
``results/ablation_inflation.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.contest import initial_routing_score
from repro.netlist import MLCAD2023_SPECS, generate_design
from repro.placement import (
    GPConfig,
    OracleEstimator,
    PinDensityAwareEstimator,
    PlacerConfig,
    RudyEstimator,
    place_design,
)
from repro.routing import DetailedRoutingModel, congestion_report, route_design

from .conftest import write_artifact

_DESIGNS = ("Design_116", "Design_176", "Design_197")


def _zero_estimator(design, x, y):
    return np.zeros((design.device.tile_cols, design.device.tile_cols))


def _strategies(grid: int):
    return {
        "no-inflation": lambda design: _zero_estimator,
        "rudy": lambda design: RudyEstimator(grid=design.device.tile_cols),
        "pin-aware": lambda design: PinDensityAwareEstimator(
            grid=design.device.tile_cols
        ),
        "oracle": lambda design: OracleEstimator(grid=design.device.tile_cols),
    }


@pytest.fixture(scope="module")
def inflation_sweep(profile):
    designs = tuple(d for d in _DESIGNS if d in profile.designs) or _DESIGNS[:1]
    rows = {}
    for label, factory in _strategies(profile.grid).items():
        s_r_values = []
        s_ir_values = []
        for name in designs:
            design = generate_design(
                MLCAD2023_SPECS[name], scale=profile.design_scale
            )
            estimator = factory(design)
            place_design(
                design,
                estimator=estimator,
                config=PlacerConfig(
                    gp=GPConfig(bins=32, max_iters=profile.gp_iters),
                    inflation_rounds=2,
                ),
            )
            routing = route_design(design)
            report = congestion_report(routing)
            s_ir = initial_routing_score(report)
            detailed = DetailedRoutingModel().evaluate(routing, report)
            s_ir_values.append(s_ir)
            s_r_values.append(s_ir * detailed.iterations)
        rows[label] = {
            "S_IR": float(np.mean(s_ir_values)),
            "S_R": float(np.mean(s_r_values)),
        }
    return rows, designs


def test_inflation_strategy_report(benchmark, inflation_sweep):
    rows, designs = inflation_sweep
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"ABLATION — inflation strategy (avg over {', '.join(designs)})",
        "",
    ]
    for label, row in rows.items():
        lines.append(
            f"  {label:<14} S_IR={row['S_IR']:6.2f}  S_R={row['S_R']:7.2f}"
        )
    write_artifact("ablation_inflation", "\n".join(lines))

    # The causal chain (with the maze-enabled router): RUDY inflation is
    # at best neutral, while *accurate* estimates — pin-aware and above
    # all the oracle — measurably improve routability.
    assert rows["rudy"]["S_R"] <= rows["no-inflation"]["S_R"] * 1.20
    best_analytical = min(rows["rudy"]["S_R"], rows["pin-aware"]["S_R"])
    assert rows["oracle"]["S_R"] <= best_analytical * 1.15
