"""Router ablation: pattern-only negotiation vs. the maze fallback.

The label generator (our Vivado substitute) uses batch pattern routing;
the optional A* rip-up pass (``repro.routing.maze``) is this repo's
extension for squeezing out residual overuse.  This bench quantifies
the trade-off — residual overuse, worst utilization and runtime — on a
placed contest design, persisting the comparison to
``results/ablation_router.txt``.
"""

from __future__ import annotations

import time

import pytest

from repro.netlist import MLCAD2023_SPECS, generate_design
from repro.placement import GPConfig, PlacerConfig, place_design
from repro.routing import RouterConfig, congestion_report, route_design

from .conftest import write_artifact


@pytest.fixture(scope="module")
def placed(profile):
    design = generate_design(
        MLCAD2023_SPECS["Design_176"], scale=profile.design_scale
    )
    place_design(
        design,
        config=PlacerConfig(gp=GPConfig(bins=32, max_iters=profile.gp_iters)),
    )
    return design


def test_router_ablation_report(benchmark, placed):
    rows = []
    results = {}
    for label, config in (
        ("pattern-only", RouterConfig(maze_fallback=False)),
        ("pattern+maze", RouterConfig(maze_fallback=True)),
        ("fewer-iters(4)", RouterConfig(max_iterations=4, maze_fallback=False)),
        ("no-jitter", RouterConfig(jitter=0.0, maze_fallback=False)),
    ):
        start = time.perf_counter()
        result = route_design(placed, config)
        elapsed = time.perf_counter() - start
        report = congestion_report(result)
        results[label] = result
        rows.append(
            f"  {label:<16} residual={result.residual_overuse:8.1f} "
            f"maxutil={result.max_utilization():.2f} "
            f"hot%={report.congested_fraction() * 100:5.2f} "
            f"iters={result.iterations:2d} conv={str(result.converged):<5} "
            f"{elapsed:.2f}s"
        )
    benchmark.pedantic(
        lambda: route_design(placed, RouterConfig(maze_fallback=True)),
        rounds=1, iterations=1,
    )
    write_artifact(
        "ablation_router",
        "ABLATION — router (Design_176)\n\n" + "\n".join(rows),
    )
    # The maze fallback must never be worse than pattern-only.
    assert (
        results["pattern+maze"].residual_overuse
        <= results["pattern-only"].residual_overuse + 1e-9
    )
    # Negotiation iterations matter: 4 iterations must not land
    # meaningfully *below* 12 (the loop is not strictly monotone —
    # history costs occasionally shuffle routes — so allow slack).
    assert (
        results["fewer-iters(4)"].residual_overuse
        >= results["pattern-only"].residual_overuse * 0.6
    )
