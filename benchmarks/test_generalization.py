"""Generalization to unseen designs (extension experiment).

The paper trains and evaluates on the same ten benchmarks.  A placement
tool in the wild meets *new* designs, so this bench measures transfer:
the proposed model is retrained with two designs held out entirely and
evaluated on both splits.  Persisted to ``results/generalization.txt``.
"""

from __future__ import annotations

import pytest

from repro.models import build_model
from repro.train import TrainConfig, Trainer

from .conftest import write_artifact

_HOLDOUT = frozenset({"Design_176", "Design_197"})


@pytest.fixture(scope="module")
def generalization(profile, dataset):
    holdout = _HOLDOUT & set(profile.designs)
    if len(holdout) < 1:
        pytest.skip("profile has no holdout designs")
    seen, unseen = dataset.split_by_design(holdout)
    model = build_model("ours", profile.model_preset, grid=profile.grid)
    trainer = Trainer(
        TrainConfig(
            epochs=profile.ablation_epochs or profile.epochs,
            batch_size=profile.batch_size,
            lr=profile.lr,
            lr_schedule=profile.lr_schedule,
            weight_decay=1e-4,
            max_class_weight=10.0,
            seed=0,
        )
    )
    result = trainer.train(model, seen)
    return {
        "model": model,
        "holdout": holdout,
        "seen_metrics": Trainer.evaluate(model, seen.eval),
        "unseen_metrics": Trainer.evaluate(model, unseen.eval),
        "seconds": result.seconds,
        "train_size": len(seen.train),
        "unseen_size": len(unseen.eval),
    }


def test_generalization_report(benchmark, generalization, dataset):
    model = generalization["model"]
    benchmark.pedantic(
        lambda: Trainer.evaluate(model, dataset.eval[:2]),
        rounds=1, iterations=1,
    )
    seen = generalization["seen_metrics"]
    unseen = generalization["unseen_metrics"]
    text = "\n".join(
        [
            "GENERALIZATION — train with designs held out "
            f"({', '.join(sorted(generalization['holdout']))})",
            "",
            f"  trained on {generalization['train_size']} samples "
            f"({generalization['seconds']:.0f}s)",
            f"  seen designs   ACC={seen['ACC']:.3f} R2={seen['R2']:6.3f} "
            f"NRMS={seen['NRMS']:.3f}",
            f"  unseen designs ACC={unseen['ACC']:.3f} R2={unseen['R2']:6.3f} "
            f"NRMS={unseen['NRMS']:.3f} "
            f"({generalization['unseen_size']} samples)",
        ]
    )
    write_artifact("generalization", text)

    # Transfer must be meaningful: well above chance on unseen designs,
    # with a bounded generalization gap.
    assert unseen["ACC"] > 0.25
    assert unseen["ACC"] > seen["ACC"] - 0.35
