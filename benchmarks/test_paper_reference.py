"""Integrity of the transcribed paper numbers.

These checks guard the reference tables against transcription errors:
the paper's own per-design rows must average (within rounding) to its
stated Average rows, and the ratio rows must equal the averages divided
by Ours.  They run under plain ``pytest benchmarks/`` (no --benchmark-only).
"""

from __future__ import annotations

import numpy as np
import pytest

from .paper_reference import (
    HEADLINE_TABLE1,
    TABLE1_PAPER,
    TABLE1_PAPER_AVERAGE,
    TABLE2_PAPER_AVERAGE,
    TABLE2_PAPER_RATIO,
)


class TestTable1Consistency:
    @pytest.mark.parametrize("model", ["unet", "pgnn", "pros2", "ours"])
    def test_per_design_rows_average_to_stated_average(self, model):
        rows = np.array([TABLE1_PAPER[d][model] for d in TABLE1_PAPER])
        measured_avg = rows.mean(axis=0)
        stated = np.array(TABLE1_PAPER_AVERAGE[model])
        # Paper rounds to 3 decimals; allow rounding slack.
        np.testing.assert_allclose(measured_avg, stated, atol=2e-3)

    def test_ours_best_on_every_average_metric(self):
        ours = TABLE1_PAPER_AVERAGE["ours"]
        for model in ("unet", "pgnn", "pros2"):
            other = TABLE1_PAPER_AVERAGE[model]
            assert ours[0] > other[0]  # ACC higher
            assert ours[1] > other[1]  # R2 higher
            assert ours[2] < other[2]  # NRMS lower

    def test_headline_improvements_roughly_match_averages(self):
        """Section V-B's percentages vs. Table I's own averages.

        Note: the paper's stated improvements do not follow exactly from
        its Table I under any obvious aggregation (e.g. NRMS "28.2 %"
        over U-Net vs. 21.9 % from the Average row, 20.8 % from the mean
        of per-design gains).  We therefore only pin direction and rough
        magnitude; the transcription itself is covered by the
        row-average test above.
        """
        ours = TABLE1_PAPER_AVERAGE["ours"]
        for model, claims in HEADLINE_TABLE1.items():
            other = TABLE1_PAPER_AVERAGE[model]
            acc_gain = (ours[0] - other[0]) / other[0]
            nrms_gain = (other[2] - ours[2]) / other[2]
            assert acc_gain > 0 and nrms_gain > 0
            assert acc_gain == pytest.approx(claims["ACC"], abs=0.04)
            assert nrms_gain == pytest.approx(claims["NRMS"], abs=0.08)


class TestTable2Consistency:
    def test_ratios_equal_average_over_ours(self):
        ours = np.array(TABLE2_PAPER_AVERAGE["Ours"])
        for team, avg in TABLE2_PAPER_AVERAGE.items():
            expected = np.array(avg) / ours
            stated = np.array(TABLE2_PAPER_RATIO[team])
            np.testing.assert_allclose(expected, stated, atol=0.02)

    def test_ours_best_s_r_and_score(self):
        ours = TABLE2_PAPER_AVERAGE["Ours"]
        for team, avg in TABLE2_PAPER_AVERAGE.items():
            if team == "Ours":
                continue
            assert avg[0] > ours[0]  # S_score
            assert avg[1] > ours[1]  # S_R
