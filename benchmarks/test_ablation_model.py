"""Ablations of the design choices DESIGN.md calls out.

The paper attributes its Table-I lead to (a) the MFA blocks on the skip
connections and (b) the transformer bottleneck, and motivates each of
its six input features.  These benches train ablated variants of the
proposed model under the same budget and persist the deltas to
``results/ablation.txt``:

* full model vs. no-MFA vs. no-transformer vs. neither (plain ResNet
  U-Net);
* per-feature input ablation (each channel zeroed at evaluation time).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import FEATURE_NAMES
from repro.models import MFATransformerNet
from repro.train import TrainConfig, Trainer

from .conftest import write_artifact

_VARIANTS = {
    "full": {"use_mfa": True, "layers": True},
    "no_mfa": {"use_mfa": False, "layers": True},
    "no_transformer": {"use_mfa": True, "layers": False},
    "plain_unet_like": {"use_mfa": False, "layers": False},
}


def _build_variant(profile, use_mfa: bool, layers: bool) -> MFATransformerNet:
    depth = {"tiny": 2, "fast": 4, "paper": 12}[profile.model_preset]
    base = {"tiny": 4, "fast": 12, "paper": 16}[profile.model_preset]
    return MFATransformerNet(
        base_channels=base,
        num_transformer_layers=depth if layers else 0,
        grid=profile.grid,
        use_mfa=use_mfa,
        seed=0,
    )


@pytest.fixture(scope="module")
def ablation_results(profile, dataset):
    results = {}
    for name, opts in _VARIANTS.items():
        model = _build_variant(profile, opts["use_mfa"], opts["layers"])
        trainer = Trainer(
            TrainConfig(
                epochs=profile.ablation_epochs or profile.epochs,
                batch_size=profile.batch_size,
                lr=profile.lr,
                lr_schedule=profile.lr_schedule,
                weight_decay=1e-4,
                max_class_weight=10.0,
                seed=0,
            )
        )
        train_result = trainer.train(model, dataset)
        metrics = Trainer.evaluate(model, dataset.eval)
        results[name] = {
            "model": model,
            "metrics": metrics,
            "seconds": train_result.seconds,
            "params": model.num_parameters(),
        }
    return results


def test_architecture_ablation_report(benchmark, ablation_results, profile, dataset):
    """Persist the MFA/transformer ablation table and check its shape."""
    full_model = ablation_results["full"]["model"]
    benchmark.pedantic(
        lambda: Trainer.evaluate(full_model, dataset.eval),
        rounds=1, iterations=1,
    )
    lines = [f"ABLATION — MFA / transformer ({profile.name} profile)", ""]
    for name, entry in ablation_results.items():
        m = entry["metrics"]
        lines.append(
            f"  {name:<16} ACC={m['ACC']:.3f} R2={m['R2']:6.3f} "
            f"NRMS={m['NRMS']:.3f}  ({entry['params']} params, "
            f"{entry['seconds']:.0f}s train)"
        )
    write_artifact("ablation", "\n".join(lines))
    if profile.name == "smoke":
        return  # smoke exercises plumbing only

    for name, entry in ablation_results.items():
        assert entry["metrics"]["ACC"] > 0.3, name
    # Components add capacity...
    assert (
        ablation_results["full"]["params"]
        > ablation_results["no_mfa"]["params"]
    )
    assert (
        ablation_results["full"]["params"]
        > ablation_results["no_transformer"]["params"]
    )
    # ...and the full model is never clearly dominated by an ablation.
    full = ablation_results["full"]["metrics"]["ACC"]
    best = max(e["metrics"]["ACC"] for e in ablation_results.values())
    assert full >= best - 0.05


def test_feature_ablation_report(benchmark, ablation_results, dataset):
    """Persist the per-input-feature ablation (channels zeroed at eval)."""
    model = ablation_results["full"]["model"]
    feats = np.stack([s.features for s in dataset.eval])
    labels = np.stack([s.labels for s in dataset.eval])
    base = benchmark.pedantic(
        lambda: float((model.predict_levels(feats) == labels).mean()),
        rounds=1, iterations=1,
    )
    lines = [
        "ABLATION — input features (channel zeroed at eval)",
        "",
        f"  {'(none)':<16} ACC={base:.3f}",
    ]
    for idx, name in enumerate(FEATURE_NAMES):
        ablated = feats.copy()
        ablated[:, idx] = 0.0
        acc = float((model.predict_levels(ablated) == labels).mean())
        lines.append(f"  -{name:<15} ACC={acc:.3f} (delta {acc - base:+.3f})")
    # Zeroing all routing-demand maps must hurt: they are the core signal.
    all_demand = feats.copy()
    all_demand[:, 1:4] = 0.0
    acc_nodemand = float((model.predict_levels(all_demand) == labels).mean())
    lines.append(f"  -all demand maps ACC={acc_nodemand:.3f}")
    write_artifact("ablation_features", "\n".join(lines))
    if len(dataset.train) >= 40:  # smoke-size models are noise
        assert acc_nodemand < base + 0.05


def test_mfa_block_overhead(benchmark, profile, dataset):
    """Time the full model forward vs. its size (context for Table I)."""
    model = _build_variant(profile, use_mfa=True, layers=True)
    features = dataset.eval[0].features[None]
    benchmark.pedantic(
        lambda: model.predict_levels(features), rounds=3, iterations=1
    )
