"""Shared benchmark configuration and expensive session fixtures.

The benches regenerate the paper's tables/figures at a configurable
effort controlled by ``REPRO_BENCH_PROFILE``:

* ``smoke`` — minutes-scale sanity run (2 designs, few epochs).
* ``fast`` (default) — the full 10-design suite at reduced sample count
  and training budget; the table *shapes* (who wins, roughly by how
  much) are reproduced.
* ``full``  — closest to the paper's protocol this substrate supports.

Expensive artifacts (the dataset and the four trained models) are built
once per pytest session and shared by every bench.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np
import pytest

from repro.models import MODEL_NAMES, build_model
from repro.netlist import MLCAD2023_SPECS, TABLE1_DESIGNS
from repro.train import CongestionDataset, DatasetConfig, TrainConfig, Trainer


@dataclass(frozen=True)
class BenchProfile:
    name: str
    designs: tuple[str, ...]
    placements_per_design: int
    grid: int
    design_scale: float
    epochs: int
    batch_size: int
    lr: float
    model_preset: str
    table2_designs: tuple[str, ...]
    gp_iters: int
    ablation_epochs: int = 0  # 0 -> same as epochs
    lr_schedule: str = "cosine"


_PROFILES = {
    "smoke": BenchProfile(
        name="smoke",
        designs=("Design_116", "Design_197"),
        placements_per_design=2,
        grid=32,
        design_scale=1 / 128,
        epochs=8,
        batch_size=8,
        lr=3e-3,
        model_preset="tiny",
        table2_designs=("Design_116", "Design_197"),
        gp_iters=200,
        ablation_epochs=4,
    ),
    "fast": BenchProfile(
        name="fast",
        designs=TABLE1_DESIGNS,
        placements_per_design=6,
        grid=64,
        design_scale=1 / 64,
        epochs=40,
        batch_size=8,
        lr=2e-3,
        model_preset="fast",
        table2_designs=None,  # filled below with TABLE2_DESIGNS
        gp_iters=400,
        ablation_epochs=20,
    ),
    "full": BenchProfile(
        name="full",
        designs=TABLE1_DESIGNS,
        placements_per_design=10,
        grid=64,
        design_scale=1 / 64,
        epochs=60,
        batch_size=8,
        lr=2e-3,
        model_preset="fast",
        table2_designs=None,
        gp_iters=500,
        ablation_epochs=30,
    ),
}


def current_profile() -> BenchProfile:
    from repro.netlist import TABLE2_DESIGNS

    name = os.environ.get("REPRO_BENCH_PROFILE", "fast")
    if name not in _PROFILES:
        raise ValueError(
            f"REPRO_BENCH_PROFILE={name!r} unknown; use one of {sorted(_PROFILES)}"
        )
    profile = _PROFILES[name]
    if profile.table2_designs is None:
        object.__setattr__(profile, "table2_designs", TABLE2_DESIGNS)
    return profile


@pytest.fixture(scope="session", autouse=True)
def _bench_dtype():
    """Train/infer in float32 during benches (~1.8x faster, same loss)."""
    import repro.nn as nn

    nn.set_default_dtype(np.float32)
    yield
    nn.set_default_dtype(np.float64)


@pytest.fixture(scope="session")
def profile() -> BenchProfile:
    return current_profile()


def _cache_dir() -> str:
    root = os.path.join(
        os.path.dirname(os.path.dirname(__file__)), "results", "cache"
    )
    os.makedirs(root, exist_ok=True)
    return root


def _cache_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_REFRESH", "0") != "1"


@pytest.fixture(scope="session")
def dataset(profile) -> CongestionDataset:
    """The Section V-A dataset: placement sweep + rotations, all designs.

    Cached under ``results/cache`` per profile; set
    ``REPRO_BENCH_REFRESH=1`` to regenerate.
    """
    from repro.train.dataset import Sample

    cache_path = os.path.join(_cache_dir(), f"dataset_{profile.name}.npz")
    if _cache_enabled() and os.path.exists(cache_path):
        with np.load(cache_path, allow_pickle=False) as archive:
            def unpack(prefix):
                count = int(archive[f"{prefix}_count"])
                return [
                    Sample(
                        features=archive[f"{prefix}_f{i}"],
                        labels=archive[f"{prefix}_l{i}"],
                        design_name=str(archive[f"{prefix}_d{i}"]),
                        rotation=int(archive[f"{prefix}_r{i}"]),
                    )
                    for i in range(count)
                ]

            return CongestionDataset(train=unpack("tr"), eval=unpack("ev"))

    config = DatasetConfig(
        grid=profile.grid,
        placements_per_design=profile.placements_per_design,
        design_scale=profile.design_scale,
        gp_iters=profile.gp_iters,
        seed=2023,
    )
    specs = [MLCAD2023_SPECS[name] for name in profile.designs]
    # REPRO_BENCH_PARALLEL=N fans per-design generation across N
    # supervised workers (repro.orchestrate); the dataset is bitwise
    # identical to the serial build, so the cache stays valid.
    parallel = int(os.environ.get("REPRO_BENCH_PARALLEL", "0"))
    built = CongestionDataset.build(specs, config, parallel=parallel)

    payload = {}
    for prefix, samples in (("tr", built.train), ("ev", built.eval)):
        payload[f"{prefix}_count"] = np.asarray(len(samples))
        for i, sample in enumerate(samples):
            payload[f"{prefix}_f{i}"] = sample.features
            payload[f"{prefix}_l{i}"] = sample.labels
            payload[f"{prefix}_d{i}"] = np.asarray(sample.design_name)
            payload[f"{prefix}_r{i}"] = np.asarray(sample.rotation)
    np.savez_compressed(cache_path, **payload)
    return built


@pytest.fixture(scope="session")
def trained_models(profile, dataset):
    """All four Table-I models trained under the same budget.

    Checkpoints are cached under ``results/cache`` per profile; set
    ``REPRO_BENCH_REFRESH=1`` to retrain.
    """
    from repro.nn import load_module, save_module

    models = {}
    timings = {}
    for name in MODEL_NAMES:
        model = build_model(name, profile.model_preset, grid=profile.grid)
        ckpt = os.path.join(_cache_dir(), f"{name}_{profile.name}.npz")
        if _cache_enabled() and os.path.exists(ckpt):
            load_module(model, ckpt)
            model.eval()
            models[name] = model
            timings[name] = 0.0
            continue
        trainer = Trainer(
            TrainConfig(
                epochs=profile.epochs,
                batch_size=profile.batch_size,
                lr=profile.lr,
                lr_schedule=profile.lr_schedule,
                weight_decay=1e-4,
                max_class_weight=10.0,
                seed=0,
            )
        )
        result = trainer.train(model, dataset)
        save_module(model, ckpt)
        models[name] = model
        timings[name] = result.seconds
    return {"models": models, "timings": timings}


@pytest.fixture(scope="session")
def trained_ours(trained_models):
    return trained_models["models"]["ours"]


def print_banner(title: str) -> None:
    bar = "=" * max(len(title), 60)
    print(f"\n{bar}\n{title}\n{bar}")


def write_artifact(name: str, text: str, suffix: str = ".txt") -> str:
    """Persist a regenerated table/figure under results/ and print it.

    pytest captures stdout by default, so the benches also write each
    regenerated artifact to ``results/<name><suffix>`` — that is what
    EXPERIMENTS.md points at.
    """
    root = os.path.join(os.path.dirname(os.path.dirname(__file__)), "results")
    os.makedirs(root, exist_ok=True)
    path = os.path.join(root, f"{name}{suffix}")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(text)
    return path
