"""Reference numbers transcribed from the paper's Tables I and II.

Used by the benchmark harness to print paper-vs-measured comparisons.
Absolute values are not expected to match (our substrate is a simulator,
not the authors' Vivado testbed); the *shape* — who wins, by roughly
what factor — is what the benches check.
"""

from __future__ import annotations

# Table I: per-design (ACC, R2, NRMS) for each model.
TABLE1_PAPER: dict[str, dict[str, tuple[float, float, float]]] = {
    "Design_116": {
        "unet": (0.804, 0.827, 0.160), "pgnn": (0.847, 0.857, 0.167),
        "pros2": (0.849, 0.856, 0.167), "ours": (0.885, 0.890, 0.144),
    },
    "Design_120": {
        "unet": (0.742, 0.763, 0.241), "pgnn": (0.777, 0.790, 0.224),
        "pros2": (0.803, 0.815, 0.208), "ours": (0.855, 0.852, 0.183),
    },
    "Design_136": {
        "unet": (0.784, 0.777, 0.221), "pgnn": (0.826, 0.812, 0.200),
        "pros2": (0.844, 0.826, 0.189), "ours": (0.882, 0.864, 0.164),
    },
    "Design_156": {
        "unet": (0.791, 0.804, 0.208), "pgnn": (0.819, 0.829, 0.199),
        "pros2": (0.846, 0.835, 0.189), "ours": (0.886, 0.860, 0.173),
    },
    "Design_176": {
        "unet": (0.811, 0.863, 0.105), "pgnn": (0.838, 0.845, 0.128),
        "pros2": (0.879, 0.859, 0.110), "ours": (0.892, 0.893, 0.104),
    },
    "Design_180": {
        "unet": (0.867, 0.915, 0.132), "pgnn": (0.878, 0.916, 0.131),
        "pros2": (0.904, 0.934, 0.116), "ours": (0.923, 0.946, 0.104),
    },
    "Design_190": {
        "unet": (0.813, 0.821, 0.157), "pgnn": (0.827, 0.832, 0.152),
        "pros2": (0.883, 0.882, 0.124), "ours": (0.903, 0.901, 0.112),
    },
    "Design_197": {
        "unet": (0.764, 0.749, 0.175), "pgnn": (0.799, 0.782, 0.162),
        "pros2": (0.793, 0.771, 0.166), "ours": (0.858, 0.832, 0.137),
    },
    "Design_227": {
        "unet": (0.752, 0.754, 0.215), "pgnn": (0.828, 0.820, 0.178),
        "pros2": (0.863, 0.851, 0.160), "ours": (0.893, 0.881, 0.140),
    },
    "Design_237": {
        "unet": (0.789, 0.802, 0.166), "pgnn": (0.841, 0.845, 0.143),
        "pros2": (0.859, 0.861, 0.135), "ours": (0.875, 0.867, 0.126),
    },
}

TABLE1_PAPER_AVERAGE = {
    "unet": (0.792, 0.808, 0.178),
    "pgnn": (0.828, 0.833, 0.168),
    "pros2": (0.852, 0.849, 0.156),
    "ours": (0.885, 0.878, 0.139),
}

# Table II: per-team averages of (S_score, S_R, T_P&R, S_IR, S_DR).
TABLE2_PAPER_AVERAGE = {
    "UTDA": (36.57, 56.30, 0.57, 5.80, 9.30),
    "SEU": (25.64, 40.20, 0.54, 4.70, 8.60),
    "MPKU-Improve": (21.08, 42.00, 0.44, 4.70, 8.50),
    "Ours": (19.41, 34.40, 0.49, 4.00, 8.40),
}

# Table II ratios (normalized to Ours): S_score, S_R, T_P&R, S_IR, S_DR.
TABLE2_PAPER_RATIO = {
    "UTDA": (1.88, 1.64, 1.17, 1.45, 1.11),
    "SEU": (1.32, 1.17, 1.10, 1.18, 1.02),
    "MPKU-Improve": (1.08, 1.22, 0.91, 1.18, 1.01),
    "Ours": (1.00, 1.00, 1.00, 1.00, 1.00),
}

# Headline improvement claims (Section V-B): Ours vs each baseline.
HEADLINE_TABLE1 = {
    "unet": {"ACC": 0.106, "R2": 0.081, "NRMS": 0.282},
    "pgnn": {"ACC": 0.065, "R2": 0.052, "NRMS": 0.214},
    "pros2": {"ACC": 0.037, "R2": 0.034, "NRMS": 0.128},
}

# Headline Table-II claims: Ours improves S_R / S_score by these factors.
HEADLINE_TABLE2 = {
    "UTDA": {"S_R": 0.64, "S_score": 0.88},
    "SEU": {"S_R": 0.17, "S_score": 0.32},
    "MPKU-Improve": {"S_R": 0.22, "S_score": 0.08},
}
