"""Table II — routability-driven placement comparison.

Runs all four teams (UTDA / SEU / MPKU-Improve / Ours) through the full
flow on the Table-II design list, scores every placement with the
contest metrics (Eqs. 1–3), and writes the measured table (with the
paper's averages and ratios alongside) to ``results/table2.txt``.
"Ours" uses the MFA+transformer model trained by the shared session
fixture, exactly as Section IV describes (model-driven inflation
replacing RUDY).

``pytest-benchmark`` times one full placement flow (the paper's
``T_macro`` column — all teams stay far below the 10-minute penalty)
and the table aggregation itself.
"""

from __future__ import annotations

import json

import pytest

from repro.contest import (
    contest_teams,
    evaluate_team_on_design,
    format_table2,
    run_table2,
    table2_artifact,
)

from .conftest import write_artifact
from .paper_reference import TABLE2_PAPER_AVERAGE, TABLE2_PAPER_RATIO


@pytest.fixture(scope="module")
def table2(profile, trained_ours):
    teams = contest_teams(model=trained_ours, model_grid=profile.grid)
    return run_table2(
        teams,
        design_names=profile.table2_designs,
        scale=profile.design_scale,
    )


def _render_table2(table2, profile) -> str:
    lines = [
        f"TABLE II — routability-driven placement ({profile.name} profile, "
        f"{len(profile.table2_designs)} designs, scale "
        f"{profile.design_scale:g})",
        "",
        format_table2(table2),
        "",
        "Paper averages (S_score, S_R, T_P&R, S_IR, S_DR):",
    ]
    for team, vals in TABLE2_PAPER_AVERAGE.items():
        lines.append(f"  {team:<14} {vals}")
    lines.append("Paper ratios (normalized to Ours):")
    for team, vals in TABLE2_PAPER_RATIO.items():
        lines.append(f"  {team:<14} {vals}")
    return "\n".join(lines)


def test_table2_report(benchmark, table2, profile):
    """Aggregate, persist and shape-check Table II."""
    benchmark.pedantic(table2.averages, rounds=3, iterations=1)
    write_artifact("table2", _render_table2(table2, profile))
    write_artifact("table2_rows", table2.to_csv(), suffix=".csv")
    write_artifact(
        "table2_run",
        json.dumps(table2_artifact(table2), indent=2, sort_keys=True),
        suffix=".json",
    )
    if profile.name == "smoke":
        return  # smoke exercises plumbing only

    # Sanity: contest metrics within the regime the paper reports.
    for team, by_design in table2.scores.items():
        for score in by_design.values():
            assert score.s_ir >= 1
            assert 4 <= score.s_dr <= 20
            assert 0.1 < score.t_pr_hours < 2.5
            assert score.t_macro_minutes < 10, (
                f"{team} exceeded the contest macro-runtime budget"
            )

    # Shape of the headline claims at this scale (see EXPERIMENTS.md):
    # the model-driven flow clearly beats both RUDY-based winners (the
    # paper's biggest gap, 64 % S_R over UTDA) and stays within noise-
    # range of the best team overall (the paper has MPKU within 8 %;
    # at our scale that pairing flips — documented divergence).
    avgs = table2.averages()
    assert avgs["Ours"]["S_R"] <= avgs["UTDA"]["S_R"] * 0.85
    assert avgs["Ours"]["S_R"] <= avgs["SEU"]["S_R"] * 1.10
    best_other = min(avgs[t]["S_score"] for t in avgs if t != "Ours")
    assert avgs["Ours"]["S_score"] <= best_other * 2.2

    ratios = table2.ratios("Ours")
    for value in ratios["Ours"].values():
        assert value == pytest.approx(1.0)


def test_full_flow_runtime(benchmark, profile, trained_ours):
    """Benchmark one complete 'Ours' placement flow (T_macro)."""
    teams = contest_teams(model=trained_ours, model_grid=profile.grid)
    ours = teams[-1]
    design = profile.table2_designs[0]
    score = benchmark.pedantic(
        lambda: evaluate_team_on_design(ours, design, scale=profile.design_scale),
        rounds=1,
        iterations=1,
    )
    assert score.t_macro_minutes < 10
