"""Rendering helpers: ASCII heatmaps and PGM/PPM writers."""

import numpy as np
import pytest

from repro.viz import (
    ascii_heatmap,
    level_colormap,
    to_grayscale,
    write_pgm,
    write_ppm,
)


class TestAsciiHeatmap:
    def test_dimensions(self, rng):
        art = ascii_heatmap(rng.uniform(0, 1, size=(5, 3)))
        lines = art.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 5 for line in lines)

    def test_orientation_row0_at_bottom(self):
        data = np.zeros((2, 2))
        data[0, 1] = 1.0  # top-left of the plot
        art = ascii_heatmap(data).splitlines()
        assert art[0][0] == "@"
        assert art[1][0] == " "

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            ascii_heatmap(rng.uniform(size=(2, 2, 2)))

    def test_zero_map_renders_blank(self):
        art = ascii_heatmap(np.zeros((3, 3)))
        assert set(art.replace("\n", "")) == {" "}


class TestGrayscale:
    def test_range(self, rng):
        gray = to_grayscale(rng.uniform(0, 10, size=(4, 4)))
        assert gray.dtype == np.uint8
        assert gray.max() == 255

    def test_explicit_vmax(self):
        gray = to_grayscale(np.array([[5.0]]), vmax=10.0)
        assert gray[0, 0] == 127  # half scale


class TestLevelColormap:
    def test_shape_and_dtype(self):
        levels = np.arange(8).reshape(4, 2)
        image = level_colormap(levels)
        assert image.shape == (2, 4, 3)
        assert image.dtype == np.uint8

    def test_low_levels_lighter_than_high(self):
        image = level_colormap(np.array([[0, 7]]))
        light = image[:, :, :][image.shape[0] - 1, 0]
        dark = image[0, 0]
        assert int(light.sum()) != int(dark.sum())
        assert level_colormap(np.array([[0]])).sum() > level_colormap(
            np.array([[7]])
        ).sum()

    def test_out_of_range_clipped(self):
        image = level_colormap(np.array([[99, -5]]))
        assert image.shape == (2, 1, 3)


class TestImageWriters:
    def test_pgm_header_and_size(self, tmp_path, rng):
        path = tmp_path / "map.pgm"
        write_pgm(rng.uniform(size=(6, 4)), path)
        blob = path.read_bytes()
        assert blob.startswith(b"P5\n6 4\n255\n")
        assert len(blob) == len(b"P5\n6 4\n255\n") + 6 * 4

    def test_ppm_header_and_size(self, tmp_path, rng):
        path = tmp_path / "map.ppm"
        image = (rng.uniform(0, 255, size=(3, 5, 3))).astype(np.uint8)
        write_ppm(image, path)
        blob = path.read_bytes()
        assert blob.startswith(b"P6\n5 3\n255\n")
        assert len(blob) == len(b"P6\n5 3\n255\n") + 3 * 5 * 3

    def test_ppm_rejects_grayscale(self, tmp_path, rng):
        with pytest.raises(ValueError, match="RGB"):
            write_ppm(rng.uniform(size=(3, 3)), tmp_path / "x.ppm")

    def test_congestion_roundtrip(self, tmp_path, placed_tiny_design):
        """End-to-end: routed levels -> Fig. 1-style PPM on disk."""
        from repro.routing import congestion_report, route_design

        report = congestion_report(route_design(placed_tiny_design))
        path = write_ppm(
            level_colormap(report.level_map), tmp_path / "fig1.ppm"
        )
        assert (tmp_path / "fig1.ppm").stat().st_size > 0
        assert path.endswith("fig1.ppm")


class TestFloorplan:
    def test_ascii_glyphs(self, tiny_device):
        from repro.viz import floorplan_ascii

        art = floorplan_ascii(tiny_device, rows=2)
        lines = art.splitlines()
        assert len(lines) == 3  # 2 stripe rows + legend
        assert len(lines[0]) == tiny_device.num_cols
        assert "D" in lines[0] and "B" in lines[0] and "U" in lines[0]
        assert "D=DSP" in lines[-1]

    def test_image_shape_and_colors(self, tiny_device):
        from repro.viz import floorplan_image

        image = floorplan_image(tiny_device)
        assert image.shape == (tiny_device.num_rows, tiny_device.num_cols, 3)
        # DSP column (x=2) differs from CLB column (x=0).
        assert not np.array_equal(image[0, 2], image[0, 0])

    def test_placement_overlay_darkens(self, tiny_device):
        from repro.viz import floorplan_image

        base = floorplan_image(tiny_device)
        overlaid = floorplan_image(
            tiny_device, x=np.array([0.2]), y=np.array([0.4])
        )
        row = tiny_device.num_rows - 1  # y=0 -> bottom -> last image row
        assert overlaid[row, 0].sum() < base[row, 0].sum()

    def test_marker_mask(self, tiny_device):
        from repro.viz import floorplan_image

        x = np.array([0.0, 5.0])
        y = np.array([0.0, 5.0])
        only_second = floorplan_image(
            tiny_device, x, y, marker=np.array([False, True])
        )
        base = floorplan_image(tiny_device)
        bottom = tiny_device.num_rows - 1
        np.testing.assert_array_equal(only_second[bottom, 0], base[bottom, 0])
