"""Shared toy modules and tracing helpers for the numcheck suite."""

from __future__ import annotations

import pytest

from repro.ir import trace
from repro.ir.trace import trace_tape
from repro.nn import Module
from repro.numcheck import UNIT_ROUNDOFF, forward_envelope

U32 = UNIT_ROUNDOFF["float32"]
U64 = UNIT_ROUNDOFF["float64"]


class StableSoftmax(Module):
    """The substrate's max-shifted softmax, written in Tensor ops."""

    def forward(self, x):
        e = (x - x.max(axis=-1, keepdims=True)).exp()
        return e / e.sum(axis=-1, keepdims=True)


class StableLogSoftmax(Module):
    def forward(self, x):
        s = x - x.max(axis=-1, keepdims=True)
        return s - s.exp().sum(axis=-1, keepdims=True).log()


def traced_envelope(module, *shapes, vrange=(0.0, 1.0), u=U32):
    """Trace ``module`` and return ``(graph, forward_envelope)``."""
    graph = trace(module, *shapes, input_vrange=vrange)
    return graph, forward_envelope(graph, u=u)


@pytest.fixture(scope="session")
def unet_traced():
    """One shared forward+tape trace of the smallest registry model."""
    from repro.models.registry import build_model
    from repro.perf.report import DEPLOY_DTYPE, default_dtype

    with default_dtype(DEPLOY_DTYPE):
        model = build_model("unet", preset="tiny", grid=32, seed=0)
        graph, tape = trace_tape(
            model, (1, 6, 32, 32), input_vrange=(0.0, 1.0), name="unet",
            concrete_params=True,
        )
    return graph, tape
