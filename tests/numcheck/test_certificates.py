"""Plan certificates: every fusion group and dtype pin gets either a
certificate or a blocking finding — never silence."""

from types import SimpleNamespace

import pytest

from repro.numcheck import certify_plan, forward_envelope
from repro.schedule.compiler import compile_plan

from .conftest import U32


@pytest.fixture(scope="module")
def certified(unet_traced):
    graph, tape = unet_traced
    fenv = forward_envelope(graph, u=U32)
    plan = compile_plan(graph, tape)
    return plan, graph, fenv, certify_plan(
        plan, graph, fenv, budget=1e3
    )


class TestFusionCertificates:
    def test_every_group_certified_or_flagged(self, certified):
        plan, graph, fenv, result = certified
        fusion = [
            c for c in result["certificates"] if c["kind"] == "fusion"
        ]
        assert len(fusion) == len(plan.fusion_groups)
        flagged = {
            f.line for f in result["findings"] if f.code == "REPRO804"
        }
        for cert in fusion:
            if not cert["error_neutral"]:
                assert flagged  # refusal always carries a finding

    def test_compiled_plan_is_error_neutral(self, certified):
        _, _, _, result = certified
        assert all(
            c["error_neutral"]
            for c in result["certificates"]
            if c["kind"] == "fusion"
        )
        assert not any(
            f.code == "REPRO804" for f in result["findings"]
        )

    def test_summation_order_certificate_present(self, certified):
        _, _, _, result = certified
        order = [
            c for c in result["certificates"]
            if c["kind"] == "summation_order"
        ]
        assert len(order) == 1 and order[0]["error_neutral"]

    def test_fused_reduction_is_refused(self, certified):
        plan, graph, fenv, _ = certified
        # Adversarial plan: splice a reduction into a pointwise chain.
        from repro.numcheck.certificates import _REDUCTIONS

        some_red = next(
            n for n in graph if n.kind == "op" and n.op in _REDUCTIONS
        )
        some_add = next(
            n.id for n in graph if n.kind == "op" and n.op == "add"
        )
        bad = SimpleNamespace(
            fusion_groups=[SimpleNamespace(
                nodes=(some_add, some_red.id), ops=("add", some_red.op),
            )],
            order=list(plan.order),
            dtype_pin=plan.dtype_pin,
            node_pins=plan.node_pins,
        )
        result = certify_plan(bad, graph, fenv, budget=1e3)
        assert any(f.code == "REPRO804" for f in result["findings"])
        fusion = [
            c for c in result["certificates"] if c["kind"] == "fusion"
        ]
        assert fusion and not fusion[0]["error_neutral"]
        assert "reassociates" in fusion[0]["reason"]


class TestDtypePinPricing:
    def test_pin_certificate_within_budget(self, certified):
        _, _, _, result = certified
        pin = next(
            c for c in result["certificates"] if c["kind"] == "dtype_pin"
        )
        assert pin["dtype"] == "float32"
        assert pin["within_budget"]
        assert pin["nodes_priced"] > 0
        assert float(pin["worst_contribution_rel"]) >= 0.0
        assert not any(
            f.code == "REPRO805" for f in result["findings"]
        )

    def test_zero_budget_blocks_the_pin(self, certified):
        plan, graph, fenv, _ = certified
        result = certify_plan(plan, graph, fenv, budget=0.0)
        assert any(f.code == "REPRO805" for f in result["findings"])
        pin = next(
            c for c in result["certificates"] if c["kind"] == "dtype_pin"
        )
        assert not pin["within_budget"]
