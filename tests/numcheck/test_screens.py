"""Interval screens: each fires on its adversarial shape and stays
silent on the safe twin the substrate actually ships."""

from repro.nn import Module
from repro.numcheck import screen_cancellation, screen_reductions

from .conftest import StableSoftmax, traced_envelope


def _codes(module, *shapes, vrange=(0.0, 1.0)):
    graph, fenv = traced_envelope(module, *shapes, vrange=vrange)
    return [
        f.code
        for f in screen_cancellation(graph, fenv)
        + screen_reductions(graph, fenv)
    ]


# -- REPRO802: catastrophic cancellation ---------------------------------------


class CancellingDifference(Module):
    """Two rounded quantities whose difference can reach 0."""

    def forward(self, x):
        return x * 2.0 - x * 3.0


class LeafMinusLeaf(Module):
    """Exact operands carry no incoming error: nothing to cancel."""

    def forward(self, x, y):
        return x - y


class MeanCentering(Module):
    """``x - mean(x)`` cancels exactly rounded quantities by design."""

    def forward(self, x):
        return (x - x.mean(axis=-1, keepdims=True)) * 2.0


class TestCancellationScreen:
    def test_fires_on_overlapping_difference(self):
        assert "REPRO802" in _codes(CancellingDifference(), (2, 8))

    def test_silent_on_leaf_minus_leaf(self):
        assert "REPRO802" not in _codes(LeafMinusLeaf(), (2, 8), (2, 8))

    def test_silent_on_centering_idiom(self):
        assert "REPRO802" not in _codes(MeanCentering(), (2, 8))

    def test_silent_on_max_shifted_softmax(self):
        assert "REPRO802" not in _codes(
            StableSoftmax(), (2, 8), vrange=(-10.0, 10.0)
        )

    def test_silent_when_difference_cannot_vanish(self):
        class Shifted(Module):
            def forward(self, x):
                return x * 2.0 - (x * 3.0 + 10.0)

        # x in [0,1]: diff in [-13, -8], provably bounded away from 0.
        assert "REPRO802" not in _codes(Shifted(), (2, 8))


# -- REPRO803: ill-conditioned mixed-sign reductions ---------------------------


class MixedSignMean(Module):
    def forward(self, x):
        return (x * 2.0).mean(axis=-1)


class TestReductionScreen:
    def test_fires_on_long_mixed_sign_reduction(self):
        assert "REPRO803" in _codes(
            MixedSignMean(), (2, 32), vrange=(-1.0, 1.0)
        )

    def test_silent_on_nonnegative_summands(self):
        # Softmax/LSE denominators: exp() >= 0, condition number 1.
        assert "REPRO803" not in _codes(
            MixedSignMean(), (2, 32), vrange=(0.0, 1.0)
        )

    def test_silent_on_short_reductions(self):
        # 8 summands cannot lose meaningful accuracy (< _MIN_COUNT).
        assert "REPRO803" not in _codes(
            MixedSignMean(), (2, 8), vrange=(-1.0, 1.0)
        )

    def test_silent_on_unbounded_interval(self):
        # A sign-only [-inf, inf] interval would make the screen
        # vacuous noise: every deep model sums *something* unbounded.
        import numpy as np

        assert "REPRO803" not in _codes(
            MixedSignMean(), (2, 32), vrange=(-np.inf, np.inf)
        )
