"""Model certification reports, shadow verdicts and the baseline
discipline (deterministic slice, drift detection, byte stability)."""

import json
from types import SimpleNamespace

import pytest

from repro.numcheck import (
    SCHEMA,
    baseline_from_numcheck,
    check_numcheck_baseline,
    has_blocking,
    numcheck,
    numcheck_model,
)
from repro.numcheck.report import _MEASURED_CODES, _shadow_verdict


@pytest.fixture(scope="module")
def unet_report():
    return numcheck_model(
        "unet", preset="tiny", grids=(32,), measure=True
    )


class TestModelReport:
    def test_schema_and_structure(self, unet_report):
        assert unet_report["schema"] == SCHEMA
        assert unet_report["model"] == "unet"
        doc = unet_report["grids"]["32"]
        for key in (
            "forward_rel", "backward_rel", "forward_abs", "grad_bounds",
            "fusion_groups", "fusion_certified", "dtype_pin",
            "certificates", "measured",
        ):
            assert key in doc, key

    def test_certifies_within_default_budget(self, unet_report):
        assert not any(f["blocking"] for f in unet_report["findings"])
        doc = unet_report["grids"]["32"]
        assert 0.0 < doc["forward_rel"] < 1.0
        assert doc["backward_rel"] > 0.0
        assert doc["unsupported"] == []

    def test_every_fusion_group_certified(self, unet_report):
        doc = unet_report["grids"]["32"]
        assert doc["fusion_groups"] == doc["fusion_certified"]

    def test_shadow_measured_below_certificate(self, unet_report):
        # No REPRO809: the envelope is sound against the measured run.
        codes = [f["code"] for f in unet_report["findings"]]
        assert "REPRO809" not in codes
        doc = unet_report["grids"]["32"]
        assert doc["measured"]["forward"] >= 0.0

    def test_tiny_budget_breaches_repro801(self):
        report = numcheck_model(
            "unet", preset="tiny", grids=(32,), budget=1e-12,
            measure=False,
        )
        breaches = [
            f for f in report["findings"] if f["code"] == "REPRO801"
        ]
        assert breaches and all(f["blocking"] for f in breaches)


class TestShadowVerdict:
    def _shadow(self, forward_abs=0.0, grad_abs=None):
        return SimpleNamespace(
            preset="tiny", grid=32, forward_abs=forward_abs,
            grad_abs=grad_abs or {},
        )

    def test_measured_over_certificate_is_repro809(self):
        doc = {"forward_abs": 1e-6, "grad_bounds": {}}
        out = _shadow_verdict("m", doc, self._shadow(forward_abs=1e-3))
        assert [f.code for f in out] == ["REPRO809"]

    def test_gradient_over_certificate_is_repro809(self):
        doc = {"forward_abs": 1.0, "grad_bounds": {"w": 1e-8}}
        out = _shadow_verdict(
            "m", doc, self._shadow(grad_abs={"w": 1e-4})
        )
        assert any(f.code == "REPRO809" for f in out)

    def test_excess_slack_is_repro810(self):
        doc = {"forward_abs": 1.0, "grad_bounds": {}}
        out = _shadow_verdict("m", doc, self._shadow(forward_abs=1e-6))
        assert [f.code for f in out] == ["REPRO810"]

    def test_tight_envelope_is_silent(self):
        doc = {"forward_abs": 1e-6, "grad_bounds": {"w": 2e-7}}
        out = _shadow_verdict(
            "m", doc,
            self._shadow(forward_abs=5e-7, grad_abs={"w": 1e-7}),
        )
        assert out == []


class TestBaselineDiscipline:
    @pytest.fixture(scope="class")
    def bundle(self):
        return numcheck(
            "unet", preset="tiny", grids=(32,), measure=False
        )

    def test_round_trip_is_clean(self, bundle):
        baseline = baseline_from_numcheck(bundle)
        assert check_numcheck_baseline(bundle, baseline) == []

    def test_drift_is_detected(self, bundle):
        baseline = baseline_from_numcheck(bundle)
        baseline["entries"][0]["forward_rel"] = "9.999999e+09"
        problems = check_numcheck_baseline(bundle, baseline)
        assert problems and "forward_rel" in problems[0]

    def test_injected_code_count_drift_detected(self, bundle):
        baseline = baseline_from_numcheck(bundle)
        baseline["by_code"]["REPRO804"] = 7
        assert check_numcheck_baseline(bundle, baseline)

    def test_measured_codes_excluded_from_slice(self, bundle):
        # REPRO809/810 depend on BLAS-/machine-specific measured error;
        # the deterministic slice must never include them.
        baseline = baseline_from_numcheck(bundle)
        for code in _MEASURED_CODES:
            assert code not in baseline["by_code"]

    def test_slice_is_byte_stable(self, bundle):
        again = numcheck(
            "unet", preset="tiny", grids=(32,), measure=False
        )
        dump = lambda b: json.dumps(  # noqa: E731
            baseline_from_numcheck(b), sort_keys=True
        )
        assert dump(bundle) == dump(again)
        assert bundle["fingerprint"] == again["fingerprint"]

    def test_no_blocking_findings(self, bundle):
        assert not has_blocking(bundle)
        assert bundle["failures"] == []


class TestCache:
    def test_certification_is_cached(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = numcheck_model(
            "unet", preset="tiny", grids=(32,), measure=False,
            cache_dir=cache,
        )
        files = list((tmp_path / "cache").glob("numcheck-*.json"))
        assert len(files) == 1
        second = numcheck_model(
            "unet", preset="tiny", grids=(32,), measure=False,
            cache_dir=cache,
        )
        assert first["grids"] == second["grids"]

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        numcheck_model(
            "unet", preset="tiny", grids=(32,), measure=False,
            cache_dir=str(cache),
        )
        entry = next(cache.glob("numcheck-*.json"))
        entry.write_text("{not json")
        report = numcheck_model(
            "unet", preset="tiny", grids=(32,), measure=False,
            cache_dir=str(cache),
        )
        assert report["grids"]["32"]["forward_rel"] > 0.0


class TestFlowBundle:
    def test_flow_target_skips_models(self):
        bundle = numcheck("flow")
        assert bundle["models"] == {}
        assert bundle["flow"] is not None
        assert len(bundle["flow"]["audited_files"]) >= 20
        assert bundle["flow"]["findings"] == []
