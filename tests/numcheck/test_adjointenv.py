"""Adjoint envelope: finite per-parameter gradient bounds that scale
with the roundoff and cover every grad-carrying leaf."""

import math

import pytest

from repro.adjoint import build_adjoint_graph
from repro.numcheck import adjoint_envelope, forward_envelope

from .conftest import U32, U64


@pytest.fixture(scope="module")
def adjoint_pair(unet_traced):
    graph, tape = unet_traced
    adjoint = build_adjoint_graph(graph, tape)
    fenv32 = forward_envelope(graph, u=U32)
    fenv64 = forward_envelope(graph, u=U64)
    a32 = adjoint_envelope(adjoint, fenv32, u=U32)
    a64 = adjoint_envelope(adjoint, fenv64, u=U64)
    return graph, adjoint, a32, a64


class TestAdjointEnvelope:
    def test_all_param_gradients_bounded(self, adjoint_pair):
        graph, adjoint, a32, _ = adjoint_pair
        params = [n for n in graph if n.kind == "param"]
        assert params
        for leaf in params:
            aid = adjoint.grad_of.get(leaf.id)
            assert aid is not None, leaf.name
            delta = a32.gdeltas[aid]
            assert math.isfinite(delta) and delta >= 0.0, leaf.name

    def test_no_unsupported_adjoint_ops(self, adjoint_pair):
        _, _, a32, _ = adjoint_pair
        assert a32.unsupported == ()

    def test_param_relative_finite_positive(self, adjoint_pair):
        _, _, a32, _ = adjoint_pair
        rel = a32.param_relative()
        assert math.isfinite(rel) and rel > 0.0

    def test_float64_adjoint_tighter(self, adjoint_pair):
        _, _, a32, a64 = adjoint_pair
        assert 0.0 < a64.param_relative() < a32.param_relative()
