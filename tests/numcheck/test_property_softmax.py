"""Property tests: measured float32 softmax / log-softmax error at
+-1e4 logits stays inside the statically certified envelope.

This is the shadow-harness contract in miniature — the certified bound
must hold for *concrete* extreme inputs, not just in the abstract
domain — exercised at logit magnitudes where an unshifted softmax
would overflow outright.
"""

import math

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.numcheck import forward_envelope

from .conftest import U32, U64, StableLogSoftmax, StableSoftmax, traced_envelope

LOGIT_SCALE = 1e4


def _certified_abs(module, shape):
    graph, f32 = traced_envelope(
        module, shape, vrange=(-LOGIT_SCALE, LOGIT_SCALE)
    )
    f64 = forward_envelope(graph, u=U64)
    # Same convention as the certifier: float32 run vs float64
    # reference, so both sides' rounding is priced.
    return f32.output_delta() + f64.output_delta()


def _float32_run(module, logits):
    from repro.perf.report import default_dtype

    with default_dtype(np.float32):
        y32 = module(Tensor(logits.astype(np.float32))).numpy()
    assert y32.dtype == np.float32
    return y32


def _measured_abs(module, logits):
    y32 = _float32_run(module, logits)
    y64 = module(Tensor(logits.astype(np.float64))).numpy()
    return float(np.abs(y32.astype(np.float64) - y64).max())


@pytest.mark.parametrize("seed", [0, 1, 2])
class TestSoftmaxEnvelope:
    def test_measured_within_certified(self, seed):
        rng = np.random.default_rng(seed)
        logits = rng.uniform(-LOGIT_SCALE, LOGIT_SCALE, size=(16, 64))
        cert = _certified_abs(StableSoftmax(), (16, 64))
        assert math.isfinite(cert)
        assert _measured_abs(StableSoftmax(), logits) <= cert

    def test_rows_remain_normalized_in_float32(self, seed):
        rng = np.random.default_rng(seed)
        logits = rng.uniform(-LOGIT_SCALE, LOGIT_SCALE, size=(16, 64))
        y32 = _float32_run(StableSoftmax(), logits)
        assert np.all(np.isfinite(y32))
        np.testing.assert_allclose(
            y32.sum(axis=-1), 1.0, rtol=64 * U32
        )


@pytest.mark.parametrize("seed", [0, 1, 2])
class TestLogSoftmaxEnvelope:
    def test_measured_within_certified(self, seed):
        rng = np.random.default_rng(seed)
        logits = rng.uniform(-LOGIT_SCALE, LOGIT_SCALE, size=(16, 64))
        cert = _certified_abs(StableLogSoftmax(), (16, 64))
        assert math.isfinite(cert)
        assert _measured_abs(StableLogSoftmax(), logits) <= cert

    def test_outputs_are_finite_nonpositive_ish(self, seed):
        # log-softmax <= 0 mathematically; float32 rounding can only
        # cross zero by an ulp-scale amount.
        rng = np.random.default_rng(seed)
        logits = rng.uniform(-LOGIT_SCALE, LOGIT_SCALE, size=(16, 64))
        y32 = _float32_run(StableLogSoftmax(), logits)
        assert np.all(np.isfinite(y32))
        assert y32.max() <= 64 * U32


class TestAdversarialTwin:
    def test_unshifted_softmax_overflows_where_shifted_does_not(self):
        # The twin justifying the whole exercise: without the max
        # shift, float32 exp overflows at these logits.
        logits = np.full((2, 4), 500.0, dtype=np.float32)
        with np.errstate(over="ignore"):
            naive = np.exp(logits)
        assert np.isinf(naive).any()
        y32 = _float32_run(StableSoftmax(), logits)
        assert np.all(np.isfinite(y32))
