"""Flow lint: every REPRO806-808 shape fires on its adversarial twin
and stays silent on the guarded spelling the flow actually uses."""

from repro.numcheck import FLOW_PACKAGES, lint_flow, lint_source


def _codes(source: str) -> list[str]:
    return [f.code for f in lint_source(source, "fixture.py")]


class TestFloat32Accumulation:
    def test_cumsum_of_narrowed_operand_fires(self):
        src = (
            "import numpy as np\n"
            "def f(d):\n"
            "    return d.astype(np.float32).cumsum(axis=0)\n"
        )
        assert "REPRO806" in _codes(src)

    def test_bincount_float32_weights_fires(self):
        src = (
            "import numpy as np\n"
            "def f(i, v):\n"
            "    return np.bincount(i, weights=np.float32(1) * v)\n"
        )
        assert "REPRO806" in _codes(src)

    def test_untyped_accumulation_is_safe(self):
        # numpy's default float64 accumulation is the safe case.
        src = "def f(d):\n    return d.cumsum(axis=0)\n"
        assert _codes(src) == []

    def test_narrow_after_accumulate_is_safe(self):
        src = (
            "import numpy as np\n"
            "def f(d):\n"
            "    return d.cumsum(axis=0).astype(np.float32)\n"
        )
        assert _codes(src) == []


class TestUnguardedExp:
    def test_bare_exp_fires(self):
        assert "REPRO807" in _codes(
            "import numpy as np\ndef f(x):\n    return np.exp(x)\n"
        )

    def test_negated_argument_is_guarded(self):
        assert _codes(
            "import numpy as np\ndef f(x):\n    return np.exp(-x)\n"
        ) == []

    def test_metropolis_shape_is_guarded(self):
        # exp(-delta / temperature): negation nested under a division.
        assert _codes(
            "import numpy as np\n"
            "def f(delta, t):\n"
            "    return np.exp(-delta / t)\n"
        ) == []

    def test_max_shift_is_guarded(self):
        assert _codes(
            "import numpy as np\n"
            "def f(x):\n"
            "    return np.exp(x - x.max())\n"
        ) == []

    def test_clip_is_guarded(self):
        assert _codes(
            "import numpy as np\n"
            "def f(x):\n"
            "    return np.exp(np.clip(x, None, 80.0))\n"
        ) == []


class TestOverTightTolerance:
    def test_sub_roundoff_atol_fires(self):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.allclose(a, b, atol=1e-9)\n"
        )
        assert "REPRO808" in _codes(src)

    def test_float32_achievable_rtol_is_safe(self):
        src = (
            "import numpy as np\n"
            "def f(a, b):\n"
            "    return np.allclose(a, b, rtol=1e-5)\n"
        )
        assert _codes(src) == []


class TestSuppressionAndAudit:
    def test_noqa_suppresses(self):
        src = (
            "import numpy as np\n"
            "def f(x):\n"
            "    return np.exp(x)  # noqa: REPRO807\n"
        )
        assert _codes(src) == []

    def test_syntax_error_returns_empty(self):
        assert lint_source("def f(:\n", "broken.py") == []

    def test_flow_surface_is_clean(self):
        # The shipped placer/router/feature/netlist code must audit
        # clean — these packages are exactly what the envelope cannot
        # reach.
        result = lint_flow()
        assert len(result["audited_files"]) >= 20
        assert result["findings"] == [], [
            f"{f.path}:{f.line} {f.code}" for f in result["findings"]
        ]
        audited_pkgs = {p.split("/")[1] for p in result["audited_files"]}
        assert audited_pkgs == set(FLOW_PACKAGES)
