"""Forward envelope: finiteness, u-scaling, the contribution identity
and the two structural mechanisms (softmax cap, normalizer composite)
that keep deep bounds finite."""

import math

import numpy as np
import pytest

from repro.ir.trace import trace_tape
from repro.nn import Module
from repro.nn.layers import LayerNorm
from repro.numcheck import forward_envelope

from .conftest import U32, U64, StableSoftmax, traced_envelope


class PolyTanh(Module):
    """Cap-free single-output chain: every op is linearized exactly."""

    def forward(self, x):
        y = (x * 3.0 + 1.5).tanh()
        return (y * y + x).sum(axis=-1)


class TestEnvelopeBasics:
    def test_deltas_finite_nonnegative(self):
        graph, fenv = traced_envelope(StableSoftmax(), (2, 8))
        assert fenv.unsupported == ()
        for nid, delta in fenv.deltas.items():
            assert delta >= 0.0, nid
            assert math.isfinite(delta), nid

    def test_leaves_are_exact(self):
        graph, fenv = traced_envelope(StableSoftmax(), (2, 8))
        for node in graph:
            if node.kind != "op":
                assert fenv.deltas[node.id] == 0.0
                assert fenv.nodes[node.id].exact

    def test_float64_envelope_tighter_than_float32(self):
        graph, f32 = traced_envelope(PolyTanh(), (2, 8))
        f64 = forward_envelope(graph, u=U64)
        assert 0.0 < f64.output_delta() < f32.output_delta()
        # u-linear model: deltas scale exactly with the roundoff.
        assert f64.output_delta() == pytest.approx(
            f32.output_delta() * U64 / U32
        )


class TestContributionIdentity:
    """delta(out) == sum_n amp(n)*seed(n)*u on cap-free graphs."""

    def test_identity_holds_without_caps(self):
        graph, fenv = traced_envelope(PolyTanh(), (2, 8))
        total = sum(fenv.contribution(n.id) for n in graph)
        assert math.isfinite(fenv.output_delta())
        assert total == pytest.approx(fenv.output_delta(), rel=1e-9)

    def test_decomposition_upper_bounds_when_cap_saturates(self):
        # At +-1e4 logits the softmax quotient cap saturates: the
        # linear decomposition stays an upper bound, never an equality
        # claim.
        graph, fenv = traced_envelope(
            StableSoftmax(), (2, 64), vrange=(-1e4, 1e4)
        )
        total = sum(fenv.contribution(n.id) for n in graph)
        assert fenv.output_delta() <= total * (1 + 1e-12)


class TestSoftmaxCap:
    def test_cap_bounds_extreme_logits(self):
        # Without the structural cap, 1e4-scale score errors make the
        # quotient bound vacuous; the computed quotient provably lives
        # in [0, 1 + O(u)], so the error saturates there.
        graph, fenv = traced_envelope(
            StableSoftmax(), (2, 64), vrange=(-1e4, 1e4)
        )
        assert fenv.output_delta() <= 1.0 + 4.0 * U32

    def test_small_logits_beat_the_cap(self):
        graph, fenv = traced_envelope(
            StableSoftmax(), (2, 8), vrange=(-1.0, 1.0)
        )
        # Benign regime: the linear envelope itself is well under the
        # saturation cap, so the cap is not what bounds it.
        assert fenv.output_delta() < 0.5


class TestNormalizerComposite:
    def test_layer_norm_envelope_is_finite_at_scale(self):
        # Node-by-node interval propagation pairs the maximal variance
        # error with the minimal denominator — mutually exclusive
        # extremes whose product diverges.  The composite rule
        # (REL_VAR_FLOOR regime) must keep the bound finite even for
        # inputs at +-50.
        ln = LayerNorm(32)
        graph, _ = trace_tape(
            ln, (2, 32), input_vrange=(-50.0, 50.0), concrete_params=True
        )
        fenv = forward_envelope(graph, u=U32)
        delta = fenv.output_delta()
        assert math.isfinite(delta)
        assert delta < 1.0
        assert any(
            env.note == "normalizer composite"
            for env in fenv.nodes.values()
        )

    def test_layer_norm_output_magnitude_bounded(self):
        # |x_hat| <= sqrt(d) under the variance-floor regime.
        d = 32
        ln = LayerNorm(d)
        graph, _ = trace_tape(
            ln, (2, d), input_vrange=(-50.0, 50.0), concrete_params=True
        )
        fenv = forward_envelope(graph, u=U32)
        out_mag = max(fenv.nodes[i].mag for i in graph.outputs)
        assert out_mag <= np.sqrt(d) * 1.5  # gamma*x_hat + beta headroom
