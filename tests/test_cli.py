"""CLI: parser structure and command execution at tiny scale."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("stats", "place", "route", "score", "train", "table2"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_design_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["place", "--design", "NotADesign"])


class TestCommands:
    def test_stats(self, capsys):
        rc = main(["stats", "--designs", "Design_116", "--scale", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Design_116" in out
        assert "370000" in out

    def test_place(self, capsys):
        rc = main(
            ["place", "--design", "Design_120", "--scale", "256",
             "--iters", "150"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "hpwl=" in out and "legal=True" in out

    def test_score(self, capsys):
        rc = main(["score", "--design", "Design_120", "--scale", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "S_IR=" in out and "S_score=" in out

    def test_train_writes_checkpoint(self, tmp_path, capsys):
        out_path = tmp_path / "model.npz"
        rc = main(
            ["train", "--designs", "Design_120", "--scale", "256",
             "--grid", "32", "--placements", "2", "--epochs", "1",
             "--model", "unet", "--out", str(out_path)]
        )
        assert rc == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "checkpoint" in out

    def test_train_resume_from_checkpoint_dir(self, tmp_path, capsys):
        """Kill-and-resume e2e at CLI level: the second invocation picks
        up from the bundles the first one left behind."""
        ckpt_dir = tmp_path / "ckpts"
        base = ["train", "--designs", "Design_120", "--scale", "256",
                "--grid", "32", "--placements", "2", "--model", "unet",
                "--out", str(tmp_path / "model.npz"),
                "--checkpoint-dir", str(ckpt_dir)]
        assert main(base + ["--epochs", "1"]) == 0
        assert (ckpt_dir / "last.ckpt.npz").exists()
        capsys.readouterr()
        assert main(base + ["--epochs", "2", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from epoch 1" in out

    def test_train_resume_requires_checkpoint_dir(self, tmp_path, capsys):
        rc = main(
            ["train", "--designs", "Design_120", "--scale", "256",
             "--grid", "32", "--placements", "2", "--epochs", "1",
             "--model", "unet", "--out", str(tmp_path / "m.npz"),
             "--resume"]
        )
        assert rc == 2
        assert "--checkpoint-dir" in capsys.readouterr().err


class TestAnalysisJSONSchemas:
    """Schema snapshots for the machine-readable analysis reports.

    These lock the top-level contract CI and external tooling consume;
    adding keys is fine, renaming or dropping them must fail here.
    """

    def _json(self, capsys, argv, expect_rc=0):
        import json

        rc = main(argv)
        assert rc == expect_rc
        return json.loads(capsys.readouterr().out)

    def test_analyze_json_schema(self, capsys):
        bundle = self._json(
            capsys,
            ["analyze", "unet", "--preset", "tiny", "--grid", "32",
             "--json", "--no-determinism"],
        )
        assert bundle["schema"] == "repro.ir/v1"
        (report,) = bundle["reports"]
        assert set(report) >= {
            "schema", "model", "preset", "grid", "graph", "memory",
            "cost", "stability", "determinism", "opportunities", "failures",
        }
        assert report["model"] == "unet"
        assert report["graph"]["nodes"] > 0

    def test_gradcheck_json_schema(self, capsys):
        bundle = self._json(
            capsys,
            ["gradcheck", "unet", "--preset", "tiny", "--grid", "32",
             "--json"],
        )
        assert bundle["schema"] == "repro.adjoint/v1"
        (report,) = bundle["reports"]
        assert set(report) >= {
            "schema", "model", "preset", "grid", "contracts",
            "gradcheck", "backward", "failures",
        }
        assert report["contracts"]["records"] > 0

    def test_perfcheck_json_schema(self, capsys):
        bundle = self._json(
            capsys,
            ["perfcheck", "unet", "--preset", "tiny", "--grid", "32",
             "--json", "--no-validate"],
        )
        assert bundle["schema"] == "repro.perf/v1"
        assert set(bundle) >= {
            "schema", "reports", "flow", "distinct_codes", "failures",
        }
        (report,) = bundle["reports"]
        assert set(report) >= {
            "schema", "target", "model", "dtype", "graph_nodes",
            "dtype_flow", "aliasing", "fusion", "validation", "by_code",
            "findings", "failures",
        }
        assert report["dtype"] == "float32"
        assert bundle["failures"] == []

    def test_perfcheck_flow_json(self, capsys):
        bundle = self._json(
            capsys,
            ["perfcheck", "flow", "--json", "--no-validate"],
        )
        assert bundle["reports"] == []
        assert bundle["flow"]["target"] == "flow"
        assert bundle["flow"]["audited_files"] > 0

    def test_plancheck_json_schema(self, capsys):
        bundle = self._json(
            capsys,
            ["plancheck", "unet", "--preset", "tiny", "--grid", "32",
             "--backward", "--json"],
        )
        assert bundle["schema"] == "repro.schedule/v1"
        assert set(bundle) >= {
            "schema", "reports", "distinct_codes", "failures",
        }
        (report,) = bundle["reports"]
        assert set(report) >= {
            "schema", "model", "preset", "grid", "batch", "forward",
            "training", "failures",
        }
        for section in ("forward", "training"):
            assert report[section]["plan"]["schema"] == "repro.schedule/v1"
            summary = report[section]["summary"]
            assert summary["planned_nodes"] > 0
            assert summary["arena_bytes"] <= summary["bound_bytes"]
            assert report[section]["findings"] == []
        assert bundle["failures"] == []

    def test_plancheck_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "schedule_baseline.json"
        argv = ["plancheck", "unet", "--preset", "tiny", "--grid", "32"]
        assert main(argv + ["--update-baseline", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(argv + ["--check-baseline", str(baseline)]) == 0
        assert "baseline OK" in capsys.readouterr().out

    def test_perfcheck_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "perf_baseline.json"
        argv = ["perfcheck", "unet", "--preset", "tiny", "--grid", "32",
                "--no-validate"]
        assert main(argv + ["--update-baseline", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(argv + ["--check-baseline", str(baseline)]) == 0
        assert "baseline OK" in capsys.readouterr().out

    def test_concheck_summary(self, capsys):
        rc = main(["concheck"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "worker roots (3):" in out
        assert "repro.train.dataset:_design_samples_job" in out
        assert "concurrency-safety certified" in out

    def test_concheck_json_schema(self, capsys):
        bundle = self._json(capsys, ["concheck", "--json"])
        assert bundle["schema"] == "repro.concheck/v1"
        assert set(bundle) >= {
            "schema", "package", "worker_roots", "reachable_functions",
            "effect_summary", "by_code", "findings", "failures",
        }
        assert bundle["package"] == "repro"
        assert bundle["failures"] == []

    def test_concheck_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "concheck_baseline.json"
        assert main(["concheck", "--update-baseline", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["concheck", "--check-baseline", str(baseline)]) == 0
        assert "baseline OK" in capsys.readouterr().out

    def test_concheck_committed_baseline_is_current(self, capsys):
        # The checked-in baseline must match the tree; CI diffs it.
        from pathlib import Path

        committed = (Path(__file__).resolve().parents[1]
                     / "benchmarks" / "concheck_baseline.json")
        assert main(["concheck", "--check-baseline", str(committed)]) == 0

    def test_scalecheck_flow_json_schema(self, capsys):
        bundle = self._json(capsys, ["scalecheck", "flow", "--json"])
        assert bundle["schema"] == "repro.scaling/v1"
        assert set(bundle) >= {
            "schema", "target", "models", "flow", "by_code", "findings",
            "failures", "fingerprint",
        }
        assert bundle["models"] == {}
        assert bundle["flow"]["findings"] == []
        assert bundle["failures"] == []

    def test_scalecheck_model_pretty_output(self, capsys):
        rc = main(["scalecheck", "unet", "--preset", "tiny", "--no-measure"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sealed:" in out
        assert "scaling certified" in out

    def test_scalecheck_committed_baseline_is_current(self, capsys):
        # The checked-in exponents must match the tree; CI diffs them.
        from pathlib import Path

        committed = (Path(__file__).resolve().parents[1]
                     / "benchmarks" / "scaling_baseline.json")
        assert main(["scalecheck", "all", "--no-measure",
                     "--check-baseline", str(committed)]) == 0

    def test_scalecheck_baseline_byte_stable(self, tmp_path, capsys):
        # Two independent runs must serialize byte-identical baselines.
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        argv = ["scalecheck", "unet", "--preset", "tiny", "--no-measure"]
        assert main(argv + ["--update-baseline", str(a)]) == 0
        assert main(argv + ["--update-baseline", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_numcheck_flow_json_schema(self, capsys):
        bundle = self._json(capsys, ["numcheck", "flow", "--json"])
        assert bundle["schema"] == "repro.numcheck/v1"
        assert set(bundle) >= {
            "schema", "target", "models", "flow", "by_code", "findings",
            "failures", "fingerprint",
        }
        assert bundle["models"] == {}
        assert bundle["flow"]["findings"] == []
        assert bundle["failures"] == []

    def test_numcheck_model_pretty_output(self, capsys):
        rc = main(["numcheck", "unet", "--preset", "tiny", "--grid", "32",
                   "--no-measure"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sealed:" in out
        assert "rounding certified" in out

    def test_numcheck_committed_baseline_is_current(self, capsys):
        # The checked-in certified bounds must match the tree; CI
        # diffs them (the measured REPRO809/810 codes are excluded
        # from the slice, so --no-measure compares the same bytes).
        from pathlib import Path

        committed = (Path(__file__).resolve().parents[1]
                     / "benchmarks" / "numcheck_baseline.json")
        assert main(["numcheck", "all", "--no-measure",
                     "--check-baseline", str(committed)]) == 0

    def test_numcheck_baseline_byte_stable(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        argv = ["numcheck", "unet", "--preset", "tiny", "--grid", "32",
                "--no-measure"]
        assert main(argv + ["--update-baseline", str(a)]) == 0
        assert main(argv + ["--update-baseline", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_update_baseline_carries_ride_along_sections(self, tmp_path):
        # perf's "fixes" section is checker-ignored but human-curated;
        # refreshing the deterministic slice must not destroy it.
        from repro.baselines import load_baseline, write_baseline

        path = str(tmp_path / "perf_baseline.json")
        write_baseline(path, {"entries": [1], "fixes": [{"finding": "x"}]})
        write_baseline(path, {"entries": [2]}, carry=("fixes",))
        doc = load_baseline(path)
        assert doc["entries"] == [2]
        assert doc["fixes"] == [{"finding": "x"}]
        write_baseline(path, {"entries": [3]})  # no carry: section drops
        assert "fixes" not in load_baseline(path)

    def test_check_update_baselines_flag_registered(self):
        args = build_parser().parse_args(["check", "--update-baselines"])
        assert args.update_baselines is True
        assert build_parser().parse_args(["check"]).update_baselines is False

    def test_check_combined_json(self, capsys):
        combined = self._json(
            capsys,
            ["check", "--preset", "tiny", "--grid", "32", "--json",
             "--no-validate"],
        )
        assert combined["schema"] == "repro.check/v1"
        assert set(combined) >= {
            "schema", "preset", "grid", "lint", "analyze", "gradcheck",
            "perfcheck", "plancheck", "concheck", "scalecheck", "failures",
        }
        # Each section carries its own full bundle under its own schema.
        assert combined["analyze"]["schema"] == "repro.ir/v1"
        assert combined["gradcheck"]["schema"] == "repro.adjoint/v1"
        assert combined["perfcheck"]["schema"] == "repro.perf/v1"
        assert combined["plancheck"]["schema"] == "repro.schedule/v1"
        assert combined["concheck"]["schema"] == "repro.concheck/v1"
        assert combined["concheck"]["failures"] == []
        assert combined["scalecheck"]["schema"] == "repro.scaling/v1"
        assert combined["scalecheck"]["failures"] == []
        assert combined["numcheck"]["schema"] == "repro.numcheck/v1"
        assert combined["numcheck"]["failures"] == []
        assert combined["failures"] == []


class TestExitCodeContract:
    """The unified exit-code table from docs/API.md.

    Every analysis command distinguishes clean (0), blocking findings
    (1), usage errors (2), baseline drift (3) and internal crashes (4);
    these tests pin the shared contract rather than one command's habit.
    """

    def test_constants_are_distinct_and_stable(self):
        from repro.cli import (
            EXIT_BLOCKING,
            EXIT_DRIFT,
            EXIT_INTERNAL,
            EXIT_OK,
            EXIT_USAGE,
        )

        assert (EXIT_OK, EXIT_BLOCKING, EXIT_USAGE, EXIT_DRIFT,
                EXIT_INTERNAL) == (0, 1, 2, 3, 4)

    # One spec per analysis subcommand: a tiny-scale clean invocation,
    # the baseline filename, and a mutation that drifts one pinned
    # value.  scalecheck's mutation bumps a certified *exponent* — the
    # drift that matters is asymptotic, not a count.
    SUBCOMMANDS = {
        "analyze": {
            "argv": ["analyze", "unet", "--preset", "tiny", "--grid", "32",
                     "--no-determinism"],
            "baseline": "ir.json",
            "drift": lambda doc: doc["entries"][0].update(
                total_flops=doc["entries"][0]["total_flops"] + 1),
        },
        "gradcheck": {
            "argv": ["gradcheck", "unet", "--preset", "tiny",
                     "--grid", "32"],
        },
        "perfcheck": {
            "argv": ["perfcheck", "unet", "--preset", "tiny", "--grid", "32",
                     "--no-validate"],
            "baseline": "perf.json",
            "drift": lambda doc: doc["entries"][0].update(
                graph_nodes=doc["entries"][0]["graph_nodes"] + 1),
        },
        "plancheck": {
            "argv": ["plancheck", "unet", "--preset", "tiny", "--grid", "32"],
            "baseline": "schedule.json",
            "drift": lambda doc: doc["entries"][0].update(
                arena_bytes=doc["entries"][0]["arena_bytes"] + 1),
        },
        "concheck": {
            "argv": ["concheck"],
            "baseline": "concheck.json",
            "drift": lambda doc: doc.update(
                reachable_functions=doc["reachable_functions"] + 1),
        },
        "scalecheck": {
            "argv": ["scalecheck", "unet", "--preset", "tiny",
                     "--no-measure"],
            "baseline": "scaling.json",
            "drift": lambda doc: (
                lambda e: e.update(flops_degree=e["flops_degree"] + 1)
            )(next(e for e in doc["entries"] if e["stage"] == "(total)")),
        },
        # numcheck's drift mutation loosens a certified error bound —
        # the regression that matters is the envelope, not a count.
        "numcheck": {
            "argv": ["numcheck", "unet", "--preset", "tiny",
                     "--grid", "32", "--no-measure"],
            "baseline": "numcheck.json",
            "drift": lambda doc: doc["entries"][0].update(
                forward_rel="1.000000e+00"),
        },
    }

    @pytest.mark.parametrize("command", sorted(SUBCOMMANDS))
    def test_contract_holds_for_every_subcommand(
        self, command, tmp_path, capsys
    ):
        import json

        spec = self.SUBCOMMANDS[command]
        argv = list(spec["argv"])
        # 2: usage errors come from argparse before any analysis runs.
        with pytest.raises(SystemExit) as exc:
            main(argv + ["--no-such-flag"])
        assert exc.value.code == 2
        # 0: the tree is clean at tiny scale.
        assert main(argv) == 0
        if "baseline" not in spec:
            return  # gradcheck carries no baseline flags
        baseline = tmp_path / spec["baseline"]
        # 0: update then re-check round-trips.
        assert main(argv + ["--update-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(argv + ["--check-baseline", str(baseline)]) == 0
        assert "baseline OK" in capsys.readouterr().out
        # 3: one drifted pinned value fails with a one-line diff.
        doc = json.loads(baseline.read_text())
        spec["drift"](doc)
        baseline.write_text(json.dumps(doc))
        capsys.readouterr()
        assert main(argv + ["--check-baseline", str(baseline)]) == 3
        assert "baseline drift" in capsys.readouterr().err
        # 4: a missing baseline file is an internal error, not drift.
        rc = main(argv + ["--check-baseline", str(tmp_path / "nope.json")])
        assert rc == 4
        assert "internal error" in capsys.readouterr().err

    def test_scalecheck_blocking_exits_1(self, capsys, monkeypatch):
        # Shrink every node budget below one grid area so unet's
        # area-quadratic nodes bust it: blocking REPRO701s must exit 1.
        from repro.scaling import envelopes

        monkeypatch.setattr(envelopes, "node_budget", lambda op, scope: 1)
        rc = main(["scalecheck", "unet", "--preset", "tiny", "--no-measure"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "REPRO701" in captured.out
        assert "blocking finding(s)" in captured.err

    def test_numcheck_blocking_exits_1(self, capsys):
        # An impossible error budget turns the certified bounds into
        # blocking REPRO801 breaches: the command must exit 1.
        rc = main(["numcheck", "unet", "--preset", "tiny", "--grid", "32",
                   "--no-measure", "--budget", "1e-12"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "REPRO801" in captured.out
        assert "blocking finding(s)" in captured.err

    def test_check_accepts_fail_on_choices(self):
        parser = build_parser()
        assert parser.parse_args(["check"]).fail_on == "blocking"
        assert parser.parse_args(
            ["check", "--fail-on", "advisory"]
        ).fail_on == "advisory"
        with pytest.raises(SystemExit):
            parser.parse_args(["check", "--fail-on", "everything"])

    def test_concheck_blocking_exits_1(self, tmp_path, capsys):
        # A planted worker hazard must fail the run, not just print.
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "jobs.py").write_text(
            "import random\n"
            "def job(xs):\n    return random.choice(xs)\n"
            'REF = "pkg.jobs:job"\n'
        )
        rc = main(["concheck", "--root", str(pkg)])
        assert rc == 1
        captured = capsys.readouterr()
        assert "REPRO604" in captured.out
        assert "blocking finding(s)" in captured.err

    def test_concheck_drift_exits_3(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "concheck_baseline.json"
        assert main(["concheck", "--update-baseline", str(baseline)]) == 0
        doc = json.loads(baseline.read_text())
        doc["reachable_functions"] += 1
        doc["worker_roots"].append("repro.gone:job")
        baseline.write_text(json.dumps(doc))
        capsys.readouterr()
        rc = main(["concheck", "--check-baseline", str(baseline)])
        assert rc == 3
        err = capsys.readouterr().err
        assert "worker root disappeared: repro.gone:job" in err
        assert "reachable_functions changed" in err

    def test_concheck_missing_baseline_exits_4(self, tmp_path, capsys):
        rc = main(
            ["concheck", "--check-baseline", str(tmp_path / "nope.json")]
        )
        assert rc == 4
        assert "internal error" in capsys.readouterr().err

    def test_check_fail_on_advisory_trips_on_concheck_603(self, capsys):
        # The concheck section participates in --fail-on advisory: the
        # two baselined REPRO603 wall-clock advisories surface here.
        rc = main(["check", "--preset", "tiny", "--grid", "32",
                   "--no-validate", "--fail-on", "advisory"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "--fail-on advisory" in err
        assert "REPRO603" in err


class TestMoreCommands:
    def test_route_prints_map(self, capsys):
        rc = main(["route", "--design", "Design_120", "--scale", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "levels:" in out

    def test_stats_multiple_designs(self, capsys):
        rc = main(
            ["stats", "--designs", "Design_116", "Design_120",
             "--scale", "256"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Design_116" in out and "Design_120" in out
