"""CLI: parser structure and command execution at tiny scale."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("stats", "place", "route", "score", "train", "table2"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_design_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["place", "--design", "NotADesign"])


class TestCommands:
    def test_stats(self, capsys):
        rc = main(["stats", "--designs", "Design_116", "--scale", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Design_116" in out
        assert "370000" in out

    def test_place(self, capsys):
        rc = main(
            ["place", "--design", "Design_120", "--scale", "256",
             "--iters", "150"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "hpwl=" in out and "legal=True" in out

    def test_score(self, capsys):
        rc = main(["score", "--design", "Design_120", "--scale", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "S_IR=" in out and "S_score=" in out

    def test_train_writes_checkpoint(self, tmp_path, capsys):
        out_path = tmp_path / "model.npz"
        rc = main(
            ["train", "--designs", "Design_120", "--scale", "256",
             "--grid", "32", "--placements", "2", "--epochs", "1",
             "--model", "unet", "--out", str(out_path)]
        )
        assert rc == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "checkpoint" in out

    def test_train_resume_from_checkpoint_dir(self, tmp_path, capsys):
        """Kill-and-resume e2e at CLI level: the second invocation picks
        up from the bundles the first one left behind."""
        ckpt_dir = tmp_path / "ckpts"
        base = ["train", "--designs", "Design_120", "--scale", "256",
                "--grid", "32", "--placements", "2", "--model", "unet",
                "--out", str(tmp_path / "model.npz"),
                "--checkpoint-dir", str(ckpt_dir)]
        assert main(base + ["--epochs", "1"]) == 0
        assert (ckpt_dir / "last.ckpt.npz").exists()
        capsys.readouterr()
        assert main(base + ["--epochs", "2", "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resumed from epoch 1" in out

    def test_train_resume_requires_checkpoint_dir(self, tmp_path, capsys):
        rc = main(
            ["train", "--designs", "Design_120", "--scale", "256",
             "--grid", "32", "--placements", "2", "--epochs", "1",
             "--model", "unet", "--out", str(tmp_path / "m.npz"),
             "--resume"]
        )
        assert rc == 2
        assert "--checkpoint-dir" in capsys.readouterr().err


class TestAnalysisJSONSchemas:
    """Schema snapshots for the machine-readable analysis reports.

    These lock the top-level contract CI and external tooling consume;
    adding keys is fine, renaming or dropping them must fail here.
    """

    def _json(self, capsys, argv, expect_rc=0):
        import json

        rc = main(argv)
        assert rc == expect_rc
        return json.loads(capsys.readouterr().out)

    def test_analyze_json_schema(self, capsys):
        bundle = self._json(
            capsys,
            ["analyze", "unet", "--preset", "tiny", "--grid", "32",
             "--json", "--no-determinism"],
        )
        assert bundle["schema"] == "repro.ir/v1"
        (report,) = bundle["reports"]
        assert set(report) >= {
            "schema", "model", "preset", "grid", "graph", "memory",
            "cost", "stability", "determinism", "opportunities", "failures",
        }
        assert report["model"] == "unet"
        assert report["graph"]["nodes"] > 0

    def test_gradcheck_json_schema(self, capsys):
        bundle = self._json(
            capsys,
            ["gradcheck", "unet", "--preset", "tiny", "--grid", "32",
             "--json"],
        )
        assert bundle["schema"] == "repro.adjoint/v1"
        (report,) = bundle["reports"]
        assert set(report) >= {
            "schema", "model", "preset", "grid", "contracts",
            "gradcheck", "backward", "failures",
        }
        assert report["contracts"]["records"] > 0

    def test_perfcheck_json_schema(self, capsys):
        bundle = self._json(
            capsys,
            ["perfcheck", "unet", "--preset", "tiny", "--grid", "32",
             "--json", "--no-validate"],
        )
        assert bundle["schema"] == "repro.perf/v1"
        assert set(bundle) >= {
            "schema", "reports", "flow", "distinct_codes", "failures",
        }
        (report,) = bundle["reports"]
        assert set(report) >= {
            "schema", "target", "model", "dtype", "graph_nodes",
            "dtype_flow", "aliasing", "fusion", "validation", "by_code",
            "findings", "failures",
        }
        assert report["dtype"] == "float32"
        assert bundle["failures"] == []

    def test_perfcheck_flow_json(self, capsys):
        bundle = self._json(
            capsys,
            ["perfcheck", "flow", "--json", "--no-validate"],
        )
        assert bundle["reports"] == []
        assert bundle["flow"]["target"] == "flow"
        assert bundle["flow"]["audited_files"] > 0

    def test_perfcheck_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "perf_baseline.json"
        argv = ["perfcheck", "unet", "--preset", "tiny", "--grid", "32",
                "--no-validate"]
        assert main(argv + ["--update-baseline", str(baseline)]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(argv + ["--check-baseline", str(baseline)]) == 0
        assert "baseline OK" in capsys.readouterr().out

    def test_check_combined_json(self, capsys):
        combined = self._json(
            capsys,
            ["check", "--preset", "tiny", "--grid", "32", "--json",
             "--no-validate"],
        )
        assert combined["schema"] == "repro.check/v1"
        assert set(combined) >= {
            "schema", "preset", "grid", "lint", "analyze", "gradcheck",
            "perfcheck", "failures",
        }
        # Each section carries its own full bundle under its own schema.
        assert combined["analyze"]["schema"] == "repro.ir/v1"
        assert combined["gradcheck"]["schema"] == "repro.adjoint/v1"
        assert combined["perfcheck"]["schema"] == "repro.perf/v1"
        assert combined["failures"] == []


class TestMoreCommands:
    def test_route_prints_map(self, capsys):
        rc = main(["route", "--design", "Design_120", "--scale", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "levels:" in out

    def test_stats_multiple_designs(self, capsys):
        rc = main(
            ["stats", "--designs", "Design_116", "Design_120",
             "--scale", "256"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Design_116" in out and "Design_120" in out
