"""Cascade-shape and region constraints (Section II-A)."""

import numpy as np
import pytest

from repro.arch import CascadeShape, RegionConstraint


class TestCascadeShape:
    def test_requires_two_macros(self):
        with pytest.raises(ValueError, match="two"):
            CascadeShape((1,))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="distinct"):
            CascadeShape((1, 1))

    def test_satisfied_when_consecutive_same_column(self):
        shape = CascadeShape((0, 1, 2))
        x = np.array([5.0, 5.0, 5.0])
        y = np.array([3.0, 4.0, 5.0])
        assert shape.is_satisfied(x, y)

    def test_violated_when_column_differs(self):
        shape = CascadeShape((0, 1))
        assert not shape.is_satisfied(np.array([5.0, 6.0]), np.array([0.0, 1.0]))

    def test_violated_when_rows_not_consecutive(self):
        shape = CascadeShape((0, 1))
        assert not shape.is_satisfied(np.array([5.0, 5.0]), np.array([0.0, 2.0]))

    def test_violated_when_order_reversed(self):
        shape = CascadeShape((0, 1))
        assert not shape.is_satisfied(np.array([5.0, 5.0]), np.array([1.0, 0.0]))

    def test_len(self):
        assert len(CascadeShape((3, 4, 5, 6))) == 4


class TestRegionConstraint:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            RegionConstraint(1.0, 1.0, 1.0, 5.0)

    def test_contains_half_open(self):
        region = RegionConstraint(0.0, 0.0, 4.0, 4.0)
        inside = region.contains(np.array([0.0, 3.9, 4.0]), np.array([0.0, 3.9, 0.0]))
        np.testing.assert_array_equal(inside, [True, True, False])

    def test_violation_zero_inside(self):
        region = RegionConstraint(0.0, 0.0, 4.0, 4.0)
        v = region.violation(np.array([2.0]), np.array([2.0]))
        assert v[0] == 0.0

    def test_violation_euclidean_outside(self):
        region = RegionConstraint(0.0, 0.0, 4.0, 4.0)
        v = region.violation(np.array([7.0]), np.array([8.0]))
        assert v[0] == pytest.approx(5.0)  # 3-4-5 triangle from corner (4,4)

    def test_violation_axis_aligned(self):
        region = RegionConstraint(0.0, 0.0, 4.0, 4.0)
        v = region.violation(np.array([6.0]), np.array([2.0]))
        assert v[0] == pytest.approx(2.0)

    def test_center(self):
        region = RegionConstraint(0.0, 2.0, 4.0, 6.0)
        assert region.center == (2.0, 4.0)

    def test_instances_default_empty(self):
        region = RegionConstraint(0, 0, 1, 1)
        assert region.instances == frozenset()
