"""Device model: geometry, capacities, tile mapping."""

import numpy as np
import pytest

from repro.arch import (
    DEFAULT_COLUMN_PATTERN,
    FPGADevice,
    ResourceType,
    SiteType,
    xcvu3p_like,
)


class TestFPGADevice:
    def test_column_types_length_checked(self):
        with pytest.raises(ValueError, match="columns"):
            FPGADevice(4, 4, (SiteType.CLB,) * 3, tile_cols=4, tile_rows=4)

    def test_tile_grid_divisibility_checked(self):
        with pytest.raises(ValueError, match="multiple"):
            FPGADevice(6, 6, (SiteType.CLB,) * 6, tile_cols=4, tile_rows=4)

    def test_columns_of_type(self, tiny_device):
        dsp = tiny_device.columns_of_type(SiteType.DSP)
        np.testing.assert_array_equal(dsp, [2, 10])
        clb = tiny_device.columns_of_type(SiteType.CLB)
        assert len(clb) == 10

    def test_resource_capacity(self, tiny_device):
        # 10 CLB columns x 16 rows x 8 LUTs.
        assert tiny_device.resource_capacity(ResourceType.LUT) == 10 * 16 * 8
        assert tiny_device.resource_capacity(ResourceType.FF) == 10 * 16 * 16
        assert tiny_device.resource_capacity(ResourceType.DSP) == 2 * 16
        assert tiny_device.resource_capacity(ResourceType.URAM) == 2 * 16

    def test_site_capacity(self, tiny_device):
        assert tiny_device.site_capacity(SiteType.CLB, ResourceType.LUT) == 8.0
        assert tiny_device.site_capacity(SiteType.DSP, ResourceType.LUT) == 0.0
        assert tiny_device.site_capacity(SiteType.DSP, ResourceType.DSP) == 1.0

    def test_site_to_tile_mapping(self, tiny_device):
        tx, ty = tiny_device.site_to_tile(np.array([0, 15]), np.array([0, 15]))
        np.testing.assert_array_equal(tx, [0, 15])
        np.testing.assert_array_equal(ty, [0, 15])

    def test_site_to_tile_clips(self, tiny_device):
        tx, ty = tiny_device.site_to_tile(np.array([99]), np.array([-3]))
        assert tx[0] == tiny_device.tile_cols - 1
        assert ty[0] == 0

    def test_capacity_map_conserves_total(self, tiny_device):
        for bins in (4, 8, 16):
            cap = tiny_device.capacity_map(ResourceType.LUT, bins)
            assert cap.shape == (bins, bins)
            assert cap.sum() == pytest.approx(
                tiny_device.resource_capacity(ResourceType.LUT)
            )

    def test_capacity_map_nonuniform_bins(self, tiny_device):
        """Bins that straddle columns still conserve total capacity."""
        cap = tiny_device.capacity_map(ResourceType.DSP, 5)
        assert cap.sum() == pytest.approx(
            tiny_device.resource_capacity(ResourceType.DSP)
        )

    def test_summary_keys(self, tiny_device):
        summary = tiny_device.summary()
        assert {"LUT", "FF", "DSP", "BRAM", "URAM"} <= set(summary)


class TestXCVU3PLike:
    def test_full_scale_resource_mix(self):
        device = xcvu3p_like(1.0)
        summary = device.summary()
        # Same order of magnitude as the real part: ~394K LUTs, ~2.3K DSPs.
        assert 3e5 < summary["LUT"] < 8e5
        assert 1e3 < summary["DSP"] < 2e4
        assert summary["FF"] == 2 * summary["LUT"]

    def test_scale_shrinks_area_linearly(self):
        full = xcvu3p_like(1.0)
        quarter = xcvu3p_like(0.25)
        ratio = (quarter.num_cols * quarter.num_rows) / (
            full.num_cols * full.num_rows
        )
        assert ratio == pytest.approx(0.25, rel=0.2)

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="positive"):
            xcvu3p_like(0.0)

    def test_tile_grid_divides_site_grid(self):
        for scale in (1.0, 0.1, 1 / 64):
            device = xcvu3p_like(scale)
            assert device.num_cols % device.tile_cols == 0
            assert device.num_rows % device.tile_rows == 0

    def test_macro_columns_present_at_small_scale(self):
        device = xcvu3p_like(1 / 256)
        for st_ in (SiteType.DSP, SiteType.BRAM, SiteType.URAM):
            assert device.columns_of_type(st_).size > 0

    def test_pattern_repeats(self):
        device = xcvu3p_like(1.0)
        n = len(DEFAULT_COLUMN_PATTERN)
        assert device.column_types[:n] == DEFAULT_COLUMN_PATTERN

    def test_resource_capacity_cached(self):
        device = xcvu3p_like(1 / 64)
        a = device.resource_capacity(ResourceType.LUT)
        b = device.resource_capacity(ResourceType.LUT)
        assert a == b
        assert "LUT" not in device._capacity_cache  # keyed by enum, not name
        assert ResourceType.LUT in device._capacity_cache
