"""Module system: registration, traversal, modes, state dicts."""

import numpy as np
import pytest

from repro import nn


class Small(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8)
        self.bn = nn.BatchNorm2d(3)
        self.drop = nn.Dropout(0.5)
        self.scale = nn.Parameter(np.ones(1))

    def forward(self, x):
        return self.fc1(x) * self.scale


class TestRegistration:
    def test_parameters_found_recursively(self):
        m = Small()
        names = [n for n, _ in m.named_parameters()]
        assert "scale" in names
        assert "fc1.weight" in names
        assert "fc1.bias" in names
        assert "bn.gamma" in names

    def test_num_parameters(self):
        m = nn.Linear(4, 8)
        assert m.num_parameters() == 4 * 8 + 8

    def test_buffers_found(self):
        m = Small()
        buffer_names = [n for n, _ in m.named_buffers()]
        assert "bn.running_mean" in buffer_names
        assert "bn.running_var" in buffer_names

    def test_modules_iteration(self):
        m = Small()
        kinds = {type(x).__name__ for x in m.modules()}
        assert {"Small", "Linear", "BatchNorm2d", "Dropout"} <= kinds


class TestModes:
    def test_train_eval_propagates(self):
        m = Small()
        m.eval()
        assert not m.bn.training
        assert not m.drop.training
        m.train()
        assert m.bn.training

    def test_zero_grad(self):
        m = nn.Linear(3, 3)
        out = m(nn.Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None

    def test_parameter_trainable_under_no_grad(self):
        with nn.no_grad():
            p = nn.Parameter(np.ones(3))
        assert p.requires_grad


class TestStateDict:
    def test_roundtrip(self, rng):
        m1 = Small()
        m2 = Small()
        m1.scale.data[...] = 7.0
        m1.bn.running_mean[...] = 3.0
        m2.load_state_dict(m1.state_dict())
        assert m2.scale.data[0] == 7.0
        assert m2.bn.running_mean[0] == 3.0

    def test_missing_key_raises(self):
        m = Small()
        state = m.state_dict()
        del state["scale"]
        with pytest.raises(KeyError, match="missing"):
            m.load_state_dict(state)

    def test_unexpected_key_raises(self):
        m = Small()
        state = m.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            m.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        m = Small()
        state = m.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError, match="shape"):
            m.load_state_dict(state)

    def test_state_dict_is_a_copy(self):
        m = Small()
        state = m.state_dict()
        state["scale"][...] = 99.0
        assert m.scale.data[0] == 1.0


class TestContainers:
    def test_sequential_applies_in_order(self):
        seq = nn.Sequential(nn.Linear(2, 3), nn.ReLU(), nn.Linear(3, 1))
        out = seq(nn.Tensor(np.ones((4, 2))))
        assert out.shape == (4, 1)
        assert len(seq) == 3
        assert len(list(iter(seq))) == 3

    def test_sequential_registers_children(self):
        seq = nn.Sequential(nn.Linear(2, 3), nn.Linear(3, 4))
        assert len(seq.parameters()) == 4

    def test_module_list(self):
        ml = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(ml) == 3
        assert isinstance(ml[1], nn.Linear)
        ml.append(nn.Linear(2, 2))
        assert len(ml) == 4
        assert len(ml.parameters()) == 8

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.Module().forward()
