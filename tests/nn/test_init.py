"""Weight initialization schemes."""

import numpy as np
import pytest

from repro.nn import init


class TestFanComputation:
    def test_linear_shape(self):
        fan_in, fan_out = init._fan_in_out((8, 4))
        assert (fan_in, fan_out) == (4, 8)

    def test_conv_shape(self):
        fan_in, fan_out = init._fan_in_out((16, 3, 5, 5))
        assert fan_in == 3 * 25
        assert fan_out == 16 * 25

    def test_unsupported_shape(self):
        with pytest.raises(ValueError, match="unsupported"):
            init._fan_in_out((3,))


class TestDistributions:
    def test_kaiming_uniform_bound(self, rng):
        w = init.kaiming_uniform((64, 32), rng)
        gain = np.sqrt(2.0 / (1.0 + 5.0))
        bound = gain * np.sqrt(3.0 / 32)
        assert np.abs(w).max() <= bound + 1e-12
        assert abs(w.mean()) < bound / 5

    def test_kaiming_normal_std(self, rng):
        w = init.kaiming_normal((256, 128), rng)
        expected_std = np.sqrt(2.0 / 128)
        assert w.std() == pytest.approx(expected_std, rel=0.1)

    def test_xavier_uniform_bound(self, rng):
        w = init.xavier_uniform((30, 20), rng)
        bound = np.sqrt(6.0 / 50)
        assert np.abs(w).max() <= bound + 1e-12

    def test_deterministic_given_rng(self):
        a = init.kaiming_uniform((4, 4), np.random.default_rng(5))
        b = init.kaiming_uniform((4, 4), np.random.default_rng(5))
        np.testing.assert_allclose(a, b)

    def test_zeros_ones(self):
        np.testing.assert_allclose(init.zeros((2, 2)), 0.0)
        np.testing.assert_allclose(init.ones((3,)), 1.0)

    def test_variance_preservation_forward(self, rng):
        """Kaiming-normal keeps pre-activation variance ~constant
        through a ReLU layer (its defining property)."""
        w = init.kaiming_normal((512, 512), rng)
        x = rng.normal(size=(64, 512))
        pre = x @ w.T
        post = np.maximum(pre, 0.0)
        # E[relu(z)^2] = Var(z)/2 for zero-mean z; kaiming gives
        # Var(pre) = 2, so the second moment the next layer sees is ~1.
        assert (post**2).mean() == pytest.approx((x**2).mean(), rel=0.25)
