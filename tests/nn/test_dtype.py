"""Configurable default dtype (float32 training mode)."""

import numpy as np
import pytest

from repro import nn
from repro.models import build_model


@pytest.fixture
def float32_mode():
    nn.set_default_dtype(np.float32)
    yield
    nn.set_default_dtype(np.float64)


class TestDefaultDtype:
    def test_default_is_float64(self):
        assert nn.get_default_dtype() == np.float64
        assert nn.Tensor([1.0]).data.dtype == np.float64

    def test_float32_mode(self, float32_mode):
        assert nn.Tensor([1.0]).data.dtype == np.float32

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            nn.set_default_dtype(np.int32)

    def test_ops_stay_float32(self, float32_mode, rng):
        a = nn.Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        out = (a @ a).relu().sum()
        assert out.data.dtype == np.float32
        out.backward()
        assert a.grad.dtype == np.float32

    def test_model_trains_in_float32(self, float32_mode, rng):
        model = build_model("unet", "tiny")
        for _, param in model.named_parameters():
            assert param.data.dtype == np.float32
        loss_fn = nn.CrossEntropyLoss2d(8)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        x = rng.normal(size=(2, 6, 16, 16)).astype(np.float32)
        y = rng.integers(0, 8, size=(2, 16, 16))
        first = loss_fn(model(nn.Tensor(x)), y)
        first.backward()
        opt.step()
        second = loss_fn(model(nn.Tensor(x)), y)
        assert second.item() < first.item()

    def test_batchnorm_buffers_follow_dtype(self, float32_mode):
        bn = nn.BatchNorm2d(3)
        assert bn.running_mean.dtype == np.float32

    def test_float32_close_to_float64(self, rng):
        """Same forward result to float32 precision."""
        x64 = rng.normal(size=(1, 6, 16, 16))
        model64 = build_model("unet", "tiny", seed=7)
        out64 = model64(nn.Tensor(x64)).data
        nn.set_default_dtype(np.float32)
        try:
            model32 = build_model("unet", "tiny", seed=7)
            model32.load_state_dict(
                {k: v.astype(np.float32) for k, v in model64.state_dict().items()}
            )
            out32 = model32(nn.Tensor(x64.astype(np.float32))).data
        finally:
            nn.set_default_dtype(np.float64)
        np.testing.assert_allclose(out64, out32, atol=1e-3)
