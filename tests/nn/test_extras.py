"""GroupNorm, focal loss, label smoothing."""

import numpy as np
import pytest

from repro import nn
from repro.nn import FocalLoss2d, GroupNorm, Tensor, label_smoothing_targets

from ..conftest import numerical_gradient


class TestGroupNorm:
    def test_normalizes_per_group(self, rng):
        gn = GroupNorm(2, 4)
        x = Tensor(rng.normal(3.0, 2.0, size=(2, 4, 5, 5)))
        out = gn(x).data
        # Each (sample, group) block has ~zero mean, unit variance.
        grouped = out.reshape(2, 2, 2 * 5 * 5)
        np.testing.assert_allclose(grouped.mean(axis=2), 0.0, atol=1e-6)
        np.testing.assert_allclose(grouped.std(axis=2), 1.0, atol=1e-2)

    def test_batch_independence(self, rng):
        """A sample's output must not depend on its batch companions."""
        gn = GroupNorm(2, 4)
        a = rng.normal(size=(1, 4, 4, 4))
        b = rng.normal(size=(1, 4, 4, 4))
        alone = gn(Tensor(a)).data
        together = gn(Tensor(np.concatenate([a, b]))).data[:1]
        np.testing.assert_allclose(alone, together, atol=1e-10)

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            GroupNorm(3, 4)

    def test_channel_check(self, rng):
        gn = GroupNorm(2, 4)
        with pytest.raises(ValueError, match="channels"):
            gn(Tensor(rng.normal(size=(1, 6, 2, 2))))

    def test_gradcheck(self, rng):
        gn = GroupNorm(2, 4)
        gn.gamma.data[...] = rng.normal(size=4)
        gn.beta.data[...] = rng.normal(size=4)
        x = Tensor(rng.normal(size=(2, 4, 3, 3)), requires_grad=True)
        (gn(x) ** 2).sum().backward()

        def f():
            return float((gn(Tensor(x.data)).data ** 2).sum())

        np.testing.assert_allclose(
            numerical_gradient(f, x.data), x.grad, atol=1e-4
        )

    def test_trains(self, rng):
        gn = GroupNorm(2, 4)
        x = Tensor(rng.normal(size=(2, 4, 3, 3)))
        (gn(x) ** 2).sum().backward()
        assert gn.gamma.grad is not None
        assert gn.beta.grad is not None


class TestLabelSmoothing:
    def test_values(self):
        targets = label_smoothing_targets(np.array([[[1]]]), 4, smoothing=0.2)
        assert targets[0, 1, 0, 0] == pytest.approx(0.8 + 0.05)
        assert targets[0, 0, 0, 0] == pytest.approx(0.05)
        np.testing.assert_allclose(targets.sum(axis=1), 1.0)

    def test_zero_smoothing_is_one_hot(self):
        targets = label_smoothing_targets(np.array([[[2]]]), 4, smoothing=0.0)
        assert targets[0, 2, 0, 0] == 1.0

    def test_range_checked(self):
        with pytest.raises(ValueError, match="smoothing"):
            label_smoothing_targets(np.array([[[0]]]), 4, smoothing=1.0)


class TestFocalLoss:
    def test_reduces_to_ce_at_gamma_zero(self, rng):
        logits = rng.normal(size=(2, 4, 3, 3))
        targets = rng.integers(0, 4, size=(2, 3, 3))
        focal = FocalLoss2d(4, gamma=0.0)(Tensor(logits), targets)
        ce = nn.CrossEntropyLoss2d(4)(Tensor(logits), targets)
        assert focal.item() == pytest.approx(ce.item(), rel=1e-9)

    def test_downweights_easy_examples(self):
        """Confident-correct pixels contribute ~nothing at gamma=2."""
        logits = np.zeros((1, 2, 1, 2))
        logits[0, 1, 0, 0] = 8.0  # very confident, correct
        targets = np.array([[[1, 0]]])
        focal = FocalLoss2d(2, gamma=2.0)(Tensor(logits), targets)
        ce = nn.CrossEntropyLoss2d(2)(Tensor(logits), targets)
        assert focal.item() < ce.item()

    def test_gamma_validation(self):
        with pytest.raises(ValueError, match="gamma"):
            FocalLoss2d(4, gamma=-1.0)

    def test_class_count_validation(self, rng):
        loss = FocalLoss2d(8)
        with pytest.raises(ValueError, match="classes"):
            loss(Tensor(rng.normal(size=(1, 4, 2, 2))), np.zeros((1, 2, 2), int))

    def test_backward_runs(self, rng):
        logits = Tensor(rng.normal(size=(2, 4, 3, 3)), requires_grad=True)
        targets = rng.integers(0, 4, size=(2, 3, 3))
        FocalLoss2d(4)(logits, targets).backward()
        assert logits.grad is not None
        assert np.isfinite(logits.grad).all()
