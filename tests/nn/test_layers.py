"""Layer behaviour: shapes, parameter counts, semantic checks."""

import numpy as np

from repro import nn
from repro.nn import Tensor


class TestConv2dLayer:
    def test_output_shape(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        out = conv(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_no_bias(self):
        conv = nn.Conv2d(3, 8, 3, bias=False)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_deterministic_with_rng(self):
        a = nn.Conv2d(2, 2, 3, rng=np.random.default_rng(7))
        b = nn.Conv2d(2, 2, 3, rng=np.random.default_rng(7))
        np.testing.assert_allclose(a.weight.data, b.weight.data)


class TestLinearLayer:
    def test_affine(self):
        lin = nn.Linear(3, 2)
        lin.weight.data[...] = np.array([[1.0, 0, 0], [0, 1.0, 0]])
        lin.bias.data[...] = np.array([10.0, 20.0])
        out = lin(Tensor(np.array([[1.0, 2.0, 3.0]])))
        np.testing.assert_allclose(out.data, [[11.0, 22.0]])

    def test_batched_inputs(self, rng):
        lin = nn.Linear(4, 5)
        out = lin(Tensor(rng.normal(size=(2, 7, 4))))
        assert out.shape == (2, 7, 5)


class TestNormLayers:
    def test_batchnorm_running_stats_freeze_in_eval(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(3.0, 1.0, size=(4, 2, 4, 4)))
        bn(x)
        mean_after_train = bn.running_mean.copy()
        bn.eval()
        bn(x)
        np.testing.assert_allclose(bn.running_mean, mean_after_train)

    def test_layernorm_normalizes_rows(self, rng):
        ln = nn.LayerNorm(16)
        out = ln(Tensor(rng.normal(4.0, 2.0, size=(3, 16))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-2)


class TestSimpleLayers:
    def test_relu(self):
        out = nn.ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_sigmoid_range(self, rng):
        out = nn.Sigmoid()(Tensor(rng.normal(size=10) * 10))
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_softmax_layer(self, rng):
        out = nn.Softmax(axis=1)(Tensor(rng.normal(size=(2, 5))))
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0)

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        assert nn.Identity()(x) is x

    def test_pool_and_upsample_layers(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        assert nn.MaxPool2d(2)(x).shape == (1, 2, 2, 2)
        assert nn.AvgPool2d(2)(x).shape == (1, 2, 2, 2)
        assert nn.UpsampleNearest(2)(x).shape == (1, 2, 8, 8)


class TestConvBNReLU:
    def test_shape_and_nonnegativity(self, rng):
        block = nn.ConvBNReLU(3, 6)
        out = block(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 6, 8, 8)
        assert np.all(out.data >= 0)

    def test_trains_end_to_end(self, rng):
        block = nn.ConvBNReLU(2, 4)
        x = Tensor(rng.normal(size=(2, 2, 4, 4)), requires_grad=True)
        block(x).sum().backward()
        assert x.grad is not None
        assert block.conv.weight.grad is not None
