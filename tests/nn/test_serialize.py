"""Checkpoint serialization: suffix normalization and round-trips."""

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import load_module, load_state, save_module, save_state


@pytest.fixture
def state():
    rng = np.random.default_rng(0)
    return {"w": rng.normal(size=(3, 4)), "b": rng.normal(size=4)}


class TestSuffixNormalization:
    def test_round_trip_with_npz_suffix(self, tmp_path, state):
        path = save_state(state, tmp_path / "ckpt.npz")
        assert path == tmp_path / "ckpt.npz"
        restored = load_state(tmp_path / "ckpt.npz")
        assert np.array_equal(restored["w"], state["w"])

    def test_round_trip_without_suffix(self, tmp_path, state):
        """numpy appends .npz when the suffix is missing; load_state on
        the same spelling used to fail with FileNotFoundError."""
        path = save_state(state, tmp_path / "ckpt")
        assert path == tmp_path / "ckpt.npz"
        assert path.exists()
        restored = load_state(tmp_path / "ckpt")  # same suffix-less string
        assert np.array_equal(restored["b"], state["b"])

    def test_foreign_suffix_gets_npz_appended(self, tmp_path, state):
        path = save_state(state, tmp_path / "ckpt.model")
        assert path.name == "ckpt.model.npz"
        restored = load_state(tmp_path / "ckpt.model")
        assert set(restored) == {"w", "b"}

    def test_string_paths_work(self, tmp_path, state):
        save_state(state, str(tmp_path / "ckpt"))
        restored = load_state(str(tmp_path / "ckpt"))
        assert np.array_equal(restored["w"], state["w"])


class TestAtomicity:
    """save_state follows the tmp + fsync + rename idiom (REPRO611/612)."""

    def test_no_temp_file_left_behind(self, tmp_path, state):
        save_state(state, tmp_path / "ckpt.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]

    def test_overwrite_is_atomic_replace(self, tmp_path, state):
        # Saving over an existing checkpoint replaces it wholesale; a
        # reader never sees a mix of old and new members.
        save_state(state, tmp_path / "ckpt.npz")
        newer = {"w": state["w"] * 2.0}
        save_state(newer, tmp_path / "ckpt.npz")
        restored = load_state(tmp_path / "ckpt.npz")
        assert set(restored) == {"w"}
        assert np.array_equal(restored["w"], state["w"] * 2.0)

    def test_crash_before_rename_preserves_previous(self, tmp_path, state,
                                                    monkeypatch):
        # Kill the process (simulated) after the tmp write but before
        # os.replace: the previous complete checkpoint must survive and
        # no torn archive may sit at the final name.
        import os as _os

        save_state(state, tmp_path / "ckpt.npz")

        def boom(src, dst):
            raise RuntimeError("crash before rename")

        monkeypatch.setattr(_os, "replace", boom)
        with pytest.raises(RuntimeError):
            save_state({"w": np.zeros((2, 2))}, tmp_path / "ckpt.npz")
        monkeypatch.undo()
        restored = load_state(tmp_path / "ckpt.npz")
        assert np.array_equal(restored["w"], state["w"])


class TestModuleRoundTrip:
    def test_save_module_returns_actual_path(self, tmp_path):
        model = build_model("unet", "tiny")
        path = save_module(model, tmp_path / "model")
        assert path.suffix == ".npz"
        other = build_model("unet", "tiny")
        for p in other.parameters():
            p.data[...] = 0.0
        load_module(other, tmp_path / "model")
        for a, b in zip(model.parameters(), other.parameters()):
            assert np.array_equal(a.data, b.data)
