"""Losses, optimizers and serialization."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, one_hot_levels

from ..conftest import numerical_gradient


class TestOneHot:
    def test_basic(self):
        levels = np.array([[[0, 1], [2, 3]]])
        oh = one_hot_levels(levels, 4)
        assert oh.shape == (1, 4, 2, 2)
        assert oh[0, 0, 0, 0] == 1.0
        assert oh[0, 3, 1, 1] == 1.0
        np.testing.assert_allclose(oh.sum(axis=1), 1.0)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="levels outside"):
            one_hot_levels(np.array([[[4]]]), 4)
        with pytest.raises(ValueError, match="levels outside"):
            one_hot_levels(np.array([[[-1]]]), 4)


class TestCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        ce = nn.CrossEntropyLoss2d(8)
        logits = Tensor(np.zeros((1, 8, 2, 2)))
        targets = np.zeros((1, 2, 2), dtype=np.int64)
        assert ce(logits, targets).item() == pytest.approx(np.log(8))

    def test_perfect_prediction_near_zero(self):
        ce = nn.CrossEntropyLoss2d(4)
        logits = np.full((1, 4, 1, 1), -100.0)
        logits[0, 2, 0, 0] = 100.0
        loss = ce(Tensor(logits), np.array([[[2]]]))
        assert loss.item() == pytest.approx(0.0, abs=1e-8)

    def test_gradcheck(self, rng):
        ce = nn.CrossEntropyLoss2d(4)
        logits = Tensor(rng.normal(size=(2, 4, 3, 3)), requires_grad=True)
        targets = rng.integers(0, 4, size=(2, 3, 3))
        ce(logits, targets).backward()

        def f():
            return float(ce(Tensor(logits.data), targets).data)

        np.testing.assert_allclose(
            numerical_gradient(f, logits.data), logits.grad, atol=1e-7
        )

    def test_class_weights_emphasize_rare(self, rng):
        logits = rng.normal(size=(1, 2, 2, 2))
        targets = np.array([[[0, 0], [0, 1]]])
        plain = nn.CrossEntropyLoss2d(2)(Tensor(logits), targets).item()
        weighted = nn.CrossEntropyLoss2d(2, weight=np.array([1.0, 10.0]))(
            Tensor(logits), targets
        ).item()
        assert weighted != pytest.approx(plain)

    def test_wrong_class_count_raises(self, rng):
        ce = nn.CrossEntropyLoss2d(8)
        with pytest.raises(ValueError, match="classes"):
            ce(Tensor(rng.normal(size=(1, 4, 2, 2))), np.zeros((1, 2, 2), int))

    def test_bad_weight_shape_raises(self):
        with pytest.raises(ValueError, match="weight"):
            nn.CrossEntropyLoss2d(4, weight=np.ones(3))


class TestMSE:
    def test_value(self):
        mse = nn.MSELoss()
        loss = mse(Tensor(np.array([1.0, 2.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_gradient(self):
        mse = nn.MSELoss()
        pred = Tensor(np.array([3.0]), requires_grad=True)
        mse(pred, np.array([1.0])).backward()
        assert pred.grad[0] == pytest.approx(4.0)


class TestOptimizers:
    def _quadratic_steps(self, optimizer_cls, steps=200, **kwargs):
        target = np.array([3.0, -2.0])
        p = nn.Parameter(np.zeros(2))
        opt = optimizer_cls([p], **kwargs)
        for _ in range(steps):
            opt.zero_grad()
            loss = ((p - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        return p.data, target

    def test_sgd_converges(self):
        got, want = self._quadratic_steps(nn.SGD, lr=0.1)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_sgd_momentum_converges(self):
        got, want = self._quadratic_steps(nn.SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(got, want, atol=1e-4)

    def test_adam_converges(self):
        got, want = self._quadratic_steps(nn.Adam, steps=800, lr=0.05)
        np.testing.assert_allclose(got, want, atol=1e-3)

    def test_weight_decay_shrinks(self):
        p = nn.Parameter(np.array([10.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert abs(p.data[0]) < 10.0

    def test_negative_lr_rejected(self):
        with pytest.raises(ValueError, match="learning rate"):
            nn.SGD([nn.Parameter(np.zeros(1))], lr=-1.0)

    def test_skips_parameters_without_grad(self):
        p = nn.Parameter(np.array([1.0]))
        opt = nn.Adam([p], lr=0.1)
        opt.step()  # no grad accumulated; must not crash or move
        assert p.data[0] == 1.0

    def test_clip_grad_norm(self):
        p = nn.Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_grad_norm_no_clip_below_max(self):
        p = nn.Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        norm = nn.clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])


class TestSerialization:
    def test_module_roundtrip(self, tmp_path, rng):
        m1 = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        m2 = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        path = tmp_path / "ckpt.npz"
        nn.save_module(m1, path)
        nn.load_module(m2, path)
        x = rng.normal(size=(2, 3))
        np.testing.assert_allclose(
            m1(Tensor(x)).data, m2(Tensor(x)).data
        )

    def test_state_roundtrip(self, tmp_path):
        state = {"a": np.arange(5.0), "b.c": np.ones((2, 2))}
        path = tmp_path / "state.npz"
        nn.save_state(state, path)
        loaded = nn.load_state(path)
        assert set(loaded) == {"a", "b.c"}
        np.testing.assert_allclose(loaded["a"], state["a"])


class TestAdamExactSteps:
    def test_first_step_matches_hand_computation(self):
        """After one step with gradient g, Adam moves by ~lr*sign(g)."""
        p = nn.Parameter(np.array([1.0, -2.0]))
        opt = nn.Adam([p], lr=0.1)
        p.grad = np.array([0.5, -3.0])
        opt.step()
        # m_hat = g, v_hat = g^2 -> update = lr * g/(|g|+eps) = lr*sign(g)
        np.testing.assert_allclose(
            p.data, [1.0 - 0.1, -2.0 + 0.1], atol=1e-6
        )

    def test_bias_correction_applied(self):
        """Without bias correction the first step would be ~lr*beta-scaled."""
        p = nn.Parameter(np.zeros(1))
        opt = nn.Adam([p], lr=1.0, betas=(0.9, 0.999))
        p.grad = np.array([1.0])
        opt.step()
        # Corrected first step is ~lr regardless of betas.
        assert abs(p.data[0] + 1.0) < 1e-3

    def test_state_persists_across_steps(self):
        p = nn.Parameter(np.zeros(1))
        opt = nn.Adam([p], lr=0.1)
        for _ in range(3):
            p.grad = np.array([1.0])
            opt.step()
        assert opt._step == 3
        assert opt._m[0][0] != 0.0


class TestSGDExactSteps:
    def test_momentum_accumulates(self):
        p = nn.Parameter(np.zeros(1))
        opt = nn.SGD([p], lr=1.0, momentum=0.5)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.5, p=-2.5
        assert p.data[0] == pytest.approx(-2.5)
