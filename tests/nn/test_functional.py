"""Gradient checks and exact-value tests for structured NN ops."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import Tensor

from ..conftest import numerical_gradient


class TestIm2Col:
    def test_roundtrip_counts(self, rng):
        data = rng.normal(size=(1, 2, 5, 5))
        cols, oh, ow = F.im2col(data, kernel=3, stride=1)
        assert cols.shape == (1, 2 * 9, 9)
        assert (oh, ow) == (3, 3)
        # col2im of ones counts how often each input pixel is used.
        counts = F.col2im(np.ones_like(cols), data.shape, 3, 1)
        # The center pixel of a 5x5 map participates in all 9 windows.
        assert counts[0, 0, 2, 2] == 9

    def test_stride_two(self, rng):
        data = rng.normal(size=(2, 3, 6, 6))
        cols, oh, ow = F.im2col(data, kernel=2, stride=2)
        assert (oh, ow) == (3, 3)
        assert cols.shape == (2, 12, 9)


class TestConv2d:
    def test_identity_kernel(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        w = Tensor(np.zeros((1, 1, 3, 3)))
        w.data[0, 0, 1, 1] = 1.0
        out = F.conv2d(x, w, padding=1)
        np.testing.assert_allclose(out.data, x.data)

    def test_known_convolution(self):
        x = Tensor(np.ones((1, 1, 3, 3)))
        w = Tensor(np.ones((1, 1, 3, 3)))
        out = F.conv2d(x, w, padding=1)
        # Corner sees 4 ones, edge 6, center 9.
        np.testing.assert_allclose(
            out.data[0, 0], [[4, 6, 4], [6, 9, 6], [4, 6, 4]]
        )

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_gradcheck(self, stride, padding, rng):
        x = Tensor(rng.normal(size=(2, 3, 6, 6)), requires_grad=True)
        w = nn.Parameter(rng.normal(size=(4, 3, 3, 3)))
        b = nn.Parameter(rng.normal(size=4))
        out = F.conv2d(x, w, b, stride=stride, padding=padding)
        (out * out).sum().backward()

        def f():
            o = F.conv2d(Tensor(x.data), Tensor(w.data), Tensor(b.data),
                         stride=stride, padding=padding)
            return float((o.data**2).sum())

        for tensor in (x, w, b):
            num = numerical_gradient(f, tensor.data)
            np.testing.assert_allclose(num, tensor.grad, atol=1e-5)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        w = Tensor(rng.normal(size=(1, 3, 3, 3)))
        with pytest.raises(ValueError, match="channels"):
            F.conv2d(x, w)

    def test_rect_kernel_rejected(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)))
        w = Tensor(rng.normal(size=(1, 1, 2, 3)))
        with pytest.raises(ValueError, match="square"):
            F.conv2d(x, w)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 4, 4)), requires_grad=True)
        (F.max_pool2d(x, 2) ** 2).sum().backward()

        def f():
            return float((F.max_pool2d(Tensor(x.data), 2).data ** 2).sum())

        np.testing.assert_allclose(
            numerical_gradient(f, x.data), x.grad, atol=1e-5
        )

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_pool_indivisible_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        with pytest.raises(ValueError, match="divisible"):
            F.max_pool2d(x, 2)
        with pytest.raises(ValueError, match="divisible"):
            F.avg_pool2d(x, 2)

    def test_global_avg_pool(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)))
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)))


class TestUpsamplePad:
    def test_upsample_values(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]).reshape(1, 1, 2, 2))
        out = F.upsample_nearest(x, 2)
        np.testing.assert_allclose(
            out.data[0, 0],
            [[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]],
        )

    def test_upsample_gradient_sums(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        F.upsample_nearest(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, 4 * np.ones((1, 1, 2, 2)))

    def test_pad2d(self):
        x = Tensor(np.ones((1, 1, 2, 2)), requires_grad=True)
        out = F.pad2d(x, 1)
        assert out.shape == (1, 1, 4, 4)
        assert out.data.sum() == 4.0
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((1, 1, 2, 2)))

    def test_pad2d_zero_is_identity(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert F.pad2d(x, 0) is x


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(3, 5)))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(3))

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(2, 4))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 1000.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_softmax_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        (F.softmax(x) * np.arange(5.0)).sum().backward()

        def f():
            return float((F.softmax(Tensor(x.data)).data * np.arange(5.0)).sum())

        np.testing.assert_allclose(
            numerical_gradient(f, x.data), x.grad, atol=1e-6
        )

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = rng.normal(size=(2, 6))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data,
            np.log(F.softmax(Tensor(x)).data),
            atol=1e-12,
        )

    def test_log_softmax_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        (F.log_softmax(x) * np.arange(4.0)).sum().backward()

        def f():
            return float(
                (F.log_softmax(Tensor(x.data)).data * np.arange(4.0)).sum()
            )

        np.testing.assert_allclose(
            numerical_gradient(f, x.data), x.grad, atol=1e-6
        )


class TestNormalization:
    def test_batch_norm_normalizes(self, rng):
        x = Tensor(rng.normal(5.0, 3.0, size=(8, 4, 6, 6)), requires_grad=True)
        gamma = nn.Parameter(np.ones(4))
        beta = nn.Parameter(np.zeros(4))
        rm, rv = np.zeros(4), np.ones(4)
        out = F.batch_norm(x, gamma, beta, rm, rv, training=True)
        assert abs(out.data.mean()) < 1e-10
        assert abs(out.data.std() - 1.0) < 1e-2

    def test_batch_norm_updates_running_stats(self, rng):
        x = Tensor(rng.normal(2.0, 1.0, size=(4, 2, 4, 4)))
        gamma = nn.Parameter(np.ones(2))
        beta = nn.Parameter(np.zeros(2))
        rm, rv = np.zeros(2), np.ones(2)
        F.batch_norm(x, gamma, beta, rm, rv, training=True, momentum=0.5)
        assert np.all(rm > 0.5)  # moved toward the batch mean of ~2

    def test_batch_norm_eval_uses_running_stats(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 3, 3)))
        gamma = nn.Parameter(np.ones(2))
        beta = nn.Parameter(np.zeros(2))
        rm = np.array([1.0, -1.0])
        rv = np.array([4.0, 4.0])
        out = F.batch_norm(x, gamma, beta, rm, rv, training=False)
        expected = (x.data - rm.reshape(1, 2, 1, 1)) / np.sqrt(
            rv.reshape(1, 2, 1, 1) + 1e-5
        )
        np.testing.assert_allclose(out.data, expected)

    def test_batch_norm_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        gamma = nn.Parameter(rng.normal(size=2))
        beta = nn.Parameter(rng.normal(size=2))
        out = F.batch_norm(
            x, gamma, beta, np.zeros(2), np.ones(2), training=True
        )
        (out * out).sum().backward()

        def f():
            o = F.batch_norm(
                Tensor(x.data), Tensor(gamma.data), Tensor(beta.data),
                np.zeros(2), np.ones(2), training=True,
            )
            return float((o.data**2).sum())

        np.testing.assert_allclose(
            numerical_gradient(f, x.data), x.grad, atol=1e-5
        )

    def test_layer_norm_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 5)), requires_grad=True)
        gamma = nn.Parameter(rng.normal(size=5))
        beta = nn.Parameter(rng.normal(size=5))
        out = F.layer_norm(x, gamma, beta)
        (out * out).sum().backward()

        def f():
            o = F.layer_norm(Tensor(x.data), Tensor(gamma.data), Tensor(beta.data))
            return float((o.data**2).sum())

        for tensor in (x, gamma, beta):
            np.testing.assert_allclose(
                numerical_gradient(f, tensor.data), tensor.grad, atol=1e-5
            )


class TestDropout:
    def test_identity_in_eval(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_inverted_scaling_preserves_mean(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_gradient_masked(self, rng):
        x = Tensor(np.ones((10, 10)), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        out.sum().backward()
        # Gradient equals the mask: zero where dropped, 1/keep where kept.
        assert set(np.unique(x.grad)) <= {0.0, 2.0}


class TestConvTranspose2d:
    def test_output_size(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 4, 4)))
        w = Tensor(rng.normal(size=(3, 5, 2, 2)))
        out = F.conv_transpose2d(x, w, stride=2)
        assert out.shape == (1, 5, 8, 8)

    def test_inverse_geometry_of_conv(self, rng):
        """convT(conv(x)) has x's spatial size when k == stride."""
        x = Tensor(rng.normal(size=(1, 2, 8, 8)))
        w_down = Tensor(rng.normal(size=(4, 2, 2, 2)))
        down = F.conv2d(x, w_down, stride=2)
        w_up = Tensor(rng.normal(size=(4, 2, 2, 2)))
        up = F.conv_transpose2d(down, w_up, stride=2)
        assert up.shape == x.shape

    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 0)])
    def test_adjoint_identity(self, stride, padding, rng):
        """<conv2d(x; W), y> == <x, convT(y; W)> — same weight array,
        interpreted (out,in,k,k) by conv and (in,out,k,k) by convT.

        The input size is chosen so the geometry round-trips exactly
        ((H-1)·s + k - 2p == H); for other sizes the stride-s conv is
        lossy and the adjoint lives on the smaller grid.
        """
        w = rng.normal(size=(5, 3, 3, 3))  # conv: Co=5, Ci=3
        size = 5 if stride == 2 else 6
        x = Tensor(rng.normal(size=(1, 3, size, size)))
        conv_x = F.conv2d(x, Tensor(w), stride=stride, padding=padding)
        y = Tensor(rng.normal(size=conv_x.shape))
        lhs = float((conv_x.data * y.data).sum())
        convt_y = F.conv_transpose2d(
            y, Tensor(w), stride=stride, padding=padding
        )
        rhs = float((convt_y.data * x.data).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 0), (2, 1)])
    def test_gradcheck(self, stride, padding, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        w = nn.Parameter(rng.normal(size=(2, 3, 3, 3)))
        b = nn.Parameter(rng.normal(size=3))
        out = F.conv_transpose2d(x, w, b, stride=stride, padding=padding)
        (out * out).sum().backward()

        def f():
            o = F.conv_transpose2d(
                Tensor(x.data), Tensor(w.data), Tensor(b.data),
                stride=stride, padding=padding,
            )
            return float((o.data**2).sum())

        for tensor in (x, w, b):
            np.testing.assert_allclose(
                numerical_gradient(f, tensor.data), tensor.grad, atol=1e-5
            )

    def test_channel_mismatch(self, rng):
        with pytest.raises(ValueError, match="channels"):
            F.conv_transpose2d(
                Tensor(rng.normal(size=(1, 2, 4, 4))),
                Tensor(rng.normal(size=(3, 4, 2, 2))),
            )

    def test_layer_wrapper(self, rng):
        layer = nn.ConvTranspose2d(3, 6, 2, stride=2)
        out = layer(Tensor(rng.normal(size=(2, 3, 5, 5))))
        assert out.shape == (2, 6, 10, 10)
