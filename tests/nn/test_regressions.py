"""Regression tests for bugs surfaced by the repro.lint/repro.ir tooling."""

import numpy as np
import pytest

from repro.lint import detect_anomaly
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.loss import CrossEntropyLoss2d
from repro.nn.tensor import Tensor


class TestTransposeNegativeAxes:
    """``Tensor.transpose`` used ``np.argsort(axes)`` to invert the
    permutation, which is wrong for negative axes: argsort of
    ``(0, -1, -2)`` is ``(1, 2, 0)``, not the inverse ``(0, 2, 1)``.
    Rectangular tensors crashed in backward; square ones silently
    routed gradients to the wrong axes."""

    def test_rectangular_backward_no_crash(self):
        x = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True)
        y = x.transpose((0, -1, -2))
        assert y.shape == (2, 4, 3)
        y.sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_gradient_matches_positive_axes(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(2, 3, 3))
        seed = rng.normal(size=(2, 3, 3))

        def grad_for(axes):
            x = Tensor(data.copy(), requires_grad=True)
            x.transpose(axes).backward(seed)
            return x.grad

        np.testing.assert_allclose(grad_for((0, -1, -2)), grad_for((0, 2, 1)))

    def test_numeric_gradcheck(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(2, 3, 4))
        weight = rng.normal(size=(2, 4, 3))

        x = Tensor(data.copy(), requires_grad=True)
        (x.transpose((0, -1, -2)) * Tensor(weight)).sum().backward()

        eps = 1e-6
        numeric = np.zeros_like(data)
        for idx in np.ndindex(data.shape):
            bumped = data.copy()
            bumped[idx] += eps
            hi = (bumped.transpose((0, 2, 1)) * weight).sum()
            bumped[idx] -= 2 * eps
            lo = (bumped.transpose((0, 2, 1)) * weight).sum()
            numeric[idx] = (hi - lo) / (2 * eps)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-4)


class TestAttentionMapNoLeak:
    """``attention_map`` is a read-only diagnostic: it must not record
    tape (which no backward pass would ever free)."""

    @pytest.fixture
    def attn(self):
        return MultiHeadSelfAttention(8, num_heads=2, rng=np.random.default_rng(0))

    def test_no_graph_recorded(self, attn):
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5, 8)))
        with detect_anomaly() as det:
            weights = attn.attention_map(x)
        assert det.leaked_ops() == []
        assert weights.shape == (2, 5, 5)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-6)

    def test_matches_forward_attention(self, attn):
        # The diagnostic must report the same distribution the forward
        # pass actually uses (averaged over heads).
        x = Tensor(np.random.default_rng(2).normal(size=(1, 4, 8)))
        from repro.nn import functional as F

        q = attn._split_heads(attn.q_proj(x), 1, 4)
        k = attn._split_heads(attn.k_proj(x), 1, 4)
        scores = (q @ k.transpose((0, 1, 3, 2))) * (1.0 / np.sqrt(attn.head_dim))
        expected = F.softmax(scores, axis=-1).data.mean(axis=1)
        np.testing.assert_allclose(attn.attention_map(x), expected, atol=1e-6)


class TestSigmoidStability:
    """The naive ``1/(1+exp(-x))`` sigmoid overflows for x << 0
    (REPRO101, found by the repro.ir interval pass); the shipped
    branch-free form uses ``exp(-|x|)`` which is bounded in (0, 1]."""

    def test_extreme_inputs_no_overflow(self):
        x = Tensor(np.array([-1e4, -745.0, 0.0, 745.0, 1e4]))
        with np.errstate(over="raise", invalid="raise"):
            y = x.sigmoid()
        np.testing.assert_allclose(y.data, [0.0, 0.0, 0.5, 1.0, 1.0], atol=1e-12)

    def test_gradient_finite_everywhere(self):
        x = Tensor(np.array([-1e4, -50.0, 0.0, 50.0, 1e4]), requires_grad=True)
        with np.errstate(over="raise", invalid="raise"):
            x.sigmoid().sum().backward()
        assert np.all(np.isfinite(x.grad))
        # d/dx sigmoid(0) = 1/4 exactly.
        assert x.grad[2] == pytest.approx(0.25)

    def test_gradient_matches_finite_difference(self):
        data = np.array([-30.0, -2.0, 0.3, 4.0, 25.0])
        x = Tensor(data.copy(), requires_grad=True)
        x.sigmoid().sum().backward()
        eps = 1e-6

        def s(v):
            return 1.0 / (1.0 + np.exp(-v))

        numeric = (s(data + eps) - s(data - eps)) / (2 * eps)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-6)


class TestWeightedCrossEntropyZeroNorm:
    """A batch whose targets all fall on zero-weight classes used to
    divide by a zero normalizer and poison every gradient with NaN
    (REPRO102, found by the repro.ir interval pass); the normalizer is
    now clamped so the loss collapses to 0 instead."""

    @pytest.fixture
    def logits(self):
        rng = np.random.default_rng(0)
        return Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)

    def test_all_zero_weight_batch_finite(self, logits):
        loss_fn = CrossEntropyLoss2d(3, weight=np.array([0.0, 1.0, 1.0]))
        targets = np.zeros((2, 4, 4), dtype=np.int64)  # all class 0, weight 0
        with np.errstate(invalid="raise", divide="raise"):
            loss = loss_fn(logits, targets)
            loss.backward()
        assert loss.data == pytest.approx(0.0)
        assert np.all(np.isfinite(logits.grad))

    def test_normal_batch_unaffected(self, logits):
        weight = np.array([0.5, 1.0, 2.0])
        loss_fn = CrossEntropyLoss2d(3, weight=weight)
        rng = np.random.default_rng(1)
        targets = rng.integers(0, 3, size=(2, 4, 4))
        loss = loss_fn(logits, targets)
        loss.backward()
        assert np.isfinite(loss.data) and loss.data > 0
        # Finite-difference check of the clamped-normalizer path.
        eps = 1e-6
        idx = (0, 1, 2, 3)
        bumped = logits.data.copy()
        bumped[idx] += eps
        hi = CrossEntropyLoss2d(3, weight=weight)(Tensor(bumped), targets).data
        bumped[idx] -= 2 * eps
        lo = CrossEntropyLoss2d(3, weight=weight)(Tensor(bumped), targets).data
        assert logits.grad[idx] == pytest.approx((hi - lo) / (2 * eps), abs=1e-5)


class TestPowZeroExponent:
    """``x ** 0`` evaluated its gradient with the generic formula
    ``0 * x**-1``, which is ``0 * inf = nan`` wherever ``x == 0``
    (REPRO204, found by the repro.adjoint gradcheck harness); the
    exponent-zero case now short-circuits to an exact zero gradient."""

    def test_zero_input_gradient_is_zero_not_nan(self):
        x = Tensor(np.array([0.0, 1.0, -2.0]), requires_grad=True)
        with np.errstate(invalid="raise", divide="raise"):
            (x**0).sum().backward()
        np.testing.assert_array_equal(x.grad, np.zeros(3))

    def test_composite_loss_stays_finite(self):
        x = Tensor(np.zeros((2, 2)), requires_grad=True)
        ((x**0) * 3.0 + x).sum().backward()
        assert np.all(np.isfinite(x.grad))
        np.testing.assert_array_equal(x.grad, np.ones((2, 2)))

    def test_nonzero_exponents_unchanged(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        (x**3).sum().backward()
        eps = 1e-6
        numeric = (((x.data + eps) ** 3) - ((x.data - eps) ** 3)) / (2 * eps)
        np.testing.assert_allclose(x.grad, numeric, atol=1e-5)


class TestMaxGradDtypePromotion:
    """``Tensor.max`` divided the incoming gradient by an int64 tie
    count, silently promoting a float32 adjoint to float64 (REPRO201,
    found by the vjp dtype contract check); the count is now cast to
    the gradient dtype first."""

    def _float32(self, data):
        t = Tensor(np.asarray(data), requires_grad=True)
        t.data = t.data.astype(np.float32)
        return t

    def test_float32_gradient_stays_float32(self):
        x = self._float32([[1.0, 2.0], [2.0, 0.0]])
        out = x.max(axis=1)
        out.backward(np.ones(2, dtype=np.float32))
        assert x.grad.dtype == np.float32

    def test_tie_splitting_values_unchanged(self):
        x = Tensor(np.array([[1.0, 3.0, 3.0], [4.0, 2.0, 4.0]]),
                   requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(
            x.grad, [[0.0, 0.5, 0.5], [0.5, 0.0, 0.5]]
        )
