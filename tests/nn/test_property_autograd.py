"""Property-based tests (hypothesis) on the autograd core.

These verify, over randomized shapes and values, the invariants any
correct reverse-mode implementation must satisfy: gradients match finite
differences, linearity of the backward pass, and broadcasting adjoints.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor
from repro.nn import functional as F

_floats = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
)


def _finite_arrays(max_dims=2, max_side=4):
    return array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side).flatmap(
        lambda shape: arrays(np.float64, shape, elements=_floats)
    )


@settings(max_examples=30, deadline=None)
@given(_finite_arrays())
def test_sum_gradient_is_ones(data):
    t = Tensor(data.copy(), requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(data))


@settings(max_examples=30, deadline=None)
@given(_finite_arrays())
def test_square_gradient_is_two_x(data):
    t = Tensor(data.copy(), requires_grad=True)
    (t * t).sum().backward()
    np.testing.assert_allclose(t.grad, 2 * data, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(_finite_arrays(), st.floats(min_value=0.1, max_value=5.0))
def test_scalar_scaling_of_backward(data, scale):
    """d(c·f)/dx = c·df/dx."""
    a = Tensor(data.copy(), requires_grad=True)
    (a.tanh()).sum().backward()
    base = a.grad.copy()
    b = Tensor(data.copy(), requires_grad=True)
    (b.tanh() * scale).sum().backward()
    np.testing.assert_allclose(b.grad, scale * base, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, (3, 4), elements=_floats),
    arrays(np.float64, (4,), elements=_floats),
)
def test_broadcast_add_adjoint_sums(matrix, row):
    a = Tensor(matrix.copy(), requires_grad=True)
    b = Tensor(row.copy(), requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(b.grad, 3 * np.ones(4))
    np.testing.assert_allclose(a.grad, np.ones((3, 4)))


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, (2, 6), elements=_floats))
def test_softmax_is_distribution(data):
    out = F.softmax(Tensor(data), axis=-1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, (2, 6), elements=_floats))
def test_softmax_gradient_orthogonal_to_constant(data):
    """Softmax is shift-invariant, so grad·1 = 0 for every row."""
    t = Tensor(data.copy(), requires_grad=True)
    weights = np.arange(6.0)
    (F.softmax(t, axis=-1) * weights).sum().backward()
    np.testing.assert_allclose(t.grad.sum(axis=-1), 0.0, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(
    arrays(np.float64, (1, 2, 4, 4), elements=_floats),
    st.integers(min_value=1, max_value=2),
)
def test_conv_linearity_in_input(data, scale):
    """conv(c·x) = c·conv(x) (convolution is linear, bias-free)."""
    rng = np.random.default_rng(0)
    w = Tensor(rng.normal(size=(3, 2, 3, 3)))
    base = F.conv2d(Tensor(data), w, padding=1).data
    scaled = F.conv2d(Tensor(scale * data), w, padding=1).data
    np.testing.assert_allclose(scaled, scale * base, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(arrays(np.float64, (1, 3, 4, 4), elements=_floats))
def test_pool_upsample_energy_conservation(data):
    """avg_pool then upsample preserves the mean exactly."""
    t = Tensor(data)
    down = F.avg_pool2d(t, 2)
    up = F.upsample_nearest(down, 2)
    np.testing.assert_allclose(up.data.mean(), down.data.mean(), atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(arrays(np.float64, (2, 8), elements=_floats))
def test_logsoftmax_upper_bound(data):
    out = F.log_softmax(Tensor(data), axis=-1).data
    assert np.all(out <= 1e-12)
