"""Multi-head attention and vision transformer layers."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor

from ..conftest import numerical_gradient


class TestMultiHeadSelfAttention:
    def test_shape_preserved(self, rng):
        attn = nn.MultiHeadSelfAttention(16, num_heads=4, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 9, 16))))
        assert out.shape == (2, 9, 16)

    def test_head_divisibility_enforced(self):
        with pytest.raises(ValueError, match="divisible"):
            nn.MultiHeadSelfAttention(10, num_heads=3)

    def test_wrong_dim_raises(self, rng):
        attn = nn.MultiHeadSelfAttention(8, num_heads=2, rng=rng)
        with pytest.raises(ValueError, match="dim"):
            attn(Tensor(rng.normal(size=(1, 4, 12))))

    def test_attention_map_rows_sum_to_one(self, rng):
        attn = nn.MultiHeadSelfAttention(8, num_heads=2, rng=rng)
        amap = attn.attention_map(Tensor(rng.normal(size=(2, 6, 8))))
        assert amap.shape == (2, 6, 6)
        np.testing.assert_allclose(amap.sum(axis=-1), 1.0, atol=1e-10)

    def test_gradcheck(self, rng):
        attn = nn.MultiHeadSelfAttention(6, num_heads=2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 6)), requires_grad=True)
        (attn(x) ** 2).sum().backward()

        def f():
            return float((attn(Tensor(x.data)).data ** 2).sum())

        np.testing.assert_allclose(
            numerical_gradient(f, x.data), x.grad, atol=1e-5
        )

    def test_permutation_equivariance_without_positions(self, rng):
        """Self-attention (no pos-embed) commutes with token permutation."""
        attn = nn.MultiHeadSelfAttention(8, num_heads=2, rng=rng)
        x = rng.normal(size=(1, 5, 8))
        perm = np.array([3, 1, 4, 0, 2])
        out = attn(Tensor(x)).data
        out_perm = attn(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-10)


class TestTransformerLayer:
    def test_shape(self, rng):
        layer = nn.TransformerLayer(8, num_heads=2, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_residual_paths_carry_gradient(self, rng):
        layer = nn.TransformerLayer(8, num_heads=2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 8)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert not np.allclose(x.grad, 0)


class TestTransformerStack:
    def test_spatial_roundtrip_shape(self, rng):
        stack = nn.TransformerStack(
            in_channels=8, embed_dim=16, num_layers=3, tokens=16,
            num_heads=2, rng=rng,
        )
        out = stack(Tensor(rng.normal(size=(2, 8, 4, 4))))
        assert out.shape == (2, 8, 4, 4)
        assert stack.num_layers == 3

    def test_token_count_checked(self, rng):
        stack = nn.TransformerStack(8, 8, 1, tokens=16, num_heads=2, rng=rng)
        with pytest.raises(ValueError, match="tokens"):
            stack(Tensor(rng.normal(size=(1, 8, 2, 2))))

    def test_channel_count_checked(self, rng):
        stack = nn.TransformerStack(8, 8, 1, tokens=4, num_heads=2, rng=rng)
        with pytest.raises(ValueError, match="channels"):
            stack(Tensor(rng.normal(size=(1, 4, 2, 2))))

    def test_position_embedding_breaks_permutation_symmetry(self, rng):
        stack = nn.TransformerStack(4, 8, 1, tokens=4, num_heads=2, rng=rng)
        x = rng.normal(size=(1, 4, 2, 2))
        out = stack(Tensor(x)).data
        rolled = stack(Tensor(np.roll(x, 1, axis=3))).data
        assert not np.allclose(out, np.roll(rolled, -1, axis=3), atol=1e-6)

    def test_all_parameters_receive_gradients(self, rng):
        stack = nn.TransformerStack(4, 8, 2, tokens=4, num_heads=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 4, 2, 2)))
        (stack(x) ** 2).sum().backward()
        for name, param in stack.named_parameters():
            assert param.grad is not None, f"{name} has no gradient"
