"""Autograd core: op correctness, broadcasting, graph mechanics."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, as_tensor, concatenate, stack
from repro.nn.tensor import _unbroadcast

from ..conftest import numerical_gradient


class TestBasicOps:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_sub_and_neg(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).backward()
        assert a.grad[0] == 1.0
        assert b.grad[0] == -1.0
        c = Tensor([3.0], requires_grad=True)
        (-c).backward()
        assert c.grad[0] == -1.0

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        assert a.grad[0] == pytest.approx(0.5)
        assert b.grad[0] == pytest.approx(-1.5)

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a**2).backward()
        assert a.grad[0] == pytest.approx(6.0)

    def test_pow_rejects_tensor_exponent(self):
        a = Tensor([3.0], requires_grad=True)
        with pytest.raises(TypeError):
            a ** Tensor([2.0])

    def test_rsub_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        (10.0 - a).backward()
        assert a.grad[0] == -1.0
        b = Tensor([2.0], requires_grad=True)
        (10.0 / b).backward()
        assert b.grad[0] == pytest.approx(-2.5)

    def test_matmul_2d(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        b = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 4)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 4)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((2, 4)))

    def test_matmul_batched(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        (out * out).sum().backward()

        def f():
            return float(((a.data @ b.data) ** 2).sum())

        np.testing.assert_allclose(
            numerical_gradient(f, a.data), a.grad, atol=1e-5
        )


class TestBroadcasting:
    def test_add_broadcast_scalar(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        (a + 5.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mul_broadcast_row(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])
        np.testing.assert_allclose(a.grad, np.tile([1.0, 2.0, 3.0], (2, 1)))

    def test_unbroadcast_keepdim_axis(self):
        grad = np.ones((4, 3))
        out = _unbroadcast(grad, (4, 1))
        assert out.shape == (4, 1)
        np.testing.assert_allclose(out, 3 * np.ones((4, 1)))

    def test_unbroadcast_leading_axis(self):
        grad = np.ones((5, 4, 3))
        out = _unbroadcast(grad, (3,))
        assert out.shape == (3,)
        np.testing.assert_allclose(out, 20 * np.ones(3))


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, 0.25 * np.ones(4))

    def test_mean_multi_axis(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = a.mean(axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 1.0 / 12))

    def test_max_gradient_ties_split(self):
        a = Tensor(np.array([1.0, 3.0, 3.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 0.5, 0.5])

    def test_max_axis(self):
        a = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        out = a.max(axis=1)
        np.testing.assert_allclose(out.data, [5.0, 7.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [1, 0]])

    def test_reshape_transpose_roundtrip(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = a.reshape(6, 4).transpose(1, 0)
        assert out.shape == (4, 6)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3, 4)))

    def test_swapaxes(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        assert a.swapaxes(0, 2).shape == (4, 3, 2)

    def test_getitem_gradient_accumulates(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        out = a[np.array([0, 0, 2])]
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0, 0.0, 0.0])


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "log", "tanh", "sigmoid", "relu", "gelu"])
    def test_elementwise_numerical(self, op, rng):
        raw = rng.uniform(0.5, 2.0, size=(3, 4))  # positive domain for log
        a = Tensor(raw.copy(), requires_grad=True)
        out = getattr(a, op)()
        (out * out).sum().backward()

        def f():
            t = Tensor(a.data)
            return float((getattr(t, op)().data ** 2).sum())

        np.testing.assert_allclose(
            numerical_gradient(f, a.data), a.grad, atol=1e-5
        )

    def test_sqrt(self):
        a = Tensor([4.0], requires_grad=True)
        a.sqrt().backward()
        assert a.grad[0] == pytest.approx(0.25)


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (a * 2).backward()

    def test_backward_explicit_grad_shape_check(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError, match="shape"):
            (a * 2).backward(np.ones(4))

    def test_diamond_graph_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3
        c = a * 4
        (b + c).backward()
        assert a.grad[0] == pytest.approx(7.0)

    def test_reused_tensor_many_paths(self):
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(5):
            out = out + a
        out.backward()
        assert a.grad[0] == pytest.approx(6.0)

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with nn.no_grad():
            out = a * 2
        assert not out.requires_grad
        assert out._parents == ()

    def test_no_grad_restores_state(self):
        assert nn.is_grad_enabled()
        with nn.no_grad():
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        d = a.detach()
        assert not d.requires_grad
        (d * 2).sum()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(5000):
            out = out + 0.0
        out.backward()
        assert a.grad[0] == pytest.approx(1.0)


class TestConcatenateStack:
    def test_concatenate_gradients(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * np.arange(10.0).reshape(5, 2)).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [2, 3]])
        np.testing.assert_allclose(b.grad, [[4, 5], [6, 7], [8, 9]])

    def test_stack_gradients(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 2)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)
