"""CLI contract for ``python -m repro.lint``: exit codes + diagnostics.

The acceptance bar: exit 0 on the shipped repo, non-zero with file:line
diagnostics on a fixture for each hazard class.
"""

from pathlib import Path

import pytest

from repro.lint.cli import main

_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

# One deliberately broken fixture per hazard class the issue names.
_HAZARDS = {
    "missing_unbroadcast.py": (
        "REPRO001",
        """
def __mul__(self, other):
    other = as_tensor(other)

    def backward(out):
        self._accumulate(out.grad * other.data)

    return Tensor._make(self.data * other.data, (self, other), backward)
""",
    ),
    "tape_detach.py": (
        "REPRO002",
        """
class Head(Module):
    def forward(self, x):
        return np.tanh(x)
""",
    ),
    "unguarded_wiring.py": (
        "REPRO003",
        """
def stitch(a, b):
    out = Tensor(a.data + b.data)
    out._parents = (a, b)
    return out
""",
    ),
    "inplace_mutation.py": (
        "REPRO005",
        """
class Clamp(Module):
    def forward(self, x):
        x.data[x.data < 0] = 0.0
        return x
""",
    ),
    "shape_mismatch.py": (
        "REPRO006",
        """
net = Sequential(Conv2d(6, 16), ReLU(), Conv2d(32, 8))
""",
    ),
}


class TestExitCodes:
    def test_repo_is_clean(self, capsys):
        assert main([str(_SRC)]) == 0
        assert "0 findings" in capsys.readouterr().out

    @pytest.mark.parametrize("filename", sorted(_HAZARDS))
    def test_each_hazard_class_fails(self, filename, tmp_path, capsys):
        code, source = _HAZARDS[filename]
        path = tmp_path / filename
        path.write_text(source)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        # file:line:col: CODE message
        assert f"{path}:" in out
        assert code in out

    def test_no_arguments_is_usage_error(self, capsys):
        assert main([]) == 2

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["--select", "REPRO999", str(_SRC)]) == 2

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2
        assert "error" in capsys.readouterr().err

    def test_non_integer_grids_is_usage_error(self, capsys):
        assert main(["--models", "--grids", "banana"]) == 2
        assert main(["--models", "--grids", ""]) == 2
        assert "--grids expects" in capsys.readouterr().err

    def test_select_filters(self, tmp_path):
        path = tmp_path / "two_findings.py"
        path.write_text("import os\n\ndef f(x, cache=[]):\n    return cache\n")
        assert main([str(path), "--select", "REPRO004", "--quiet"]) == 1
        assert main([str(path), "--select", "REPRO001", "--quiet"]) == 0


class TestModelGate:
    def test_models_flag_validates(self, capsys):
        assert main(["--models", "--grids", "32,64", "--preset", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "ours @   32: ok" in out
        assert "unet @   64: ok" in out

    def test_bad_grid_fails(self, capsys):
        # 40 breaks 'ours' (needs a multiple of 16): non-zero exit and a
        # shape diagnostic on stderr.
        assert main(["--models", "--grids", "40", "--preset", "tiny"]) == 1
        assert "shape error" in capsys.readouterr().err

    def test_constructor_rejection_reported_as_shape_error(self, monkeypatch, capsys):
        # The 'ours' constructor itself rejects grid 24 (needs a
        # multiple of 16) with a plain ValueError; the gate must report
        # it as a shape failure, not crash with a traceback.
        import repro.models.registry as registry

        monkeypatch.setattr(registry, "MODEL_NAMES", ("ours",))
        assert main(["--models", "--grids", "24", "--preset", "tiny"]) == 1
        assert "ours @ 24" in capsys.readouterr().err


class TestReproCliSubcommand:
    def test_repro_lint_subcommand_forwards(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["lint", str(_SRC), "--quiet"]) == 0
