"""Runtime sanitizer tests: anomaly mode, mutation, leaks, unused grads.

The promise under test is precision: each detector must name the
*offending op* (not just "something went wrong"), and the whole
machinery must cost nothing when it is switched off.
"""

import numpy as np
import pytest

from repro import nn
from repro.lint import (
    AnomalyError,
    GraphLeakError,
    InplaceMutationError,
    NonFiniteGradientError,
    detect_anomaly,
    unused_parameter_report,
)
from repro.models import build_model
from repro.nn.tensor import Tensor, _get_tape_hook
from repro.train import CongestionDataset, Sample, TrainConfig, Trainer


class TestNaNOrigin:
    def test_first_offending_closure_named(self):
        # d(log x)/dx = 1/x blows up at x=0; the report must blame
        # Tensor.log — the first closure to produce the non-finite
        # gradient — not the downstream sum that merely propagated it.
        with np.errstate(divide="ignore"):
            with pytest.raises(NonFiniteGradientError, match=r"Tensor\.log"):
                with detect_anomaly():
                    x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
                    x.log().sum().backward()

    def test_call_site_in_message(self):
        with np.errstate(divide="ignore"):
            with pytest.raises(NonFiniteGradientError, match="test_sanitize.py"):
                with detect_anomaly():
                    x = Tensor(np.array([0.0]), requires_grad=True)
                    x.log().sum().backward()

    def test_introducing_closure_blamed_not_propagators(self):
        # x*x has d/dx = 2x, so a NaN input surfaces as a NaN gradient
        # the moment the mul closure runs; the blame must land there and
        # never on the sum closure that merely passed finite ones along.
        with pytest.raises(NonFiniteGradientError) as excinfo:
            with detect_anomaly():
                x = Tensor(np.array([np.nan, 1.0]), requires_grad=True)
                (x * x).sum().backward()
        assert "Tensor.__mul__" in str(excinfo.value)
        assert "Tensor.sum" not in str(excinfo.value)

    def test_nan_data_with_constant_grad_passes(self):
        # d(2x)/dx = 2 regardless of x: NaN *values* with finite
        # *gradients* is not a gradient anomaly.
        with detect_anomaly():
            x = Tensor(np.array([np.nan, 1.0]), requires_grad=True)
            (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])

    def test_clean_backward_passes(self):
        with detect_anomaly():
            x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
            (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 4.0])

    def test_forward_check_optional(self):
        with np.errstate(invalid="ignore"):
            with pytest.raises(NonFiniteGradientError, match="forward"):
                with detect_anomaly(check_forward=True):
                    x = Tensor(np.array([-1.0]), requires_grad=True)
                    x.sqrt()


class TestInplaceMutation:
    def test_mutation_between_forward_and_backward(self):
        with pytest.raises(InplaceMutationError, match=r"Tensor\.__mul__"):
            with detect_anomaly():
                x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
                y = x * 3.0
                x.data[0] = 99.0
                y.sum().backward()

    def test_untouched_operands_pass(self):
        with detect_anomaly():
            x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
            y = x * 3.0
            y.sum().backward()

    def test_large_tensor_sampled_fingerprint(self):
        # > 2**20 elements takes the strided-sample fingerprint path;
        # a mutation inside the sampled stride must still be caught.
        big = np.ones((1 << 21,), dtype=np.float32)
        with pytest.raises(InplaceMutationError):
            with detect_anomaly():
                x = Tensor(big, requires_grad=True)
                y = x * 2.0
                x.data[:] = 7.0
                y.sum().backward()


class TestGraphLeaks:
    def test_unbackwarded_graph_reported(self):
        with detect_anomaly() as det:
            x = Tensor(np.array([1.0]), requires_grad=True)
            _ = x * 2.0  # tape recorded, never freed by backward()
        assert len(det.leaked_ops()) == 1
        assert "Tensor.__mul__" in det.leaked_ops()[0]

    def test_backwarded_graph_clean(self):
        with detect_anomaly() as det:
            x = Tensor(np.array([1.0]), requires_grad=True)
            (x * 2.0).sum().backward()
        assert det.leaked_ops() == []

    def test_raise_on_leak(self):
        with pytest.raises(GraphLeakError):
            with detect_anomaly(raise_on_leak=True):
                x = Tensor(np.array([1.0]), requires_grad=True)
                _ = x * 2.0

    def test_no_grad_records_nothing(self):
        # The attention_map regression class: diagnostics run under
        # no_grad must not leak graph.
        with detect_anomaly() as det:
            with nn.no_grad():
                x = Tensor(np.array([1.0]), requires_grad=True)
                _ = x * 2.0
        assert det.leaked_ops() == []


class TestZeroCostOff:
    def test_hook_cleared_after_context(self):
        assert _get_tape_hook() is None
        with detect_anomaly():
            assert _get_tape_hook() is not None
        assert _get_tape_hook() is None

    def test_hook_cleared_on_error(self):
        with pytest.raises(InplaceMutationError):
            with detect_anomaly():
                x = Tensor(np.array([1.0]), requires_grad=True)
                y = x * 3.0
                x.data[0] = 0.0
                y.sum().backward()
        assert _get_tape_hook() is None

    def test_nesting_rejected(self):
        with detect_anomaly():
            with pytest.raises(AnomalyError):
                with detect_anomaly():
                    pass


class TestUnusedParameters:
    def test_reports_parameters_without_grad(self):
        model = build_model("unet", "tiny")
        x = Tensor(np.zeros((1, 6, 16, 16), dtype=np.float32))
        model.train()
        model(x).sum().backward()
        assert unused_parameter_report(model) == []

    def test_names_the_orphan(self):
        model = build_model("unet", "tiny")
        model.train()
        x = Tensor(np.zeros((1, 6, 16, 16), dtype=np.float32))
        model(x).sum().backward()
        # An extra parameter that forward never touches must be named.
        model.orphan = nn.Linear(3, 3)
        report = unused_parameter_report(model)
        assert any("orphan" in name for name in report)


class TestTrainerIntegration:
    def _dataset(self, rng, grid=16):
        dataset = CongestionDataset()

        def make():
            features = rng.uniform(0, 1, size=(6, grid, grid))
            labels = np.clip((features[3] * 8).astype(np.int64), 0, 7)
            return Sample(features, labels, "Design_T")

        dataset.train = [make() for _ in range(4)]
        dataset.eval = [make() for _ in range(1)]
        return dataset

    def test_sanitized_training_runs_clean(self):
        rng = np.random.default_rng(0)
        model = build_model("unet", "tiny")
        result = Trainer(TrainConfig(epochs=1, batch_size=2, sanitize=True)).train(
            model, self._dataset(rng)
        )
        assert result.unused_parameters == []
        assert result.leaked_ops == []
        assert _get_tape_hook() is None

    def test_sanitize_off_by_default(self):
        assert TrainConfig().sanitize is False
