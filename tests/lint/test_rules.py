"""Unit tests for the REPRO00x AST lint rules.

Each rule gets a positive fixture (must fire, with the right code and
line) and a negative fixture (idiomatic code must stay clean), plus a
whole-repo check: the shipped ``src/repro`` package must lint clean.
"""

from pathlib import Path
from textwrap import dedent

from repro.lint import RULES, lint_paths, lint_source

_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _codes(source: str, rules=None) -> list[str]:
    return [d.code for d in lint_source(dedent(source), "<test>", rules)]


class TestRepoClean:
    def test_src_repro_lints_clean(self):
        diagnostics = lint_paths([str(_SRC)])
        assert diagnostics == [], "\n".join(str(d) for d in diagnostics)

    def test_rule_table_complete(self):
        assert set(RULES) == {
            "REPRO001", "REPRO002", "REPRO003", "REPRO004",
            "REPRO005", "REPRO006", "REPRO007", "REPRO008",
        }

    def test_rule_table_sourced_from_central_registry(self):
        from repro.diagnostics import codes_for

        assert RULES == codes_for("lint")


class TestUnbroadcast:
    """REPRO001: gradient contributions must pass through _unbroadcast."""

    BAD = """
        def __add__(self, other):
            other = as_tensor(other)

            def backward(out):
                self._accumulate(out.grad * 1.0)
                other._accumulate(out.grad * 1.0)

            return Tensor._make(self.data + other.data, (self, other), backward)
    """

    GOOD = """
        def __add__(self, other):
            other = as_tensor(other)

            def backward(out):
                self._accumulate(_unbroadcast(out.grad, self.shape))
                other._accumulate(_unbroadcast(out.grad * 1.0, other.shape))

            return Tensor._make(self.data + other.data, (self, other), backward)
    """

    def test_missing_unbroadcast_fires(self):
        codes = _codes(self.BAD)
        assert codes.count("REPRO001") == 2

    def test_wrapped_accumulate_clean(self):
        assert _codes(self.GOOD) == []

    def test_non_broadcasting_op_clean(self):
        # Ops that never call as_tensor (unary) take no broadcast risk.
        source = """
            def __neg__(self):
                def backward(out):
                    self._accumulate(-out.grad)

                return Tensor._make(-self.data, (self,), backward)
        """
        assert _codes(source) == []

    def test_diagnostic_location(self):
        diags = lint_source(dedent(self.BAD), "ops.py")
        assert diags[0].path == "ops.py"
        assert diags[0].line == 6  # first _accumulate line in BAD
        assert "_unbroadcast" in diags[0].message

    def test_noqa_suppresses(self):
        source = self.BAD.replace(
            "self._accumulate(out.grad * 1.0)",
            "self._accumulate(out.grad * 1.0)  # noqa: REPRO001",
        )
        assert _codes(source).count("REPRO001") == 1


class TestForwardDetach:
    """REPRO002: forward() must not silently leave the tape."""

    def test_np_call_on_input_fires(self):
        source = """
            class M(Module):
                def forward(self, x):
                    return np.maximum(x, 0.0)
        """
        assert "REPRO002" in _codes(source)

    def test_numpy_method_fires(self):
        source = """
            class M(Module):
                def forward(self, x):
                    data = x.numpy()
                    return self.head(data)
        """
        assert "REPRO002" in _codes(source)

    def test_tensor_ops_clean(self):
        source = """
            class M(Module):
                def forward(self, x):
                    scale = 1.0 / np.sqrt(self.dim)
                    return (x @ x.transpose((0, 2, 1))) * scale
        """
        assert _codes(source) == []


class TestGradGuard:
    """REPRO003: manual graph wiring must consult is_grad_enabled()."""

    def test_unguarded_wiring_fires(self):
        source = """
            def fuse(a, b):
                out = Tensor(a.data + b.data)
                out._parents = (a, b)
                out._backward = lambda: None
                return out
        """
        assert _codes(source).count("REPRO003") == 2

    def test_guarded_wiring_clean(self):
        source = """
            def fuse(a, b):
                out = Tensor(a.data + b.data)
                if is_grad_enabled():
                    out._parents = (a, b)
                    out._backward = lambda: None
                return out
        """
        assert _codes(source) == []

    def test_tape_teardown_clean(self):
        # Clearing the tape (None / empty tuple) is always legal.
        source = """
            def backward(self):
                for node in self._topological_order():
                    node._backward = None
                    node._parents = ()
        """
        assert _codes(source) == []


class TestMutableDefaults:
    def test_mutable_default_fires(self):
        assert "REPRO004" in _codes("def f(x, cache=[]):\n    return cache\n")

    def test_none_default_clean(self):
        assert _codes("def f(x, cache=None):\n    return cache\n") == []


class TestInplaceData:
    """REPRO005: no in-place .data mutation inside forward/backward."""

    def test_augassign_in_forward_fires(self):
        source = """
            class M(Module):
                def forward(self, x):
                    x.data += 1.0
                    return x
        """
        assert "REPRO005" in _codes(source)

    def test_subscript_store_in_backward_fires(self):
        source = """
            def relu(x):
                def backward(out):
                    x.data[x.data < 0] = 0.0
                    x._accumulate(out.grad)

                return Tensor._make(np.maximum(x.data, 0), (x,), backward)
        """
        assert "REPRO005" in _codes(source)

    def test_optimizer_step_clean(self):
        # Mutating .data outside forward/backward (optimizers) is the
        # supported way to update parameters.
        source = """
            class SGD:
                def step(self):
                    for p in self.params:
                        p.data -= self.lr * p.grad
        """
        assert _codes(source) == []


class TestSequentialChannels:
    """REPRO006: literal channel chains in Sequential() must connect."""

    def test_mismatch_fires(self):
        source = "layers = Sequential(Conv2d(3, 16), ReLU(), Conv2d(8, 32))\n"
        codes = _codes(source)
        assert codes == ["REPRO006"]

    def test_matching_chain_clean(self):
        source = "layers = Sequential(Conv2d(3, 16), ReLU(), Conv2d(16, 32))\n"
        assert _codes(source) == []

    def test_symbolic_channels_ignored(self):
        # Non-literal channel expressions cannot be checked statically.
        source = "layers = Sequential(Conv2d(c, c * 2), Conv2d(c, 4))\n"
        assert _codes(source) == []


class TestUnusedImports:
    def test_unused_import_fires(self):
        assert _codes("import os\n\nx = 1\n") == ["REPRO007"]

    def test_used_import_clean(self):
        assert _codes("import os\n\nx = os.sep\n") == []

    def test_dunder_all_counts_as_use(self):
        source = "from .tensor import Tensor\n\n__all__ = ['Tensor']\n"
        assert _codes(source) == []


class TestBackwardClosureHazards:
    """REPRO008: stale loop-variable capture / out.grad aliasing."""

    STALE = """
        def stack(tensors):
            for i, tensor in enumerate(tensors):
                pass

            def backward(out):
                tensor._accumulate(out.grad[i])
            return backward
    """

    def test_loop_capture_fires(self):
        codes = _codes(self.STALE)
        # Both `tensor` and `i` are captured loop variables.
        assert codes == ["REPRO008", "REPRO008"]

    def test_loop_inside_backward_clean(self):
        # concatenate-style backward: the loop lives *inside* the
        # closure, so every run re-binds its own iteration variables.
        source = """
            def concatenate(tensors, offsets):
                def backward(out):
                    for tensor, start in zip(tensors, offsets):
                        tensor._accumulate(out.grad[start:])
                return backward
        """
        assert _codes(source) == []

    def test_default_arg_binding_clean(self):
        # The canonical fix: freeze the loop value via a default arg.
        source = """
            def stack(tensors):
                for i, tensor in enumerate(tensors):
                    def backward(out, i=i, tensor=tensor):
                        tensor._accumulate(out.grad[i])
        """
        assert _codes(source) == []

    def test_out_grad_augassign_fires(self):
        source = """
            def relu(x):
                def backward(out):
                    out.grad *= 0.5
                    x._accumulate(out.grad)
        """
        assert _codes(source) == ["REPRO008"]

    def test_out_grad_subscript_assign_fires(self):
        source = """
            def clamp(x):
                def backward(out):
                    out.grad[mask] = 0.0
                    x._accumulate(out.grad)
        """
        assert _codes(source) == ["REPRO008"]

    def test_out_grad_ufunc_at_fires(self):
        source = """
            def gather(x, index):
                def backward(out):
                    np.add.at(out.grad, index, 1.0)
        """
        assert _codes(source) == ["REPRO008"]

    def test_out_grad_out_kwarg_fires(self):
        source = """
            def scale(x):
                def backward(out):
                    np.multiply(out.grad, 2.0, out=out.grad)
        """
        assert _codes(source) == ["REPRO008"]

    def test_reading_out_grad_clean(self):
        source = """
            def mul(self, other):
                def backward(out):
                    grad = out.grad * other.data
                    self._accumulate(grad)
        """
        assert _codes(source) == []

    def test_fresh_local_grad_mutation_clean(self):
        # __getitem__-style: np.add.at into a *fresh* zeros buffer.
        source = """
            def getitem(self, index):
                def backward(out):
                    grad = np.zeros(self.shape)
                    np.add.at(grad, index, out.grad)
                    self._accumulate(grad)
        """
        assert _codes(source) == []

    def test_noqa_suppresses(self):
        source = """
            def scale(x):
                def backward(out):
                    out.grad *= 0.5  # noqa: REPRO008
                    x._accumulate(out.grad)
        """
        assert _codes(source) == []


class TestSelection:
    def test_select_subset(self):
        source = "import os\n\ndef f(x, cache=[]):\n    return cache\n"
        # Sorted by line: the unused import (line 1) comes first.
        assert _codes(source) == ["REPRO007", "REPRO004"]
        assert _codes(source, rules={"REPRO004"}) == ["REPRO004"]

    def test_syntax_error_reported_not_raised(self):
        diags = lint_source("def f(:\n", "broken.py")
        assert len(diags) == 1
        assert diags[0].code == "REPRO000"
