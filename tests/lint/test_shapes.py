"""ShapeTracer tests: static inference must agree with real forwards.

The tracer is only trustworthy if its symbolic output matches what the
layers actually produce, so every assertion here is phrased as
"trace == execute" where execution is cheap (tiny models, grid 32), and
as pure static checks at the paper grids (64-512) where execution is
not.
"""

import numpy as np
import pytest

from repro import nn
from repro.lint import (
    PAPER_GRIDS,
    ShapeError,
    ShapeSpec,
    trace_module,
    validate_model,
    validate_registry_models,
)
from repro.models import MODEL_NAMES, build_model


def _traced_vs_real(module: nn.Module, in_shape: tuple[int, ...]) -> None:
    traced = trace_module(module, in_shape)
    module.eval()
    real = module(nn.Tensor(np.zeros(in_shape, dtype=np.float32))).shape
    assert traced.shape == real, f"traced {traced} but forward produced {real}"


class TestLeafRules:
    def test_conv2d(self):
        _traced_vs_real(nn.Conv2d(3, 8, kernel_size=3, stride=2, padding=1), (2, 3, 9, 9))

    def test_linear(self):
        _traced_vs_real(nn.Linear(12, 5), (4, 7, 12))

    def test_sequential_chain(self):
        block = nn.Sequential(
            nn.Conv2d(3, 8, kernel_size=3, padding=1),
            nn.BatchNorm2d(8),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        _traced_vs_real(block, (1, 3, 16, 16))

    def test_conv_channel_mismatch_raises(self):
        block = nn.Sequential(
            nn.Conv2d(3, 8, kernel_size=3, padding=1),
            nn.Conv2d(4, 8, kernel_size=3, padding=1),  # noqa: REPRO006
        )
        with pytest.raises(ShapeError, match="channel"):
            trace_module(block, (1, 3, 16, 16))

    def test_pool_divisibility_raises(self):
        with pytest.raises(ShapeError):
            trace_module(nn.MaxPool2d(2), (1, 3, 15, 15))

    def test_linear_feature_mismatch_raises(self):
        with pytest.raises(ShapeError):
            trace_module(nn.Linear(12, 5), (4, 7, 13))

    def test_error_names_offending_module_path(self):
        block = nn.Sequential(
            nn.Conv2d(3, 8, kernel_size=3, padding=1),
            nn.Conv2d(4, 8, kernel_size=3, padding=1),  # noqa: REPRO006
        )
        # The tracer names the offending child by its path ("1" = the
        # second Sequential entry).
        with pytest.raises(ShapeError, match=r"1: Conv2d expects"):
            trace_module(block, (1, 3, 16, 16))


class TestModelsAgree:
    """Static trace == executed forward for every registry model."""

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_tiny_models_grid32(self, name):
        model = build_model(name, "tiny", grid=32)
        _traced_vs_real(model, (2, 6, 32, 32))

    def test_batch_size_propagates(self):
        model = build_model("unet", "tiny")
        assert trace_module(model, (5, 6, 64, 64)).shape == (5, 8, 64, 64)


class TestPaperGrids:
    """The acceptance criterion: all four models at 64x64-512x512,
    statically, without ever executing numerics."""

    def test_all_models_all_grids(self):
        rows = validate_registry_models(preset="paper")
        assert len(rows) == len(MODEL_NAMES) * len(PAPER_GRIDS)
        for name, grid, out in rows:
            assert out.shape == (1, 8, grid, grid), (name, grid)

    def test_grids_are_the_paper_range(self):
        assert PAPER_GRIDS == (64, 128, 256, 512)


class TestConstructionTimeValidation:
    def test_build_model_validates_by_default(self):
        # 20 survives UNet's constructor but not its three 2x pools
        # (20 -> 10 -> 5 -> 2.5), so construction itself must fail.
        with pytest.raises(ShapeError):
            build_model("unet", "tiny", grid=20)

    def test_validate_false_skips_the_check(self):
        model = build_model("unet", "tiny", grid=20, validate=False)
        assert model is not None

    def test_skip_connection_mismatch_detected(self):
        # Sabotage a decoder stage: dec3 consumes up3(e4) concat e3, so
        # a wrong input width must be rejected statically — at
        # validation time, not mid-training.
        from repro.models.unet import DoubleConv

        model = build_model("unet", "tiny", grid=32, validate=False)
        rng = np.random.default_rng(0)
        c = model.base_channels
        model.dec3 = DoubleConv(8 * c + 4 * c + 1, 4 * c, rng=rng)
        with pytest.raises(ShapeError, match="dec3"):
            validate_model(model, (1, 6, 32, 32))

    def test_encoder_decoder_spatial_mismatch_detected(self):
        # Break the spatial contract instead of the channel one: an
        # upsample factor of 4 makes up3(e4) 2x larger than skip e3.
        model = build_model("unet", "tiny", grid=32, validate=False)
        model.up3 = nn.UpsampleNearest(4)
        with pytest.raises(ShapeError):
            validate_model(model, (1, 6, 32, 32))


class TestSpec:
    def test_str_is_x_separated(self):
        assert str(ShapeSpec((1, 8, 64, 64))) == "1x8x64x64"

    def test_frozen(self):
        spec = ShapeSpec((1, 2))
        with pytest.raises((AttributeError, TypeError)):
            spec.shape = (3, 4)
