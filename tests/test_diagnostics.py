"""The central REPROxxx registry is the single allocation point."""

import pytest

from repro.diagnostics import (
    all_codes,
    codes_for,
    is_blocking,
    register_code,
    spec_of,
)


class TestRegistry:
    def test_duplicate_code_assignment_fails(self):
        # REPRO101 already belongs to the ir component; claiming it for
        # any component (even the same one) must raise loudly.
        with pytest.raises(ValueError, match="REPRO101 already assigned"):
            register_code("REPRO101", "something else", component="adjoint")

    def test_namespace_bands(self):
        for code, spec in all_codes().items():
            band = int(code.removeprefix("REPRO")) // 100
            expected = {
                0: "lint", 1: "ir", 2: "adjoint", 3: "perf", 4: "schedule",
                5: "orchestrate", 6: "concheck", 7: "scaling",
                8: "numcheck",
            }[band]
            assert spec.component == expected, code

    def test_component_views_match_consumers(self):
        from repro.adjoint import ADJOINT_RULES
        from repro.concheck import CONCHECK_RULES
        from repro.ir.passes import IR_RULES, OPPORTUNITY_RULES
        from repro.lint.rules import RULES
        from repro.numcheck import NUMCHECK_RULES
        from repro.orchestrate import ORCHESTRATE_RULES
        from repro.perf import PERF_RULES
        from repro.scaling import SCALING_RULES
        from repro.schedule import SCHEDULE_RULES

        assert RULES == codes_for("lint")
        assert IR_RULES == codes_for("ir")
        assert ADJOINT_RULES == codes_for("adjoint")
        assert PERF_RULES == codes_for("perf")
        assert SCHEDULE_RULES == codes_for("schedule")
        assert ORCHESTRATE_RULES == codes_for("orchestrate")
        assert CONCHECK_RULES == codes_for("concheck")
        assert SCALING_RULES == codes_for("scaling")
        assert NUMCHECK_RULES == codes_for("numcheck")
        assert set(OPPORTUNITY_RULES) == {
            c for c, s in all_codes().items()
            if s.component == "ir" and not s.blocking
        }

    def test_adjoint_codes_present(self):
        assert set(codes_for("adjoint")) == {
            f"REPRO20{i}" for i in range(1, 8)
        }

    def test_perf_codes_present(self):
        assert set(codes_for("perf")) == {
            f"REPRO3{i:02d}" for i in range(1, 13)
        }
        # Blocking: measured/provable waste; the rest are advisories.
        assert {c for c in codes_for("perf") if is_blocking(c)} == {
            "REPRO301", "REPRO302", "REPRO310"
        }

    def test_schedule_codes_present(self):
        assert set(codes_for("schedule")) == {
            f"REPRO40{i}" for i in range(1, 9)
        }
        # Every plan-verifier code is a safety violation: all blocking.
        assert all(is_blocking(c) for c in codes_for("schedule"))

    def test_orchestrate_codes_present(self):
        assert set(codes_for("orchestrate")) == {
            f"REPRO50{i}" for i in range(1, 7)
        }
        # Blocking = the run delivered a partial result; non-blocking =
        # the supervisor recovered (crash, deadline, journal, payload).
        assert {c for c in codes_for("orchestrate") if is_blocking(c)} == {
            "REPRO503", "REPRO505",
        }

    def test_concheck_codes_present(self):
        assert set(codes_for("concheck")) == {
            f"REPRO6{i:02d}" for i in range(1, 13)
        }
        # Advisory: environment reads (603) and fork-inherited resources
        # (610) are legitimate in parent-only paths; everything else
        # breaks the parity or crash-recovery contract outright.
        assert {c for c in codes_for("concheck") if not is_blocking(c)} == {
            "REPRO603", "REPRO610",
        }

    def test_scaling_codes_present(self):
        assert set(codes_for("scaling")) == {
            f"REPRO7{i:02d}" for i in range(1, 11)
        }
        # Advisory: the superlinear-hotspot ranking (710) is informative
        # context; every other code is a certification failure — an
        # exponent over budget, a cost that isn't polynomial, or an
        # envelope the planner/measurement contradicts.
        assert {c for c in codes_for("scaling") if not is_blocking(c)} == {
            "REPRO710",
        }

    def test_numcheck_codes_present(self):
        assert set(codes_for("numcheck")) == {
            f"REPRO8{i:02d}" for i in range(1, 11)
        }
        # Advisory: cancellation sites (802) and conditioning screens
        # (803) flag where the certificate leans on a regime
        # assumption; tight-tolerance lint (807/808) and excess slack
        # (810) are hygiene.  Budget breaches, unsound fusion/pins,
        # float32 accumulators and measured-beats-certified are hard
        # certification failures.
        assert {c for c in codes_for("numcheck") if not is_blocking(c)} == {
            "REPRO802", "REPRO803", "REPRO807", "REPRO808", "REPRO810",
        }

    def test_blocking_metadata(self):
        assert not is_blocking("REPRO106")
        assert not is_blocking("REPRO107")
        assert is_blocking("REPRO204")
        # Unknown codes fail closed.
        assert is_blocking("REPRO999")
        assert spec_of("REPRO008").component == "lint"
