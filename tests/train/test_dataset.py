"""Dataset generation and rotation augmentation."""

import numpy as np
import pytest

from repro.features import FEATURE_NAMES
from repro.netlist import MLCAD2023_SPECS
from repro.train import (
    CongestionDataset,
    DatasetConfig,
    Sample,
    generate_samples,
    rotate_sample,
)

_H = FEATURE_NAMES.index("h_net_density")
_V = FEATURE_NAMES.index("v_net_density")


def _sample(rng, grid=8):
    return Sample(
        features=rng.normal(size=(6, grid, grid)),
        labels=rng.integers(0, 8, size=(grid, grid)),
        design_name="Design_X",
    )


class TestRotation:
    def test_zero_rotation_identity(self, rng):
        s = _sample(rng)
        assert rotate_sample(s, 0) is s
        assert rotate_sample(s, 4) is s

    def test_labels_rotate_with_features(self, rng):
        s = _sample(rng)
        r = rotate_sample(s, 1)
        np.testing.assert_allclose(r.labels, np.rot90(s.labels, 1))
        np.testing.assert_allclose(
            r.features[0], np.rot90(s.features[0], 1, axes=(0, 1))
        )

    def test_90_swaps_h_and_v_channels(self, rng):
        s = _sample(rng)
        r = rotate_sample(s, 1)
        np.testing.assert_allclose(r.features[_H], np.rot90(s.features[_V]))
        np.testing.assert_allclose(r.features[_V], np.rot90(s.features[_H]))

    def test_180_keeps_channels(self, rng):
        s = _sample(rng)
        r = rotate_sample(s, 2)
        np.testing.assert_allclose(r.features[_H], np.rot90(s.features[_H], 2))

    def test_four_rotations_identity(self, rng):
        s = _sample(rng)
        r = s
        for _ in range(4):
            r = rotate_sample(r, 1)
        np.testing.assert_allclose(r.features, s.features)
        np.testing.assert_allclose(r.labels, s.labels)

    def test_rotation_recorded(self, rng):
        assert rotate_sample(_sample(rng), 3).rotation == 3


class TestGeneration:
    @pytest.fixture(scope="class")
    def samples(self):
        config = DatasetConfig(
            grid=16, placements_per_design=2, design_scale=1 / 256,
            gp_iters=80, stage2_iters=20, seed=7,
        )
        return generate_samples(MLCAD2023_SPECS["Design_197"], config)

    def test_count_and_shapes(self, samples):
        assert len(samples) == 2
        for s in samples:
            assert s.features.shape == (6, 16, 16)
            assert s.labels.shape == (16, 16)
            assert s.labels.dtype == np.int64

    def test_labels_in_level_range(self, samples):
        for s in samples:
            assert s.labels.min() >= 0 and s.labels.max() <= 7

    def test_placements_differ(self, samples):
        assert not np.allclose(samples[0].features, samples[1].features)

    def test_design_name_recorded(self, samples):
        assert all(s.design_name == "Design_197" for s in samples)


class TestCongestionDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        config = DatasetConfig(
            grid=16, placements_per_design=3, design_scale=1 / 256,
            gp_iters=80, stage2_iters=20, seed=3, eval_fraction=0.34,
        )
        specs = [MLCAD2023_SPECS[n] for n in ("Design_197", "Design_120")]
        return CongestionDataset.build(specs, config)

    def test_split_sizes(self, dataset):
        # Per design: 3 placements -> 1 eval + 2 train x 4 rotations.
        assert len(dataset.eval) == 2
        assert len(dataset.train) == 2 * 2 * 4

    def test_augmentation_present(self, dataset):
        rotations = {s.rotation for s in dataset.train}
        assert rotations == {0, 1, 2, 3}

    def test_eval_not_augmented(self, dataset):
        assert all(s.rotation == 0 for s in dataset.eval)

    def test_class_frequencies(self, dataset):
        freq = dataset.class_frequencies()
        assert freq.shape == (8,)
        assert freq.sum() == len(dataset.train) * 16 * 16

    def test_batches_cover_everything(self, dataset, rng):
        seen = 0
        for feats, labels in dataset.batches(5, rng):
            assert feats.shape[0] == labels.shape[0] <= 5
            assert feats.shape[1:] == (6, 16, 16)
            seen += feats.shape[0]
        assert seen == len(dataset.train)

    def test_eval_by_design(self, dataset):
        grouped = dataset.eval_by_design()
        assert set(grouped) == {"Design_197", "Design_120"}


class TestSplitByDesign:
    def test_partition(self, rng):
        from repro.train import CongestionDataset

        ds = CongestionDataset()
        for name in ("A", "B", "C"):
            for k in range(3):
                s = _sample_named(rng, name)
                ds.train.append(s if k else rotate_sample(s, 1))
            ds.eval.append(_sample_named(rng, name))
        seen, unseen = ds.split_by_design({"C"})
        assert all(s.design_name != "C" for s in seen.train + seen.eval)
        assert all(s.design_name == "C" for s in unseen.eval)
        assert not unseen.train

    def test_unseen_excludes_rotations(self, rng):
        from repro.train import CongestionDataset

        ds = CongestionDataset()
        base = _sample_named(rng, "X")
        ds.train = [base, rotate_sample(base, 2)]
        ds.eval = []
        _, unseen = ds.split_by_design({"X"})
        assert len(unseen.eval) == 1
        assert unseen.eval[0].rotation == 0


def _sample_named(rng, name, grid=8):
    return Sample(
        features=rng.normal(size=(6, grid, grid)),
        labels=rng.integers(0, 8, size=(grid, grid)),
        design_name=name,
    )
