"""Learning-rate schedules and early stopping."""

import pytest

from repro.models import build_model
from repro.train import SCHEDULES, TrainConfig, Trainer, lr_at_epoch

from .test_loop import _synthetic_dataset


class TestLrAtEpoch:
    def test_constant(self):
        assert lr_at_epoch(1e-3, 0, 10) == 1e-3
        assert lr_at_epoch(1e-3, 9, 10) == 1e-3

    def test_cosine_endpoints(self):
        start = lr_at_epoch(1.0, 0, 100, "cosine")
        end = lr_at_epoch(1.0, 99, 100, "cosine")
        assert start == pytest.approx(1.0)
        assert end == pytest.approx(0.05, abs=1e-9)

    def test_cosine_monotone_decreasing(self):
        lrs = [lr_at_epoch(1.0, e, 50, "cosine") for e in range(50)]
        assert all(b <= a + 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_step_halves(self):
        assert lr_at_epoch(1.0, 0, 100, "step", step_every=20) == 1.0
        assert lr_at_epoch(1.0, 20, 100, "step", step_every=20) == 0.5
        assert lr_at_epoch(1.0, 40, 100, "step", step_every=20) == 0.25

    def test_unknown_schedule(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            lr_at_epoch(1.0, 0, 10, "linear")

    def test_invalid_epoch(self):
        with pytest.raises(ValueError):
            lr_at_epoch(1.0, -1, 10)
        with pytest.raises(ValueError):
            lr_at_epoch(1.0, 0, 0)

    def test_all_schedules_listed(self):
        for schedule in SCHEDULES:
            assert lr_at_epoch(1.0, 3, 10, schedule) > 0


class TestTrainerIntegration:
    def test_cosine_schedule_trains(self, rng):
        dataset = _synthetic_dataset(rng, n_train=4)
        model = build_model("unet", "tiny")
        result = Trainer(
            TrainConfig(epochs=4, batch_size=2, lr_schedule="cosine")
        ).train(model, dataset)
        assert len(result.losses) == 4

    def test_early_stopping_cuts_epochs(self, rng):
        dataset = _synthetic_dataset(rng, n_train=4)
        model = build_model("unet", "tiny")
        # Learning rate of 0-ish: loss cannot improve -> stop after patience.
        result = Trainer(
            TrainConfig(epochs=30, batch_size=2, lr=1e-12, patience=3)
        ).train(model, dataset)
        assert result.epochs <= 5
