"""Test-time augmentation."""

import numpy as np
import pytest

from repro.models import build_model
from repro.train import (
    predict_expected_tta,
    predict_levels_tta,
    predict_proba_tta,
)
from repro.train.tta import _rotate_features


class TestRotateFeatures:
    def test_four_rotations_identity(self, rng):
        feats = rng.normal(size=(2, 6, 8, 8))
        out = feats
        for _ in range(4):
            out = _rotate_features(out, 1)
        np.testing.assert_allclose(out, feats)

    def test_hv_swap_on_odd(self, rng):
        feats = rng.normal(size=(1, 6, 8, 8))
        rotated = _rotate_features(feats, 1)
        np.testing.assert_allclose(rotated[0, 1], np.rot90(feats[0, 2]))
        np.testing.assert_allclose(rotated[0, 2], np.rot90(feats[0, 1]))


class TestTTAPredictions:
    @pytest.fixture(scope="class")
    def model(self):
        return build_model("unet", "tiny", grid=32)

    def test_proba_is_distribution(self, model, rng):
        feats = rng.uniform(0, 1, size=(2, 6, 32, 32))
        proba = predict_proba_tta(model, feats)
        assert proba.shape == (2, 8, 32, 32)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-10)

    def test_levels_and_expected_shapes(self, model, rng):
        feats = rng.uniform(0, 1, size=(1, 6, 32, 32))
        levels = predict_levels_tta(model, feats)
        expected = predict_expected_tta(model, feats)
        assert levels.shape == (1, 32, 32)
        assert expected.shape == (1, 32, 32)
        assert levels.max() <= 7 and expected.max() <= 7

    def test_rotation_equivariance_of_tta(self, model, rng):
        """TTA output rotates with the input (by construction)."""
        feats = rng.uniform(0, 1, size=(1, 6, 32, 32))
        base = predict_proba_tta(model, feats)
        rotated_in = _rotate_features(feats, 1)
        rotated_out = predict_proba_tta(model, rotated_in)
        np.testing.assert_allclose(
            rotated_out, np.rot90(base, 1, axes=(2, 3)), atol=1e-8
        )

    def test_rejects_non_square(self, model, rng):
        with pytest.raises(ValueError, match="square"):
            predict_proba_tta(model, rng.uniform(size=(1, 6, 16, 32)))

    def test_rejects_wrong_ndim(self, model, rng):
        with pytest.raises(ValueError, match="expected"):
            predict_proba_tta(model, rng.uniform(size=(6, 32, 32)))
