"""Training loop: loss reduction, class weighting, per-design eval."""

import numpy as np
import pytest

from repro.models import build_model
from repro.train import (
    CongestionDataset,
    Sample,
    TrainConfig,
    Trainer,
)


def _synthetic_dataset(rng, n_train=8, n_eval=2, grid=16):
    """Learnable toy task: label = quantized RUDY channel."""
    dataset = CongestionDataset()

    def make():
        features = rng.uniform(0, 1, size=(6, grid, grid))
        labels = np.clip((features[3] * 8).astype(np.int64), 0, 7)
        return Sample(features, labels, "Design_T")

    dataset.train = [make() for _ in range(n_train)]
    dataset.eval = [make() for _ in range(n_eval)]
    return dataset


class TestTrainer:
    def test_loss_decreases(self, rng):
        dataset = _synthetic_dataset(rng)
        model = build_model("unet", "tiny")
        result = Trainer(TrainConfig(epochs=8, batch_size=4, lr=3e-3)).train(
            model, dataset
        )
        assert result.losses[-1] < result.losses[0]
        assert result.epochs == 8
        assert result.seconds > 0

    def test_model_left_in_eval_mode(self, rng):
        dataset = _synthetic_dataset(rng, n_train=4)
        model = build_model("unet", "tiny")
        Trainer(TrainConfig(epochs=1)).train(model, dataset)
        assert not model.training

    def test_learns_synthetic_task_above_chance(self, rng):
        dataset = _synthetic_dataset(rng, n_train=12)
        model = build_model("unet", "tiny")
        Trainer(TrainConfig(epochs=60, batch_size=4, lr=1e-2)).train(
            model, dataset
        )
        metrics = Trainer.evaluate(model, dataset.eval)
        assert metrics["ACC"] > 0.25  # 8-class chance is 0.125
        assert metrics["R2"] > 0.3

    def test_class_weights_normalized(self, rng):
        dataset = _synthetic_dataset(rng, n_train=4)
        trainer = Trainer(TrainConfig())
        weights = trainer._class_weights(dataset, 8)
        assert weights.shape == (8,)
        assert weights.mean() == pytest.approx(1.0)
        assert np.all(weights > 0)

    def test_class_weighting_disabled(self, rng):
        dataset = _synthetic_dataset(rng, n_train=4)
        trainer = Trainer(TrainConfig(class_weighting=False))
        assert trainer._class_weights(dataset, 8) is None

    def test_evaluate_empty_raises(self):
        model = build_model("unet", "tiny")
        with pytest.raises(ValueError, match="empty"):
            Trainer.evaluate(model, [])

    def test_train_empty_dataset_raises(self):
        """An empty dataset must raise, not silently report 0.0 loss."""
        model = build_model("unet", "tiny")
        with pytest.raises(ValueError, match="empty dataset"):
            Trainer(TrainConfig(epochs=1)).train(model, CongestionDataset())

    def test_evaluate_by_design_includes_average(self, rng):
        dataset = _synthetic_dataset(rng, n_train=4, n_eval=2)
        dataset.eval[1].design_name = "Design_U"
        model = build_model("unet", "tiny")
        Trainer(TrainConfig(epochs=1)).train(model, dataset)
        per_design = Trainer.evaluate_by_design(model, dataset)
        assert set(per_design) == {"Design_T", "Design_U", "Average"}
        avg = np.mean(
            [per_design["Design_T"]["ACC"], per_design["Design_U"]["ACC"]]
        )
        assert per_design["Average"]["ACC"] == pytest.approx(avg)


class TestLossOptions:
    def test_focal_loss_trains(self, rng):
        dataset = _synthetic_dataset(rng, n_train=4)
        model = build_model("unet", "tiny")
        result = Trainer(
            TrainConfig(epochs=3, batch_size=2, loss="focal")
        ).train(model, dataset)
        assert result.losses[-1] <= result.losses[0] + 0.5

    def test_unknown_loss_rejected(self, rng):
        dataset = _synthetic_dataset(rng, n_train=2)
        model = build_model("unet", "tiny")
        with pytest.raises(ValueError, match="unknown loss"):
            Trainer(TrainConfig(epochs=1, loss="dice")).train(model, dataset)
