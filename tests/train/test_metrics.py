"""ACC / R² / NRMS metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.train import accuracy, evaluate_predictions, nrms, r_squared


class TestAccuracy:
    def test_perfect(self):
        target = np.array([[0, 1], [2, 3]])
        assert accuracy(target, target) == 1.0

    def test_half(self):
        assert accuracy(np.array([0, 0]), np.array([0, 1])) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            accuracy(np.zeros(3), np.zeros(4))


class TestR2:
    def test_perfect_is_one(self):
        t = np.array([1.0, 2.0, 3.0])
        assert r_squared(t, t) == 1.0

    def test_mean_predictor_is_zero(self):
        target = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, 2.0)
        assert r_squared(pred, target) == pytest.approx(0.0)

    def test_constant_target_edge_case(self):
        target = np.full(4, 5.0)
        assert r_squared(target, target) == 1.0
        assert r_squared(target + 1, target) == 0.0

    def test_known_value(self):
        target = np.array([0.0, 1.0, 2.0])
        pred = np.array([0.0, 1.0, 1.0])
        # ss_res = 1, ss_tot = 2
        assert r_squared(pred, target) == pytest.approx(0.5)


class TestNRMS:
    def test_zero_for_perfect(self):
        t = np.array([3.0, 4.0])
        assert nrms(t, t) == 0.0

    def test_normalized_by_level_range(self):
        pred = np.array([7.0])
        target = np.array([0.0])
        assert nrms(pred, target) == pytest.approx(1.0)

    def test_known_rmse(self):
        pred = np.array([1.0, 3.0])
        target = np.array([0.0, 0.0])
        assert nrms(pred, target) == pytest.approx(np.sqrt(5.0) / 7.0)


class TestEvaluatePredictions:
    def test_keys(self):
        out = evaluate_predictions(np.zeros(4), np.zeros(4))
        assert set(out) == {"ACC", "R2", "NRMS"}
        assert out["ACC"] == 1.0


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.int64, (20,), elements=st.integers(min_value=0, max_value=7)),
    arrays(np.int64, (20,), elements=st.integers(min_value=0, max_value=7)),
)
def test_metric_invariants(pred, target):
    acc = accuracy(pred, target)
    err = nrms(pred, target)
    assert 0.0 <= acc <= 1.0
    assert 0.0 <= err <= 1.0
    assert r_squared(pred, target) <= 1.0
    if acc == 1.0:
        assert err == 0.0


@settings(max_examples=25, deadline=None)
@given(arrays(np.int64, (30,), elements=st.integers(min_value=0, max_value=7)))
def test_perfect_prediction_maximizes_everything(levels):
    out = evaluate_predictions(levels, levels)
    assert out["ACC"] == 1.0
    assert out["R2"] == 1.0
    assert out["NRMS"] == 0.0


class TestConfusionMatrix:
    def test_known_matrix(self):
        from repro.train import confusion_matrix

        pred = np.array([0, 0, 1, 2])
        target = np.array([0, 1, 1, 2])
        m = confusion_matrix(pred, target, num_classes=3)
        assert m[0, 0] == 1  # true 0 predicted 0
        assert m[1, 0] == 1  # true 1 predicted 0
        assert m[1, 1] == 1
        assert m[2, 2] == 1
        assert m.sum() == 4

    def test_out_of_range_rejected(self):
        from repro.train import confusion_matrix

        with pytest.raises(ValueError, match="levels outside"):
            confusion_matrix(np.array([9]), np.array([0]))

    def test_shape_mismatch_rejected(self):
        from repro.train import confusion_matrix

        with pytest.raises(ValueError, match="shape"):
            confusion_matrix(np.zeros(3, int), np.zeros(4, int))

    def test_perfect_prediction_is_diagonal(self, ):
        from repro.train import confusion_matrix

        levels = np.array([0, 1, 2, 3, 4, 5, 6, 7])
        m = confusion_matrix(levels, levels)
        assert (m == np.eye(8, dtype=int)).all()


class TestPerLevelRecall:
    def test_values(self):
        from repro.train import per_level_recall

        target = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 1, 1])
        recall = per_level_recall(pred, target, num_classes=3)
        assert recall[0] == pytest.approx(0.5)
        assert recall[1] == pytest.approx(1.0)
        assert np.isnan(recall[2])  # level absent from target

    def test_all_levels_present_no_nan(self):
        from repro.train import per_level_recall

        levels = np.arange(8)
        recall = per_level_recall(levels, levels)
        assert not np.isnan(recall).any()
        np.testing.assert_allclose(recall, 1.0)
