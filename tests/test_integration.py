"""Cross-module integration tests: the full pipeline end to end."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.contest import contest_teams, evaluate_team_on_design
from repro.features import FeatureExtractor
from repro.models import ModelEstimator, build_model
from repro.netlist import MLCAD2023_SPECS, generate_design
from repro.placement import (
    GPConfig,
    PlacerConfig,
    place_design,
)
from repro.routing import congestion_report, route_design
from repro.train import DatasetConfig, Trainer, TrainConfig, generate_samples

_EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

_FAST_CONFIG = PlacerConfig(
    gp=GPConfig(bins=16, max_iters=150),
    inflation_rounds=1,
    stage1_iters=120,
    stage2_iters=40,
)


class TestPipeline:
    def test_generate_place_route_score(self):
        """The quickstart path, programmatically."""
        design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
        outcome = place_design(design, config=_FAST_CONFIG)
        assert outcome.legal
        routing = route_design(design)
        report = congestion_report(routing)
        assert report.level_map.shape == (
            design.device.tile_cols, design.device.tile_rows
        )

    def test_placement_improves_over_legal_random(self):
        """The flow must beat a legalized random placement on wirelength
        (the apples-to-apples comparison: both are legal placements)."""
        from repro.placement import legalize

        design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
        rng = np.random.default_rng(0)
        n = design.num_instances
        random_x = rng.uniform(0, design.device.width, n)
        random_y = rng.uniform(0, design.device.height, n)
        random_x[~design.movable_mask] = design.x[~design.movable_mask]
        random_y[~design.movable_mask] = design.y[~design.movable_mask]
        legal_random = legalize(design, random_x, random_y)
        design.set_placement(legal_random.x, legal_random.y)
        random_wl = design.hpwl()
        random_routing = route_design(design)

        place_design(design, config=_FAST_CONFIG)
        placed_routing = route_design(design)
        assert design.hpwl() < random_wl
        assert placed_routing.total_wirelength < random_routing.total_wirelength

    def test_model_in_the_loop(self):
        """A (briefly) trained model can drive inflation end to end."""
        config = DatasetConfig(
            grid=32, placements_per_design=2, design_scale=1 / 256,
            gp_iters=100, stage2_iters=25, seed=5,
        )
        samples = generate_samples(MLCAD2023_SPECS["Design_120"], config)
        from repro.train import CongestionDataset

        dataset = CongestionDataset()
        dataset.train = samples
        dataset.eval = samples[:1]
        model = build_model("ours", "tiny", grid=32)
        Trainer(TrainConfig(epochs=2, batch_size=2)).train(model, dataset)

        design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
        estimator = ModelEstimator(
            model, model_grid=32, out_grid=design.device.tile_cols
        )
        outcome = place_design(design, estimator=estimator, config=_FAST_CONFIG)
        assert outcome.legal

    def test_features_labels_aligned(self):
        """Feature grid and router label grid cover the same geometry."""
        design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
        place_design(design, config=_FAST_CONFIG)
        g = design.device.tile_cols
        features = FeatureExtractor(grid=g)(design)
        report = congestion_report(route_design(design))
        # Hot label tiles must overlap demand-bearing feature area: the
        # congested region should carry above-average RUDY.
        hot = report.level_map >= max(report.level_map.max() - 1, 1)
        rudy = features[3][:, : report.level_map.shape[1]]
        hot_small = hot[: rudy.shape[0], : rudy.shape[1]]
        if hot_small.any():
            assert rudy[hot_small].mean() >= rudy.mean() * 0.5

    def test_team_evaluation_roundtrip(self):
        team = contest_teams()[1]  # SEU, analytical
        original = team.placer_config_factory

        def fast():
            config = original()
            config.gp = GPConfig(bins=16, max_iters=120)
            config.stage1_iters = 100
            config.stage2_iters = 25
            return config

        team.placer_config_factory = fast
        score = evaluate_team_on_design(team, "Design_120", scale=1 / 256)
        assert score.s_score > 0


@pytest.mark.parametrize(
    "script,args",
    [
        ("quickstart.py", ["--scale", "256"]),
        (
            "congestion_map.py",
            ["--design", "Design_120", "--scale", "256"],
        ),
        (
            "feature_analysis.py",
            ["--design", "Design_120", "--scale", "256", "--samples", "2",
             "--grid", "16"],
        ),
        (
            "placement_gallery.py",
            ["--design", "Design_120", "--scale", "256", "--out-dir", "g"],
        ),
    ],
)
def test_examples_run(script, args, tmp_path):
    """Example scripts execute cleanly at tiny scale."""
    # The examples import repro from a clean subprocess: make sure src/
    # is importable there even when the package is not installed.
    src = str(_EXAMPLES.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    result = subprocess.run(
        [sys.executable, str(_EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout
