"""Contest scoring equations (Eqs. 1-3) against hand-computed values."""

import numpy as np
import pytest

from repro.contest import (
    ContestScore,
    final_score,
    initial_routing_score,
    routability_score,
)
from repro.routing import CongestionReport


def _report(short_levels, global_levels, gw=4, gh=4):
    """Build a report whose per-direction maxima are as given."""
    short = np.zeros((4, gw, gh), dtype=np.int64)
    glob = np.zeros((4, gw, gh), dtype=np.int64)
    for d in range(4):
        short[d, 0, 0] = short_levels[d]
        glob[d, 0, 0] = global_levels[d]
    return CongestionReport(
        short_levels=short,
        global_levels=glob,
        level_map=np.maximum(short.max(axis=0), glob.max(axis=0)),
    )


class TestEq1:
    def test_no_congestion_gives_one(self):
        report = _report([0, 0, 0, 0], [0, 0, 0, 0])
        assert initial_routing_score(report) == 1

    def test_level_three_not_penalized(self):
        report = _report([3, 3, 3, 3], [3, 3, 3, 3])
        assert initial_routing_score(report) == 1

    def test_level_four_quadratic(self):
        report = _report([4, 0, 0, 0], [0, 0, 0, 0])
        assert initial_routing_score(report) == 1 + 1

    def test_level_seven(self):
        report = _report([7, 0, 0, 0], [0, 0, 0, 0])
        assert initial_routing_score(report) == 1 + 16

    def test_all_directions_and_classes_summed(self):
        report = _report([5, 4, 5, 4], [4, 4, 4, 4])
        # short: 4+1+4+1 = 10; global: 4x1 = 4.
        assert initial_routing_score(report) == 15

    def test_paper_like_value(self):
        """Ours on Design_116 (Table II): S_IR=5 -> e.g. one dir at 5."""
        report = _report([5, 0, 0, 0], [0, 0, 0, 0])
        assert initial_routing_score(report) == 5


class TestEq2Eq3:
    def test_routability_product(self):
        assert routability_score(5, 9) == 45.0

    def test_final_score_no_macro_penalty(self):
        # Table II, Ours/Design_116: S_R=45, T_P&R=0.64 -> 28.8.
        assert final_score(45.0, t_macro_minutes=5.0, t_pr_hours=0.64) == (
            pytest.approx(28.8)
        )

    def test_macro_runtime_penalty(self):
        assert final_score(10.0, t_macro_minutes=12.0, t_pr_hours=1.0) == (
            pytest.approx(30.0)
        )

    def test_penalty_kicks_in_after_10_minutes(self):
        assert final_score(10.0, 10.0, 1.0) == pytest.approx(10.0)
        assert final_score(10.0, 10.1, 1.0) > 10.0


class TestContestScore:
    def test_properties(self):
        score = ContestScore(
            design="Design_116", team="Ours", s_ir=5, s_dr=9,
            t_macro_minutes=4.0, t_pr_hours=0.64,
        )
        assert score.s_r == 45.0
        assert score.s_score == pytest.approx(28.8)

    def test_row_columns_match_table2(self):
        score = ContestScore("d", "t", 2, 7, 1.0, 0.43)
        row = score.row()
        assert set(row) == {"S_score", "S_R", "T_P&R", "S_IR", "S_DR"}
        assert row["S_R"] == 14.0
        assert row["S_score"] == pytest.approx(6.02)
