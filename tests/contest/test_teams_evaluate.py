"""Teams and the Table-II harness (mini run at tiny scale)."""

import pytest

from repro.contest import (
    TEAM_NAMES,
    Table2Result,
    ContestScore,
    contest_teams,
    evaluate_team_on_design,
    format_table2,
    run_table2,
)
from repro.models import ModelEstimator, build_model
from repro.placement import GPConfig, RudyEstimator


class TestTeamConstruction:
    def test_four_teams(self):
        teams = contest_teams()
        assert [t.name for t in teams] == list(TEAM_NAMES)

    def test_utda_uses_rudy_single_round(self, tiny_design):
        utda = contest_teams()[0]
        assert isinstance(utda.estimator_factory(tiny_design), RudyEstimator)
        assert utda.placer_config_factory().inflation_rounds == 1

    def test_ours_uses_model_when_given(self, tiny_design):
        model = build_model("unet", "tiny")
        ours = contest_teams(model=model, model_grid=32)[-1]
        estimator = ours.estimator_factory(tiny_design)
        assert isinstance(estimator, ModelEstimator)
        assert estimator.model is model

    def test_ours_falls_back_without_model(self, tiny_design):
        ours = contest_teams()[-1]
        estimator = ours.estimator_factory(tiny_design)
        assert not isinstance(estimator, ModelEstimator)


def _fast_team(team):
    """Shrink a team's placement effort for test speed."""
    original = team.placer_config_factory

    def fast():
        config = original()
        config.gp = GPConfig(bins=16, max_iters=120, seed=config.gp.seed)
        config.stage1_iters = 120
        config.stage2_iters = 30
        return config

    team.placer_config_factory = fast
    return team


class TestEvaluation:
    @pytest.fixture(scope="class")
    def mini_result(self):
        teams = [_fast_team(t) for t in contest_teams()[:2]]
        teams[-1].name = "Ours"  # ratio row needs an "Ours" entry
        return run_table2(
            teams, design_names=("Design_197",), scale=1 / 256
        )

    def test_scores_recorded(self, mini_result):
        assert set(mini_result.scores) == {"UTDA", "Ours"}
        score = mini_result.scores["UTDA"]["Design_197"]
        assert score.s_ir >= 1
        assert score.s_dr >= 4
        assert 0 < score.t_pr_hours < 2.5
        assert score.t_macro_minutes < 10

    def test_averages(self, mini_result):
        avgs = mini_result.averages()
        assert avgs["UTDA"]["S_IR"] >= 1.0

    def test_ratios_reference_is_one(self, mini_result):
        ratios = mini_result.ratios("Ours")
        for col, value in ratios["Ours"].items():
            assert value == pytest.approx(1.0)

    def test_ratios_missing_reference(self):
        result = Table2Result()
        result.add(ContestScore("d", "X", 1, 5, 1.0, 0.5))
        with pytest.raises(KeyError, match="reference"):
            result.ratios("Ours")

    def test_format_contains_rows(self, mini_result):
        table = format_table2(mini_result)
        assert "Design_197" in table
        assert "Average" in table
        assert "Ratio" in table
        assert "S_score" in table

    def test_single_evaluation(self):
        team = _fast_team(contest_teams()[1])
        score = evaluate_team_on_design(team, "Design_120", scale=1 / 256)
        assert score.team == "SEU"
        assert score.design == "Design_120"


class TestFormatting:
    def test_missing_design_renders_dashes(self):
        result = Table2Result()
        result.add(ContestScore("Design_A", "Ours", 1, 5, 1.0, 0.5))
        result.add(ContestScore("Design_B", "UTDA", 2, 6, 1.0, 0.5))
        table = format_table2(result)
        assert "--" in table

    def test_averages_per_team_independent(self):
        result = Table2Result()
        result.add(ContestScore("D1", "Ours", 1, 5, 1.0, 0.5))
        result.add(ContestScore("D2", "Ours", 3, 5, 1.0, 0.5))
        avgs = result.averages()
        assert avgs["Ours"]["S_IR"] == 2.0


class TestExport:
    def _result(self):
        result = Table2Result()
        result.add(ContestScore("Design_A", "Ours", 1, 5, 1.0, 0.5))
        result.add(ContestScore("Design_B", "Ours", 2, 6, 1.0, 0.4))
        result.add(ContestScore("Design_A", "UTDA", 3, 7, 1.0, 0.6))
        return result

    def test_rows_flat_and_sorted(self):
        rows = self._result().rows()
        assert len(rows) == 3
        assert {"team", "design", "S_score", "S_R", "T_P&R", "S_IR", "S_DR"} == set(rows[0])

    def test_csv_export(self):
        csv_text = self._result().to_csv()
        assert csv_text.startswith("team,design,")
        assert "Ours,Design_A" in csv_text

    def test_markdown_export(self):
        md = self._result().to_markdown()
        assert md.startswith("| team | design |")
        assert "| Ours | Design_A |" in md
