"""Grid feature extraction: exact accumulation, normalization, resizing."""

import numpy as np
import pytest

from repro.features import FEATURE_NAMES, FeatureExtractor, extract_features, resize_map
from repro.features.grids import _rect_accumulate


class TestRectAccumulate:
    def test_matches_naive_loop(self, rng):
        g = 8
        n = 20
        x0 = rng.integers(0, g, n)
        x1 = np.minimum(x0 + rng.integers(0, 4, n), g - 1)
        y0 = rng.integers(0, g, n)
        y1 = np.minimum(y0 + rng.integers(0, 4, n), g - 1)
        values = rng.uniform(0.1, 2.0, n)

        fast = _rect_accumulate(g, x0, x1, y0, y1, values)
        naive = np.zeros((g, g))
        for k in range(n):
            naive[x0[k] : x1[k] + 1, y0[k] : y1[k] + 1] += values[k]
        # Maps are float32 (the float64 pipeline doubled memory traffic
        # for no modelling benefit); compare at float32 precision.
        assert fast.dtype == np.float32
        np.testing.assert_allclose(fast, naive, rtol=1e-6, atol=1e-6)

    def test_single_cell(self):
        out = _rect_accumulate(
            4, np.array([2]), np.array([2]), np.array([1]), np.array([1]),
            np.array([5.0]),
        )
        assert out[2, 1] == 5.0
        assert out.sum() == 5.0

    def test_full_grid(self):
        out = _rect_accumulate(
            3, np.array([0]), np.array([2]), np.array([0]), np.array([2]),
            np.array([1.0]),
        )
        np.testing.assert_allclose(out, np.ones((3, 3)))


class TestResizeMap:
    def test_identity(self, rng):
        data = rng.normal(size=(8, 8))
        np.testing.assert_allclose(resize_map(data, 8, 8), data)

    def test_upsample_constant(self):
        data = np.full((4, 4), 3.0)
        out = resize_map(data, 16, 16)
        np.testing.assert_allclose(out, 3.0)

    def test_downsample_preserves_mean_roughly(self, rng):
        data = rng.uniform(0, 1, size=(32, 32))
        out = resize_map(data, 8, 8)
        assert out.mean() == pytest.approx(data.mean(), abs=0.05)

    def test_shapes(self, rng):
        data = rng.normal(size=(10, 20))
        assert resize_map(data, 7, 13).shape == (7, 13)


class TestFeatureExtraction:
    @pytest.fixture(scope="class")
    def stack(self, tiny_design):
        return FeatureExtractor(grid=16)(tiny_design)

    def test_shape_and_names(self, stack):
        assert stack.shape == (len(FEATURE_NAMES), 16, 16)

    def test_all_maps_finite_nonnegative(self, stack):
        assert np.all(np.isfinite(stack))
        assert np.all(stack >= 0)

    def test_macro_map_bounded_by_one(self, stack):
        assert stack[0].max() <= 1.0

    def test_rudy_is_h_plus_v_density(self, tiny_design):
        stack = FeatureExtractor(grid=16)(tiny_design)
        h, v, rudy = stack[1], stack[2], stack[3]
        # rudy normalization halves the sum of the separately normalized
        # maps (float32 maps: compare at float32 precision)
        np.testing.assert_allclose(rudy, (h + v) / 2.0, rtol=1e-5, atol=1e-6)

    def test_cell_density_tracks_cells(self, tiny_design):
        stack = FeatureExtractor(grid=16)(tiny_design)
        cell = stack[5]
        assert cell.sum() > 0

    def test_explicit_positions_override(self, tiny_design):
        g = 16
        n = tiny_design.num_instances
        x = np.zeros(n)
        y = np.zeros(n)
        stack = FeatureExtractor(grid=g)(tiny_design, x, y)
        # Everything at the origin: all cell density lands in bin (0, 0).
        assert stack[5][0, 0] > 0
        assert stack[5][g - 1, g - 1] == 0

    def test_resized(self, tiny_design):
        out = FeatureExtractor(grid=16).resized(tiny_design, 32)
        assert out.shape == (6, 32, 32)

    def test_convenience_wrapper(self, tiny_design):
        a = extract_features(tiny_design, grid=8)
        b = FeatureExtractor(grid=8)(tiny_design)
        np.testing.assert_allclose(a, b)

    def test_macro_map_marks_macro_positions(self, tiny_design):
        g = 16
        stack = FeatureExtractor(grid=g)(tiny_design)
        device = tiny_design.device
        macros = tiny_design.macro_indices()
        bx = (tiny_design.x[macros] / device.width * g).astype(int).clip(0, g - 1)
        by = (tiny_design.y[macros] / device.height * g).astype(int).clip(0, g - 1)
        assert np.all(stack[0][bx, by] > 0)
