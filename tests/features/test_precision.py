"""Float32 feature-pipeline certification (numcheck satellite).

The six feature maps ship as float32 while every rectangle
accumulation (``bincount`` + ``cumsum``) runs in float64 — the
REPRO806 invariant.  These tests certify both halves of that contract:

* a float64 *shadow run* of the identical extraction code bounds the
  end-to-end float32 error at grids 64 and 256 within an envelope
  derived from float32 unit roundoff (ops-counted, not tuned), and
* the numcheck flow lint statically proves the float64-only-inside-
  accumulation invariant on ``features/grids.py`` — and still fires on
  a mutated copy that narrows before accumulating.
"""

from __future__ import annotations

import inspect

import numpy as np
import pytest

import repro.features.grids as grids
from repro.features import FEATURE_NAMES, FeatureExtractor
from repro.numcheck import lint_source
from repro.numcheck.envelope import unit_roundoff

U32 = unit_roundoff(np.float32)

# Ops-counted envelope: after the float64 accumulation narrows, at most
# ~5 float32 roundings reach a raw map element (the narrowing itself,
# the normalization divides, the rudy add, the pre-accumulation pin
# weights); bilinear resize adds ~11 more (weight rounding plus four
# convex products and three adds).  A 3x headroom factor keeps the
# bound a certificate rather than a tuned constant.
CERT_REL_RAW = 16 * U32
CERT_REL_RESIZED = 48 * U32


class _Float64Numpy:
    """numpy proxy whose ``float32`` is float64: the shadow pipeline.

    Rebinding ``grids.np`` to this object makes every explicit
    ``astype(np.float32)`` / ``dtype=np.float32`` in the extraction
    code widen instead of narrow, so the shadow run exercises the
    *identical* code path at full precision.
    """

    float32 = np.float64

    def __getattr__(self, name):
        return getattr(np, name)


@pytest.fixture
def shadow_numpy(monkeypatch):
    monkeypatch.setattr(grids, "np", _Float64Numpy())


def _shadow_pair(design, grid, out=None, monkeypatch=None):
    """(float32 stack, float64 shadow stack) for the same placement."""
    extractor = FeatureExtractor(grid=grid)
    if out is None:
        f32 = extractor(design)
    else:
        f32 = extractor.resized(design, out)
    saved = grids.np
    grids.np = _Float64Numpy()
    try:
        if out is None:
            f64 = extractor(design)
        else:
            f64 = extractor.resized(design, out)
    finally:
        grids.np = saved
    return f32, f64


class TestFloat32Certification:
    """Shadow-run validation of the shipped float32 pipeline."""

    def test_raw_grid64_within_certified_envelope(self, tiny_design):
        f32, f64 = _shadow_pair(tiny_design, 64)
        assert f32.dtype == np.float32
        assert f64.dtype == np.float64
        for k, name in enumerate(FEATURE_NAMES):
            scale = max(float(np.abs(f64[k]).max()), 1.0)
            err = float(np.abs(f32[k].astype(np.float64) - f64[k]).max())
            assert err <= CERT_REL_RAW * scale, (
                f"{name}: float32 error {err:.3e} exceeds certified "
                f"{CERT_REL_RAW * scale:.3e} at grid 64"
            )

    def test_resized_grid256_within_certified_envelope(self, tiny_design):
        f32, f64 = _shadow_pair(tiny_design, 64, out=256)
        assert f32.shape == (len(FEATURE_NAMES), 256, 256)
        for k, name in enumerate(FEATURE_NAMES):
            scale = max(float(np.abs(f64[k]).max()), 1.0)
            err = float(np.abs(f32[k].astype(np.float64) - f64[k]).max())
            assert err <= CERT_REL_RESIZED * scale, (
                f"{name}: float32 error {err:.3e} exceeds certified "
                f"{CERT_REL_RESIZED * scale:.3e} at 256x256"
            )

    def test_shadow_pipeline_actually_widens(self, tiny_design, shadow_numpy):
        stack = FeatureExtractor(grid=16)(tiny_design)
        assert stack.dtype == np.float64

    def test_error_is_not_identically_zero(self, tiny_design):
        # The certificate must bound a *real* quantity: the float32 run
        # genuinely differs from the float64 shadow somewhere.
        f32, f64 = _shadow_pair(tiny_design, 64)
        assert float(np.abs(f32.astype(np.float64) - f64).max()) > 0.0


class TestAccumulationInvariantLint:
    """Static REPRO806 audit: float64-only inside the accumulations."""

    def test_grids_module_is_clean(self):
        source = inspect.getsource(grids)
        findings = lint_source(source, "repro/features/grids.py")
        assert findings == [], [f.message for f in findings]

    def test_narrowed_accumulation_fires(self):
        # The adversarial twin: narrowing *before* the accumulation is
        # exactly the hazard the shipped code avoids.
        bad = (
            "import numpy as np\n"
            "def f(diff):\n"
            "    diff_f32 = diff.astype(np.float32)\n"
            "    return diff_f32.cumsum(axis=0).cumsum(axis=1)\n"
        )
        findings = lint_source(bad, "twin.py")
        assert any(f.code == "REPRO806" for f in findings)

    def test_float32_weighted_bincount_fires(self):
        bad = (
            "import numpy as np\n"
            "def f(idx, v):\n"
            "    return np.bincount(idx, weights=v.astype(np.float32))\n"
        )
        findings = lint_source(bad, "twin.py")
        assert any(f.code == "REPRO806" for f in findings)
