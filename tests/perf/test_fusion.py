"""Fusion advisories: chain detection and hidden contraction workspaces."""

import numpy as np

from repro.ir.graph import Graph
from repro.perf.fusion import fusion_advisories


def _chain_graph(length=4, elems=64):
    g = Graph()
    x = g.add("x", (), (elems,), np.float32, kind="input")
    prev = x.id
    ops = ["add", "multiply", "sqrt", "tanh", "square"]
    for i in range(length):
        node = g.add(ops[i % len(ops)], (prev,), (elems,), np.float32,
                     bytes=elems * 4, src=f"f.py:{i + 2}")
        prev = node.id
    g.outputs = [prev]
    return g, elems * 4


class TestChains:
    def test_four_op_chain_found(self):
        g, link_bytes = _chain_graph(length=4)
        result = fusion_advisories(g, min_chain=3)
        assert result["unfused_chains"] == 1
        (chain,) = result["chains"]
        assert chain["length"] == 4
        # Interior buffers (all but the last link) are transient; fused
        # execution keeps one scratch.
        assert chain["transient_bytes"] == 3 * link_bytes
        assert chain["predicted_saving_bytes"] == 2 * link_bytes
        assert [f.code for f in result["findings"]] == ["REPRO305"]

    def test_short_chain_below_threshold(self):
        g, _ = _chain_graph(length=2)
        assert fusion_advisories(g, min_chain=3)["unfused_chains"] == 0

    def test_fanout_breaks_the_chain(self):
        # A node with two consumers cannot be fused into a single
        # pointwise pipeline: its value must be materialized anyway.
        g = Graph()
        x = g.add("x", (), (64,), np.float32, kind="input")
        a = g.add("add", (x.id,), (64,), np.float32, bytes=256)
        b = g.add("multiply", (a.id,), (64,), np.float32, bytes=256)
        c = g.add("sqrt", (b.id,), (64,), np.float32, bytes=256)
        d = g.add("tanh", (b.id,), (64,), np.float32, bytes=256)  # 2nd user
        g.outputs = [c.id, d.id]
        assert fusion_advisories(g, min_chain=3)["unfused_chains"] == 0

    def test_non_elementwise_op_breaks_the_chain(self):
        g = Graph()
        x = g.add("x", (), (64,), np.float32, kind="input")
        a = g.add("add", (x.id,), (64,), np.float32, bytes=256)
        m = g.add("matmul", (a.id,), (64,), np.float32, bytes=256)
        b = g.add("sqrt", (m.id,), (64,), np.float32, bytes=256)
        g.outputs = [b.id]
        assert fusion_advisories(g, min_chain=3)["unfused_chains"] == 0


class TestWorkspaces:
    def test_workspace_bytes_reported(self):
        g = Graph()
        x = g.add("x", (), (8, 8), np.float32, kind="input")
        e = g.add("einsum", (x.id,), (8, 8), np.float32, bytes=256,
                  src="f.py:4", meta={"workspace_bytes": 4096})
        g.outputs = [e.id]
        result = fusion_advisories(g)
        assert result["workspace_bytes"] == 4096
        (ws,) = result["workspaces"]
        assert ws["node"] == e.id
        assert any(f.code == "REPRO311" for f in result["findings"])

    def test_top_k_caps_findings_not_totals(self):
        g = Graph()
        x = g.add("x", (), (8,), np.float32, kind="input")
        for i in range(5):
            g.add("einsum", (x.id,), (8,), np.float32, bytes=32,
                  src=f"f.py:{i + 2}", meta={"workspace_bytes": 1000 + i})
        result = fusion_advisories(g, top_k=2)
        assert len([f for f in result["findings"] if f.code == "REPRO311"]) == 2
        # The byte total still covers every workspace.
        assert result["workspace_bytes"] == sum(1000 + i for i in range(5))
