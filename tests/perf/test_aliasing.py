"""Copy/alias classification on synthetic graphs + AST defensive-copy audit."""

import numpy as np

from repro.ir.graph import Graph
from repro.perf.aliasing import alias_analysis, audit_copy_file, audit_copies


class TestAliasAnalysis:
    def test_last_read_copy_of_intermediate_is_redundant(self):
        g = Graph()
        x = g.add("x", (), (64,), np.float32, kind="input")
        m = g.add("multiply", (x.id, x.id), (64,), np.float32, bytes=256,
                  src="f.py:2")
        cp = g.add("copy", (m.id,), (64,), np.float32, bytes=256,
                   src="f.py:3")
        g.outputs = [cp.id]
        result = alias_analysis(g)
        assert result["redundant_copies"] == 1
        assert result["redundant_copy_bytes"] == 256
        assert [f.code for f in result["findings"]] == ["REPRO303"]
        (copy,) = result["copies"]
        assert copy["classification"] == "redundant"
        assert copy["source_node"] == m.id

    def test_copy_of_caller_visible_input_is_required(self):
        # Copying an input is the one copy that *protects* caller state.
        g = Graph()
        x = g.add("x", (), (64,), np.float32, kind="input")
        cp = g.add("copy", (x.id,), (64,), np.float32, bytes=256,
                   src="f.py:2")
        g.outputs = [cp.id]
        result = alias_analysis(g)
        assert result["redundant_copies"] == 0
        assert result["required_copies"] == 1

    def test_copy_with_later_read_of_source_is_required(self):
        g = Graph()
        x = g.add("x", (), (64,), np.float32, kind="input")
        m = g.add("multiply", (x.id, x.id), (64,), np.float32, bytes=256)
        cp = g.add("copy", (m.id,), (64,), np.float32, bytes=256)
        a = g.add("add", (m.id, cp.id), (64,), np.float32, bytes=256)
        g.outputs = [a.id]
        result = alias_analysis(g)
        # m is read again (by the add) after the copy.
        assert result["redundant_copies"] == 0

    def test_broadcast_blowup_flagged(self):
        g = Graph()
        b = g.add("b", (), (4,), np.float32, kind="const")  # 16 bytes
        out = g.add("add", (b.id, b.id), (64, 4), np.float32,
                    bytes=64 * 4 * 4, src="f.py:9")
        g.outputs = [out.id]
        result = alias_analysis(g)
        assert result["broadcast_blowups"] == 1
        (blowup,) = result["blowups"]
        assert blowup["largest_input_bytes"] == 16
        assert blowup["wasted_bytes"] == 64 * 4 * 4 - 16
        assert any(f.code == "REPRO304" for f in result["findings"])

    def test_same_size_elementwise_not_a_blowup(self):
        g = Graph()
        x = g.add("x", (), (64,), np.float32, kind="input")
        out = g.add("add", (x.id, x.id), (64,), np.float32, bytes=256)
        g.outputs = [out.id]
        assert alias_analysis(g)["broadcast_blowups"] == 0


class TestAuditCopies:
    def _audit(self, tmp_path, source):
        path = tmp_path / "flow.py"
        path.write_text(source)
        return audit_copy_file(path)

    def test_fancy_index_copy_flagged(self, tmp_path):
        findings = self._audit(tmp_path, "y = arr[idx].copy()\n")
        assert [f.code for f in findings] == ["REPRO303"]

    def test_slice_copy_not_flagged(self, tmp_path):
        # A slice is a view, so the copy is doing real work.
        findings = self._audit(tmp_path, "y = arr[1:5].copy()\n")
        assert findings == []

    def test_copy_before_early_return_flagged(self, tmp_path):
        findings = self._audit(
            tmp_path,
            "def refine(x, done):\n"
            "    x = x.copy()\n"
            "    if done:\n"
            "        return x\n"
            "    x[0] = 1.0\n"
            "    return x\n",
        )
        assert [f.code for f in findings] == ["REPRO303"]

    def test_copy_mutated_before_return_not_flagged(self, tmp_path):
        findings = self._audit(
            tmp_path,
            "def refine(x):\n"
            "    x = x.copy()\n"
            "    x[0] = 1.0\n"
            "    return x\n",
        )
        assert findings == []

    def test_chained_astype_flagged(self, tmp_path):
        findings = self._audit(
            tmp_path,
            "import numpy as np\n"
            "y = x.astype(np.float64).astype(np.float32)\n",
        )
        assert "REPRO309" in [f.code for f in findings]

    def test_noqa_suppresses(self, tmp_path):
        findings = self._audit(
            tmp_path, "y = arr[idx].copy()  # noqa: REPRO303\n"
        )
        assert findings == []

    def test_repo_flow_has_no_redundant_copies(self):
        # The confirmed findings (maze.refine, expand_placement,
        # density) are fixed in this PR; the audit must stay clean.
        result = audit_copies()
        assert result["audited_files"] > 0
        assert [str(f) for f in result["findings"]] == []
