"""Regression locks for the findings fixed in this PR.

Two families:

* dtype stability — the feature pipeline and every registry model stay
  float32 end-to-end under float32 deployment (the gelu strong-scalar
  and allocator-default regressions fixed here must not creep back);
* no-mutation properties — removing defensive copies (maze refiner,
  cluster expansion, density) must never let callee writes leak into
  caller arrays.
"""

import numpy as np
import pytest

from repro import nn
from repro.features import extract_features
from repro.models import build_model
from repro.netlist import MLCAD2023_SPECS, generate_design
from repro.perf import default_dtype


@pytest.fixture(scope="module")
def design():
    return generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)


class TestFloat32Pipeline:
    def test_feature_stack_is_float32(self, design):
        stack = extract_features(design, grid=32)
        assert stack.dtype == np.float32

    @pytest.mark.parametrize("name", ("unet", "pgnn", "pros2", "ours"))
    def test_forward_stays_float32(self, name, design):
        stack = extract_features(design, grid=32)
        with default_dtype(np.float32):
            model = build_model(name, preset="tiny", grid=32, seed=0)
            out = model(nn.Tensor(stack[None]))
        assert out.data.dtype == np.float32

    def test_gelu_keeps_float32(self):
        # The NEP-50 regression: a strong np.float64 sqrt(2/pi) constant
        # used to widen every float32 gelu activation.
        with default_dtype(np.float32):
            x = nn.Tensor(np.linspace(-3, 3, 64, dtype=np.float32))
            assert x.gelu().data.dtype == np.float32


class TestNoMutation:
    def test_refiner_never_mutates_caller_usage(self):
        from repro.routing import MazeRefiner, path_edges

        paths = [[(0, 3), (1, 3), (2, 3), (3, 3), (4, 3)] for _ in range(6)]
        h_use = np.zeros((7, 8))
        v_use = np.zeros((8, 7))
        for p in paths:
            for e in path_edges(p)[0]:
                h_use[e] += 1.0
        h_snap, v_snap = h_use.copy(), v_use.copy()
        paths_snap = [list(p) for p in paths]

        h2, v2, new_paths, n = MazeRefiner(capacity=4.0).refine(
            h_use, v_use, paths
        )
        assert n > 0  # the overflowing case actually reroutes
        np.testing.assert_array_equal(h_use, h_snap)
        np.testing.assert_array_equal(v_use, v_snap)
        assert paths == paths_snap
        # And the results are writable without touching the inputs.
        h2 += 1.0
        np.testing.assert_array_equal(h_use, h_snap)

    def test_refiner_noop_path_allocates_nothing(self):
        from repro.routing import MazeRefiner

        h_use = np.zeros((7, 8))
        v_use = np.zeros((8, 7))
        h2, v2, _, n = MazeRefiner(capacity=4.0).refine(
            h_use, v_use, [[(0, 0), (1, 0)]]
        )
        assert n == 0
        # No overflow -> the usage maps pass through uncopied.
        assert h2 is h_use and v2 is v_use

    def test_expand_placement_results_are_fresh(self, design):
        from repro.netlist import cluster_cells, expand_placement

        clustered, mapping = cluster_cells(design, max_lut=16.0, seed=0)
        x_snap, y_snap = clustered.x.copy(), clustered.y.copy()
        x, y = expand_placement(clustered, mapping)
        # Advanced indexing materializes fresh arrays: writing to the
        # expansion must not leak back into the clustered design.
        assert not np.shares_memory(x, clustered.x)
        assert not np.shares_memory(y, clustered.y)
        x += 123.0
        y += 123.0
        np.testing.assert_array_equal(clustered.x, x_snap)
        np.testing.assert_array_equal(clustered.y, y_snap)
