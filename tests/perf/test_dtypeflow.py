"""Dtype dataflow: float64 creep detection on synthetic graphs + AST audit."""

import numpy as np

from repro.ir.graph import Graph
from repro.perf.dtypeflow import audit_dtype_file, audit_dtypes, dtype_flow


def _widened_graph():
    """float32 input * strong float64 const -> two widened ops -> cast back."""
    g = Graph()
    x = g.add("x", (), (64,), np.float32, kind="input", name="x")
    c = g.add("c", (), (), np.float64, kind="const", name="c",
              src="model.py:3")
    m = g.add("multiply", (x.id, c.id), (64,), np.float64, bytes=64 * 8,
              src="model.py:4")
    a = g.add("add", (m.id, x.id), (64,), np.float64, bytes=64 * 8,
              src="model.py:5")
    cast = g.add("cast", (a.id,), (64,), np.float32, bytes=64 * 4,
                 src="model.py:6")
    g.outputs = [cast.id]
    return g, c, m


class TestDtypeFlow:
    def test_widened_ops_counted(self):
        g, _, _ = _widened_graph()
        result = dtype_flow(g, expected=np.float32)
        assert result["widened_ops"] == 2
        assert result["widened_bytes"] == 2 * 64 * 8

    def test_origin_attributed_to_strong_const(self):
        g, c, m = _widened_graph()
        result = dtype_flow(g, expected=np.float32)
        (origin,) = result["origins"]
        assert origin["origin"] == c.id
        assert origin["origin_kind"] == "const"
        assert origin["tainted_ops"] == 2
        # float64 -> float32 halves the tainted traffic.
        assert origin["predicted_saving_bytes"] == origin["tainted_bytes"] // 2
        # The finding anchors at the first widened op (the const has no
        # useful call-site of its own in synthetic graphs).
        codes = [f.code for f in result["findings"]]
        assert "REPRO301" in codes

    def test_cast_back_is_churn(self):
        g, _, _ = _widened_graph()
        result = dtype_flow(g, expected=np.float32)
        assert result["cast_churn"] == 1
        assert any(f.code == "REPRO307" for f in result["findings"])

    def test_weak_scalar_never_a_widener(self):
        # NEP 50: an exact python scalar promotes weakly; the trace marks
        # it meta["weak"] and the chain stays float32 -> nothing to flag.
        g = Graph()
        x = g.add("x", (), (64,), np.float32, kind="input")
        w = g.add("w", (), (), np.float64, kind="const",
                  meta={"weak": True})
        g.add("multiply", (x.id, w.id), (64,), np.float32, bytes=64 * 4,
              src="model.py:9")
        result = dtype_flow(g, expected=np.float32)
        assert result["widened_ops"] == 0
        assert result["origins"] == []
        assert result["findings"] == []

    def test_same_dtype_cast_is_churn(self):
        g = Graph()
        x = g.add("x", (), (64,), np.float32, kind="input")
        g.add("cast", (x.id,), (64,), np.float32, bytes=64 * 4,
              src="model.py:2")
        result = dtype_flow(g, expected=np.float32)
        assert result["cast_churn"] == 1

    def test_clean_float32_graph_is_silent(self):
        g = Graph()
        x = g.add("x", (), (64,), np.float32, kind="input")
        g.add("add", (x.id, x.id), (64,), np.float32, bytes=64 * 4)
        result = dtype_flow(g, expected=np.float32)
        assert result["findings"] == []
        assert result["predicted_saving_bytes"] == 0


class TestAuditDtypes:
    def _audit(self, tmp_path, source):
        path = tmp_path / "pipe.py"
        path.write_text(source)
        return audit_dtype_file(path)

    def test_astype_float64_flagged(self, tmp_path):
        findings = self._audit(
            tmp_path, "import numpy as np\ny = x.astype(np.float64)\n"
        )
        assert [f.code for f in findings] == ["REPRO301"]

    def test_explicit_dtype_float64_flagged(self, tmp_path):
        findings = self._audit(
            tmp_path,
            "import numpy as np\na = np.zeros(8, dtype=np.float64)\n",
        )
        assert [f.code for f in findings] == ["REPRO301"]

    def test_default_allocator_flagged(self, tmp_path):
        findings = self._audit(
            tmp_path, "import numpy as np\na = np.zeros(8)\n"
        )
        assert [f.code for f in findings] == ["REPRO302"]

    def test_positional_dtype_not_flagged(self, tmp_path):
        # np.zeros(n, np.int64): the second positional argument *is* the
        # dtype, so the default-float64 rule must stay quiet.
        findings = self._audit(
            tmp_path, "import numpy as np\na = np.zeros(8, np.int64)\n"
        )
        assert findings == []

    def test_float32_allocation_not_flagged(self, tmp_path):
        findings = self._audit(
            tmp_path,
            "import numpy as np\na = np.zeros(8, dtype=np.float32)\n",
        )
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = self._audit(
            tmp_path,
            "import numpy as np\n"
            "a = x.astype(np.float64)  # noqa: REPRO301\n",
        )
        assert findings == []

    def test_repo_pipeline_is_float32_clean(self):
        # The fixed feature/train pipeline must stay clean (modulo
        # explicitly # noqa-justified call sites, which the audit drops).
        result = audit_dtypes()
        assert result["audited_files"] > 0
        assert [str(f) for f in result["findings"]] == []
