"""AST loop audit: per-element loops, in-loop allocation, ufunc.at scatters."""

from repro.perf.loops import audit_loop_file, audit_loops


def _audit(tmp_path, source):
    path = tmp_path / "flow.py"
    path.write_text(source)
    return audit_loop_file(path)


class TestLoopAudit:
    def test_loop_var_subscript_flagged_once_per_loop(self, tmp_path):
        findings = _audit(
            tmp_path,
            "def f(grid, w, n):\n"
            "    acc = 0.0\n"
            "    for i in range(n):\n"
            "        acc += grid[i] * w[i]\n"
            "    return acc\n",
        )
        # Two subscripts, one loop -> one finding.
        assert [f.code for f in findings] == ["REPRO306"]
        assert "2 subscript(s)" in findings[0].message

    def test_loop_without_element_indexing_silent(self, tmp_path):
        findings = _audit(
            tmp_path,
            "def f(rows):\n"
            "    total = 0.0\n"
            "    for row in rows:\n"
            "        total += row.sum()\n"
            "    return total\n",
        )
        assert findings == []

    def test_allocation_inside_loop_flagged(self, tmp_path):
        findings = _audit(
            tmp_path,
            "import numpy as np\n"
            "def f(n):\n"
            "    out = []\n"
            "    for _ in range(n):\n"
            "        out.append(np.zeros(4, dtype=np.float32))\n"
            "    return out\n",
        )
        assert [f.code for f in findings] == ["REPRO308"]

    def test_allocation_outside_loop_silent(self, tmp_path):
        findings = _audit(
            tmp_path,
            "import numpy as np\n"
            "def f(n):\n"
            "    buf = np.zeros(4, dtype=np.float32)\n"
            "    for _ in range(n):\n"
            "        buf += 1.0\n"
            "    return buf\n",
        )
        assert findings == []

    def test_method_copy_in_loop_flagged(self, tmp_path):
        findings = _audit(
            tmp_path,
            "def f(xs):\n"
            "    return [x.copy() for x in xs] or None\n"
            "def g(xs, n):\n"
            "    out = []\n"
            "    while n:\n"
            "        out.append(xs.copy())\n"
            "        n -= 1\n"
            "    return out\n",
        )
        assert [f.code for f in findings] == ["REPRO308"]

    def test_ufunc_at_flagged_with_bincount_hint(self, tmp_path):
        findings = _audit(
            tmp_path,
            "import numpy as np\n"
            "def f(out, idx, vals):\n"
            "    np.add.at(out, idx, vals)\n",
        )
        assert [f.code for f in findings] == ["REPRO312"]
        assert "bincount" in findings[0].message

    def test_non_add_ufunc_at_hints_matching_dtypes(self, tmp_path):
        findings = _audit(
            tmp_path,
            "import numpy as np\n"
            "def f(out, idx, vals):\n"
            "    np.minimum.at(out, idx, vals)\n",
        )
        assert [f.code for f in findings] == ["REPRO312"]
        assert "dtypes equal" in findings[0].message

    def test_noqa_suppresses(self, tmp_path):
        findings = _audit(
            tmp_path,
            "import numpy as np\n"
            "def f(out, idx, vals):\n"
            "    np.add.at(out, idx, vals)  # noqa: REPRO312\n",
        )
        assert findings == []

    def test_repo_audit_runs_and_sorts(self):
        result = audit_loops()
        assert result["audited_files"] > 0
        keys = [(f.path, f.line, f.col) for f in result["findings"]]
        assert keys == sorted(keys)
