"""Measured-vs-predicted validation: each cost claim holds within its bound."""

import pytest

from repro.perf.validate import (
    DEFAULT_BOUND,
    validate_bundle,
    validate_claim,
)

CLAIM = 2 * 1024 * 1024  # small scenarios keep the suite fast


class TestScenarios:
    def test_float64_creep_halves_traffic(self):
        result = validate_claim("float64_creep", CLAIM)
        assert result.ok
        assert result.rel_err <= DEFAULT_BOUND
        assert result.predicted_bytes > 0

    def test_redundant_copy_costs_its_bytes(self):
        result = validate_claim("redundant_copy", CLAIM)
        assert result.ok
        assert result.rel_err <= DEFAULT_BOUND

    def test_unfused_chain_transients_measured(self):
        result = validate_claim("unfused_chain", CLAIM, length=4)
        assert result.ok
        assert result.rel_err <= DEFAULT_BOUND
        assert result.detail["length"] == 4

    def test_scatter_at_fallback_is_slower(self):
        # Timing-only claim: the mixed-dtype ufunc.at fallback must
        # really lose to bincount accumulation.
        result = validate_claim("scatter_at")
        assert result.ok
        assert result.speedup > 1.0
        assert result.predicted_bytes == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown claim kind"):
            validate_claim("warp_drive", CLAIM)

    def test_result_serializes(self):
        d = validate_claim("redundant_copy", CLAIM).to_dict()
        assert d["kind"] == "redundant_copy"
        assert set(d) >= {
            "predicted_bytes", "measured_bytes", "rel_err",
            "time_before_s", "time_after_s", "speedup", "ok",
        }


class TestBundle:
    def test_same_kind_validated_once_at_largest(self):
        out = validate_bundle(
            [
                {"kind": "redundant_copy", "bytes": CLAIM, "src": "a.py:1"},
                {"kind": "redundant_copy", "bytes": CLAIM // 2,
                 "src": "b.py:2"},
            ]
        )
        assert out["validated"] == 1
        assert out["failed"] == 0
        assert out["findings"] == []

    def test_unknown_kinds_skipped(self):
        out = validate_bundle([{"kind": "not_a_scenario", "bytes": CLAIM}])
        assert out["validated"] == 0
        assert out["findings"] == []

    def test_failure_becomes_blocking_repro310(self, monkeypatch):
        # Force a failed measurement to check the reporting path without
        # depending on a machine where a real claim is wrong.
        import repro.perf.validate as mod

        real = mod.validate_claim

        def rigged(kind, claim_bytes=0, *, bound=DEFAULT_BOUND, **kw):
            result = real(kind, claim_bytes, bound=bound, **kw)
            result.ok = False
            result.rel_err = 0.5
            return result

        monkeypatch.setattr(mod, "validate_claim", rigged)
        out = mod.validate_bundle(
            [{"kind": "redundant_copy", "bytes": CLAIM, "src": "maze.py:166"}]
        )
        assert out["failed"] == 1
        (finding,) = out["findings"]
        assert finding.code == "REPRO310"
        assert finding.path == "maze.py"
        assert finding.line == 166
