"""Perf report driver: model/flow reports, baseline round-trip and drift."""

import numpy as np
import pytest

from repro.perf import (
    DEPLOY_DTYPE,
    SCHEMA,
    baseline_from_bundle,
    check_perf_baseline,
    perfcheck_flow,
    perfcheck_model,
    trace_model_at,
)


@pytest.fixture(scope="module")
def unet_report():
    # validate=False: the measurement harness has its own tests; here we
    # exercise the static passes and report plumbing.
    return perfcheck_model("unet", preset="tiny", grid=32, validate=False)


@pytest.fixture(scope="module")
def bundle(unet_report):
    return {
        "schema": SCHEMA,
        "reports": [unet_report],
        "flow": None,
        "distinct_codes": sorted(unet_report["by_code"]),
        "failures": list(unet_report["failures"]),
    }


class TestTraceModelAt:
    def test_traces_at_deploy_dtype(self):
        graph = trace_model_at("unet", preset="tiny", grid=32)
        assert len(graph) > 0
        assert graph.meta["grid"] == 32
        # Params materialize at float32 under the dtype context, so any
        # float64 node would be genuine creep.
        params = [n for n in graph if n.kind == "param"]
        assert params
        assert all(p.dtype == np.dtype(DEPLOY_DTYPE) for p in params)


class TestModelReport:
    def test_schema_and_sections(self, unet_report):
        assert unet_report["schema"] == SCHEMA
        assert unet_report["target"] == "model"
        assert unet_report["dtype"] == "float32"
        for section in ("dtype_flow", "aliasing", "fusion", "validation",
                        "by_code", "findings", "failures"):
            assert section in unet_report

    def test_deployment_graph_is_float32_clean(self, unet_report):
        # The gelu/pipeline fixes hold: no widened traffic at all.
        assert unet_report["dtype_flow"]["widened_ops"] == 0
        assert unet_report["failures"] == []

    def test_findings_serialized(self, unet_report):
        for finding in unet_report["findings"]:
            assert set(finding) >= {"path", "line", "code", "message"}
            assert finding["code"].startswith("REPRO3")


class TestFlowReport:
    def test_flow_audit_shape(self):
        report = perfcheck_flow(validate=False)
        assert report["target"] == "flow"
        assert report["audited_files"] > 0
        # The remaining flow advisories are loop-shaped, never blocking.
        assert report["failures"] == []
        assert set(report["by_code"]) <= {
            "REPRO303", "REPRO306", "REPRO308", "REPRO312"
        }
        assert "REPRO306" in report["by_code"]


class TestBaseline:
    def test_round_trip_is_clean(self, bundle):
        baseline = baseline_from_bundle(bundle)
        assert check_perf_baseline(bundle, baseline) == []

    def test_count_drift_detected(self, bundle):
        baseline = baseline_from_bundle(bundle)
        baseline["entries"][0]["graph_nodes"] += 1
        problems = check_perf_baseline(bundle, baseline)
        assert len(problems) == 1
        assert "graph_nodes" in problems[0]

    def test_missing_entry_detected(self, bundle):
        baseline = baseline_from_bundle(bundle)
        baseline["entries"] = []
        problems = check_perf_baseline(bundle, baseline)
        assert any("missing from baseline" in p for p in problems)

    def test_flow_code_drift_detected(self, bundle):
        baseline = baseline_from_bundle(bundle)
        baseline["flow_codes"] = {"REPRO306": 999}
        problems = check_perf_baseline(bundle, baseline)
        assert any("REPRO306" in p for p in problems)

    def test_fixes_section_ignored_by_checker(self, bundle):
        baseline = baseline_from_bundle(bundle)
        baseline["fixes"] = [{"finding": "x", "measured_speedup": 2.0}]
        assert check_perf_baseline(bundle, baseline) == []

    def test_shipped_baseline_has_measured_fixes(self):
        # The repo baseline must carry the before/after record for the
        # findings fixed in this PR (informational; checker ignores it).
        import json
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "benchmarks"
        data = json.loads((path / "perf_baseline.json").read_text())
        fixes = data["fixes"]
        assert len(fixes) >= 2
        assert any(
            f.get("measured_speedup") and f["measured_speedup"] > 1.0
            for f in fixes
        )
        for fix in fixes:
            assert "before" in fix and "after" in fix
