"""Adversarial verifier tests: every corruption trips its REPRO40x.

Each test takes a plan that verifies clean, applies one targeted
corruption, re-seals the content hash (so REPRO408 stays quiet and the
*semantic* check under test must fire), and asserts the matching code.
"""

import dataclasses

import numpy as np

from repro.ir.graph import Graph
from repro.ir.trace import trace_model
from repro.schedule import (
    ArenaSlot,
    CopyElision,
    FusionGroup,
    compile_plan,
    verify_plan,
)

F32 = np.dtype(np.float32)


def codes(findings):
    return {f.code for f in findings}


def corrupted(plan, **changes):
    """A re-sealed copy of ``plan`` with ``changes`` applied."""
    return dataclasses.replace(plan, **changes).seal()


class TestRepro401Overlap:
    def test_overlapping_live_ranges_same_offset(self, chain_graph):
        plan = compile_plan(chain_graph)
        # multiply (%1) is read by exp (%2): both are live at step 2,
        # so giving exp the multiply's offset is a genuine clobber.
        slots = dict(plan.arena_slots)
        slots[2] = ArenaSlot(offset=slots[1].offset, bytes=slots[2].bytes)
        bad = corrupted(plan, arena_slots=slots)
        found = verify_plan(bad, chain_graph)
        assert "REPRO401" in codes(found)

    def test_grad_slot_clobbering_activation(self):
        from repro.ir.trace import trace_tape
        from repro.models.registry import build_model

        model = build_model("unet", preset="tiny", grid=32)
        graph, tape = trace_tape(
            model, (1, 6, 32, 32), input_vrange=(0.0, 1.0), name="unet"
        )
        plan = compile_plan(graph, tape)
        assert verify_plan(plan, graph, tape) == []
        # Point some gradient buffer at a tape-retained activation slot:
        # grads live to the end, retained activations past their
        # backward position — guaranteed overlap.
        pid, gslot = next(iter(sorted(plan.grad_slots.items())))
        victim = max(plan.arena_slots.items(), key=lambda kv: kv[1].bytes)
        grads = dict(plan.grad_slots)
        grads[pid] = ArenaSlot(offset=victim[1].offset, bytes=gslot.bytes)
        bad = corrupted(plan, grad_slots=grads)
        assert "REPRO401" in codes(verify_plan(bad, graph, tape))


class TestRepro402Fusion:
    def test_multi_consumer_edge_rejected(self, required_copy_graph):
        # multiply (%1) feeds both the copy and the final add: fusing
        # across it would compute the add against a kernel temporary.
        plan = compile_plan(required_copy_graph)
        forged = plan.fusion_groups + (
            FusionGroup(
                nodes=(1, 3), ops=("multiply", "add"),
                proof={"single_consumer": True},
            ),
        )
        bad = corrupted(plan, fusion_groups=forged)
        assert "REPRO402" in codes(verify_plan(bad, required_copy_graph))

    def test_view_escaping_interior_rejected(self):
        g = Graph()
        g.meta["dtype"] = "float32"
        x = g.add("x", (), (64,), F32, kind="input", bytes=256)
        m = g.add("multiply", (x.id, x.id), (64,), F32, bytes=256, flops=64)
        e = g.add("exp", (m.id,), (64,), F32, bytes=256, flops=64)
        v = g.add("slice", (m.id,), (32,), F32, alias_of=m.id)
        out = g.add("add", (e.id, v.id), (64,), F32, bytes=256, flops=64)
        g.outputs = [out.id]
        plan = compile_plan(g)
        assert verify_plan(plan, g) == []
        # m has two readers (exp and the view): it can never be fused
        # away as an interior.
        assert all(m.id not in grp.nodes[:-1] for grp in plan.fusion_groups)
        forged = (
            FusionGroup(nodes=(m.id, e.id), ops=("multiply", "exp"),
                        proof={"no_view_escape": True}),
        )
        bad = corrupted(plan, fusion_groups=forged)
        found = verify_plan(bad, g)
        assert "REPRO402" in codes(found)
        assert any("view escapes" in f.message for f in found)

    def test_non_pointwise_member_rejected(self, elidable_copy_graph):
        plan = compile_plan(elidable_copy_graph)
        forged = (
            FusionGroup(nodes=(1, 2), ops=("multiply", "copy"), proof={}),
        )
        bad = corrupted(
            plan, fusion_groups=forged, copy_elisions=(),
            arena_slots={**plan.arena_slots,
                         2: ArenaSlot(offset=plan.arena_bytes, bytes=256)},
            arena_bytes=plan.arena_bytes + 256,
        )
        assert "REPRO402" in codes(verify_plan(bad, elidable_copy_graph))


class TestRepro403Elision:
    def test_eliding_a_required_copy_rejected(self, required_copy_graph):
        """The ISSUE's named corruption: elide a copy whose source is
        read again afterwards."""
        plan = compile_plan(required_copy_graph)
        cp = required_copy_graph.meta["copy"]
        src = required_copy_graph.meta["copy_src"]
        slots = dict(plan.arena_slots)
        del slots[cp]  # an elided copy owns no slot
        bad = corrupted(
            plan,
            copy_elisions=(CopyElision(copy=cp, source=src),),
            arena_slots=slots,
        )
        found = verify_plan(bad, required_copy_graph)
        assert "REPRO403" in codes(found)
        assert any("read again" in f.message for f in found)

    def test_eliding_an_output_source_rejected(self, chain_graph):
        plan = compile_plan(chain_graph)
        # Forge an elision whose "copy" is the final tanh: wrong op.
        bad = corrupted(
            plan, copy_elisions=(CopyElision(copy=3, source=2),)
        )
        assert "REPRO403" in codes(verify_plan(bad, chain_graph))


class TestRepro404Topology:
    def test_live_node_claimed_dead(self, chain_graph):
        plan = compile_plan(chain_graph)
        bad = corrupted(
            plan,
            order=tuple(n for n in plan.order if n != 2),
            dead=plan.dead + (2,),
            node_pins={k: v for k, v in plan.node_pins.items() if k != 2},
            arena_slots={k: v for k, v in plan.arena_slots.items() if k != 2},
        )
        assert "REPRO404" in codes(verify_plan(bad, chain_graph))

    def test_bogus_cse_claim(self, dead_cse_graph):
        plan = compile_plan(dead_cse_graph)
        out = dead_cse_graph.outputs[0]
        rep = dead_cse_graph.meta["rep"]
        bad = corrupted(
            plan,
            order=tuple(n for n in plan.order if n != out),
            cse={**plan.cse, out: rep},  # add(...) is NOT a multiply
            node_pins={k: v for k, v in plan.node_pins.items() if k != out},
            arena_slots={k: v for k, v in plan.arena_slots.items()
                         if k != out},
        )
        found = verify_plan(bad, dead_cse_graph)
        assert "REPRO404" in codes(found)
        assert any("not structurally equal" in f.message for f in found)

    def test_missing_arena_slot(self, chain_graph):
        plan = compile_plan(chain_graph)
        slots = dict(plan.arena_slots)
        del slots[1]
        bad = corrupted(plan, arena_slots=slots)
        found = verify_plan(bad, chain_graph)
        assert "REPRO404" in codes(found)
        assert any("no arena slot" in f.message for f in found)


class TestRepro405Ordering:
    def test_non_canonical_order(self, chain_graph):
        plan = compile_plan(chain_graph)
        shuffled = (plan.order[1], plan.order[0]) + plan.order[2:]
        bad = corrupted(plan, order=shuffled)
        assert "REPRO405" in codes(verify_plan(bad, chain_graph))


class TestRepro406Arena:
    def test_arena_exceeding_planner_bound(self, chain_graph):
        plan = compile_plan(chain_graph)
        bad = corrupted(plan, bound_bytes=plan.arena_bytes - 1)
        found = verify_plan(bad, chain_graph)
        assert "REPRO406" in codes(found)

    def test_slot_outside_arena(self, chain_graph):
        plan = compile_plan(chain_graph)
        slots = dict(plan.arena_slots)
        slots[1] = ArenaSlot(offset=plan.arena_bytes, bytes=slots[1].bytes)
        bad = corrupted(plan, arena_slots=slots)
        assert "REPRO406" in codes(verify_plan(bad, chain_graph))


class TestRepro407Dtype:
    def test_contradicted_node_pin(self, chain_graph):
        plan = compile_plan(chain_graph)
        pins = dict(plan.node_pins)
        pins[1] = "float64"
        bad = corrupted(plan, node_pins=pins)
        found = verify_plan(bad, chain_graph)
        assert "REPRO407" in codes(found)

    def test_contradicted_plan_dtype(self, chain_graph):
        plan = compile_plan(chain_graph)
        bad = corrupted(plan, dtype_pin="float64")
        assert "REPRO407" in codes(verify_plan(bad, chain_graph))


class TestRepro408Staleness:
    def test_tampered_content_without_reseal(self, chain_graph):
        plan = compile_plan(chain_graph)
        tampered = dataclasses.replace(plan, arena_bytes=plan.arena_bytes + 8)
        # NOT resealed: the content hash no longer matches.
        found = verify_plan(tampered, chain_graph)
        assert "REPRO408" in codes(found)

    def test_plan_against_different_graph(self):
        small = trace_model("unet", preset="tiny", grid=32)
        large = trace_model("unet", preset="tiny", grid=64)
        plan = compile_plan(small)
        found = verify_plan(plan, large)
        assert "REPRO408" in codes(found)

    def test_clean_plan_has_no_findings(self, chain_graph):
        plan = compile_plan(chain_graph)
        assert verify_plan(plan, chain_graph) == []
