"""Shared synthetic graphs for the schedule tests.

Hand-built :class:`repro.ir.Graph` objects keep the compiler/verifier
behavior under test explicit: every node, byte count and edge is
spelled out, so a test failure points at a semantic change rather than
at a model architecture detail.
"""

import numpy as np
import pytest

from repro.ir.graph import Graph

F32 = np.dtype(np.float32)
NBYTES = 64 * 4  # every synthetic tensor is 64 float32 elements


def make_chain_graph() -> Graph:
    """x -> mul -> exp -> tanh -> out: one clean 3-node fusable chain."""
    g = Graph()
    g.meta["dtype"] = "float32"
    x = g.add("x", (), (64,), F32, kind="input", bytes=NBYTES)
    m = g.add("multiply", (x.id, x.id), (64,), F32, bytes=NBYTES, flops=64)
    e = g.add("exp", (m.id,), (64,), F32, bytes=NBYTES, flops=64)
    t = g.add("tanh", (e.id,), (64,), F32, bytes=NBYTES, flops=64)
    g.outputs = [t.id]
    return g


def make_dead_cse_graph() -> Graph:
    """Duplicate multiply (CSE) plus a dead exp branch."""
    g = Graph()
    g.meta["dtype"] = "float32"
    x = g.add("x", (), (64,), F32, kind="input", bytes=NBYTES)
    a = g.add("multiply", (x.id, x.id), (64,), F32, bytes=NBYTES, flops=64)
    b = g.add("multiply", (x.id, x.id), (64,), F32, bytes=NBYTES, flops=64)
    dead = g.add("exp", (x.id,), (64,), F32, bytes=NBYTES, flops=64)
    out = g.add("add", (a.id, b.id), (64,), F32, bytes=NBYTES, flops=64)
    g.outputs = [out.id]
    g.meta["dup"], g.meta["rep"], g.meta["dead"] = b.id, a.id, dead.id
    return g


def make_elidable_copy_graph() -> Graph:
    """mul -> copy -> exp: the copy is the last read of a private value."""
    g = Graph()
    g.meta["dtype"] = "float32"
    x = g.add("x", (), (64,), F32, kind="input", bytes=NBYTES)
    m = g.add("multiply", (x.id, x.id), (64,), F32, bytes=NBYTES, flops=64)
    cp = g.add("copy", (m.id,), (64,), F32, bytes=NBYTES)
    e = g.add("exp", (cp.id,), (64,), F32, bytes=NBYTES, flops=64)
    g.outputs = [e.id]
    g.meta["copy"], g.meta["copy_src"] = cp.id, m.id
    return g


def make_required_copy_graph() -> Graph:
    """mul -> copy, but mul is read again later: eliding is illegal."""
    g = Graph()
    g.meta["dtype"] = "float32"
    x = g.add("x", (), (64,), F32, kind="input", bytes=NBYTES)
    m = g.add("multiply", (x.id, x.id), (64,), F32, bytes=NBYTES, flops=64)
    cp = g.add("copy", (m.id,), (64,), F32, bytes=NBYTES)
    out = g.add("add", (m.id, cp.id), (64,), F32, bytes=NBYTES, flops=64)
    g.outputs = [out.id]
    g.meta["copy"], g.meta["copy_src"] = cp.id, m.id
    return g


@pytest.fixture
def chain_graph():
    return make_chain_graph()


@pytest.fixture
def dead_cse_graph():
    return make_dead_cse_graph()


@pytest.fixture
def elidable_copy_graph():
    return make_elidable_copy_graph()


@pytest.fixture
def required_copy_graph():
    return make_required_copy_graph()
