"""ExecutionPlan artifact + compiler: determinism, round-trip, decisions."""

import pytest

from repro.ir.trace import trace_model, trace_tape
from repro.schedule import (
    ExecutionPlan,
    compile_plan,
    graph_fingerprint,
    verify_plan,
)


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self, elidable_copy_graph):
        plan = compile_plan(elidable_copy_graph)
        restored = ExecutionPlan.from_json(plan.to_json())
        assert restored.to_dict() == plan.to_dict()
        assert restored == plan

    def test_round_trip_preserves_fingerprint_validity(self, chain_graph):
        plan = compile_plan(chain_graph)
        restored = ExecutionPlan.from_json(plan.to_json())
        # Resealing restored content must reproduce the same hash.
        assert restored.seal().fingerprint == plan.fingerprint

    def test_from_json_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="repro.schedule/v1"):
            ExecutionPlan.from_json('{"schema": "repro.ir/v1"}')

    def test_model_plan_round_trips(self):
        graph = trace_model("unet", preset="tiny", grid=32)
        plan = compile_plan(graph)
        restored = ExecutionPlan.from_json(plan.to_json())
        assert restored.to_dict() == plan.to_dict()


class TestDeterminism:
    def test_two_independent_traces_compile_byte_identical(self):
        """The REPRO405 contract: same model, same grid, same bytes."""
        plans = []
        for _ in range(2):
            graph = trace_model("ours", preset="tiny", grid=32)
            plans.append(compile_plan(graph).to_json())
        assert plans[0] == plans[1]

    def test_training_plans_byte_identical(self):
        from repro.models.registry import build_model

        texts = []
        for _ in range(2):
            model = build_model("unet", preset="tiny", grid=32)
            graph, tape = trace_tape(
                model, (1, 6, 32, 32), input_vrange=(0.0, 1.0), name="unet"
            )
            texts.append(compile_plan(graph, tape).to_json())
        assert texts[0] == texts[1]

    def test_plan_with_duplicates_byte_identical_across_runs(self):
        """REPRO106/107 promotion regression: the dead/CSE decisions are
        part of the deterministic artifact, not a best-effort pass."""
        from tests.schedule.conftest import make_dead_cse_graph

        first = compile_plan(make_dead_cse_graph())
        second = compile_plan(make_dead_cse_graph())
        assert first.to_json() == second.to_json()
        assert first.fingerprint == second.fingerprint

    def test_graph_fingerprint_ignores_src_but_not_structure(
        self, chain_graph
    ):
        from tests.schedule.conftest import make_chain_graph

        other = make_chain_graph()
        for node in other.nodes:
            node.src = "/somewhere/else.py:99"  # machine-local attribution
        assert graph_fingerprint(other) == graph_fingerprint(chain_graph)
        other.outputs = [other.outputs[0] - 1]
        assert graph_fingerprint(other) != graph_fingerprint(chain_graph)


class TestDecisions:
    def test_dead_node_excluded_from_plan(self, dead_cse_graph):
        plan = compile_plan(dead_cse_graph)
        dead = dead_cse_graph.meta["dead"]
        assert dead in plan.dead
        assert dead not in plan.order
        assert dead not in plan.arena_slots
        assert dead not in plan.node_pins

    def test_cse_duplicates_share_one_arena_slot(self, dead_cse_graph):
        plan = compile_plan(dead_cse_graph)
        dup, rep = dead_cse_graph.meta["dup"], dead_cse_graph.meta["rep"]
        assert plan.cse == {dup: rep}
        assert dup not in plan.order
        assert rep in plan.arena_slots
        assert dup not in plan.arena_slots  # shares the representative's

    def test_redundant_copy_gets_certificate_and_no_slot(
        self, elidable_copy_graph
    ):
        plan = compile_plan(elidable_copy_graph)
        cp = elidable_copy_graph.meta["copy"]
        src = elidable_copy_graph.meta["copy_src"]
        assert [(e.copy, e.source) for e in plan.copy_elisions] == [(cp, src)]
        assert cp in plan.order  # still an (alias) step in the schedule
        assert cp not in plan.arena_slots
        assert src in plan.arena_slots

    def test_required_copy_not_elided(self, required_copy_graph):
        plan = compile_plan(required_copy_graph)
        assert plan.copy_elisions == ()
        assert required_copy_graph.meta["copy"] in plan.arena_slots

    def test_fusion_chain_with_proof(self, chain_graph):
        plan = compile_plan(chain_graph)
        (group,) = plan.fusion_groups
        assert group.ops == ("multiply", "exp", "tanh")
        assert group.proof["single_consumer"] is True
        assert group.proof["uniform_dtype"] == "float32"
        assert group.proof["no_view_escape"] is True

    def test_synthetic_plans_verify_clean(
        self,
        chain_graph,
        dead_cse_graph,
        elidable_copy_graph,
        required_copy_graph,
    ):
        for graph in (
            chain_graph, dead_cse_graph, elidable_copy_graph,
            required_copy_graph,
        ):
            plan = compile_plan(graph)
            assert verify_plan(plan, graph) == []


class TestModelPlans:
    """The acceptance contract at test scale: every registry model's
    forward and training plan verifies clean with the arena under the
    eager planner's bound.  (CI runs the full 64-512 grid matrix.)"""

    @pytest.mark.parametrize("model", ["unet", "pgnn", "pros2", "ours"])
    def test_forward_and_training_verified_under_bound(self, model):
        from repro.models.registry import build_model

        module = build_model(model, preset="tiny", grid=32)
        graph, tape = trace_tape(
            module, (1, 6, 32, 32), input_vrange=(0.0, 1.0), name=model
        )
        for plan, tp in ((compile_plan(graph), None),
                         (compile_plan(graph, tape), tape)):
            assert verify_plan(plan, graph, tp) == []
            assert plan.arena_bytes <= plan.bound_bytes
            assert plan.order  # something was actually planned

    def test_compiler_and_verifier_op_universes_agree(self):
        """The two pointwise-op sets are independent code on purpose;
        they must still *agree*, or a legal plan would be rejected."""
        from repro.schedule.compiler import FUSABLE_OPS
        from repro.schedule.verify import _POINTWISE

        assert FUSABLE_OPS == _POINTWISE
