"""Property-based tests for the placement/netlist extensions.

Invariants over randomized inputs for clustering, net weighting and
swap refinement — the extension modules the ablation benches exercise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import ResourceType
from repro.netlist import (
    MLCAD2023_SPECS,
    cluster_cells,
    expand_placement,
    generate_design,
)
from repro.placement import (
    apply_congestion_net_weights,
    legalize,
    refine_cells,
    refine_macros,
    reset_net_weights,
)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1), st.floats(8.0, 32.0))
def test_clustering_conserves_demand_for_any_seed(seed, max_lut):
    design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
    clustered, mapping = cluster_cells(design, max_lut=max_lut, seed=seed)
    for res in ResourceType:
        assert clustered.total_demand(res) == pytest.approx(
            design.total_demand(res)
        )
    # Mapping is a surjection onto the clustered index range.
    assert set(mapping.tolist()) == set(range(clustered.num_instances))
    # The LUT cap holds for every movable cluster.
    lut_col = list(ResourceType).index(ResourceType.LUT)
    movable = clustered.movable_mask
    assert clustered.demand_matrix[movable, lut_col].max() <= max_lut + 1e-9


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_expand_placement_is_total(seed):
    design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
    clustered, mapping = cluster_cells(design, seed=seed)
    rng = np.random.default_rng(seed)
    clustered.set_placement(
        rng.uniform(0, clustered.device.width, clustered.num_instances),
        rng.uniform(0, clustered.device.height, clustered.num_instances),
    )
    x, y = expand_placement(clustered, mapping)
    assert x.shape == (design.num_instances,)
    assert np.isfinite(x).all() and np.isfinite(y).all()
    assert x.min() >= 0 and x.max() <= design.device.width


@settings(max_examples=15, deadline=None)
@given(
    st.floats(1.0, 3.0),
    st.floats(2.0, 8.0),
    st.integers(0, 7),
)
def test_net_weights_bounded_and_monotone(factor, cap, hot_cells):
    design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
    reset_net_weights(design)
    before = design.net_weights.copy()
    levels = np.zeros((16, 16))
    rng = np.random.default_rng(int(hot_cells))
    for _ in range(hot_cells):
        levels[rng.integers(16), rng.integers(16)] = 7.0
    apply_congestion_net_weights(
        design, levels, design.x, design.y, factor=factor, cap=cap
    )
    after = design.net_weights
    assert (after >= before - 1e-12).all()  # never decreases
    assert after.max() <= max(cap, before.max()) + 1e-9
    reset_net_weights(design)


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_refinement_never_degrades_any_legal_placement(seed):
    design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, design.device.width, design.num_instances)
    y = rng.uniform(0, design.device.height, design.num_instances)
    legal = legalize(design, x, y)
    design.set_placement(legal.x, legal.y)
    baseline = design.hpwl()
    macro_pass = refine_macros(design, legal.x, legal.y, max_passes=1, seed=seed)
    cell_pass = refine_cells(
        design, macro_pass.x, macro_pass.y, max_passes=1, seed=seed
    )
    assert cell_pass.hpwl_after <= baseline + 1e-6
    # Cascades remain satisfied through both passes.
    for cascade in design.cascades:
        assert cascade.is_satisfied(cell_pass.x, cell_pass.y)
