"""Forward+backward memory planning vs. the real numpy runtime.

The headline check: for the paper's model (``ours``) at grid 256, the
planned peak of a full training step — forward, cross-entropy loss,
backward — must match a ``tracemalloc``-measured step within 15%.
Structural tests pin the planner's invariants cheaply at small grids.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.adjoint import plan_training_memory
from repro.ir.memory import plan_memory
from repro.ir.trace import trace_tape
from repro.models import build_model
from repro.models.registry import MODEL_NAMES
from repro.nn.loss import CrossEntropyLoss2d
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class TrainStep(Module):
    """forward + loss, traceable as one module (targets stay concrete)."""

    def __init__(self, model, targets, num_classes):
        super().__init__()
        self.model = model
        self.loss = CrossEntropyLoss2d(num_classes)
        self.targets = targets

    def forward(self, x):
        return self.loss(self.model(x), self.targets)


def _traced_step(name, preset, grid, seed=0):
    model = build_model(name, preset=preset, grid=grid, seed=seed)
    num_classes = model(Tensor(np.zeros((1, 6, grid, grid)))).shape[1]
    rng = np.random.default_rng(seed)
    targets = rng.integers(0, num_classes, size=(1, grid, grid))
    step = TrainStep(model, targets, num_classes)
    graph, tape = trace_tape(
        step, (1, 6, grid, grid), input_vrange=(0.0, 1.0), name=f"{name}-step"
    )
    return model, step, graph, tape


class TestPlannedVsMeasured:
    def test_ours_grid256_within_15_percent(self):
        grid = 256
        model, step, graph, tape = _traced_step("ours", "tiny", grid)
        plan = plan_training_memory(graph, tape)

        rng = np.random.default_rng(1)
        x = Tensor(rng.random((1, 6, grid, grid)))

        def run_step():
            for p in model.parameters():
                p.grad = None
            step(x).backward()

        run_step()  # warm-up: imports, numpy pools, einsum paths
        gc.collect()
        tracemalloc.start()
        run_step()
        _, measured = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        planned = plan["train_peak_bytes"]
        ratio = planned / measured
        assert 0.85 <= ratio <= 1.15, (
            f"planned {planned:,} vs measured {measured:,} "
            f"(ratio {ratio:.3f}) outside the 15% band"
        )


class TestPlanStructure:
    @pytest.fixture(scope="class")
    def plan_and_trace(self):
        _, _, graph, tape = _traced_step("unet", "tiny", 32)
        return plan_training_memory(graph, tape), graph, tape

    def test_training_peak_dominates_forward_peak(self, plan_and_trace):
        plan, graph, _ = plan_and_trace
        assert plan["train_peak_bytes"] >= plan_memory(graph)["peak_bytes"]

    def test_retention_and_gradients_bounded_by_peak(self, plan_and_trace):
        plan, _, _ = plan_and_trace
        assert 0 < plan["retained_at_backward_bytes"] <= plan["train_peak_bytes"]
        assert 0 < plan["grad_bytes_total"]

    def test_all_entries_reachable_from_scalar_loss(self, plan_and_trace):
        plan, _, tape = plan_and_trace
        assert plan["tape_entries"] == len(tape)
        assert plan["reachable_entries"] == len(tape)

    def test_top_retained_sorted_by_bytes(self, plan_and_trace):
        plan, _, _ = plan_and_trace
        sizes = [r["bytes"] for r in plan["top_retained"]]
        assert sizes == sorted(sizes, reverse=True)

    def test_grad_buffers_cover_params_and_activations(self, plan_and_trace):
        plan, graph, tape = plan_and_trace
        params = sum(1 for n in graph if n.kind == "param")
        # Every param plus (at least) every tape output receives a grad;
        # the count can exceed it via view-parents.
        assert plan["grad_buffers"] >= params

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_all_models_plan_without_error(self, name):
        model = build_model(name, "tiny", grid=32, seed=0)
        graph, tape = trace_tape(
            model, (1, 6, 32, 32), input_vrange=(0.0, 1.0), name=name
        )
        plan = plan_training_memory(graph, tape)
        assert plan["train_peak_bytes"] > 0
        assert plan["peak_pos"].startswith(("forward@", "backward@"))

    def test_dead_branch_captures_retained_to_end(self):
        class Wasteful(Module):
            def forward(self, x):
                (x * 2.0).exp()  # dead: closure never runs, capture leaks
                return (x * 3.0).sum()

        graph, tape = trace_tape(
            Wasteful(), (64, 64), input_vrange=(0.0, 1.0),
            input_requires_grad=True,
        )
        plan = plan_training_memory(graph, tape)
        assert plan["reachable_entries"] < plan["tape_entries"]
        # The dead exp output buffer survives to the end of the step.
        exp_out = next(e.out for e in tape if e.op == "exp")
        buf = graph.buffer_of(exp_out)
        assert any(
            r["node"] == buf and r["dies"] is None for r in plan["top_retained"]
        )
