"""Derivative audit sweep: every primitive op, finite-difference checked.

Three layers of assurance:

* every registered :class:`~repro.adjoint.specs.Case` passes the
  central-difference check (including non-default stride/padding/axis/
  keepdims configurations and the broadcast REPRO202 cases);
* the case registry is *complete*: every public op in
  ``repro.nn.functional.__all__`` and every ``Tensor`` method that
  builds an autograd node is either covered by a case or explicitly
  waived in ``UNCOVERED`` with a reason;
* the harness actually catches bugs: a planted wrong vjp fails, at
  error magnitudes far smaller than any plausible real defect.
"""

import ast
import inspect
from pathlib import Path

import numpy as np
import pytest

import repro.nn.functional as F
import repro.nn.tensor as tensor_mod
from repro.adjoint import (
    CASES,
    UNCOVERED,
    Case,
    cases_for,
    covered_targets,
    gradcheck_case,
    op_kinds,
    run_gradcheck,
    run_kink_probes,
)
from repro.nn.tensor import Tensor


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_case_passes(case):
    result = gradcheck_case(case, seed=0)
    assert result["passed"], (
        f"{case.name}: analytic gradient disagrees with central differences: "
        f"{result.get('worst')}"
    )


def test_kink_probes_pass():
    results, findings = run_kink_probes()
    assert [f.message for f in findings] == []
    assert {r["op_kind"] for r in results} == {"relu", "max", "max_pool2d"}


class TestRegistryCompleteness:
    """The sweep must cover the whole differentiable surface."""

    def _methods_building_autograd_nodes(self, cls) -> set[str]:
        """Names of ``cls`` methods whose body calls ``Tensor._make``."""
        tree = ast.parse(Path(inspect.getsourcefile(cls)).read_text())
        class_node = next(
            n
            for n in tree.body
            if isinstance(n, ast.ClassDef) and n.name == cls.__name__
        )
        found = set()
        for item in class_node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            for node in ast.walk(item):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr == "_make"
                ):
                    found.add(item.name)
                    break
        return found - {"_make"}

    def test_every_functional_op_covered(self):
        known = covered_targets() | set(UNCOVERED)
        missing = [name for name in F.__all__ if name not in known]
        assert missing == [], (
            f"functional ops with no gradcheck case and no UNCOVERED waiver: "
            f"{missing}"
        )

    def test_every_tensor_method_covered(self):
        known = covered_targets() | set(UNCOVERED)
        methods = self._methods_building_autograd_nodes(Tensor)
        missing = sorted(
            f"Tensor.{m}" for m in methods if f"Tensor.{m}" not in known
        )
        assert missing == [], (
            f"Tensor autograd methods with no gradcheck case and no "
            f"UNCOVERED waiver: {missing}"
        )
        # The AST scan found the real differentiable surface, not nothing.
        assert {"__add__", "__mul__", "__matmul__", "relu"} <= methods

    def test_module_level_ops_covered(self):
        for name in ("concatenate", "stack"):
            assert hasattr(tensor_mod, name)
            assert name in covered_targets()

    def test_every_uncovered_waiver_has_reason(self):
        for target, reason in UNCOVERED.items():
            assert isinstance(reason, str) and reason, target

    def test_non_default_configurations_present(self):
        """Strides, padding, axes and keepdims variants must be swept."""
        names = {c.name for c in CASES}
        for required in (
            "conv2d/k3-s2-p1-bias",
            "conv_transpose2d/k3-s2-p1-bias",
            "sum/axis1-keepdims",
            "max/axis-keepdims",
            "transpose/negative-axes",
            "upsample_nearest/s3",
        ):
            assert required in names, f"missing sweep configuration {required}"


class TestHarnessSensitivity:
    """A wrong vjp must fail the check — the tolerances cannot mask it."""

    @staticmethod
    def _planted(rel_err: float) -> Case:
        def build(rng):
            def fn(x):
                def backward(out):
                    x._accumulate(out.grad * 2.0 * (1.0 + rel_err))

                return Tensor._make(x.data * 2.0, (x,), backward)

            return fn, (rng.standard_normal((3, 4)),)

        return Case(
            name=f"planted/scale-bug-{rel_err}",
            target="planted",
            op_kind="planted",
            build=build,
        )

    def test_planted_gross_bug_fails(self):
        result = gradcheck_case(self._planted(0.5), seed=0)
        assert not result["passed"]
        assert result["worst"]["abs_err"] > 0.1

    def test_planted_subtle_bug_fails(self):
        # A 1e-5 relative error is ~27x the tolerance — still caught.
        result = gradcheck_case(self._planted(1e-5), seed=0)
        assert not result["passed"]

    def test_correct_vjp_passes(self):
        result = gradcheck_case(self._planted(0.0), seed=0)
        assert result["passed"]

    def test_failed_case_produces_finding(self):
        bad = self._planted(0.5)
        saved = CASES[:]
        CASES[:] = [bad]
        try:
            result = run_gradcheck(["planted"], seed=0)
        finally:
            CASES[:] = saved
        assert len(result["findings"]) == 1
        assert result["findings"][0].code == "REPRO204"
        assert "central-difference" in result["findings"][0].message


class TestSelection:
    def test_cases_for_filters_by_op_kind(self):
        conv_only = cases_for(["conv2d"])
        assert conv_only and all(c.op_kind == "conv2d" for c in conv_only)

    def test_op_kinds_unique_and_nonempty(self):
        kinds = op_kinds()
        assert len(kinds) == len(set(kinds)) > 20

    def test_run_gradcheck_scopes_to_requested_kinds(self):
        result = run_gradcheck(["relu", "sum"], seed=0)
        assert set(result["checked_ops"]) == {"relu", "sum"}
        assert result["findings"] == []
