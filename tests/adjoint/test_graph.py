"""Adjoint SSA graph construction: reversal must mirror the runtime.

Checked against hand-built modules whose backward structure is known
exactly (fan-out needs an ``add``, dead branches produce nothing) and
against the registry models, where the adjoint graph must account for
every vjp the real backward executes.
"""

import numpy as np
import pytest

from repro.adjoint import build_adjoint_graph, capture_tape
from repro.ir.trace import trace_tape
from repro.models import build_model
from repro.models.registry import MODEL_NAMES
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class FanOut(Module):
    """One value consumed twice: the runtime sums two contributions."""

    def forward(self, x):
        y = x.relu()
        return y * y


class DeadBranch(Module):
    """An op whose output is discarded: its closure never runs."""

    def forward(self, x):
        (x * 3.0).exp()  # recorded on the tape, but unused
        return x.relu()


def _trace(module, shape=(2, 3)):
    return trace_tape(
        module, shape, input_vrange=(-1.0, 1.0), input_requires_grad=True
    )


class TestStructure:
    def test_seed_per_output(self):
        graph, tape = _trace(FanOut())
        adj = build_adjoint_graph(graph, tape)
        assert adj.counts()["seed"] == len(graph.outputs)

    def test_fan_out_produces_add(self):
        graph, tape = _trace(FanOut())
        adj = build_adjoint_graph(graph, tape)
        # y feeds both __mul__ slots -> two vjps folded by one add.
        assert adj.counts()["add"] == 1
        add = next(n for n in adj.nodes if n.kind == "add")
        assert len(add.inputs) == 2
        vjp_primals = [adj.node(i).primal for i in add.inputs]
        assert vjp_primals[0] == vjp_primals[1] == add.primal

    def test_dead_branch_emits_nothing(self):
        graph, tape = _trace(DeadBranch())
        adj = build_adjoint_graph(graph, tape)
        dead_ops = {e.op for e in tape} - {n.op for n in adj.nodes if n.op}
        assert "exp" in dead_ops and "__mul__" in dead_ops
        # The relu path still flows back to the input.
        (input_id,) = graph.inputs
        assert input_id in adj.grad_of

    def test_grad_of_points_at_final_accumulation(self):
        graph, tape = _trace(FanOut())
        adj = build_adjoint_graph(graph, tape)
        relu_out = next(e.out for e in tape if e.op == "relu")
        final = adj.node(adj.grad_of[relu_out])
        assert final.kind == "add"

    def test_adjoint_shape_dtype_match_primal(self):
        graph, tape = _trace(FanOut())
        adj = build_adjoint_graph(graph, tape)
        for node in adj.nodes:
            primal = graph.nodes[node.primal]
            assert node.shape == primal.shape
            assert np.dtype(node.dtype) == np.dtype(primal.dtype)

    def test_vjp_nodes_carry_closure_src(self):
        graph, tape = _trace(FanOut())
        adj = build_adjoint_graph(graph, tape)
        for node in adj.nodes:
            if node.kind == "vjp":
                assert node.src and ":" in node.src

    def test_pretty_renders(self):
        graph, tape = _trace(FanOut())
        adj = build_adjoint_graph(graph, tape)
        text = adj.pretty()
        assert "seed" in text and "vjp" in text


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestAgainstRuntime:
    def test_vjp_count_matches_executed_accumulations(self, name):
        """Each vjp node = one accumulation the real backward performs."""
        grid = 32
        model = build_model(name, "tiny", grid=grid, seed=0)
        model.eval()
        graph, tape = trace_tape(
            model, (1, 6, grid, grid), input_vrange=(0.0, 1.0), name=name
        )
        adj = build_adjoint_graph(graph, tape)

        with capture_tape() as cap:
            out = model(Tensor(np.random.default_rng(0).random((1, 6, grid, grid))))
            out.backward(np.ones(out.shape))
        executed = sum(len(r.events) for r in cap.records)
        assert adj.counts().get("vjp", 0) == executed

    def test_every_param_grad_resolves(self, name):
        grid = 32
        model = build_model(name, "tiny", grid=grid, seed=0)
        graph, tape = trace_tape(
            model, (1, 6, grid, grid), input_vrange=(0.0, 1.0), name=name
        )
        adj = build_adjoint_graph(graph, tape)
        for node in graph:
            if node.kind == "param":
                assert node.id in adj.grad_of, node.name
