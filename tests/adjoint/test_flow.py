"""Gradient-flow interval analysis (REPRO205–207).

Each pathology is a hand-built module where the defect is *provable*
from the traced value intervals; healthy registry models must produce
zero findings (the analysis is conservative: unbounded parameters keep
contraction gains at (0, inf), so nothing fires spuriously).
"""

import numpy as np
import pytest

from repro.adjoint import (
    EXPLODE_BOUND,
    VANISH_BOUND,
    build_adjoint_graph,
    flow_analysis,
)
from repro.ir.trace import trace_tape
from repro.models import build_model
from repro.models.registry import MODEL_NAMES
from repro.nn import Conv2d, Linear
from repro.nn.module import Module, Parameter


class DeadReLU(Module):
    def __init__(self):
        super().__init__()
        self.conv = Conv2d(2, 2, 3, padding=1)

    def forward(self, x):
        return self.conv((x - 10.0).relu())  # input in (0,1): never positive


class SaturatedSigmoid(Module):
    def __init__(self):
        super().__init__()
        self.conv = Conv2d(2, 2, 3, padding=1)

    def forward(self, x):
        return self.conv((x + 100.0).sigmoid())


class SaturatedTanh(Module):
    def forward(self, x):
        return (x + 50.0).tanh()


class VanishingParams(Module):
    def __init__(self):
        super().__init__()
        self.conv = Conv2d(2, 2, 3, padding=1)

    def forward(self, x):
        return self.conv(x) * 0.0  # every path to conv params is killed


class ExplodingParam(Module):
    def __init__(self):
        super().__init__()
        self.gain = Parameter(np.ones((1, 2, 4, 4)))

    def forward(self, x):
        return (x * self.gain) * 1e30


class OrphanModule(Module):
    def __init__(self):
        super().__init__()
        self.used = Conv2d(2, 2, 3, padding=1)
        self.orphan = Linear(4, 4)  # never called

    def forward(self, x):
        return self.used(x)


class DetachedBranch(Module):
    def __init__(self):
        super().__init__()
        self.pre = Conv2d(2, 2, 3, padding=1)
        self.post = Conv2d(2, 2, 3, padding=1)

    def forward(self, x):
        return self.post(self.pre(x).detach())  # pre's grads cannot flow


def _flow(module, vrange=(0.0, 1.0), requires_grad=True):
    graph, tape = trace_tape(
        module,
        (1, 2, 4, 4),
        input_vrange=vrange,
        input_requires_grad=requires_grad,
    )
    return flow_analysis(graph, tape)


class TestPathologies:
    def test_dead_relu_is_repro206(self):
        findings = _flow(DeadReLU())["findings"]
        assert [f.code for f in findings] == ["REPRO206"]
        assert "dead ReLU" in findings[0].message
        assert "(-10, -9)" in findings[0].message

    def test_saturated_sigmoid_is_repro206(self):
        findings = _flow(SaturatedSigmoid())["findings"]
        assert [f.code for f in findings] == ["REPRO206"]
        assert "saturated sigmoid" in findings[0].message

    def test_saturated_tanh_is_repro206(self):
        findings = _flow(SaturatedTanh())["findings"]
        assert [f.code for f in findings] == ["REPRO206"]
        assert "saturated tanh" in findings[0].message

    def test_multiplication_by_zero_vanishes_params(self):
        result = _flow(VanishingParams(), requires_grad=False)
        codes = [f.code for f in result["findings"]]
        assert codes == ["REPRO205", "REPRO205"]  # weight and bias
        assert all("vanishes" in f.message for f in result["findings"])

    def test_elementwise_blowup_explodes_param(self):
        result = _flow(ExplodingParam(), vrange=(2.0, 3.0))
        findings = [f for f in result["findings"] if f.code == "REPRO205"]
        assert len(findings) == 1
        assert "explodes" in findings[0].message

    def test_orphan_module_is_repro207(self):
        result = _flow(OrphanModule(), requires_grad=False)
        codes = [f.code for f in result["findings"]]
        assert codes == ["REPRO207", "REPRO207"]
        assert result["params_connected"] == result["params_total"] - 2

    def test_detached_branch_is_repro207(self):
        result = _flow(DetachedBranch(), requires_grad=False)
        disconnected = {
            f.message.split("'")[1]
            for f in result["findings"]
            if f.code == "REPRO207"
        }
        assert disconnected == {
            "DetachedBranch.pre.weight",
            "DetachedBranch.pre.bias",
        }

    def test_findings_name_the_parameter(self):
        findings = _flow(VanishingParams(), requires_grad=False)["findings"]
        assert any("conv.weight" in f.message for f in findings)


class TestSoundness:
    """The conservative analysis must stay silent on healthy graphs."""

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_registry_models_clean(self, name):
        grid = 32
        model = build_model(name, "tiny", grid=grid, seed=0)
        graph, tape = trace_tape(
            model, (1, 6, grid, grid), input_vrange=(0.0, 1.0), name=name
        )
        result = flow_analysis(graph, tape)
        assert result["findings"] == []
        assert result["params_connected"] == result["params_total"]

    def test_healthy_relu_chain_clean(self):
        class Healthy(Module):
            def __init__(self):
                super().__init__()
                self.c1 = Conv2d(2, 4, 3, padding=1)
                self.c2 = Conv2d(4, 2, 3, padding=1)

            def forward(self, x):
                return self.c2(self.c1(x).relu())

        assert _flow(Healthy())["findings"] == []

    def test_bounds_are_extreme_by_design(self):
        # The thresholds only catch *provable* pathologies, not merely
        # small/large gradients.
        assert VANISH_BOUND <= 1e-20
        assert EXPLODE_BOUND >= 1e20

    def test_precomputed_adjoint_graph_accepted(self):
        model = build_model("unet", "tiny", grid=32, seed=0)
        graph, tape = trace_tape(
            model, (1, 6, 32, 32), input_vrange=(0.0, 1.0)
        )
        adjoint = build_adjoint_graph(graph, tape)
        result = flow_analysis(graph, tape, adjoint)
        assert result["adjoint_nodes"] == len(adjoint.nodes)
