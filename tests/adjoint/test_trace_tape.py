"""Tape capture fidelity: trace_tape must mirror the runtime backward.

The tape records every op the autograd runtime wires, in execution
order, with the same parent structure the closures will consume — so
the strongest checks compare the symbolic tape against a *real*
forward+backward observed through :class:`capture_tape`.
"""

import numpy as np
import pytest

from repro.adjoint import capture_tape
from repro.ir import trace
from repro.ir.trace import TapeEntry, trace_tape
from repro.models import build_model
from repro.models.registry import MODEL_NAMES
from repro.nn.tensor import Tensor


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestTapeMatchesRuntime:
    def test_tape_ops_match_concrete_backward(self, name):
        grid = 32
        model = build_model(name, "tiny", grid=grid, seed=0)
        model.eval()
        graph, tape = trace_tape(
            model, (1, 6, grid, grid), input_vrange=(0.0, 1.0), name=name
        )
        with capture_tape() as cap:
            out = model(Tensor(np.random.default_rng(0).random((1, 6, grid, grid))))
            out.backward(np.ones(out.shape))
        assert [e.op for e in tape] == [r.op for r in cap.records]

    def test_forward_graph_matches_plain_trace(self, name):
        grid = 32
        model = build_model(name, "tiny", grid=grid, seed=0)
        graph, tape = trace_tape(
            model, (1, 6, grid, grid), input_vrange=(0.0, 1.0), name=name
        )
        plain = trace(
            model, (1, 6, grid, grid), input_vrange=(0.0, 1.0), name=name
        )
        # Same computation: identical op-node sequence and output shapes
        # (the tape trace may add const nodes for closure captures).
        ops = [n.op for n in graph if n.kind == "op"]
        plain_ops = [n.op for n in plain if n.kind == "op"]
        assert ops == plain_ops
        assert [graph[i].shape for i in graph.outputs] == [
            plain[i].shape for i in plain.outputs
        ]


class TestTapeStructure:
    @pytest.fixture(scope="class")
    def traced(self):
        model = build_model("unet", "tiny", grid=32, seed=0)
        return trace_tape(
            model, (1, 6, 32, 32), input_vrange=(0.0, 1.0), name="unet"
        )

    def test_entries_indexed_in_execution_order(self, traced):
        _, tape = traced
        assert [e.index for e in tape] == list(range(len(tape)))

    def test_entries_are_topological(self, traced):
        graph, tape = traced
        for entry in tape:
            for pid in entry.parents:
                if pid is not None:
                    assert pid < entry.out

    def test_parent_requires_grad_aligned(self, traced):
        _, tape = traced
        for entry in tape:
            assert len(entry.parents) == len(entry.parent_requires_grad)

    def test_src_points_at_backward_definitions(self, traced):
        _, tape = traced
        for entry in tape:
            path, _, line = entry.src.rpartition(":")
            assert path.endswith(".py") and line.isdigit(), entry.src

    def test_network_input_does_not_require_grad(self, traced):
        graph, tape = traced
        (input_id,) = graph.inputs
        for entry in tape:
            for pid, req in zip(entry.parents, entry.parent_requires_grad):
                if pid == input_id:
                    assert not req

    def test_tape_recorded_in_graph_meta(self, traced):
        graph, tape = traced
        assert graph.meta["tape_entries"] == len(tape)

    def test_entries_are_frozen(self, traced):
        _, tape = traced
        with pytest.raises(AttributeError):
            tape[0].op = "mutated"
        assert isinstance(tape[0], TapeEntry)

    def test_every_trainable_param_reached_by_tape(self, traced):
        graph, tape = traced
        consumed = set()
        for entry in tape:
            consumed.update(p for p in entry.parents if p is not None)
            consumed.update(entry.captured)
        param_ids = {n.id for n in graph if n.kind == "param"}
        # Conv weights reach closures as reshaped views; resolve buffers.
        consumed_buffers = {graph.buffer_of(i) for i in consumed}
        assert param_ids <= (consumed | consumed_buffers)
