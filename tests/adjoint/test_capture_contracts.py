"""Concrete tape capture and the REPRO201/203 vjp contract checks.

Real ops must capture cleanly and pass the contract; synthetic
OpRecords with planted violations must produce exactly the right
finding, anchored at the closure's source line so ``# noqa`` works.
"""

import numpy as np
import pytest

from repro.adjoint import AccumEvent, OpRecord, capture_tape, check_contracts
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestCapture:
    def test_records_ops_in_execution_order(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        with capture_tape() as cap:
            ((x * 2.0).relu().sum()).backward()
        assert [r.op for r in cap.records] == ["__mul__", "relu", "sum"]
        assert cap.ops_used() == ("__mul__", "relu", "sum")

    def test_accumulations_attributed_to_their_closure(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        with capture_tape() as cap:
            (x * 3.0).sum().backward()
        mul = next(r for r in cap.records if r.op == "__mul__")
        assert mul.ran
        assert mul.observed_counts() == {id(x): 1}
        assert mul.events[0].shape == (2, 3)

    def test_seed_accumulation_not_attributed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with capture_tape() as cap:
            y = x * 1.0
            y.backward(np.ones(3))  # plants the seed outside any closure
        total = sum(len(r.events) for r in cap.records)
        assert total == 1  # only the __mul__ vjp into x

    def test_dead_branch_closure_not_ran(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with capture_tape() as cap:
            (x * 2.0).exp()  # dropped
            x.relu().sum().backward()
        exp = next(r for r in cap.records if r.op == "exp")
        assert not exp.ran and exp.events == []

    def test_hooks_restored_on_exit(self):
        from repro.nn.tensor import _get_tape_hook

        before = _get_tape_hook()
        with capture_tape():
            pass
        assert _get_tape_hook() is before

    def test_expected_counts_count_duplicate_parent_slots(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with capture_tape() as cap:
            (x * x).sum().backward()
        mul = next(r for r in cap.records if r.op == "__mul__")
        assert mul.expected_counts() == {id(x): 2}
        assert mul.observed_counts() == {id(x): 2}


class TestContractsOnRealOps:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda x: (x * x).sum(),
            lambda x: x.reshape(6).max(),
            lambda x: F.softmax(x, axis=1).sum(),
            lambda x: (x + np.ones((1, 3))).mean(),  # broadcast accumulate
        ],
        ids=["square", "reshape-max", "softmax", "broadcast-add"],
    )
    def test_clean_ops_have_no_findings(self, fn):
        x = Tensor(np.arange(6.0).reshape(2, 3) + 1.0, requires_grad=True)
        with capture_tape() as cap:
            fn(x).backward()
        assert check_contracts(cap.records) == []

    def test_conv_backward_contract_clean(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.random((1, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.random((3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.random(3), requires_grad=True)
        with capture_tape() as cap:
            F.conv2d(x, w, b, stride=2, padding=1).sum().backward()
        assert check_contracts(cap.records) == []


def _record(parents, events, *, ran=True, op="fake", src="") -> OpRecord:
    return OpRecord(
        index=0,
        op=op,
        src=src or f"{__file__}:1",
        out_shape=(2, 3),
        out_dtype=np.dtype(np.float64),
        parents=tuple(parents),
        ran=ran,
        events=list(events),
    )


class TestPlantedViolations:
    def test_shape_mismatch_is_repro201(self):
        p = Tensor(np.ones((2, 3)), requires_grad=True)
        findings = check_contracts(
            [_record([p], [AccumEvent(id(p), (3,), np.dtype(np.float64))])]
        )
        assert [f.code for f in findings] == ["REPRO201"]
        assert "shape (3,)" in findings[0].message

    def test_dtype_mismatch_is_repro201(self):
        p = Tensor(np.ones((2, 3)), requires_grad=True)
        p.data = p.data.astype(np.float32)  # bypass default-dtype coercion
        findings = check_contracts(
            [_record([p], [AccumEvent(id(p), (2, 3), np.dtype(np.float64))])]
        )
        codes = [f.code for f in findings]
        assert "REPRO201" in codes
        assert any("silently cast" in f.message for f in findings)

    def test_dropped_gradient_is_repro203(self):
        p = Tensor(np.ones((2, 3)), requires_grad=True)
        findings = check_contracts([_record([p], [])])
        assert [f.code for f in findings] == ["REPRO203"]
        assert "dropped" in findings[0].message

    def test_double_count_is_repro203(self):
        p = Tensor(np.ones((2, 3)), requires_grad=True)
        event = AccumEvent(id(p), (2, 3), np.dtype(np.float64))
        findings = check_contracts([_record([p], [event, event])])
        assert [f.code for f in findings] == ["REPRO203"]
        assert "double-counted" in findings[0].message

    def test_non_parent_accumulation_is_repro203(self):
        p = Tensor(np.ones((2, 3)), requires_grad=True)
        stranger = Tensor(np.ones((2, 3)), requires_grad=True)
        event = AccumEvent(id(stranger), (2, 3), np.dtype(np.float64))
        good = AccumEvent(id(p), (2, 3), np.dtype(np.float64))
        findings = check_contracts([_record([p], [good, event])])
        assert [f.code for f in findings] == ["REPRO203"]
        assert "not a recorded parent" in findings[0].message

    def test_not_ran_records_are_skipped(self):
        p = Tensor(np.ones((2, 3)), requires_grad=True)
        findings = check_contracts([_record([p], [], ran=False)])
        assert findings == []

    def test_non_requires_grad_parent_expects_nothing(self):
        p = Tensor(np.ones((2, 3)), requires_grad=False)
        findings = check_contracts([_record([p], [])])
        assert findings == []

    def test_findings_anchor_at_closure_src(self):
        p = Tensor(np.ones((2, 3)), requires_grad=True)
        findings = check_contracts([_record([p], [], src="/some/file.py:42")])
        assert findings[0].path == "/some/file.py"
        assert findings[0].line == 42

    def test_noqa_suppresses(self, tmp_path):
        mod = tmp_path / "vjp.py"
        mod.write_text("def backward(out):  # noqa: REPRO203\n    pass\n")
        p = Tensor(np.ones((2, 3)), requires_grad=True)
        findings = check_contracts([_record([p], [], src=f"{mod}:1")])
        assert findings == []

    def test_duplicate_defects_deduplicated(self):
        p = Tensor(np.ones((2, 3)), requires_grad=True)
        bad = _record([p], [AccumEvent(id(p), (3,), np.dtype(np.float64))])
        findings = check_contracts([bad, bad])
        assert len([f for f in findings if f.code == "REPRO201"]) == 1
