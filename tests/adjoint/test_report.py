"""Audit reports, ``analyze --backward`` integration, baseline diffing."""

import copy
import json

import pytest

from repro.adjoint import SCHEMA, audit_model, audit_registry
from repro.ir import (
    analyze_model,
    baseline_from_reports,
    check_baseline,
)


@pytest.fixture(scope="module")
def audit():
    return audit_model("unet", preset="tiny", grid=32)


class TestAuditModel:
    def test_schema_and_shape(self, audit):
        assert audit["schema"] == SCHEMA
        for key in ("contracts", "gradcheck", "backward", "failures"):
            assert key in audit
        assert audit["model"] == "unet"

    def test_json_serializable(self, audit):
        json.dumps(audit)

    def test_contracts_covered_every_closure(self, audit):
        assert audit["contracts"]["records"] > 0
        assert audit["contracts"]["ran"] == audit["contracts"]["records"]
        assert audit["contracts"]["findings"] == []

    def test_gradcheck_scoped_to_recorded_ops(self, audit):
        gc = audit["gradcheck"]
        assert gc["cases"] > 0 and gc["failed"] == 0
        assert set(gc["checked_ops"]) <= set(audit["contracts"]["ops"])

    def test_backward_section_embedded(self, audit):
        bwd = audit["backward"]
        assert bwd["tape_entries"] > 0
        assert bwd["adjoint_nodes"] > bwd["tape_entries"]
        assert bwd["params_connected"] == bwd["params_total"]
        assert bwd["memory"]["train_peak_bytes"] > 0
        assert bwd["findings"] == []

    def test_registry_model_audit_is_clean(self, audit):
        assert audit["failures"] == []

    def test_audit_registry_subset(self):
        bundle = audit_registry(("pgnn",), preset="tiny", grid=32)
        assert bundle["schema"] == SCHEMA
        assert [r["model"] for r in bundle["reports"]] == ["pgnn"]


class TestAnalyzeBackward:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_model(
            "unet", preset="tiny", grid=64, determinism=False, backward=True
        )

    def test_backward_section_present(self, report):
        assert "backward" in report
        assert report["backward"]["tape_entries"] > 0
        json.dumps(report)

    def test_forward_only_report_has_no_backward(self):
        report = analyze_model("unet", preset="tiny", grid=64, determinism=False)
        assert "backward" not in report

    def test_baseline_pins_backward_fields(self, report):
        baseline = baseline_from_reports({"reports": [report]})
        entry = baseline["entries"][0]
        for field in ("tape_entries", "adjoint_nodes", "train_peak_bytes",
                      "grad_bytes_total"):
            assert field in entry

    def test_baseline_roundtrip_clean(self, report):
        bundle = {"reports": [report]}
        baseline = baseline_from_reports(bundle)
        assert check_baseline(bundle, baseline) == []

    def test_baseline_flags_backward_drift(self, report):
        bundle = {"reports": [report]}
        baseline = copy.deepcopy(baseline_from_reports(bundle))
        baseline["entries"][0]["train_peak_bytes"] += 1
        problems = check_baseline(bundle, baseline)
        assert len(problems) == 1
        assert "train_peak_bytes" in problems[0]

    def test_baseline_flags_missing_backward_section(self, report):
        baseline = baseline_from_reports({"reports": [report]})
        forward_only = analyze_model(
            "unet", preset="tiny", grid=64, determinism=False
        )
        problems = check_baseline({"reports": [forward_only]}, baseline)
        assert any("--backward" in p for p in problems)


class TestCLI:
    def test_gradcheck_model(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["gradcheck", "unet", "--preset", "tiny", "--grid", "32"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "gradcheck OK" in out
        assert "params connected" in out

    def test_gradcheck_ops_mode(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["gradcheck", "ops"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "gradcheck OK" in out

    def test_gradcheck_json(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["gradcheck", "unet", "--preset", "tiny", "--grid", "32",
                       "--json"])
        assert rc == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["schema"] == SCHEMA

    def test_analyze_backward_flag(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["analyze", "unet", "--preset", "tiny", "--grid", "64",
                       "--no-determinism", "--backward"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "backward:" in out
        assert "training memory:" in out
