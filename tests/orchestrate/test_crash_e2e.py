"""End-to-end crash consistency (ISSUE satellite).

Two real crashes, not simulations: a worker SIGKILLed in the middle of
an atomic checkpoint save, and a supervisor process hard-killed
(``os._exit``) in the middle of a journal append.  Both must leave
on-disk state a fresh process can recover to a correct, complete run.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.orchestrate import (
    CODE_JOURNAL_RECOVERY,
    CODE_WORKER_CRASH,
    JobSpec,
    RuntimeConfig,
    read_journal,
    run_jobs,
)

JOBS = "tests.orchestrate.jobs"


def _fast(**overrides) -> RuntimeConfig:
    defaults = dict(
        workers=2, deadline=10.0, heartbeat_interval=0.05,
        heartbeat_grace=10.0, max_attempts=3, backoff_base=0.01,
        backoff_max=0.05, restart_backoff=0.01, run_timeout=60.0,
    )
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


class TestKillMidCheckpointSave:
    def test_retry_recovers_and_quarantines_the_debris(self, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        ckpt_dir.mkdir()
        marker = tmp_path / "first-attempt"
        jobs = [
            JobSpec(
                key="train",
                fn=f"{JOBS}:checkpoint_then_maybe_die",
                args=(str(ckpt_dir), str(marker)),
            )
        ]
        report = run_jobs(jobs, _fast(max_attempts=2))
        # Attempt 1 really died mid-save (SIGKILL during the atomic
        # rename): the supervisor logged a worker crash and retried.
        assert marker.exists()
        assert any(i.code == CODE_WORKER_CRASH for i in report.incidents)
        assert report.complete
        assert report.outcomes[0].attempts == 2
        # The retry's startup scan swept the torn ``*.tmp`` into
        # quarantine and the fresh save produced a loadable bundle.
        assert report.results()["train"] == {"epoch": 2, "quarantined": 1}
        debris = list((ckpt_dir / "quarantine").iterdir())
        assert len(debris) == 1 and debris[0].name.endswith(".tmp")
        from repro.resilience import load_checkpoint

        assert load_checkpoint(ckpt_dir / "last.ckpt.npz").epoch == 2


_CRASH_SCRIPT = """
import sys
from repro.orchestrate import JobSpec, RuntimeConfig, run_jobs
from repro.resilience import JournalChaos

journal_path, log_path = sys.argv[1], sys.argv[2]
jobs = [
    JobSpec(
        key=f"j{i}", fn="tests.orchestrate.jobs:record_effect",
        args=(log_path, f"j{i}"),
    )
    for i in range(4)
]
config = RuntimeConfig(
    workers=0, seed=7,
    journal_chaos=JournalChaos(truncate_at=4, hard_exit=True),
)
run_jobs(jobs, config, journal_path=journal_path)
"""


class TestHardExitMidJournalAppend:
    def test_resume_loses_and_duplicates_nothing(self, tmp_path):
        journal_path = tmp_path / "run.jsonl"
        log_path = tmp_path / "effects.log"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        # Serial supervised run, torn on append #4: run_start, then
        # (dispatched j0, completed j0), then the "dispatched j1" record
        # is half-written when the process dies via os._exit — no
        # cleanup, no atexit, the closest in-process stand-in for
        # SIGKILL.  j0's side effect has run; j1..j3 never started.
        proc = subprocess.run(
            [sys.executable, "-c", _CRASH_SCRIPT, str(journal_path), str(log_path)],
            cwd=Path(__file__).resolve().parents[2],
            env=env,
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == 73, proc.stderr.decode()
        assert not read_journal(journal_path).clean

        jobs = [
            JobSpec(
                key=f"j{i}", fn=f"{JOBS}:record_effect",
                args=(str(log_path), f"j{i}"),
            )
            for i in range(4)
        ]
        report = run_jobs(
            jobs, _fast(seed=7), journal_path=journal_path, resume=True
        )
        assert report.complete
        assert any(i.code == CODE_JOURNAL_RECOVERY for i in report.incidents)
        # The journaled job was not re-run; the torn one was.
        assert report.resumed == 1
        assert {o.key for o in report.outcomes if o.resumed} == {"j0"}
        # Every job ran exactly once across crash + resume: no lost
        # jobs, no duplicated side effects.
        effects = [
            json.loads(line)["job"]
            for line in log_path.read_text().splitlines()
        ]
        assert sorted(effects) == ["j0", "j1", "j2", "j3"]
        assert report.results() == {f"j{i}": {"job": f"j{i}"} for i in range(4)}
