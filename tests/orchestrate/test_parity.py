"""Serial-vs-parallel bitwise parity (ISSUE satellite regression).

Per-job RNG streams are ``SeedSequence(seed).spawn(n)`` children
assigned by submission index, so the *work* a job does is independent
of which worker ran it or when.  These tests pin that property on the
real pipelines: the Table-II contest sweep and the training-dataset
builder.
"""

import numpy as np

from repro.contest import run_table2
from repro.netlist import MLCAD2023_SPECS
from repro.train import CongestionDataset, DatasetConfig

TINY = dict(
    design_names=("Design_116", "Design_120"),
    scale=1.0 / 256.0,
    team_names=("UTDA",),
    seed=17,
)


class TestTable2Parity:
    def test_parallel_scores_match_serial_bitwise(self):
        serial = run_table2(parallel=0, **TINY)
        parallel = run_table2(parallel=2, **TINY)
        assert serial.complete and parallel.complete
        assert serial.rows() == parallel.rows()
        # Not merely equal-after-rounding: the raw score fields match
        # (except t_macro_minutes, which is measured wall-clock time).
        for team, by_design in serial.scores.items():
            for design, score in by_design.items():
                other = parallel.scores[team][design]
                assert (other.s_ir, other.s_dr, other.t_pr_hours) == (
                    score.s_ir, score.s_dr, score.t_pr_hours,
                )

    def test_seed_actually_varies_the_flow(self):
        a = run_table2(parallel=0, **{**TINY, "seed": 17})
        b = run_table2(parallel=0, **{**TINY, "seed": 18})
        assert a.rows() != b.rows()


class TestDatasetParity:
    def _config(self):
        return DatasetConfig(
            grid=16,
            placements_per_design=2,
            design_scale=1.0 / 256.0,
            gp_iters=60,
            stage2_iters=20,
            seed=5,
            augment=False,
        )

    def test_parallel_build_matches_serial_bitwise(self):
        specs = [MLCAD2023_SPECS[n] for n in ("Design_116", "Design_120")]
        serial = CongestionDataset.build(specs, self._config(), parallel=0)
        parallel = CongestionDataset.build(specs, self._config(), parallel=2)
        assert len(serial.train) == len(parallel.train)
        assert len(serial.eval) == len(parallel.eval)
        for a, b in zip(serial.train + serial.eval, parallel.train + parallel.eval):
            assert a.design_name == b.design_name
            assert np.array_equal(a.features, b.features)
            assert np.array_equal(a.labels, b.labels)

    def test_per_design_streams_are_order_independent(self):
        # Generating a design alone yields the same samples as
        # generating it as part of the full set — the per-design child
        # depends only on (seed, position).
        specs = [MLCAD2023_SPECS[n] for n in ("Design_116", "Design_120")]
        full = CongestionDataset.build(specs, self._config(), parallel=0)
        from repro.train.dataset import generate_samples

        child0 = np.random.SeedSequence(self._config().seed).spawn(2)[0]
        alone = generate_samples(specs[0], self._config(), seed_seq=child0)
        first = [s for s in full.eval + full.train if s.design_name == "Design_116"]
        assert np.array_equal(alone[0].features, first[0].features)
        assert np.array_equal(alone[0].labels, first[0].labels)
