"""The JSONL journal: durable appends, torn-tail recovery, digests."""

import json

import pytest

from repro.orchestrate import Journal, payload_digest, read_journal
from repro.resilience import ChaosCrash, JournalChaos


def _start(journal, jobs=("a", "b"), seed=7):
    journal.append({
        "event": "run_start", "jobs": list(jobs), "seed": seed,
        "workers": 2, "resume": False,
    })


class TestAppend:
    def test_one_canonical_json_line_per_record(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            _start(journal)
            journal.append({"event": "dispatched", "job": "a", "attempt": 1})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1]) == {
            "event": "dispatched", "job": "a", "attempt": 1,
        }

    def test_append_reopens_existing_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            _start(journal)
        with Journal(path) as journal:
            journal.append({"event": "dispatched", "job": "a", "attempt": 1})
        assert len(path.read_text().splitlines()) == 2


class TestRecovery:
    def test_round_trip_folds_completed_state(self, tmp_path):
        path = tmp_path / "run.jsonl"
        payload = {"score": 4.5}
        with Journal(path) as journal:
            _start(journal)
            journal.append({
                "event": "completed", "job": "a", "attempt": 1,
                "result": payload, "digest": payload_digest(payload),
            })
            journal.append({"event": "quarantined", "job": "b", "attempts": 3})
        recovery = read_journal(path)
        assert recovery.clean
        assert recovery.job_keys == ["a", "b"]
        assert recovery.seed == 7
        assert recovery.completed == {"a": payload}
        assert recovery.quarantined == {"b"}

    def test_torn_tail_is_dropped_and_counted(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            _start(journal)
            journal.append({
                "event": "completed", "job": "a", "attempt": 1,
                "result": {"v": 1}, "digest": payload_digest({"v": 1}),
            })
        # Simulate a crash mid-append: half a line at the end.
        with open(path, "a") as fh:
            fh.write('{"event": "completed", "job": "b", "at')
        recovery = read_journal(path)
        assert recovery.dropped_lines == 1
        assert not recovery.clean
        assert recovery.completed == {"a": {"v": 1}}  # committed prefix intact

    def test_digest_mismatch_rejects_payload(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            _start(journal)
            journal.append({
                "event": "completed", "job": "a", "attempt": 1,
                "result": {"v": 2}, "digest": "0" * 16,
            })
        recovery = read_journal(path)
        assert recovery.bad_digests == 1
        assert recovery.completed == {}

    def test_later_completion_overrides_quarantine(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            _start(journal)
            journal.append({"event": "quarantined", "job": "a", "attempts": 3})
            journal.append({
                "event": "completed", "job": "a", "attempt": 1,
                "result": {"v": 3}, "digest": payload_digest({"v": 3}),
            })
        recovery = read_journal(path)
        assert recovery.quarantined == set()
        assert recovery.completed == {"a": {"v": 3}}

    def test_non_dict_lines_are_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('"just a string"\n[1, 2]\n\n')
        recovery = read_journal(path)
        assert recovery.records == []
        assert recovery.dropped_lines == 2  # blank lines are not records

    def test_zero_length_journal_is_clean_and_empty(self, tmp_path):
        # Crash after open(..., "a") but before the first append: the
        # journal exists with zero bytes and recovery starts fresh.
        path = tmp_path / "run.jsonl"
        path.touch()
        recovery = read_journal(path)
        assert recovery.clean
        assert recovery.records == []
        assert recovery.completed == {}
        assert recovery.job_keys is None
        assert recovery.seed is None

    def test_torn_tail_only_journal(self, tmp_path):
        # Crash during the very first append: the whole journal is one
        # torn line.  Recovery must report the damage, not invent state.
        path = tmp_path / "run.jsonl"
        path.write_text('{"event": "run_start", "jobs": ["a"')
        recovery = read_journal(path)
        assert recovery.dropped_lines == 1
        assert not recovery.clean
        assert recovery.records == []
        assert recovery.job_keys is None

    def test_identical_duplicate_commit_is_counted_but_clean(self, tmp_path):
        # Crash between the fsync'd commit and the in-memory completion
        # mark: the resumed run redoes the job and, being deterministic,
        # commits the identical payload again.
        path = tmp_path / "run.jsonl"
        record = {
            "event": "completed", "job": "a", "attempt": 1,
            "result": {"v": 1}, "digest": payload_digest({"v": 1}),
        }
        with Journal(path) as journal:
            _start(journal)
            journal.append(record)
            journal.append(record)
        recovery = read_journal(path)
        assert recovery.duplicate_commits == 1
        assert recovery.conflicting_commits == 0
        assert recovery.clean
        assert recovery.completed == {"a": {"v": 1}}

    def test_conflicting_duplicate_commit_breaks_clean(self, tmp_path):
        # Two commits for one job with different payloads: the job is
        # not deterministic — last wins for the fold, but the journal is
        # no longer clean and the caller must treat the run as suspect.
        path = tmp_path / "run.jsonl"
        with Journal(path) as journal:
            _start(journal)
            for v in (1, 2):
                journal.append({
                    "event": "completed", "job": "a", "attempt": v,
                    "result": {"v": v}, "digest": payload_digest({"v": v}),
                })
        recovery = read_journal(path)
        assert recovery.duplicate_commits == 1
        assert recovery.conflicting_commits == 1
        assert not recovery.clean
        assert recovery.completed == {"a": {"v": 2}}  # deterministic last-wins


class TestJournalChaos:
    def test_torn_append_then_recovery(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path, chaos=JournalChaos(truncate_at=2))
        _start(journal)
        with pytest.raises(ChaosCrash):
            journal.append({"event": "dispatched", "job": "a", "attempt": 1})
        journal.close()
        text = path.read_text()
        assert not text.endswith("\n")  # tail really is torn
        recovery = read_journal(path)
        assert recovery.dropped_lines == 1
        assert recovery.job_keys == ["a", "b"]

    def test_payload_digest_is_content_addressed(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})
