"""Supervisor semantics: retries, quarantine, watchdogs, resume.

Worker-pool tests use small deadlines/backoffs so each scenario runs in
well under a second of supervised time; every job function lives in
``tests.orchestrate.jobs`` (workers resolve dotted references).
"""

import numpy as np
import pytest

from repro.orchestrate import (
    CODE_DEADLINE,
    CODE_JOURNAL_RECOVERY,
    CODE_PAYLOAD_INVALID,
    CODE_QUARANTINE,
    CODE_RETRY_EXHAUSTED,
    JobSpec,
    JournalError,
    RuntimeConfig,
    read_journal,
    run_jobs,
)

JOBS = "tests.orchestrate.jobs"


def _fast(**overrides) -> RuntimeConfig:
    defaults = dict(
        workers=2, deadline=10.0, heartbeat_interval=0.05,
        heartbeat_grace=10.0, max_attempts=3, backoff_base=0.01,
        backoff_max=0.05, restart_backoff=0.01, run_timeout=60.0,
    )
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


class TestHappyPath:
    def test_serial_executes_in_submission_order(self):
        jobs = [
            JobSpec(key=f"j{i}", fn=f"{JOBS}:echo", args=(i,)) for i in range(4)
        ]
        report = run_jobs(jobs, _fast(workers=0))
        assert report.complete
        assert [o.key for o in report.outcomes] == ["j0", "j1", "j2", "j3"]
        assert report.results() == {"j0": 0, "j1": 1, "j2": 2, "j3": 3}

    def test_parallel_pool_returns_every_result(self):
        jobs = [
            JobSpec(key=f"j{i}", fn=f"{JOBS}:echo", args=(i,)) for i in range(8)
        ]
        report = run_jobs(jobs, _fast(workers=3))
        assert report.complete
        assert report.results() == {f"j{i}": i for i in range(8)}
        assert report.incidents == []

    def test_duplicate_job_keys_rejected(self):
        jobs = [JobSpec(key="same", fn=f"{JOBS}:echo", args=(1,))] * 2
        with pytest.raises(ValueError, match="unique"):
            run_jobs(jobs, _fast(workers=0))


class TestSeeding:
    def test_jobs_get_independent_spawned_streams(self):
        jobs = [JobSpec(key=f"j{i}", fn=f"{JOBS}:rng_draw") for i in range(3)]
        report = run_jobs(jobs, _fast(workers=0, seed=42))
        draws = list(report.results().values())
        assert len({tuple(d) for d in draws}) == 3  # streams differ
        # And they are exactly the SeedSequence children by index.
        children = np.random.SeedSequence(42).spawn(3)
        for child, drawn in zip(children, draws):
            expected = np.random.default_rng(child).random(4)
            assert list(expected) == drawn

    def test_serial_and_parallel_draws_are_bitwise_identical(self):
        jobs = [JobSpec(key=f"j{i}", fn=f"{JOBS}:rng_draw") for i in range(6)]
        serial = run_jobs(jobs, _fast(workers=0, seed=9)).results()
        parallel = run_jobs(jobs, _fast(workers=3, seed=9)).results()
        assert serial == parallel

    def test_unseeded_run_passes_no_seed_seq(self):
        report = run_jobs(
            [JobSpec(key="a", fn=f"{JOBS}:echo", args=("x",))], _fast(workers=0)
        )
        assert report.results() == {"a": "x"}


class TestRetries:
    def test_flaky_job_succeeds_within_budget(self, tmp_path):
        marker = tmp_path / "attempts"
        jobs = [
            JobSpec(
                key="flaky", fn=f"{JOBS}:flaky",
                kwargs={"marker": str(marker), "fail_times": 2},
            )
        ]
        report = run_jobs(jobs, _fast(max_attempts=3))
        assert report.complete
        assert report.outcomes[0].attempts == 3
        assert report.results()["flaky"] == {"attempts": 3}

    def test_poison_job_is_quarantined_with_incidents(self):
        jobs = [
            JobSpec(key="bad", fn=f"{JOBS}:always_fail"),
            JobSpec(key="good", fn=f"{JOBS}:echo", args=(1,)),
        ]
        report = run_jobs(jobs, _fast(max_attempts=2))
        assert not report.complete
        bad = report.outcomes[0]
        assert bad.status == "quarantined"
        assert bad.attempts == 2
        assert bad.error["type"] == "ValueError"
        assert any("never succeeds" in line for line in bad.error["traceback"])
        codes = [i.code for i in report.incidents]
        assert CODE_RETRY_EXHAUSTED in codes
        assert CODE_QUARANTINE in codes
        # The healthy job still completed.
        assert report.results() == {"good": 1}

    def test_serial_retry_semantics_match(self, tmp_path):
        marker = tmp_path / "attempts"
        jobs = [
            JobSpec(
                key="flaky", fn=f"{JOBS}:flaky",
                kwargs={"marker": str(marker), "fail_times": 1},
            )
        ]
        report = run_jobs(jobs, _fast(workers=0, max_attempts=2))
        assert report.complete
        assert report.outcomes[0].attempts == 2


class TestWatchdogs:
    def test_deadline_kills_hung_worker_and_retries(self, tmp_path):
        # First job sleeps past the deadline; with attempts left it is
        # retried (the sleep is unconditional, so it quarantines) while
        # the short job completes.
        jobs = [
            JobSpec(key="hang", fn=f"{JOBS}:slow", args=(30.0,)),
            JobSpec(key="quick", fn=f"{JOBS}:echo", args=("ok",)),
        ]
        report = run_jobs(
            jobs, _fast(deadline=0.4, max_attempts=1, run_timeout=30.0)
        )
        assert report.outcomes[0].status == "quarantined"
        assert report.results() == {"quick": "ok"}
        assert any(i.code == CODE_DEADLINE for i in report.incidents)

    def test_validation_failure_is_discarded_and_retried(self):
        def validate(payload):
            if payload != "expected":
                raise ValueError(f"bad payload {payload!r}")

        jobs = [JobSpec(key="a", fn=f"{JOBS}:echo", args=("unexpected",))]
        report = run_jobs(jobs, _fast(max_attempts=2, validate=validate))
        assert not report.complete
        assert report.outcomes[0].status == "quarantined"
        assert [i.code for i in report.incidents].count(CODE_PAYLOAD_INVALID) == 2


class TestJournalResume:
    def test_completed_jobs_are_skipped_on_resume(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = tmp_path / "effects.log"
        jobs = [
            JobSpec(
                key=f"j{i}", fn=f"{JOBS}:record_effect",
                args=(str(log), f"j{i}"),
            )
            for i in range(4)
        ]
        first = run_jobs(jobs, _fast(workers=0), journal_path=path)
        assert first.complete
        resumed = run_jobs(jobs, _fast(workers=2), journal_path=path, resume=True)
        assert resumed.complete
        assert resumed.resumed == 4
        assert all(o.attempts == 0 for o in resumed.outcomes)
        # No job ran twice: the effect log still has exactly 4 entries.
        assert len(log.read_text().splitlines()) == 4

    def test_quarantined_job_gets_fresh_budget_on_resume(self, tmp_path):
        path = tmp_path / "run.jsonl"
        marker = tmp_path / "attempts"
        jobs = [
            JobSpec(key="ok", fn=f"{JOBS}:echo", args=(1,)),
            JobSpec(
                key="flaky", fn=f"{JOBS}:flaky",
                kwargs={"marker": str(marker), "fail_times": 1},
            ),
        ]
        first = run_jobs(jobs, _fast(workers=0, max_attempts=1), journal_path=path)
        assert not first.complete
        assert first.outcomes[1].status == "quarantined"
        # Resume: the completed job is skipped, the quarantined one is
        # re-dispatched with a fresh retry budget and now succeeds.
        resumed = run_jobs(
            jobs, _fast(workers=0, max_attempts=1), journal_path=path, resume=True
        )
        assert resumed.complete
        assert resumed.outcomes[0].resumed
        assert resumed.results()["flaky"] == {"attempts": 2}

    def test_resume_with_different_job_set_is_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_jobs(
            [JobSpec(key="a", fn=f"{JOBS}:echo", args=(1,))],
            _fast(workers=0), journal_path=path,
        )
        with pytest.raises(JournalError, match="job set"):
            run_jobs(
                [JobSpec(key="b", fn=f"{JOBS}:echo", args=(2,))],
                _fast(workers=0), journal_path=path, resume=True,
            )

    def test_resume_from_missing_journal_is_a_fresh_run(self, tmp_path):
        path = tmp_path / "never-written.jsonl"
        report = run_jobs(
            [JobSpec(key="a", fn=f"{JOBS}:echo", args=(1,))],
            _fast(workers=0), journal_path=path, resume=True,
        )
        assert report.complete and report.resumed == 0

    def test_torn_journal_surfaces_recovery_incident(self, tmp_path):
        path = tmp_path / "run.jsonl"
        jobs = [JobSpec(key="a", fn=f"{JOBS}:echo", args=(1,))]
        run_jobs(jobs, _fast(workers=0), journal_path=path)
        with open(path, "a") as fh:
            fh.write('{"event": "completed", "job":')  # torn tail
        report = run_jobs(jobs, _fast(workers=0), journal_path=path, resume=True)
        assert report.complete
        assert any(i.code == CODE_JOURNAL_RECOVERY for i in report.incidents)

    def test_journal_records_full_lifecycle(self, tmp_path):
        path = tmp_path / "run.jsonl"
        jobs = [JobSpec(key="a", fn=f"{JOBS}:echo", args=({"v": 1},))]
        run_jobs(jobs, _fast(workers=0, seed=3), journal_path=path)
        recovery = read_journal(path)
        events = [r["event"] for r in recovery.records]
        assert events == ["run_start", "dispatched", "completed"]
        assert recovery.seed == 3
        assert recovery.completed == {"a": {"v": 1}}


class TestTermination:
    def test_run_timeout_is_a_hard_backstop(self):
        jobs = [JobSpec(key="hang", fn=f"{JOBS}:slow", args=(60.0,))]
        report = run_jobs(
            jobs,
            _fast(deadline=30.0, heartbeat_grace=30.0, run_timeout=0.5),
        )
        assert report.outcomes[0].status == "failed"
        assert report.outcomes[0].error["type"] == "RunTimeout"
        assert report.wall_seconds < 20.0
