"""Picklable job callables for the orchestration test suite.

Workers resolve job functions by dotted path, so everything the tests
dispatch lives here at module level.  Several helpers coordinate across
processes through marker files (a counter of attempts, a side-effect
log) — the only channel that survives a SIGKILL'd worker.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np


def echo(value, seed_seq=None):
    """Return ``value`` unchanged (payload plumbing smoke test)."""
    return value


def rng_draw(n=4, seed_seq=None):
    """Draw ``n`` floats from the job's private seeded stream."""
    rng = np.random.default_rng(seed_seq)
    return [float(x) for x in rng.random(n)]


def always_fail(seed_seq=None):
    raise ValueError("this job never succeeds")


def slow(seconds, seed_seq=None):
    """Sleep, then succeed — exceeds small deadlines."""
    time.sleep(seconds)
    return "finished"


def flaky(marker, fail_times=1, seed_seq=None):
    """Fail the first ``fail_times`` attempts, then succeed.

    ``marker`` is a filesystem path used as a cross-process attempt
    counter (one line appended per call).
    """
    path = Path(marker)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("attempt\n")
    attempts = len(path.read_text().splitlines())
    if attempts <= fail_times:
        raise RuntimeError(f"flaky failure on attempt {attempts}")
    return {"attempts": attempts}


def record_effect(log_path, key, seed_seq=None):
    """Append ``key`` to a shared effect log (duplicate-execution probe)."""
    with open(log_path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps({"job": key, "pid": os.getpid()}) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    return {"job": key}


def tiny_bundle(epoch=1):
    """A minimal real Checkpoint (cheap to save in a worker)."""
    from repro.resilience import Checkpoint

    rng = np.random.default_rng(0)
    return Checkpoint(
        model_state={"w": rng.normal(size=(4, 2))},
        optimizer_state={"step": epoch},
        rng_state=rng.bit_generator.state,
        epoch=epoch,
        losses=[1.0 / epoch],
        fingerprint={"lr": 1e-3},
    )


def checkpoint_then_maybe_die(directory, marker, seed_seq=None):
    """Save a checkpoint bundle; SIGKILL self mid-save on the first attempt.

    First attempt (no marker yet): writes the marker, patches
    ``repro.resilience.checkpoint.os.replace`` so the atomic-rename
    step of the save instead SIGKILLs the process — the on-disk state
    is a leftover ``*.tmp`` file, exactly a crash mid-save.  Retry
    attempts save normally and return the saved epoch.
    """
    import signal

    from repro.resilience import checkpoint as ckpt_mod
    from repro.resilience.checkpoint import CheckpointManager

    marker = Path(marker)
    first = not marker.exists()
    if first:
        marker.write_text("dying\n")

        real_replace = ckpt_mod.os.replace

        def killing_replace(src, dst, *args, **kwargs):
            if str(dst).endswith(".npz"):
                os.kill(os.getpid(), signal.SIGKILL)
            return real_replace(src, dst, *args, **kwargs)

        ckpt_mod.os.replace = killing_replace
    manager = CheckpointManager(directory)
    manager.save(tiny_bundle(epoch=2), is_best=False)
    restored = manager.load_last()
    return {"epoch": restored.epoch, "quarantined": len(manager.quarantined)}
