"""The chaos invariant (ISSUE acceptance), on the real Table-II sweep.

Under every injected fault mode a ``run_table2(parallel=N)`` run must
terminate and yield either (a) complete scores bitwise-identical to an
unfaulted serial run, or (b) a valid partial manifest plus a journal
from which ``resume=True`` finishes the run — again bitwise-identical.
"""

import pytest

from repro.contest import run_table2, table2_artifact
from repro.orchestrate import (
    CODE_JOURNAL_RECOVERY,
    RuntimeConfig,
    read_journal,
)
from repro.resilience import CHAOS_MODES, ChaosConfig, ChaosCrash, JournalChaos

DESIGNS = ("Design_116",)
TEAMS = ("UTDA",)
SCALE = 1.0 / 256.0
SEED = 23

#: Fault-mode → incident prefix the chaos run must log.
_INCIDENT_OF = {
    "kill": "REPRO501",
    "hang": "REPRO502",
    "freeze": "REPRO502",
    "corrupt": "REPRO506",
}


def _runtime(**overrides) -> RuntimeConfig:
    # A (team, design) job at SCALE takes ~1s; the deadline leaves 5x
    # headroom while keeping the hang-mode wait short.
    defaults = dict(
        deadline=5.0, heartbeat_interval=0.1, heartbeat_grace=2.0,
        max_attempts=2, backoff_base=0.01, backoff_max=0.05,
        restart_backoff=0.01, run_timeout=120.0,
    )
    defaults.update(overrides)
    return RuntimeConfig(**defaults)


def _table2(**overrides):
    kwargs = dict(
        design_names=DESIGNS, team_names=TEAMS, scale=SCALE, seed=SEED,
    )
    kwargs.update(overrides)
    return run_table2(**kwargs)


def _scores(result):
    # t_macro_minutes is wall-clock time, so it is excluded from parity.
    return {
        (team, design): (score.s_ir, score.s_dr, score.t_pr_hours)
        for team, by_design in result.scores.items()
        for design, score in by_design.items()
    }


@pytest.fixture(scope="module")
def reference():
    """The unfaulted serial run every chaos run must reproduce."""
    result = _table2(parallel=0)
    assert result.complete
    return result


class TestChaosInvariant:
    @pytest.mark.parametrize("mode", CHAOS_MODES)
    def test_fault_mode_recovers_to_identical_scores(
        self, mode, reference, tmp_path
    ):
        # Probability 1.0 on the first attempt of every job: the fault
        # definitely fires, and the retry (attempt 2 > max_attempt)
        # definitely runs clean — so the run completes by itself.
        chaos = ChaosConfig(seed=1, hang_seconds=30.0, **{mode: 1.0})
        result = _table2(
            parallel=2, chaos=chaos,
            journal_path=tmp_path / "run.jsonl",
            runtime_config=_runtime(),
        )
        assert result.complete
        assert _scores(result) == _scores(reference)
        codes = [incident["code"] for incident in result.incidents]
        assert _INCIDENT_OF[mode] in codes

    def test_exhausted_retries_leave_a_resumable_journal(self, reference, tmp_path):
        # With no retry budget the killed job is quarantined: the run
        # still terminates, with a valid partial manifest and a journal
        # from which an unfaulted resume finishes the sweep.
        path = tmp_path / "run.jsonl"
        chaos = ChaosConfig(seed=1, kill=1.0)
        partial = _table2(
            parallel=2, chaos=chaos, journal_path=path,
            runtime_config=_runtime(max_attempts=1),
        )
        assert not partial.complete
        manifest = partial.error_manifest()
        assert [(e["team"], e["design"]) for e in manifest] == [
            ("UTDA", "Design_116")
        ]
        assert manifest[0]["type"]  # structured, not just a string

        # ...and the artifact of the partial run is well-formed.
        artifact = table2_artifact(partial)
        assert artifact["complete"] is False
        assert artifact["incidents"]

        resumed = _table2(
            parallel=2, journal_path=path, resume=True,
            runtime_config=_runtime(),
        )
        assert resumed.complete
        assert _scores(resumed) == _scores(reference)

    def test_torn_journal_append_is_recovered_on_resume(self, reference, tmp_path):
        # Crash the *supervisor* mid-journal-append (soft mode raises so
        # the test can observe it), then resume over the torn journal.
        path = tmp_path / "run.jsonl"
        with pytest.raises(ChaosCrash):
            _table2(
                parallel=2, journal_path=path,
                runtime_config=_runtime(journal_chaos=JournalChaos(truncate_at=2)),
            )
        assert not read_journal(path).clean
        resumed = _table2(
            parallel=2, journal_path=path, resume=True,
            runtime_config=_runtime(),
        )
        assert resumed.complete
        assert _scores(resumed) == _scores(reference)
        codes = [incident["code"] for incident in resumed.incidents]
        assert CODE_JOURNAL_RECOVERY in codes
