"""Documentation consistency: the docs must match the code.

These tests keep README/DESIGN/EXPERIMENTS/API honest: every file the
docs point at exists, every ``repro.*`` symbol API.md names is actually
importable, and the examples the README lists are present.
"""

import importlib
import re
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (_ROOT / name).read_text()


class TestReadme:
    def test_exists_and_mentions_paper(self):
        text = _read("README.md")
        assert "Multiscale Feature Attention" in text
        assert "DATE 2025" in text

    def test_listed_examples_exist(self):
        text = _read("README.md")
        for match in re.finditer(r"examples/(\w+\.py)", text):
            assert (_ROOT / "examples" / match.group(1)).exists(), match.group(0)

    def test_linked_docs_exist(self):
        text = _read("README.md")
        for name in ("DESIGN.md", "EXPERIMENTS.md", "docs/API.md"):
            assert name in text
            assert (_ROOT / name).exists()

    def test_quickstart_code_runs(self):
        """The README's inline Python block must execute as written."""
        text = _read("README.md")
        block = re.search(r"```python\n(.*?)```", text, re.DOTALL)
        assert block is not None
        code = block.group(1).replace("scale=1/64", "scale=1/256")
        exec(compile(code, "README.md", "exec"), {})


class TestDesignDoc:
    def test_lists_every_subpackage(self):
        text = _read("DESIGN.md")
        for package in (
            "repro.nn", "repro.arch", "repro.netlist", "repro.placement",
            "repro.routing", "repro.features", "repro.models",
            "repro.train", "repro.contest",
        ):
            assert package.split(".")[1] in text

    def test_experiment_index_names_real_benches(self):
        text = _read("DESIGN.md")
        for match in re.finditer(r"benchmarks/(test_\w+\.py)", text):
            assert (_ROOT / "benchmarks" / match.group(1)).exists(), match.group(0)


class TestExperimentsDoc:
    def test_references_results_artifacts_generated_by_benches(self):
        text = _read("EXPERIMENTS.md")
        bench_sources = "".join(
            p.read_text() for p in (_ROOT / "benchmarks").glob("test_*.py")
        )
        for match in set(re.findall(r"results/(\w+)\.txt", text)):
            assert f'"{match}"' in bench_sources, (
                f"EXPERIMENTS.md references results/{match}.txt but no bench "
                "writes it"
            )

    def test_paper_averages_match_reference_module(self):
        text = _read("EXPERIMENTS.md")
        # Spot-check two transcribed numbers against the reference module.
        assert "0.885" in text  # paper ours ACC
        assert "36.57" in text  # paper UTDA S_score


class TestDiagnosticsDoc:
    def test_every_registered_code_documented(self):
        """DIAGNOSTICS.md must list every REPROxxx code with the right
        severity, and must not document codes that don't exist."""
        from repro.diagnostics import all_codes

        text = _read("docs/DIAGNOSTICS.md")
        registered = all_codes()
        documented = set(re.findall(r"\bREPRO\d{3}\b", text))
        # REPRO000 (syntax-error sentinel) is not a registered rule.
        assert documented - {"REPRO000"} == set(registered)
        for code, spec in registered.items():
            row = next(
                (line for line in text.splitlines()
                 if line.startswith(f"| {code} ")), None
            )
            assert row is not None, f"{code} has no table row"
            severity = "blocking" if spec.blocking else "advisory"
            assert row.rstrip("| ").endswith(severity), (
                f"{code} documented with wrong severity (want {severity})"
            )

    def test_linked_from_readme_and_api(self):
        assert "docs/DIAGNOSTICS.md" in _read("README.md")
        assert "DIAGNOSTICS.md" in _read("docs/API.md")
        assert (_ROOT / "docs" / "DIAGNOSTICS.md").exists()


class TestScheduleDoc:
    def test_exists_and_pins_schema(self):
        text = _read("docs/SCHEDULE.md")
        assert "repro.schedule/v1" in text
        assert "benchmarks/schedule_baseline.json" in text

    def test_documents_every_schedule_code(self):
        from repro.diagnostics import codes_for

        text = _read("docs/SCHEDULE.md")
        for code in codes_for("schedule"):
            assert code in text, f"SCHEDULE.md does not mention {code}"

    def test_linked_from_readme_and_api(self):
        assert "docs/SCHEDULE.md" in _read("README.md")
        assert "SCHEDULE.md" in _read("docs/API.md")

    def test_exit_code_table_matches_cli_constants(self):
        """API.md's exit-code table and the CLI constants must agree."""
        from repro import cli

        text = _read("docs/API.md")
        rows = dict(
            re.findall(r"^\| (\d) \| `(EXIT_\w+)` \|", text, re.MULTILINE)
        )
        assert len(rows) == 5
        for value, name in rows.items():
            assert getattr(cli, name) == int(value)


class TestOrchestrationDoc:
    def test_exists_and_covers_the_runtime(self):
        text = _read("docs/ORCHESTRATION.md")
        for topic in (
            "heartbeat", "quarantine", "journal", "resume",
            "SeedSequence", "bitwise", "ChaosConfig",
        ):
            assert topic in text, f"ORCHESTRATION.md does not cover {topic}"

    def test_documents_every_orchestrate_code(self):
        from repro.diagnostics import codes_for

        text = _read("docs/ORCHESTRATION.md")
        for code in codes_for("orchestrate"):
            assert code in text, f"ORCHESTRATION.md does not mention {code}"

    def test_linked_from_readme_and_api(self):
        assert "docs/ORCHESTRATION.md" in _read("README.md")
        assert "ORCHESTRATION.md" in _read("docs/API.md")
        assert (_ROOT / "docs" / "ORCHESTRATION.md").exists()


class TestConcurrencyDoc:
    def test_exists_and_covers_the_analyzer(self):
        text = _read("docs/CONCURRENCY.md")
        for topic in (
            "repro.concheck/v1", "benchmarks/concheck_baseline.json",
            "worker-reachab", "effect lattice", "pure", "deterministic",
            "global-mutating", "SeedSequence", "fsync", "noqa",
        ):
            assert topic in text, f"CONCURRENCY.md does not cover {topic}"

    def test_documents_every_concheck_code(self):
        from repro.diagnostics import codes_for

        text = _read("docs/CONCURRENCY.md")
        for code in codes_for("concheck"):
            assert code in text, f"CONCURRENCY.md does not mention {code}"

    def test_linked_from_readme_and_api(self):
        assert "docs/CONCURRENCY.md" in _read("README.md")
        assert "CONCURRENCY.md" in _read("docs/API.md")
        assert (_ROOT / "docs" / "CONCURRENCY.md").exists()


class TestScalingDoc:
    def test_exists_and_covers_the_certifier(self):
        text = _read("docs/SCALING.md")
        for topic in (
            "repro.scaling/v1", "benchmarks/scaling_baseline.json",
            "polynomial", "Fraction", "regime", "held-out",
            "NEST_BUDGETS", "noqa", "fingerprint",
        ):
            assert topic in text, f"SCALING.md does not cover {topic}"

    def test_documents_every_scaling_code(self):
        from repro.diagnostics import codes_for

        text = _read("docs/SCALING.md") + _read("docs/DIAGNOSTICS.md")
        for code in codes_for("scaling"):
            assert code in text, f"scaling docs do not mention {code}"

    def test_linked_from_readme_and_api(self):
        assert "docs/SCALING.md" in _read("README.md")
        assert "SCALING.md" in _read("docs/API.md")
        assert (_ROOT / "docs" / "SCALING.md").exists()


class TestNumericsDoc:
    def test_exists_and_covers_the_certifier(self):
        text = _read("docs/NUMERICS.md")
        for topic in (
            "repro.numcheck/v1", "benchmarks/numcheck_baseline.json",
            "envelope", "unit roundoff", "adjoint", "VAR_FLOOR",
            "REL_VAR_FLOOR", "softmax", "shadow", "budget",
            "noqa", "fingerprint",
        ):
            assert topic in text, f"NUMERICS.md does not cover {topic}"

    def test_documents_every_numcheck_code(self):
        from repro.diagnostics import codes_for

        text = _read("docs/NUMERICS.md") + _read("docs/DIAGNOSTICS.md")
        for code in codes_for("numcheck"):
            assert code in text, f"numcheck docs do not mention {code}"

    def test_linked_from_readme_and_api(self):
        assert "docs/NUMERICS.md" in _read("README.md")
        assert "NUMERICS.md" in _read("docs/API.md")
        assert (_ROOT / "docs" / "NUMERICS.md").exists()


class TestApiDoc:
    def test_every_backticked_symbol_importable(self):
        """Symbols written as `name` in a module section must exist there."""
        text = (_ROOT / "docs" / "API.md").read_text()
        sections = re.split(r"^## ", text, flags=re.MULTILINE)[1:]
        checked = 0
        for section in sections:
            header = section.splitlines()[0]
            modules = re.findall(r"`(repro(?:\.\w+)+)`", header)
            if not modules:
                continue
            module = importlib.import_module(modules[0])
            for name in re.findall(r"^\| `(\w+)[`(]", section, re.MULTILINE):
                assert hasattr(module, name), (
                    f"{modules[0]} lacks documented symbol {name}"
                )
                checked += 1
        assert checked > 50  # the doc really was scanned
