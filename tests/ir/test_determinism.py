"""Determinism audit: REPRO104/105 true and false positives."""

from textwrap import dedent

from repro.ir import audit_determinism
from repro.ir.determinism import audit_file


def _codes(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(dedent(source))
    return [d.code for d in audit_file(path)]


class TestUnseededRng:
    def test_default_rng_without_seed(self, tmp_path):
        assert _codes(tmp_path, """
            import numpy as np
            rng = np.random.default_rng()
        """) == ["REPRO104"]

    def test_default_rng_with_seed_clean(self, tmp_path):
        assert _codes(tmp_path, """
            import numpy as np
            rng = np.random.default_rng(2023)
            rng2 = np.random.default_rng(seed)
        """) == []

    def test_legacy_global_api(self, tmp_path):
        assert _codes(tmp_path, """
            import numpy as np
            x = np.random.rand(3)
            np.random.shuffle(x)
        """) == ["REPRO104", "REPRO104"]

    def test_stdlib_random(self, tmp_path):
        assert _codes(tmp_path, """
            import random
            x = random.random()
        """) == ["REPRO104"]

    def test_generator_methods_clean(self, tmp_path):
        # Methods on an explicit Generator are fine — seeding is the
        # caller's responsibility at construction, which is audited.
        assert _codes(tmp_path, """
            def jitter(rng):
                return rng.normal(size=3)
        """) == []


class TestUnorderedIteration:
    def test_for_over_set_literal(self, tmp_path):
        assert _codes(tmp_path, """
            for x in {1, 2, 3}:
                print(x)
        """) == ["REPRO105"]

    def test_for_over_set_call(self, tmp_path):
        assert _codes(tmp_path, """
            for x in set(items):
                total += x
        """) == ["REPRO105"]

    def test_comprehension_over_set_union(self, tmp_path):
        assert _codes(tmp_path, """
            out = [f(x) for x in a.union(b)]
        """) == ["REPRO105"]

    def test_listdir_unsorted(self, tmp_path):
        assert _codes(tmp_path, """
            import os
            for name in os.listdir(path):
                load(name)
        """) == ["REPRO105"]

    def test_sorted_wrappers_clean(self, tmp_path):
        assert _codes(tmp_path, """
            import os
            for x in sorted({1, 2, 3}):
                print(x)
            for name in sorted(os.listdir(path)):
                load(name)
        """) == []

    def test_for_over_list_clean(self, tmp_path):
        assert _codes(tmp_path, """
            for x in [1, 2, 3]:
                print(x)
        """) == []


class TestSuppression:
    def test_noqa_silences_finding(self, tmp_path):
        assert _codes(tmp_path, """
            import numpy as np
            rng = np.random.default_rng()  # noqa: REPRO104
        """) == []

    def test_noqa_wrong_code_keeps_finding(self, tmp_path):
        assert _codes(tmp_path, """
            import numpy as np
            rng = np.random.default_rng()  # noqa: REPRO105
        """) == ["REPRO104"]


class TestRepoAudit:
    def test_training_placement_callgraph_is_clean(self):
        """The shipped training/placement code must audit clean."""
        result = audit_determinism()
        assert result["audited_files"] > 10
        assert result["findings"] == [], "\n".join(
            str(f) for f in result["findings"]
        )
