"""Cost model: FLOP counts must be analytically exact on known layers."""

import numpy as np

from repro.ir import cost_model, trace
from repro.nn import Conv2d, Linear


def _rng():
    return np.random.default_rng(0)


class TestAnalyticFlops:
    def test_conv2d_exact(self):
        # im2col conv: the single einsum contraction does
        # 2 * N * C_out * (C_in * k^2) * H_out * W_out flops.
        n, c_in, c_out, k, h = 1, 3, 8, 3, 16
        conv = Conv2d(c_in, c_out, k, padding=1, rng=_rng())
        graph = trace(conv, (n, c_in, h, h))
        einsum_flops = sum(node.flops for node in graph if node.op == "einsum")
        assert einsum_flops == 2 * n * c_out * (c_in * k * k) * h * h

    def test_conv2d_strided_exact(self):
        n, c_in, c_out, k, h, stride = 2, 4, 6, 3, 16, 2
        h_out = (h - k) // stride + 1
        conv = Conv2d(c_in, c_out, k, stride=stride, rng=_rng())
        graph = trace(conv, (n, c_in, h, h))
        einsum_flops = sum(node.flops for node in graph if node.op == "einsum")
        assert einsum_flops == 2 * n * c_out * (c_in * k * k) * h_out * h_out

    def test_linear_exact(self):
        # y = x @ W^T: 2 * batch * in * out flops for the matmul.
        linear = Linear(5, 7, rng=_rng())
        graph = trace(linear, (4, 5))
        matmul_flops = sum(node.flops for node in graph if node.op == "matmul")
        assert matmul_flops == 2 * 4 * 5 * 7

    def test_elementwise_is_output_sized(self):
        linear = Linear(5, 7, rng=_rng())
        graph = trace(linear, (4, 5))
        adds = [node for node in graph if node.op == "add"]
        assert adds and all(node.flops == node.size for node in adds)


class TestRollups:
    def test_tables_sum_to_total(self):
        conv = Conv2d(3, 8, 3, padding=1, rng=_rng())
        graph = trace(conv, (1, 3, 16, 16))
        cost = cost_model(graph)
        assert cost["total_flops"] > 0
        assert sum(r["flops"] for r in cost["by_op"]) == cost["total_flops"]
        assert sum(r["flops"] for r in cost["by_stage"]) == cost["total_flops"]

    def test_param_accounting(self):
        conv = Conv2d(3, 8, 3, padding=1, rng=_rng())
        graph = trace(conv, (1, 3, 16, 16))
        cost = cost_model(graph)
        assert cost["param_count"] == 8 * 3 * 3 * 3 + 8
        assert cost["param_bytes"] == cost["param_count"] * 8

    def test_flops_per_output_pixel(self):
        conv = Conv2d(3, 8, 3, padding=1, rng=_rng())
        graph = trace(conv, (1, 3, 16, 16))
        cost = cost_model(graph)
        assert cost["flops_per_output_pixel"] == cost["total_flops"] // (16 * 16)
