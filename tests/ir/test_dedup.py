"""Dead-subgraph and CSE detection on synthetic graphs."""

import numpy as np

from repro.ir import find_dead, find_duplicates
from repro.ir.graph import Graph

F64 = np.float64


def _base():
    g = Graph()
    a = g.add("input", (), (8,), F64, bytes=64, kind="input")
    return g, a


class TestDead:
    def test_unused_chain_detected(self):
        g, a = _base()
        live = g.add("exp", (a.id,), (8,), F64, flops=8, bytes=64)
        waste1 = g.add("log", (live.id,), (8,), F64, flops=8, bytes=64)
        g.add("negative", (waste1.id,), (8,), F64, flops=8, bytes=64)
        g.outputs.append(live.id)

        result = find_dead(g)
        assert result["dead_nodes"] == 2
        assert result["dead_flops"] == 16
        assert result["chains"] == 1
        assert [f.code for f in result["findings"]] == ["REPRO106"]

    def test_view_of_output_is_live(self):
        g, a = _base()
        b = g.add("exp", (a.id,), (8,), F64, flops=8, bytes=64)
        view = g.add("transpose", (b.id,), (8,), F64, alias_of=b.id)
        g.outputs.append(view.id)
        result = find_dead(g)
        assert result["dead_nodes"] == 0
        assert result["findings"] == []


class TestDuplicates:
    def test_identical_subtrees_grouped(self):
        g, a = _base()
        b1 = g.add("exp", (a.id,), (8,), F64, flops=8, bytes=64)
        b2 = g.add("exp", (a.id,), (8,), F64, flops=8, bytes=64)
        out = g.add("add", (b1.id, b2.id), (8,), F64, flops=8, bytes=64)
        g.outputs.append(out.id)

        result = find_duplicates(g)
        assert result["duplicate_groups"] == 1
        assert result["wasted_flops"] == 8
        assert result["wasted_bytes"] == 64
        assert [f.code for f in result["findings"]] == ["REPRO107"]

    def test_structural_identity_is_recursive(self):
        # exp(log(a)) twice: the *roots* match only because the whole
        # subtree under each matches.
        g, a = _base()
        l1 = g.add("log", (a.id,), (8,), F64, flops=8, bytes=64)
        l2 = g.add("log", (a.id,), (8,), F64, flops=8, bytes=64)
        e1 = g.add("exp", (l1.id,), (8,), F64, flops=8, bytes=64)
        e2 = g.add("exp", (l2.id,), (8,), F64, flops=8, bytes=64)
        out = g.add("add", (e1.id, e2.id), (8,), F64, flops=8, bytes=64)
        g.outputs.append(out.id)
        assert find_duplicates(g)["duplicate_groups"] == 2

    def test_different_attrs_not_duplicates(self):
        g, a = _base()
        s1 = g.add("sum", (a.id,), (), F64, flops=8, bytes=8,
                   attrs=(("axis", 0),))
        s2 = g.add("sum", (a.id,), (), F64, flops=8, bytes=8,
                   attrs=(("axis", 1),))
        out = g.add("add", (s1.id, s2.id), (), F64, flops=1, bytes=8)
        g.outputs.append(out.id)
        assert find_duplicates(g)["duplicate_groups"] == 0

    def test_distinct_params_never_merge(self):
        g = Graph()
        w1 = g.add("param", (), (8,), F64, bytes=64, kind="param")
        w2 = g.add("param", (), (8,), F64, bytes=64, kind="param")
        e1 = g.add("exp", (w1.id,), (8,), F64, flops=8, bytes=64)
        e2 = g.add("exp", (w2.id,), (8,), F64, flops=8, bytes=64)
        out = g.add("add", (e1.id, e2.id), (8,), F64, flops=8, bytes=64)
        g.outputs.append(out.id)
        assert find_duplicates(g)["duplicate_groups"] == 0
