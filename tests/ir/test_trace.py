"""Tracer fidelity: the symbolic graph must mirror the real forward.

The tracer executes each model's *own* ``forward`` over shape-only
payloads, so the strongest possible check is direct: traced output
shapes must equal the shapes a real forward produces, for every registry
model at more than one grid size — and the trace must never touch real
data.
"""

import numpy as np
import pytest

from repro.ir import SymbolicArray, TraceError, trace, trace_model
from repro.ir.trace import TraceSession
from repro.models import build_model
from repro.models.registry import MODEL_NAMES
from repro.nn import BatchNorm2d, Conv2d, Linear, Sequential
from repro.nn.tensor import Tensor, no_grad


@pytest.mark.parametrize("grid", [64, 128])
@pytest.mark.parametrize("name", MODEL_NAMES)
class TestShapeFidelity:
    def test_traced_shapes_match_runtime(self, name, grid):
        graph = trace_model(name, preset="tiny", grid=grid, seed=0)
        model = build_model(name, "tiny", grid=grid, seed=0)
        model.eval()
        with no_grad():
            out = model(Tensor(np.zeros((1, 6, grid, grid))))
        traced = [graph[i].shape for i in graph.outputs]
        assert traced == [out.data.shape]
        assert graph[graph.outputs[0]].dtype == out.data.dtype


class TestGraphStructure:
    @pytest.fixture(scope="class")
    def graph(self):
        return trace_model("ours", preset="tiny", grid=64)

    def test_params_registered(self, graph):
        counts = graph.counts()
        assert counts["param"] > 0
        assert counts["input"] == 1
        assert counts["op"] > 100

    def test_param_count_matches_model(self, graph):
        model = build_model("ours", "tiny", grid=64)
        traced = sum(n.size for n in graph if n.kind == "param")
        assert traced == model.num_parameters()

    def test_scope_attribution(self, graph):
        scopes = {n.scope for n in graph if n.kind == "op"}
        # Nested module paths, not just the root.
        assert any(s.count(".") >= 2 for s in scopes)
        assert all(s.startswith("MFATransformerNet") for s in scopes if s)

    def test_src_attribution_points_at_substrate(self, graph):
        srcs = [n.src for n in graph if n.kind == "op" and n.src]
        assert srcs, "op nodes must carry call-site attribution"
        assert any("functional.py" in s for s in srcs)

    def test_ssa_order(self, graph):
        for node in graph:
            assert all(i < node.id for i in node.inputs)

    def test_views_carry_no_bytes(self, graph):
        views = [n for n in graph if n.alias_of is not None]
        assert views, "conv/attention reshapes should produce views"
        assert all(n.bytes == 0 for n in views)


class TestNoRealCompute:
    def test_symbolic_array_refuses_materialization(self):
        sess = TraceSession()
        node = sess.graph.add(
            "input", (), (2, 3), np.float64, kind="input", meta={"vrange": (0, 1)}
        )
        arr = SymbolicArray(sess, node.id, (2, 3), np.dtype(np.float64))
        with pytest.raises(TraceError):
            np.asarray(arr)
        with pytest.raises(TraceError):
            bool(arr)
        with pytest.raises(TraceError):
            float(arr)

    def test_large_grid_traces_instantly(self):
        # 512x512 through the full paper-preset model: pure shape
        # arithmetic, so this must not allocate gigabyte activations.
        graph = trace_model("ours", preset="paper", grid=512)
        assert graph[graph.outputs[0]].shape == (1, 8, 512, 512)


class TestTraceHygiene:
    def test_training_mode_restored(self):
        model = Sequential(Conv2d(3, 4, 3, padding=1), BatchNorm2d(4))
        model.train()
        trace(model, (1, 3, 8, 8))
        assert all(m.training for m in model.modules())

    def test_linear_graph_minimal(self):
        graph = trace(Linear(5, 7, rng=np.random.default_rng(0)), (4, 5))
        ops = [n.op for n in graph if n.kind == "op"]
        assert "matmul" in ops
        assert graph[graph.outputs[0]].shape == (4, 7)

    def test_const_scalars_deduplicated(self):
        graph = trace(Linear(5, 7, rng=np.random.default_rng(0)), (4, 5))
        names = [n.name for n in graph if n.kind == "const"]
        assert len(names) == len(set(names))
