"""Memory planner: exact answers on hand-built graphs, and the planned
peak must match what the numpy runtime actually allocates."""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.ir import plan_memory, trace
from repro.models import build_model
from repro.nn.tensor import Tensor, no_grad

F64 = np.float64
KB = 1000


def _graph():
    from repro.ir.graph import Graph

    return Graph()


class TestHandBuiltGraphs:
    def test_last_use_liveness(self):
        # a(input) -> b=exp(a) -> c=view(b) -> d=add(c, a); d is output.
        # b stays alive through its view c until d; peak = b + d.
        g = _graph()
        a = g.add("input", (), (125,), F64, bytes=KB, kind="input")
        b = g.add("exp", (a.id,), (125,), F64, bytes=KB)
        c = g.add("transpose", (b.id,), (125,), F64, alias_of=b.id)
        d = g.add("add", (c.id, a.id), (125,), F64, bytes=KB)
        g.outputs.append(d.id)

        plan = plan_memory(g)
        assert plan["peak_bytes"] == 2 * KB
        assert plan["activation_buffers"] == 2
        assert plan["activation_bytes_total"] == 2 * KB
        assert plan["input_bytes"] == KB

    def test_sequential_chain_frees_behind_itself(self):
        # x -> y -> z at root scope: y dies as soon as z is computed, so
        # only two buffers ever coexist.
        g = _graph()
        a = g.add("input", (), (125,), F64, bytes=KB, kind="input")
        prev = a
        for _ in range(5):
            prev = g.add("exp", (prev.id,), (125,), F64, bytes=KB)
        g.outputs.append(prev.id)
        assert plan_memory(g)["peak_bytes"] == 2 * KB

    def test_output_lives_to_end(self):
        g = _graph()
        a = g.add("input", (), (125,), F64, bytes=KB, kind="input")
        b = g.add("exp", (a.id,), (125,), F64, bytes=KB)
        g.add("exp", (b.id,), (125,), F64, bytes=KB)  # dead tail
        g.outputs.append(b.id)
        plan = plan_memory(g)
        (rng,) = [r for r in plan["top_liveranges"] if r["node"] == b.id]
        assert rng["dies"] is None  # survives the whole program

    def test_scope_extension_pins_locals(self):
        # Three chained ops inside one depth-2 module call: the call's
        # Python locals keep every intermediate alive until it returns,
        # so all three buffers coexist at the scope's last node.
        g = _graph()
        a = g.add("input", (), (125,), F64, bytes=KB, kind="input")
        meta = {"scope_id": 7, "scope_depth": 2}
        prev = a
        for _ in range(3):
            prev = g.add("exp", (prev.id,), (125,), F64, bytes=KB, meta=dict(meta))
        g.outputs.append(prev.id)
        assert plan_memory(g)["peak_bytes"] == 3 * KB

    def test_workspace_counts_as_transient(self):
        g = _graph()
        a = g.add("input", (), (125,), F64, bytes=KB, kind="input")
        b = g.add(
            "einsum", (a.id,), (125,), F64, bytes=KB,
            meta={"workspace_bytes": KB // 2},
        )
        g.outputs.append(b.id)
        plan = plan_memory(g)
        assert plan["peak_bytes"] == KB + KB // 2
        assert plan["peak_node"] == b.id

    def test_persistent_memory_separate(self):
        g = _graph()
        w = g.add("param", (), (125,), F64, bytes=KB, kind="param")
        a = g.add("input", (), (125,), F64, bytes=KB, kind="input")
        b = g.add("add", (a.id, w.id), (125,), F64, bytes=KB)
        g.outputs.append(b.id)
        plan = plan_memory(g)
        assert plan["persistent_bytes"] == KB
        assert plan["peak_bytes"] == KB  # params are not activations


@pytest.mark.parametrize("name", ["unet", "ours"])
def test_planned_peak_matches_runtime(name):
    """Acceptance bound: planned peak within 10% of a measured forward."""
    grid = 64
    model = build_model(name, "tiny", grid=grid, seed=0)
    model.eval()
    graph = trace(model, (1, 6, grid, grid), input_vrange=(0.0, 1.0))
    planned = plan_memory(graph)["peak_bytes"]

    x = Tensor(np.random.default_rng(0).random((1, 6, grid, grid)))
    with no_grad():
        model(x)  # warm-up: let numpy/BLAS pools settle
    gc.collect()
    tracemalloc.start()
    with no_grad():
        model(x)
    measured = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    assert measured > 0
    assert abs(planned - measured) / measured < 0.10, (
        f"{name}: planned {planned:,} vs measured {measured:,}"
    )
