"""End-to-end report, baseline diffing, registry and CLI integration."""

import copy
import json

import pytest

from repro.cli import main as cli_main
from repro.ir import (
    SCHEMA,
    AnalysisError,
    analyze_model,
    analyze_registry,
    baseline_from_reports,
    check_baseline,
)
from repro.lint.rules import LintDiagnostic
from repro.models import build_model


@pytest.fixture(scope="module")
def bundle():
    return analyze_registry(("unet", "pros2"), preset="tiny", grids=(64,))


class TestReport:
    def test_schema_and_shape(self, bundle):
        assert bundle["schema"] == SCHEMA
        report = bundle["reports"][0]
        for key in ("graph", "memory", "cost", "stability", "determinism",
                    "opportunities", "failures"):
            assert key in report
        assert report["model"] == "unet"
        assert report["grid"] == 64

    def test_json_serializable(self, bundle):
        json.dumps(bundle)

    def test_registry_models_have_no_failures(self, bundle):
        for report in bundle["reports"]:
            assert report["failures"] == [], report["failures"]

    def test_determinism_audit_runs_once(self, bundle):
        audited = [r["determinism"]["audited_files"] for r in bundle["reports"]]
        assert audited[0] > 0
        assert all(a == 0 for a in audited[1:])

    def test_analyze_model_single(self):
        report = analyze_model("unet", preset="tiny", grid=64,
                               determinism=False)
        assert report["cost"]["total_flops"] > 0
        assert report["memory"]["peak_bytes"] > 0


class TestBaseline:
    def test_round_trip_clean(self, bundle):
        baseline = baseline_from_reports(bundle)
        assert check_baseline(bundle, baseline) == []

    def test_flop_drift_detected(self, bundle):
        baseline = copy.deepcopy(baseline_from_reports(bundle))
        baseline["entries"][0]["total_flops"] += 1000
        problems = check_baseline(bundle, baseline)
        assert len(problems) == 1
        assert "total_flops" in problems[0]

    def test_missing_entry_detected(self, bundle):
        baseline = copy.deepcopy(baseline_from_reports(bundle))
        dropped = baseline["entries"].pop()
        problems = check_baseline(bundle, baseline)
        assert any(dropped["model"] in p for p in problems)

    def test_checked_in_baseline_matches_head(self):
        """benchmarks/ir_baseline.json must describe the current code."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "benchmarks" / "ir_baseline.json"
        baseline = json.loads(path.read_text())
        grids = sorted({e["grid"] for e in baseline["entries"]})
        models = tuple(dict.fromkeys(e["model"] for e in baseline["entries"]))
        current = analyze_registry(models, preset="fast", grids=tuple(grids),
                                   determinism=False)
        assert check_baseline(current, baseline) == []


class TestIntegration:
    def test_build_model_analyze_true(self):
        model = build_model("unet", "tiny", grid=64, analyze=True)
        assert model.num_parameters() > 0

    def test_analysis_error_formatting(self):
        err = AnalysisError(
            [LintDiagnostic("f.py", 3, 0, "REPRO101", "exp overflows")]
        )
        assert "1 blocking finding" in str(err)
        assert "f.py:3:0: REPRO101" in str(err)

    def test_cli_analyze(self, capsys):
        rc = cli_main(["analyze", "unet", "--preset", "tiny", "--grid", "64"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "flops:" in out and "memory:" in out

    def test_cli_analyze_json(self, capsys):
        rc = cli_main(["analyze", "unet", "--preset", "tiny", "--grid", "64",
                       "--json", "--no-determinism"])
        assert rc == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["schema"] == SCHEMA

    def test_cli_baseline_cycle(self, tmp_path, capsys):
        path = tmp_path / "base.json"
        assert cli_main(["analyze", "unet", "--preset", "tiny", "--grid", "64",
                         "--no-determinism", "--update-baseline", str(path)]) == 0
        capsys.readouterr()
        assert cli_main(["analyze", "unet", "--preset", "tiny", "--grid", "64",
                         "--no-determinism", "--check-baseline", str(path)]) == 0
        # A different grid must be reported as drift (EXIT_DRIFT, not
        # the blocking-findings code — see the table in docs/API.md).
        assert cli_main(["analyze", "unet", "--preset", "tiny", "--grid", "128",
                         "--no-determinism", "--check-baseline", str(path)]) == 3
        assert "baseline drift" in capsys.readouterr().err
