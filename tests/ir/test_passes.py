"""Pass framework: registration, rule table, shared # noqa suppression."""

import numpy as np
import pytest

from repro.ir import IR_RULES, OPPORTUNITY_RULES, register_pass, registered_passes
from repro.ir.graph import Graph
from repro.ir.passes import filter_noqa, node_finding
from repro.lint.rules import RULES as LINT_RULES


class TestRuleTable:
    def test_ir_codes_complete(self):
        assert set(IR_RULES) == {
            "REPRO101", "REPRO102", "REPRO103", "REPRO104",
            "REPRO105", "REPRO106", "REPRO107",
        }

    def test_namespace_disjoint_from_lint(self):
        # 0xx belongs to the AST lint rules, 1xx to the IR analyses.
        assert not set(IR_RULES) & set(LINT_RULES)

    def test_opportunity_rules_subset(self):
        assert set(OPPORTUNITY_RULES) <= set(IR_RULES)

    def test_builtin_passes_registered(self):
        assert {"memory", "cost", "stability", "dead", "cse"} <= set(
            registered_passes()
        )

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_pass("memory")(lambda g: {})


class TestNoqa:
    def _finding(self, path, line):
        g = Graph()
        node = g.add("exp", (), (4,), np.float64, bytes=32,
                     src=f"{path}:{line}")
        return node_finding(node, "REPRO101", "exp overflows")

    def test_noqa_drops_graph_finding(self, tmp_path):
        path = tmp_path / "layer.py"
        path.write_text("x = 1\ny = exp(x)  # noqa: REPRO101\n")
        assert filter_noqa([self._finding(str(path), 2)]) == []

    def test_other_code_kept(self, tmp_path):
        path = tmp_path / "layer.py"
        path.write_text("x = 1\ny = exp(x)  # noqa: REPRO102\n")
        kept = filter_noqa([self._finding(str(path), 2)])
        assert [f.code for f in kept] == ["REPRO101"]

    def test_finding_format_matches_lint(self, tmp_path):
        path = tmp_path / "layer.py"
        path.write_text("y = exp(x)\n")
        finding = self._finding(str(path), 1)
        assert str(finding).startswith(f"{path}:1:0: REPRO101 ")
