"""Stability passes: flag real hazards, stay silent on stabilized code.

The interesting property is the *negative* direction: the interval
domain plus the max-shift pattern recognition must prove the substrate's
stabilized softmax/log-sum-exp safe, otherwise every model would drown
in false REPRO101s.
"""

import numpy as np
import pytest

from repro.ir import check_stability, trace, trace_model
from repro.models.registry import MODEL_NAMES
from repro.nn import Module


def _codes(module, *shapes, input_vrange=(-np.inf, np.inf)):
    graph = trace(module, *shapes, input_vrange=input_vrange)
    return [f.code for f in check_stability(graph)["findings"]]


class NaiveSoftmax(Module):
    def forward(self, x):
        e = x.exp()
        return e / e.sum(axis=1, keepdims=True)


class StableSoftmax(Module):
    def forward(self, x):
        e = (x - x.max(axis=1, keepdims=True)).exp()
        return e / e.sum(axis=1, keepdims=True)


class NaiveLogSumExp(Module):
    def forward(self, x):
        return x.exp().sum(axis=1, keepdims=True).log()


class StableLogSumExp(Module):
    def forward(self, x):
        m = x.max(axis=1, keepdims=True)
        return (x - m).exp().sum(axis=1, keepdims=True).log() + m


class TestExpOverflow:
    def test_naive_softmax_flagged(self):
        codes = _codes(NaiveSoftmax(), (2, 8))
        assert "REPRO101" in codes

    def test_stable_softmax_clean(self):
        assert _codes(StableSoftmax(), (2, 8)) == []

    def test_bounded_input_exempts_naive_exp(self):
        # exp of a provably small value cannot overflow.
        codes = _codes(NaiveSoftmax(), (2, 8), input_vrange=(-1.0, 1.0))
        assert "REPRO101" not in codes


class TestLogAndDivide:
    def test_naive_log_sum_exp_flagged(self):
        # exp overflows AND the log sees a sum that can underflow to 0.
        codes = _codes(NaiveLogSumExp(), (2, 8))
        assert "REPRO101" in codes
        assert "REPRO102" in codes

    def test_stable_log_sum_exp_clean(self):
        # sum(exp(x - max(x))) >= 1, so the log is provably safe.
        assert _codes(StableLogSumExp(), (2, 8)) == []

    def test_division_by_possibly_zero_sum(self):
        class Normalize(Module):
            def forward(self, x):
                return x / x.sum(axis=1, keepdims=True)

        codes = _codes(Normalize(), (2, 8), input_vrange=(0.0, 1.0))
        assert "REPRO102" in codes

    def test_log_of_shifted_input_clean(self):
        class LogShifted(Module):
            def forward(self, x):
                return (x + 1.0).log()

        assert _codes(LogShifted(), (2, 8), input_vrange=(0.0, 1.0)) == []


class TestPromotion:
    # ``Tensor.__init__`` coerces concrete operands to the default dtype,
    # so silent widening can only arise on raw-ufunc paths (functional
    # kernels, buffers); exercise the pass on hand-built graphs.
    def _mixed(self, *, weak, op="multiply"):
        from repro.ir.graph import Graph

        g = Graph()
        a = g.add("input", (), (2, 8), np.float64, bytes=128, kind="input",
                  meta={"vrange": (0.0, 1.0)})
        shape = () if weak else (8,)
        c = g.add("const", (), shape, np.float32, bytes=32, kind="const",
                  meta={"vrange": (1.0, 1.0), "weak": weak})
        out = g.add(op, (a.id, c.id), (2, 8), np.float64, flops=16, bytes=128,
                    meta={"vrange": (0.0, 1.0)})
        g.outputs.append(out.id)
        return g

    def test_silent_float32_widening_flagged(self):
        findings = check_stability(self._mixed(weak=False))["findings"]
        assert [f.code for f in findings] == ["REPRO103"]

    def test_weak_scalar_not_flagged(self):
        assert check_stability(self._mixed(weak=True))["findings"] == []

    def test_explicit_cast_not_flagged(self):
        assert check_stability(self._mixed(weak=False, op="cast"))["findings"] == []

    def test_python_scalars_promote_weakly(self):
        class Scaled(Module):
            def forward(self, x):
                return x * 0.5 + 1

        assert _codes(Scaled(), (2, 8), input_vrange=(0.0, 1.0)) == []


class TestPinnedDtypeThresholds:
    """Overflow limits follow the *pinned* execution dtype, not the
    traced one — a graph scheduled to run at float32 must be screened
    against exp's ~88.7 bound, not float64's ~709.8 (REPRO805's
    stability half)."""

    class Exp(Module):
        def forward(self, x):
            return x.exp()

    def _exp_graph(self, hi):
        return trace(self.Exp(), (2, 8), input_vrange=(0.0, hi))

    def _exp_node(self, graph):
        return next(n for n in graph if n.kind == "op" and n.op == "exp")

    def test_float64_trace_clean_between_thresholds(self):
        # 100 < log(float64 max) ~ 709.8: safe as traced.
        graph = self._exp_graph(100.0)
        assert check_stability(graph)["findings"] == []

    def test_float32_pin_lowers_the_limit(self):
        # The same graph pinned to float32 overflows past ~88.7.
        graph = self._exp_graph(100.0)
        pins = {self._exp_node(graph).id: "float32"}
        codes = [
            f.code for f in check_stability(graph, pins=pins)["findings"]
        ]
        assert codes == ["REPRO101"]

    def test_float32_pin_safe_below_its_limit(self):
        graph = self._exp_graph(80.0)
        pins = {self._exp_node(graph).id: "float32"}
        assert check_stability(graph, pins=pins)["findings"] == []


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_registry_models_are_stable(name):
    """The shipped models must produce zero stability findings."""
    graph = trace_model(name, preset="tiny", grid=64)
    assert check_stability(graph)["findings"] == []
