"""Bottom-up cell clustering."""

import numpy as np
import pytest

from repro.arch import ResourceType
from repro.netlist import (
    MLCAD2023_SPECS,
    cluster_cells,
    expand_placement,
    generate_design,
)


@pytest.fixture(scope="module")
def clustered_pair():
    design = generate_design(MLCAD2023_SPECS["Design_116"], scale=1 / 128)
    clustered, mapping = cluster_cells(design, max_lut=16.0, seed=0)
    return design, clustered, mapping


class TestClusterCells:
    def test_reduces_instance_count(self, clustered_pair):
        design, clustered, _ = clustered_pair
        assert clustered.num_instances < design.num_instances

    def test_mapping_covers_every_instance(self, clustered_pair):
        design, clustered, mapping = clustered_pair
        assert mapping.shape == (design.num_instances,)
        assert mapping.min() >= 0
        assert mapping.max() < clustered.num_instances
        # Every clustered instance is the image of at least one original.
        assert set(mapping.tolist()) == set(range(clustered.num_instances))

    def test_demand_conserved_per_resource(self, clustered_pair):
        design, clustered, _ = clustered_pair
        for res in ResourceType:
            assert clustered.total_demand(res) == pytest.approx(
                design.total_demand(res)
            )

    def test_lut_cap_respected(self, clustered_pair):
        _, clustered, _ = clustered_pair
        lut_col = list(ResourceType).index(ResourceType.LUT)
        movable = clustered.movable_mask
        assert clustered.demand_matrix[movable, lut_col].max() <= 16.0 + 1e-9

    def test_macros_map_one_to_one(self, clustered_pair):
        design, clustered, mapping = clustered_pair
        macro_targets = mapping[design.macro_indices()]
        assert len(set(macro_targets.tolist())) == design.macro_indices().size
        for orig, target in zip(design.macro_indices(), macro_targets):
            assert (
                clustered.instances[int(target)].resource
                is design.instances[int(orig)].resource
            )

    def test_fixed_instances_preserved(self, clustered_pair):
        design, clustered, mapping = clustered_pair
        fixed = np.flatnonzero(~design.movable_mask)
        for orig in fixed:
            assert not clustered.instances[int(mapping[orig])].movable

    def test_constraints_remapped(self, clustered_pair):
        design, clustered, _ = clustered_pair
        assert len(clustered.cascades) == len(design.cascades)
        assert len(clustered.regions) == len(design.regions)

    def test_fence_never_mixes(self, clustered_pair):
        """A cluster never contains both fenced and unfenced cells."""
        design, clustered, mapping = clustered_pair
        fence_of = {}
        for ridx, region in enumerate(design.regions):
            for inst in region.instances:
                fence_of[inst] = ridx
        cluster_fences: dict[int, set] = {}
        for orig in range(design.num_instances):
            cluster_fences.setdefault(int(mapping[orig]), set()).add(
                fence_of.get(orig)
            )
        for fences in cluster_fences.values():
            assert len(fences) == 1

    def test_net_connectivity_preserved(self, clustered_pair):
        """Nets survive unless fully absorbed inside one cluster."""
        design, clustered, mapping = clustered_pair
        surviving = 0
        for net in design.nets:
            images = {int(mapping[p]) for p in net.pins}
            if len(images) >= 2:
                surviving += 1
        assert clustered.num_nets == surviving

    def test_expand_placement_roundtrip(self, clustered_pair):
        design, clustered, mapping = clustered_pair
        x, y = expand_placement(clustered, mapping)
        assert x.shape == (design.num_instances,)
        # All members of one cluster land on the cluster's position.
        cluster0 = np.flatnonzero(mapping == mapping[0])
        assert np.allclose(x[cluster0], x[cluster0][0])

    def test_deterministic(self):
        design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
        a, map_a = cluster_cells(design, seed=3)
        b, map_b = cluster_cells(design, seed=3)
        assert a.num_instances == b.num_instances
        np.testing.assert_array_equal(map_a, map_b)

    def test_pin_order_does_not_change_clustering(self):
        """Regression for the REPRO105 finding in _affinities.

        Affinity accumulation iterated a bare ``set(net.pins)``, so the
        visit order (and with it float accumulation and tie-breaks)
        depended on hash order rather than on the netlist.  Reversing
        every net's pin list must produce the identical clustering.
        """
        design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
        _, map_a = cluster_cells(design, seed=3)
        for net in design.nets:
            net.pins = tuple(reversed(net.pins))
        _, map_b = cluster_cells(design, seed=3)
        np.testing.assert_array_equal(map_a, map_b)

    def test_clustered_placement_flow(self):
        """Cluster → place → expand runs end to end and shortens HPWL."""
        from repro.placement import GPConfig, PlacerConfig, place_design

        design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
        clustered, mapping = cluster_cells(design)
        place_design(
            clustered,
            config=PlacerConfig(
                gp=GPConfig(bins=16, max_iters=120),
                inflation_rounds=0,
                stage1_iters=100,
                stage2_iters=20,
            ),
        )
        x, y = expand_placement(clustered, mapping)
        design.set_placement(x, y)
        assert np.isfinite(design.hpwl())
