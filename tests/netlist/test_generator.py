"""Benchmark generator: statistics, constraints, determinism."""

import numpy as np
import pytest

from repro.arch import ResourceType
from repro.netlist import (
    MLCAD2023_SPECS,
    TABLE1_DESIGNS,
    TABLE2_DESIGNS,
    design_row,
    format_stats_table,
    generate_design,
    mlcad2023_suite,
)

SCALE = 1.0 / 256.0


class TestSpecs:
    def test_all_table1_designs_present(self):
        assert set(TABLE1_DESIGNS) <= set(MLCAD2023_SPECS)

    def test_all_table2_designs_present(self):
        assert set(TABLE2_DESIGNS) <= set(MLCAD2023_SPECS)

    def test_table1_stats_match_paper(self):
        spec = MLCAD2023_SPECS["Design_116"]
        assert spec.num_lut == 370_000
        assert spec.num_ff == 315_000
        assert spec.num_dsp == 2052
        assert spec.num_bram == 648


class TestGeneration:
    @pytest.fixture(scope="class")
    def design(self):
        return generate_design(MLCAD2023_SPECS["Design_116"], scale=SCALE)

    def test_deterministic(self, design):
        again = generate_design(MLCAD2023_SPECS["Design_116"], scale=SCALE)
        assert again.num_instances == design.num_instances
        assert again.num_nets == design.num_nets
        np.testing.assert_allclose(again.x, design.x)

    def test_lut_count_scales(self, design):
        expected = 370_000 * SCALE
        assert design.total_demand(ResourceType.LUT) == pytest.approx(
            expected, rel=0.05
        )

    def test_macro_utilization_matches_real_part(self, design):
        # XCVU3P DSP utilization of Design_116 is 2052/2280 = 90%.
        assert design.utilization(ResourceType.DSP) == pytest.approx(0.90, abs=0.05)
        assert design.utilization(ResourceType.BRAM) == pytest.approx(0.90, abs=0.05)

    def test_lut_utilization_below_one(self, design):
        assert 0.3 < design.utilization(ResourceType.LUT) < 1.0

    def test_nominal_stats_preserved(self, design):
        assert design.nominal_stats["LUT"] == 370_000

    def test_has_constraints(self, design):
        assert len(design.cascades) >= 1
        assert len(design.regions) >= 1

    def test_cascades_only_macros(self, design):
        for cascade in design.cascades:
            for inst in cascade.instances:
                assert design.instances[inst].is_macro

    def test_cascades_disjoint(self, design):
        seen = set()
        for cascade in design.cascades:
            for inst in cascade.instances:
                assert inst not in seen
                seen.add(inst)

    def test_region_macro_budget_fits(self, design):
        """Regions must never be assigned more macros than they have sites."""
        device = design.device
        for region in design.regions:
            for res in (ResourceType.DSP, ResourceType.BRAM):
                assigned = [
                    i for i in region.instances
                    if design.instances[i].resource is res
                ]
                cols = device.columns_of_type(res.site_type)
                cols_in = int(
                    ((cols >= region.xlo) & (cols < region.xhi)).sum()
                )
                rows_in = int(np.floor(region.yhi)) - int(np.ceil(region.ylo))
                assert len(assigned) <= cols_in * max(rows_in, 0)

    def test_io_fixed_on_boundary(self, design):
        fixed = np.flatnonzero(~design.movable_mask)
        assert fixed.size >= 8
        device = design.device
        on_edge = (
            (design.x[fixed] <= 1.0)
            | (design.x[fixed] >= device.width - 1.5)
            | (design.y[fixed] <= 1.0)
            | (design.y[fixed] >= device.height - 1.5)
        )
        assert np.all(on_edge)

    def test_nets_have_valid_pins(self, design):
        assert design.pin_inst.max() < design.num_instances
        assert np.all(design.net_degrees >= 2)

    def test_different_seeds_give_different_netlists(self):
        a = generate_design(MLCAD2023_SPECS["Design_116"], scale=SCALE)
        b = generate_design(MLCAD2023_SPECS["Design_120"], scale=SCALE)
        assert a.num_nets != b.num_nets


class TestSuiteAndStats:
    def test_suite_shares_device(self):
        designs = mlcad2023_suite(("Design_116", "Design_120"), scale=SCALE)
        assert designs[0].device is designs[1].device

    def test_design_row(self, tiny_design):
        row = design_row(tiny_design)
        assert row["design"] == "Design_116"
        assert row["#LUT"] == 370_000
        assert row["instantiated"]["LUT"] > 0

    def test_format_stats_table(self):
        designs = mlcad2023_suite(("Design_116",), scale=SCALE)
        table = format_stats_table(designs)
        assert "Design_116" in table
        assert "370000" in table
