"""Design container: validation, pin arrays, HPWL, utilization."""

import numpy as np
import pytest

from repro.arch import CascadeShape, RegionConstraint, ResourceType
from repro.netlist import Design, Instance, Net

class TestNetValidation:
    def test_single_pin_net_rejected(self):
        with pytest.raises(ValueError, match="two pins"):
            Net((0,))


class TestDesignConstruction:
    def test_pin_arrays(self, manual_design):
        d = manual_design
        assert d.num_pins == 2 + 3 + 2 + 2
        # Pins of net 1 map back to net index 1.
        np.testing.assert_array_equal(
            d.pin_inst[d.pin_net == 1], [1, 2, 3]
        )

    def test_inst_num_pins(self, manual_design):
        # Instance 0 appears in nets 0 and 2.
        assert manual_design.inst_num_pins[0] == 2
        assert manual_design.inst_num_pins[3] == 1

    def test_macro_mask(self, manual_design):
        np.testing.assert_array_equal(
            manual_design.macro_mask, [False, False, False, True, True, False]
        )

    def test_movable_mask(self, manual_design):
        assert not manual_design.movable_mask[5]
        assert manual_design.movable_mask[0]

    def test_bad_pin_reference_rejected(self, tiny_device):
        with pytest.raises(ValueError, match="nonexistent"):
            Design(
                "bad", tiny_device,
                [Instance("a", ResourceType.LUT)],
                [Net((0, 7))],
            )

    def test_cascade_on_cell_rejected(self, tiny_device):
        instances = [
            Instance("a", ResourceType.LUT),
            Instance("b", ResourceType.LUT),
        ]
        with pytest.raises(ValueError, match="macros"):
            Design(
                "bad", tiny_device, instances, [Net((0, 1))],
                cascades=[CascadeShape((0, 1))],
            )

    def test_cascade_bad_index_rejected(self, tiny_device):
        instances = [Instance("a", ResourceType.DSP), Instance("b", ResourceType.DSP)]
        with pytest.raises(ValueError, match="nonexistent"):
            Design(
                "bad", tiny_device, instances, [Net((0, 1))],
                cascades=[CascadeShape((0, 9))],
            )

    def test_region_bad_index_rejected(self, tiny_device):
        instances = [Instance("a", ResourceType.LUT), Instance("b", ResourceType.LUT)]
        with pytest.raises(ValueError, match="nonexistent"):
            Design(
                "bad", tiny_device, instances, [Net((0, 1))],
                regions=[RegionConstraint(0, 0, 4, 4, frozenset({9}))],
            )


class TestPlacementState:
    def test_set_placement_clips_to_device(self, manual_design):
        n = manual_design.num_instances
        manual_design.set_placement(np.full(n, 1e6), np.full(n, -1e6))
        assert manual_design.x.max() < manual_design.device.width
        assert manual_design.y.min() >= 0.0

    def test_set_placement_shape_checked(self, manual_design):
        with pytest.raises(ValueError, match="shape"):
            manual_design.set_placement(np.zeros(3), np.zeros(3))

    def test_hpwl_known_value(self, manual_design):
        d = manual_design
        x = np.array([0.0, 2.0, 4.0, 1.0, 3.0, 5.0])
        y = np.array([0.0, 0.0, 0.0, 2.0, 1.0, 3.0])
        d.set_placement(x, y)
        # net0 (0,1): dx=2, dy=0 -> 2;  net1 (1,2,3): dx=3, dy=2 -> 5
        # net2 (0,4): dx=3, dy=1 -> 4;  net3 (2,5) weight2: (1+3)*2 -> 8
        assert d.hpwl() == pytest.approx(2 + 5 + 4 + 8)

    def test_hpwl_zero_when_coincident(self, manual_design):
        n = manual_design.num_instances
        manual_design.set_placement(np.full(n, 3.0), np.full(n, 3.0))
        assert manual_design.hpwl() == pytest.approx(0.0)


class TestDemandAndUtilization:
    def test_total_demand(self, manual_design):
        assert manual_design.total_demand(ResourceType.LUT) == 20.0
        assert manual_design.total_demand(ResourceType.DSP) == 1.0

    def test_utilization(self, manual_design):
        lut_cap = manual_design.device.resource_capacity(ResourceType.LUT)
        assert manual_design.utilization(ResourceType.LUT) == pytest.approx(
            20.0 / lut_cap
        )

    def test_instances_of(self, manual_design):
        np.testing.assert_array_equal(
            manual_design.instances_of(ResourceType.DSP), [3]
        )

    def test_stats_keys(self, manual_design):
        stats = manual_design.stats()
        assert stats["DSP"] == 1
        assert stats["LUT"] == 20

    def test_default_demand_from_resource(self):
        inst = Instance("d", ResourceType.DSP)
        assert inst.demand == {ResourceType.DSP: 1.0}
        assert inst.is_macro
