"""Design save/load round-trips."""

import numpy as np
import pytest

from repro.netlist import load_design, save_design


class TestRoundTrip:
    @pytest.fixture
    def path(self, tmp_path, tiny_design):
        p = tmp_path / "design.netlist"
        save_design(tiny_design, p)
        return p

    def test_counts_preserved(self, path, tiny_design):
        loaded = load_design(path)
        assert loaded.name == tiny_design.name
        assert loaded.num_instances == tiny_design.num_instances
        assert loaded.num_nets == tiny_design.num_nets
        assert loaded.num_pins == tiny_design.num_pins

    def test_device_preserved(self, path, tiny_design):
        loaded = load_design(path)
        assert loaded.device.num_cols == tiny_design.device.num_cols
        assert loaded.device.column_types == tiny_design.device.column_types
        assert loaded.device.short_capacity == tiny_design.device.short_capacity

    def test_placement_bit_exact(self, path, tiny_design):
        loaded = load_design(path)
        np.testing.assert_allclose(loaded.x, tiny_design.x, atol=1e-7)
        np.testing.assert_allclose(loaded.y, tiny_design.y, atol=1e-7)

    def test_constraints_preserved(self, path, tiny_design):
        loaded = load_design(path)
        assert len(loaded.cascades) == len(tiny_design.cascades)
        for a, b in zip(loaded.cascades, tiny_design.cascades):
            assert a.instances == b.instances
        assert len(loaded.regions) == len(tiny_design.regions)
        for a, b in zip(loaded.regions, tiny_design.regions):
            assert a.instances == b.instances
            assert a.xlo == pytest.approx(b.xlo)

    def test_demands_and_movability_preserved(self, path, tiny_design):
        loaded = load_design(path)
        np.testing.assert_allclose(
            loaded.demand_matrix, tiny_design.demand_matrix
        )
        np.testing.assert_array_equal(
            loaded.movable_mask, tiny_design.movable_mask
        )

    def test_nominal_stats_preserved(self, path, tiny_design):
        loaded = load_design(path)
        assert loaded.nominal_stats == tiny_design.nominal_stats

    def test_hpwl_matches(self, path, tiny_design):
        loaded = load_design(path)
        assert loaded.hpwl() == pytest.approx(tiny_design.hpwl(), rel=1e-6)

    def test_second_roundtrip_stable(self, path, tmp_path):
        loaded = load_design(path)
        p2 = tmp_path / "again.netlist"
        save_design(loaded, p2)
        assert path.read_text() == p2.read_text()


class TestAtomicity:
    """save_design follows the tmp + fsync + rename idiom (REPRO611/612)."""

    def test_no_temp_file_left_behind(self, tmp_path, tiny_design):
        save_design(tiny_design, tmp_path / "design.netlist")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["design.netlist"]

    def test_crash_before_rename_preserves_previous(self, tmp_path,
                                                    tiny_design, monkeypatch):
        import os as _os

        p = tmp_path / "design.netlist"
        save_design(tiny_design, p)
        before = p.read_text()

        def boom(src, dst):
            raise RuntimeError("crash before rename")

        monkeypatch.setattr(_os, "replace", boom)
        with pytest.raises(RuntimeError):
            save_design(tiny_design, p)
        monkeypatch.undo()
        # The previous complete file is untouched at the final name.
        assert p.read_text() == before


class TestErrors:
    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.netlist"
        p.write_text("NOT A NETLIST\n")
        with pytest.raises(ValueError, match="not a"):
            load_design(p)

    def test_missing_device(self, tmp_path):
        p = tmp_path / "bad.netlist"
        p.write_text("REPRO-NETLIST v1\nDESIGN x\nEND\n")
        with pytest.raises(ValueError, match="DEVICE"):
            load_design(p)

    def test_unknown_keyword(self, tmp_path):
        p = tmp_path / "bad.netlist"
        p.write_text("REPRO-NETLIST v1\nBOGUS 1 2 3\nEND\n")
        with pytest.raises(ValueError, match="unknown keyword|malformed"):
            load_design(p)

    def test_columns_before_device(self, tmp_path):
        p = tmp_path / "bad.netlist"
        p.write_text("REPRO-NETLIST v1\nCOLUMNS CLB\nEND\n")
        with pytest.raises(ValueError, match="COLUMNS before DEVICE"):
            load_design(p)

    def test_comments_and_blanks_ignored(self, tmp_path, tiny_design):
        p = tmp_path / "design.netlist"
        save_design(tiny_design, p)
        text = p.read_text().replace(
            "REPRO-NETLIST v1\n", "REPRO-NETLIST v1\n# comment\n\n"
        )
        p.write_text(text)
        loaded = load_design(p)
        assert loaded.num_instances == tiny_design.num_instances


class TestPropertyRoundTrip:
    def test_random_manual_designs_roundtrip(self, tiny_device, tmp_path, rng):
        """Randomized small designs survive save/load bit-exactly."""
        from repro.arch import ResourceType
        from repro.netlist import Design, Instance, Net

        for trial in range(5):
            n_cells = int(rng.integers(3, 10))
            instances = [
                Instance(
                    f"c{i}", ResourceType.LUT,
                    {ResourceType.LUT: float(rng.uniform(0.5, 8.0))},
                    movable=bool(rng.random() > 0.2),
                )
                for i in range(n_cells)
            ]
            instances.append(Instance("d", ResourceType.DSP))
            nets = []
            for _ in range(int(rng.integers(2, 8))):
                size = int(rng.integers(2, min(4, n_cells) + 1))
                pins = rng.choice(n_cells + 1, size=size, replace=False)
                nets.append(
                    Net(tuple(int(p) for p in pins),
                        weight=float(rng.uniform(0.5, 2.0)))
                )
            design = Design(f"rand{trial}", tiny_device, instances, nets)
            design.set_placement(
                rng.uniform(0, 16, design.num_instances),
                rng.uniform(0, 16, design.num_instances),
            )
            path = tmp_path / f"rand{trial}.netlist"
            save_design(design, path)
            loaded = load_design(path)
            assert loaded.num_instances == design.num_instances
            np.testing.assert_allclose(loaded.x, design.x)
            np.testing.assert_allclose(
                loaded.demand_matrix, design.demand_matrix
            )
            np.testing.assert_allclose(
                loaded.net_weights, design.net_weights
            )
            assert loaded.hpwl() == pytest.approx(design.hpwl())
