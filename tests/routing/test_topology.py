"""Net decomposition topologies: MST vs single-trunk Steiner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import RouterConfig, route_design
from repro.routing.topology import (
    DECOMPOSITIONS,
    connections_length,
    decompose_net,
    mst_connections,
    trunk_steiner_connections,
)


def _connected(conns: np.ndarray, pts: np.ndarray) -> bool:
    """All pin points reachable through the connection graph."""
    pts = {tuple(p) for p in np.unique(pts, axis=0)}
    if len(pts) < 2:
        return True
    nodes = {tuple(c[:2]) for c in conns} | {tuple(c[2:]) for c in conns}
    parent = {n: n for n in nodes}

    def find(n):
        while parent[n] != n:
            n = parent[n]
        return n

    for x0, y0, x1, y1 in conns:
        parent[find((x0, y0))] = find((x1, y1))
    roots = {find(p) for p in pts if p in parent}
    return len(roots) == 1 and pts <= nodes


class TestMST:
    def test_two_points(self):
        conns = mst_connections(np.array([[0, 0], [3, 4]]))
        assert conns.shape == (1, 4)
        assert connections_length(conns) == 7

    def test_collinear_chain(self):
        pts = np.array([[0, 0], [5, 0], [10, 0]])
        conns = mst_connections(pts)
        assert connections_length(conns) == 10  # not 10+15

    def test_single_point(self):
        assert mst_connections(np.array([[2, 2], [2, 2]])).shape == (0, 4)


class TestTrunkSteiner:
    def test_vertical_aligned_pins_share_trunk(self):
        # Three pins in a column: trunk degenerates, only branches.
        pts = np.array([[5, 0], [5, 4], [5, 8]])
        conns = trunk_steiner_connections(pts)
        assert _connected(conns, pts)
        assert connections_length(conns) == 8

    def test_beats_mst_on_t_shape(self):
        """The classic 3-pin case: a T needs a Steiner point.

        MST must spend two pin-to-pin edges (e.g. 10 + 10); the trunk
        tree reaches all three pins with trunk 10 + branch 5 = 15.
        """
        pts = np.array([[0, 0], [10, 0], [5, 5]])
        mst = mst_connections(pts)
        stst = trunk_steiner_connections(pts)
        assert connections_length(mst) == 20
        assert connections_length(stst) == 15

    def test_steiner_points_introduced(self):
        pts = np.array([[0, 0], [4, 8], [8, 0]])
        conns = trunk_steiner_connections(pts)
        endpoints = {tuple(c[:2]) for c in conns} | {
            tuple(c[2:]) for c in conns
        }
        originals = {tuple(p) for p in pts}
        assert endpoints - originals  # at least one Steiner point


class TestDecomposeNet:
    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown decomposition"):
            decompose_net(np.array([[0, 0], [1, 1]]), mode="flute")

    def test_best_never_longer_than_either(self, rng):
        for _ in range(20):
            pts = rng.integers(0, 16, size=(rng.integers(2, 9), 2))
            best = connections_length(decompose_net(pts, "best"))
            mst = connections_length(decompose_net(pts, "mst"))
            stst = connections_length(decompose_net(pts, "stst"))
            assert best <= min(mst, stst) + 1e-9

    @pytest.mark.parametrize("mode", DECOMPOSITIONS)
    def test_always_connected(self, mode, rng):
        for _ in range(20):
            pts = rng.integers(0, 12, size=(rng.integers(2, 10), 2))
            conns = decompose_net(pts, mode)
            assert _connected(conns, pts), (mode, pts)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=2,
        max_size=10,
    )
)
def test_property_decompositions_connect_all_pins(points):
    pts = np.array(points, dtype=np.int64)
    for mode in DECOMPOSITIONS:
        conns = decompose_net(pts, mode)
        assert _connected(conns, pts)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=2,
        max_size=8,
    )
)
def test_property_mst_length_lower_bounds_star(points):
    """MST is never longer than a star from the first pin."""
    pts = np.unique(np.array(points, dtype=np.int64), axis=0)
    if pts.shape[0] < 2:
        return
    mst = connections_length(mst_connections(pts))
    star = float(
        (np.abs(pts[1:, 0] - pts[0, 0]) + np.abs(pts[1:, 1] - pts[0, 1])).sum()
    )
    assert mst <= star + 1e-9


class TestRouterIntegration:
    def test_best_decomposition_no_longer_wirelength(self, placed_tiny_design):
        mst = route_design(placed_tiny_design, RouterConfig(decomposition="mst"))
        best = route_design(placed_tiny_design, RouterConfig(decomposition="best"))
        assert best.total_wirelength <= mst.total_wirelength + 1e-9
