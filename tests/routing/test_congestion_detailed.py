"""Congestion level quantization (Fig. 1) and the S_DR model."""

import numpy as np
import pytest

from repro.routing import (
    DIRECTIONS,
    NUM_LEVELS,
    DetailedRoutingModel,
    RoutingResult,
    congestion_report,
    route_design,
    utilization_to_level,
)


class TestLevelQuantization:
    def test_zero_is_level_zero(self):
        assert utilization_to_level(np.array([0.0]))[0] == 0

    def test_level_boundaries(self):
        utils = np.array([0.24, 0.25, 0.5, 0.75, 1.0, 1.01, 1.3, 1.6, 1.9, 5.0])
        levels = utilization_to_level(utils)
        np.testing.assert_array_equal(levels, [0, 0, 1, 2, 3, 4, 4, 5, 6, 7])

    def test_penalty_starts_exactly_at_overuse(self):
        """Levels >= 4 (penalized by Eq. 1) iff utilization > 1."""
        assert utilization_to_level(np.array([1.0]))[0] == 3
        assert utilization_to_level(np.array([1.000001]))[0] == 4

    def test_max_level_is_seven(self):
        assert utilization_to_level(np.array([100.0]))[0] == NUM_LEVELS - 1

    def test_monotone(self, rng):
        utils = np.sort(rng.uniform(0, 3, 100))
        levels = utilization_to_level(utils)
        assert np.all(np.diff(levels) >= 0)


def _manual_result(gw=4, gh=4, short_cap=10.0, global_cap=5.0):
    return RoutingResult(
        h_short=np.zeros((gw - 1, gh)),
        v_short=np.zeros((gw, gh - 1)),
        h_global=np.zeros((gw - 1, gh)),
        v_global=np.zeros((gw, gh - 1)),
        short_capacity=short_cap,
        global_capacity=global_cap,
        iterations=3,
        converged=True,
        overuse_history=[0.0],
        num_connections=10,
        total_wirelength=25.0,
    )


class TestCongestionReport:
    def test_directions_assigned_correctly(self):
        result = _manual_result()
        # Saturate the boundary between tiles (1,2) and (2,2).
        result.h_short[1, 2] = 15.0  # 1.5x capacity -> level 5
        report = congestion_report(result)
        east, south, west, north = range(4)
        assert report.short_levels[east, 1, 2] == 5  # tile (1,2) east
        assert report.short_levels[west, 2, 2] == 5  # tile (2,2) west
        assert report.short_levels[north, 1, 2] == 0

    def test_vertical_directions(self):
        result = _manual_result()
        result.v_short[1, 1] = 11.0  # boundary (1,1)-(1,2), util 1.1 -> 4
        report = congestion_report(result)
        east, south, west, north = range(4)
        assert report.short_levels[north, 1, 1] == 4
        assert report.short_levels[south, 1, 2] == 4

    def test_level_map_is_max_over_classes(self):
        result = _manual_result()
        result.h_short[0, 0] = 6.0  # util 0.6 -> level 2
        result.h_global[0, 0] = 7.0  # util 1.4 -> level 5
        report = congestion_report(result)
        assert report.level_map[0, 0] == 5

    def test_max_by_direction_shapes(self):
        report = congestion_report(_manual_result())
        assert report.max_short_by_direction().shape == (4,)
        assert report.max_global_by_direction().shape == (4,)
        assert len(DIRECTIONS) == 4

    def test_congested_fraction(self):
        result = _manual_result()
        result.h_short[0, 0] = 20.0  # level 7 on two tiles (E of one, W of other)
        report = congestion_report(result)
        assert report.congested_fraction(threshold=4) == pytest.approx(2 / 16)

    def test_ascii_map_dimensions(self, tiny_design):
        report = congestion_report(route_design(tiny_design))
        art = report.ascii_map()
        lines = art.splitlines()
        assert len(lines) == report.level_map.shape[1]
        assert all(len(line) == report.level_map.shape[0] for line in lines)
        assert set("".join(lines)) <= set("01234567")


class TestDetailedRoutingModel:
    def test_clean_routing_low_effort(self):
        result = _manual_result()
        report = congestion_report(result)
        outcome = DetailedRoutingModel().evaluate(result, report)
        assert 4 <= outcome.iterations <= 8
        assert 0.15 <= outcome.hours <= 0.6

    def test_congestion_raises_effort_monotonically(self):
        clean = _manual_result()
        clean_outcome = DetailedRoutingModel().evaluate(
            clean, congestion_report(clean)
        )
        hot = _manual_result()
        hot.h_short[:, :] = 25.0  # 2.5x everywhere
        hot.iterations = 12
        hot.converged = False
        hot.overuse_history = [100.0, 80.0, 60.0]
        hot_outcome = DetailedRoutingModel().evaluate(hot, congestion_report(hot))
        assert hot_outcome.iterations > clean_outcome.iterations
        assert hot_outcome.hours > clean_outcome.hours

    def test_outputs_in_paper_range(self, tiny_design):
        result = route_design(tiny_design)
        outcome = DetailedRoutingModel().evaluate(result, congestion_report(result))
        assert 4 <= outcome.iterations <= 20
        assert 0.15 <= outcome.hours <= 2.5
        assert outcome.s_dr == outcome.iterations


class TestSummary:
    def test_summary_structure(self, tiny_design):
        report = congestion_report(route_design(tiny_design))
        text = report.summary()
        assert "Congestion Report" in text
        assert "penalized (Eq. 1)" in text
        assert "max short" in text and "max global" in text

    def test_summary_percentages_sum_to_100(self, tiny_design):
        report = congestion_report(route_design(tiny_design))
        text = report.summary()
        pcts = [
            float(line.split("%")[0].split()[-1])
            for line in text.splitlines()
            if "%" in line and "level" not in line
        ]
        assert sum(pcts) == pytest.approx(100.0, abs=0.1)
