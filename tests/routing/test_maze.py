"""A* maze routing and the rip-up refiner."""

import numpy as np
import pytest

from repro.routing import MazeRefiner, RouterConfig, astar_route, path_edges, route_design
from repro.routing.router import _pattern_path


def _uniform_costs(gw=8, gh=8, value=1.0):
    return np.full((gw - 1, gh), value), np.full((gw, gh - 1), value)


class TestAStar:
    def test_trivial(self):
        cost_h, cost_v = _uniform_costs()
        assert astar_route(cost_h, cost_v, (2, 2), (2, 2)) == [(2, 2)]

    def test_straight_line(self):
        cost_h, cost_v = _uniform_costs()
        path = astar_route(cost_h, cost_v, (0, 3), (5, 3))
        assert path[0] == (0, 3) and path[-1] == (5, 3)
        assert len(path) == 6  # optimal: 5 steps

    def test_manhattan_optimal_on_uniform_costs(self):
        cost_h, cost_v = _uniform_costs()
        path = astar_route(cost_h, cost_v, (0, 0), (4, 6))
        assert len(path) == 1 + 4 + 6

    def test_detours_around_expensive_wall(self):
        cost_h, cost_v = _uniform_costs()
        # Make the direct row prohibitively expensive.
        cost_h[:, 3] = 100.0
        path = astar_route(cost_h, cost_v, (0, 3), (6, 3))
        # The route must leave row 3 somewhere.
        rows = {y for _, y in path}
        assert rows != {3}

    def test_unit_steps_only(self):
        cost_h, cost_v = _uniform_costs()
        path = astar_route(cost_h, cost_v, (1, 1), (5, 5))
        for (x0, y0), (x1, y1) in zip(path[:-1], path[1:]):
            assert abs(x0 - x1) + abs(y0 - y1) == 1


class TestPathEdges:
    def test_l_shape(self):
        path = [(0, 0), (1, 0), (2, 0), (2, 1)]
        h, v = path_edges(path)
        assert h == [(0, 0), (1, 0)]
        assert v == [(2, 0)]

    def test_reverse_direction_normalized(self):
        h, v = path_edges([(3, 0), (2, 0)])
        assert h == [(2, 0)]

    def test_diagonal_rejected(self):
        with pytest.raises(ValueError, match="diagonal"):
            path_edges([(0, 0), (1, 1)])


class TestPatternPath:
    def test_hvh(self):
        path = _pattern_path(0, 0, 3, 2, kind=0, bend=1)
        assert path[0] == (0, 0) and path[-1] == (3, 2)
        h, v = path_edges(path)
        assert len(h) + len(v) == 3 + 2  # manhattan length

    def test_vhv_with_detour_bend(self):
        path = _pattern_path(0, 2, 4, 2, kind=1, bend=5)
        assert path[0] == (0, 2) and path[-1] == (4, 2)
        assert (2, 5) in path  # actually visits the detour row

    def test_degenerate_straight(self):
        path = _pattern_path(2, 2, 2, 2, kind=0, bend=2)
        assert path == [(2, 2)]


class TestMazeRefiner:
    def test_noop_when_no_overflow(self):
        h_use, v_use = np.zeros((7, 8)), np.zeros((8, 7))
        refiner = MazeRefiner(capacity=4.0)
        h2, v2, paths, n = refiner.refine(h_use, v_use, [[(0, 0), (1, 0)]])
        assert n == 0
        np.testing.assert_allclose(h2, h_use)

    def test_spreads_overused_bundle(self):
        """Six identical straight paths over capacity 4 must split."""
        gw = gh = 8
        paths = [[(0, 3), (1, 3), (2, 3), (3, 3), (4, 3)] for _ in range(6)]
        h_use = np.zeros((gw - 1, gh))
        v_use = np.zeros((gw, gh - 1))
        for p in paths:
            for e in path_edges(p)[0]:
                h_use[e] += 1.0
        assert h_use.max() == 6.0
        refiner = MazeRefiner(capacity=4.0)
        h2, v2, new_paths, n = refiner.refine(h_use, v_use, paths)
        assert n > 0
        assert h2.max() <= 4.0 + 1e-9
        # Usage stays consistent with the returned paths.
        rebuilt_h = np.zeros_like(h_use)
        rebuilt_v = np.zeros_like(v_use)
        for p in new_paths:
            he, ve = path_edges(p)
            for e in he:
                rebuilt_h[e] += 1.0
            for e in ve:
                rebuilt_v[e] += 1.0
        np.testing.assert_allclose(rebuilt_h, h2)
        np.testing.assert_allclose(rebuilt_v, v2)

    def test_endpoints_preserved(self):
        paths = [[(0, 3), (1, 3), (2, 3)] for _ in range(9)]
        h_use = np.zeros((7, 8))
        v_use = np.zeros((8, 7))
        for p in paths:
            for e in path_edges(p)[0]:
                h_use[e] += 1.0
        refiner = MazeRefiner(capacity=4.0)
        _, _, new_paths, _ = refiner.refine(h_use, v_use, paths)
        for p in new_paths:
            assert p[0] == (0, 3) and p[-1] == (2, 3)


class TestRouterIntegration:
    def test_maze_fallback_never_increases_overuse(self, placed_tiny_design):
        base = route_design(
            placed_tiny_design, RouterConfig(maze_fallback=False)
        )
        refined = route_design(
            placed_tiny_design, RouterConfig(maze_fallback=True)
        )
        assert refined.residual_overuse <= base.residual_overuse + 1e-9

    def test_maze_fallback_is_default(self):
        assert RouterConfig().maze_fallback
