"""Global router: decomposition, usage accounting, negotiation."""

import numpy as np
import pytest

from repro.arch import ResourceType
from repro.netlist import Design, Instance, Net
from repro.routing import RouterConfig, route_design
from repro.routing.router import GLOBAL_SPAN, _net_connections


def _line_design(tiny_device, positions, nets):
    instances = [
        Instance(f"c{i}", ResourceType.LUT, {ResourceType.LUT: 1.0})
        for i in range(len(positions))
    ]
    design = Design("line", tiny_device, instances, nets)
    xs = np.array([p[0] for p in positions], dtype=float)
    ys = np.array([p[1] for p in positions], dtype=float)
    design.set_placement(xs, ys)
    return design


class TestConnectionDecomposition:
    def test_two_pin_net(self, tiny_device):
        design = _line_design(
            tiny_device, [(0.5, 0.5), (10.5, 0.5)], [Net((0, 1))]
        )
        conns = _net_connections(design, 16, 16)
        assert conns.shape == (1, 4)
        assert abs(conns[0, 2] - conns[0, 0]) == 10

    def test_coincident_pins_removed(self, tiny_device):
        design = _line_design(
            tiny_device, [(3.5, 3.5), (3.5, 3.5)], [Net((0, 1))]
        )
        conns = _net_connections(design, 16, 16)
        assert conns.shape[0] == 0

    def test_mst_connects_all_pins(self, tiny_device):
        positions = [(1.5, 1.5), (8.5, 1.5), (8.5, 9.5), (1.5, 9.5)]
        design = _line_design(tiny_device, positions, [Net((0, 1, 2, 3))])
        conns = _net_connections(design, 16, 16)
        # MST of k unique points has k-1 edges.
        assert conns.shape[0] == 3
        # Union-find check: all four tiles connected.
        parent = list(range(4))

        def find(i):
            while parent[i] != i:
                i = parent[i]
            return i

        pts = [tuple(p) for p in np.unique(
            np.array([[int(x), int(y)] for x, y in positions]), axis=0
        )]
        index = {p: i for i, p in enumerate(pts)}
        for x0, y0, x1, y1 in conns:
            a, b = find(index[(x0, y0)]), find(index[(x1, y1)])
            parent[a] = b
        assert len({find(i) for i in range(4)}) == 1

    def test_mst_prefers_short_edges(self, tiny_device):
        # Three collinear points: MST must not use the long direct edge.
        design = _line_design(
            tiny_device, [(0.5, 0.5), (7.5, 0.5), (15.5, 0.5)],
            [Net((0, 1, 2))],
        )
        conns = _net_connections(design, 16, 16)
        lengths = np.abs(conns[:, 0] - conns[:, 2]) + np.abs(conns[:, 1] - conns[:, 3])
        assert lengths.max() <= 8


class TestRouting:
    def test_usage_accounts_for_straight_route(self, tiny_device):
        design = _line_design(
            tiny_device, [(0.5, 3.5), (5.5, 3.5)], [Net((0, 1))]
        )
        result = route_design(design)
        # One short connection crossing 5 boundaries in row 3.
        assert result.h_short[:, 3].sum() == pytest.approx(5.0)
        assert result.v_short.sum() == 0.0
        assert result.converged

    def test_long_connection_uses_global_wires(self, tiny_device):
        design = _line_design(
            tiny_device, [(0.5, 0.5), (15.5, 0.5)],
            [Net((0, 1))],
        )
        result = route_design(design, RouterConfig(global_threshold=5))
        assert result.h_global.sum() > 0
        assert result.h_short.sum() == 0.0
        # Global demand is crossings / GLOBAL_SPAN.
        assert result.h_global[:, 0].sum() == pytest.approx(15.0 / GLOBAL_SPAN)

    def test_wirelength_counts_crossings(self, tiny_device):
        design = _line_design(
            tiny_device, [(0.5, 0.5), (3.5, 2.5)], [Net((0, 1))]
        )
        result = route_design(design)
        assert result.total_wirelength == pytest.approx(5.0)

    def test_congestion_negotiation_spreads_routes(self, tiny_device):
        """Many parallel 2-pin nets between the same rows must spread."""
        positions = []
        nets = []
        for i in range(48):
            positions.append((4.5, 7.5))
            positions.append((9.5, 7.5))
            nets.append(Net((2 * i, 2 * i + 1)))
        design = _line_design(tiny_device, positions, nets)
        result = route_design(design)
        # 48 short nets on one row would be 48/32 > 1; negotiation must
        # move some to other rows so no boundary is overused.
        assert result.converged
        assert result.h_short.max() <= design.device.short_capacity

    def test_deterministic(self, tiny_design):
        a = route_design(tiny_design)
        b = route_design(tiny_design)
        np.testing.assert_allclose(a.h_short, b.h_short)
        assert a.iterations == b.iterations

    def test_result_fields(self, tiny_design):
        result = route_design(tiny_design)
        assert result.num_connections > 0
        assert result.total_wirelength > 0
        assert 1 <= result.iterations <= RouterConfig().max_iterations
        assert len(result.overuse_history) >= 1
        assert result.max_utilization() >= 0

    def test_empty_connection_class_ok(self, tiny_device):
        # A design whose only net is extremely short: no global wires.
        design = _line_design(
            tiny_device, [(0.5, 0.5), (1.5, 0.5)], [Net((0, 1))]
        )
        result = route_design(design)
        assert result.h_global.sum() == 0.0
        assert result.converged
