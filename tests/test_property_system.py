"""Cross-module property-based tests (hypothesis).

System-level invariants that must hold for arbitrary inputs: device
capacity accounting, router wirelength optimality in the uncongested
regime, legalization legality, and congestion-level monotonicity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import FPGADevice, ResourceType, SiteType
from repro.netlist import Design, Instance, Net
from repro.routing import RouterConfig, route_design
from repro.routing.topology import connections_length, mst_connections

_SITE_CHOICES = [SiteType.CLB, SiteType.DSP, SiteType.BRAM, SiteType.URAM]


@st.composite
def small_devices(draw):
    num_cols = draw(st.integers(4, 12)) * 2
    num_rows = draw(st.integers(4, 12)) * 2
    pattern = tuple(
        draw(st.sampled_from(_SITE_CHOICES)) for _ in range(num_cols)
    )
    return FPGADevice(
        num_cols=num_cols,
        num_rows=num_rows,
        column_types=pattern,
        tile_cols=num_cols // 2,
        tile_rows=num_rows // 2,
    )


@settings(max_examples=20, deadline=None)
@given(small_devices(), st.integers(2, 8))
def test_capacity_map_conserves_total(device, bins):
    for resource in (ResourceType.LUT, ResourceType.DSP, ResourceType.BRAM):
        cap_map = device.capacity_map(resource, bins)
        assert cap_map.shape == (bins, bins)
        assert cap_map.sum() == pytest.approx(
            device.resource_capacity(resource), rel=1e-9
        )
        assert (cap_map >= 0).all()


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=2,
        max_size=6,
        unique=True,
    )
)
def test_uncongested_routing_achieves_mst_length(points):
    """With no congestion, routed wirelength equals the MST length.

    Pattern candidates inside the bounding box are all monotone (same
    manhattan length); detour bends cost strictly more than the jitter
    can compensate, so an uncongested single net routes optimally.
    """
    device = FPGADevice(
        num_cols=16, num_rows=16,
        column_types=(SiteType.CLB,) * 16,
        tile_cols=16, tile_rows=16,
        short_capacity=1000.0, global_capacity=1000.0,
    )
    instances = [
        Instance(f"c{i}", ResourceType.LUT, {ResourceType.LUT: 1.0})
        for i in range(len(points))
    ]
    design = Design("p", device, instances, [Net(tuple(range(len(points))))])
    design.set_placement(
        np.array([p[0] + 0.5 for p in points]),
        np.array([p[1] + 0.5 for p in points]),
    )
    result = route_design(design, RouterConfig(global_threshold=10**9))
    pts = np.array(points, dtype=np.int64)
    expected = connections_length(mst_connections(pts))
    assert result.total_wirelength == pytest.approx(expected)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_legalization_always_legal_for_random_placements(seed):
    """Any random placement of the tiny design legalizes cleanly."""
    from repro.netlist import MLCAD2023_SPECS, generate_design
    from repro.placement import legalize

    design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, design.device.width, design.num_instances)
    y = rng.uniform(0, design.device.height, design.num_instances)
    result = legalize(design, x, y)
    assert result.legal, result.failures
    for cascade in design.cascades:
        assert cascade.is_satisfied(result.x, result.y)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(0, 5, allow_nan=False), min_size=1, max_size=20),
    st.floats(0.01, 2.0),
)
def test_congestion_levels_monotone_in_demand(utils, scale):
    from repro.routing import utilization_to_level

    base = np.array(utils)
    low = utilization_to_level(base)
    high = utilization_to_level(base * (1.0 + scale))
    assert (high >= low).all()
