"""Durable-write idiom lint: REPRO611-612 fixtures.

Durability findings are reachability-independent (a checkpoint written
torn from the parent is just as unrecoverable), so these fixtures need
no JobSpec roots — the name gate alone puts a function in scope.
"""

from .conftest import codes, messages_for


class TestDirectWrites:
    def test_final_path_write_fires_611(self, fixture_pkg):
        bundle = fixture_pkg({
            "store.py": (
                "import json\n"
                "def save_checkpoint(state, path):\n"
                "    with open(path, 'w') as fh:\n"
                "        json.dump(state, fh)\n"
            ),
        })
        assert codes(bundle) == ["REPRO611"]
        [msg] = messages_for(bundle, "REPRO611")
        assert "directly to its final path" in msg
        assert bundle["failures"]  # blocking

    def test_write_text_to_final_path_fires_611(self, fixture_pkg):
        bundle = fixture_pkg({
            "store.py": (
                "def save_manifest(path, payload):\n"
                "    path.write_text(payload)\n"
            ),
        })
        assert codes(bundle) == ["REPRO611"]

    def test_temp_never_renamed_fires_611(self, fixture_pkg):
        bundle = fixture_pkg({
            "store.py": (
                "import json, os\n"
                "def save_checkpoint(state, path):\n"
                "    tmp = str(path) + '.tmp'\n"
                "    with open(tmp, 'w') as fh:\n"
                "        json.dump(state, fh)\n"
                "        fh.flush()\n"
                "        os.fsync(fh.fileno())\n"
            ),
        })
        assert codes(bundle) == ["REPRO611"]
        [msg] = messages_for(bundle, "REPRO611")
        assert "never renames" in msg

    def test_rename_without_fsync_fires_612(self, fixture_pkg):
        bundle = fixture_pkg({
            "store.py": (
                "import json, os\n"
                "def save_checkpoint(state, path):\n"
                "    tmp = str(path) + '.tmp'\n"
                "    with open(tmp, 'w') as fh:\n"
                "        json.dump(state, fh)\n"
                "    os.replace(tmp, path)\n"
            ),
        })
        assert codes(bundle) == ["REPRO612"]
        [msg] = messages_for(bundle, "REPRO612")
        assert "without fsync" in msg

    def test_full_idiom_passes(self, fixture_pkg):
        # The reference pattern from repro.resilience.checkpoint.
        bundle = fixture_pkg({
            "store.py": (
                "import json, os\n"
                "def save_checkpoint(state, path):\n"
                "    tmp = str(path) + '.tmp'\n"
                "    with open(tmp, 'w') as fh:\n"
                "        json.dump(state, fh)\n"
                "        fh.flush()\n"
                "        os.fsync(fh.fileno())\n"
                "    os.replace(tmp, path)\n"
            ),
        })
        assert codes(bundle) == []


class TestAppendLogs:
    def test_append_without_fsync_fires_611(self, fixture_pkg):
        bundle = fixture_pkg({
            "journal.py": (
                "def append_record(path, line):\n"
                "    with open(path, 'a') as fh:\n"
                "        fh.write(line)\n"
            ),
        })
        assert codes(bundle) == ["REPRO611"]
        [msg] = messages_for(bundle, "REPRO611")
        assert "without fsync" in msg

    def test_append_with_fsync_passes(self, fixture_pkg):
        bundle = fixture_pkg({
            "journal.py": (
                "import os\n"
                "def append_record(path, line):\n"
                "    with open(path, 'a') as fh:\n"
                "        fh.write(line)\n"
                "        fh.flush()\n"
                "        os.fsync(fh.fileno())\n"
            ),
        })
        assert codes(bundle) == []

    def test_append_with_class_level_fsync_passes(self, fixture_pkg):
        # The Journal pattern: the handle is opened once, records are
        # appended by one method, and a sibling commit() fsyncs.
        bundle = fixture_pkg({
            "journal.py": (
                "import os\n"
                "class Journal:\n"
                "    def __init__(self, path):\n"
                "        self._fh = open(path, 'a')\n"
                "    def append(self, line):\n"
                "        self._fh.write(line)\n"
                "    def commit(self):\n"
                "        self._fh.flush()\n"
                "        os.fsync(self._fh.fileno())\n"
            ),
        })
        assert codes(bundle) == []


class TestScope:
    def test_non_durable_writer_is_out_of_scope(self, fixture_pkg):
        # A plot/scratch writer owes nobody atomicity.
        bundle = fixture_pkg({
            "viz.py": (
                "def write_pgm(path, rows):\n"
                "    with open(path, 'w') as fh:\n"
                "        fh.write(rows)\n"
            ),
        })
        assert codes(bundle) == []

    def test_module_name_gates_durability(self, fixture_pkg):
        # Same body, but the module name says "checkpoint" — in scope.
        bundle = fixture_pkg({
            "checkpoint.py": (
                "def dump(path, rows):\n"
                "    with open(path, 'w') as fh:\n"
                "        fh.write(rows)\n"
            ),
        })
        assert codes(bundle) == ["REPRO611"]

    def test_np_savez_direct_to_path_fires_611(self, fixture_pkg):
        bundle = fixture_pkg({
            "store.py": (
                "import numpy as np\n"
                "def save_weights(path, arrays):\n"
                "    np.savez(path, **arrays)\n"
            ),
        })
        assert codes(bundle) == ["REPRO611"]
