"""Fixture-package helpers for the concheck adversarial tests.

Each test writes a tiny package under ``tmp_path`` whose modules plant
exactly one hazard (or its safe twin), then runs the analyzer over it.
The package is *never imported* — concheck is AST-only, which is the
point: several fixtures would be unsafe to import.
"""

import pytest

from repro.concheck import concheck


@pytest.fixture
def fixture_pkg(tmp_path):
    """Write ``files`` into a package dir and run concheck over it."""

    def run(files: dict[str, str], package: str = "pkg") -> dict:
        root = tmp_path / package
        root.mkdir(exist_ok=True)
        (root / "__init__.py").write_text(files.pop("__init__.py", ""))
        for name, source in files.items():
            path = root / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        return concheck(root=root, package=package)

    return run


def codes(bundle: dict) -> list[str]:
    return [f["code"] for f in bundle["findings"]]


def messages_for(bundle: dict, code: str) -> list[str]:
    return [f["message"] for f in bundle["findings"] if f["code"] == code]
