"""AST index + call graph: resolution, root discovery, reachability."""

from repro.concheck import build_call_graph, build_index


def _index(tmp_path, files, package="pkg"):
    root = tmp_path / package
    root.mkdir()
    (root / "__init__.py").write_text(files.pop("__init__.py", ""))
    for name, source in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return build_index(root, package=package)


class TestIndex:
    def test_functions_classes_and_methods_indexed(self, tmp_path):
        index = _index(tmp_path, {
            "mod.py": (
                "def f():\n    pass\n"
                "class C:\n"
                "    def m(self):\n        pass\n"
            ),
        })
        assert "pkg.mod:f" in index.functions
        assert "pkg.mod:C.m" in index.functions
        assert index.functions["pkg.mod:C.m"].cls == "C"
        assert index.methods_by_name["m"] == ["pkg.mod:C.m"]

    def test_resolve_chases_barrel_reexports(self, tmp_path):
        # pkg/__init__ re-exports helper from pkg.deep; a consumer that
        # does ``from pkg import helper`` must resolve to the real def.
        index = _index(tmp_path, {
            "__init__.py": "from .deep import helper\n",
            "deep.py": "def helper():\n    pass\n",
            "user.py": "from pkg import helper\n",
        })
        assert index.resolve("pkg.user", "helper") == ("func", "pkg.deep:helper")

    def test_resolve_relative_imports(self, tmp_path):
        index = _index(tmp_path, {
            "a.py": "def fn_a():\n    pass\n",
            "b.py": "from . import a\nfrom .a import fn_a\n",
        })
        assert index.resolve("pkg.b", "fn_a") == ("func", "pkg.a:fn_a")
        assert index.resolve("pkg.b", "a") == ("module", "pkg.a")

    def test_resolve_dotted_ref_mirrors_worker(self, tmp_path):
        index = _index(tmp_path, {
            "jobs.py": (
                "def job():\n    pass\n"
                "class Builder:\n"
                "    def build(self):\n        pass\n"
            ),
        })
        assert index.resolve_dotted_ref("pkg.jobs:job").qualname == "pkg.jobs:job"
        assert (
            index.resolve_dotted_ref("pkg.jobs:Builder.build").qualname
            == "pkg.jobs:Builder.build"
        )
        assert index.resolve_dotted_ref("pkg.jobs:missing") is None
        assert index.resolve_dotted_ref("pkg.missing:job") is None

    def test_syntax_error_module_skipped(self, tmp_path):
        index = _index(tmp_path, {
            "good.py": "def f():\n    pass\n",
            "bad.py": "def broken(:\n",
        })
        assert "pkg.good" in index.modules
        assert "pkg.bad" not in index.modules


class TestCallGraph:
    def test_roots_from_dotted_ref_literals(self, tmp_path):
        index = _index(tmp_path, {
            "jobs.py": 'def job():\n    pass\nREF = "pkg.jobs:job"\n',
        })
        graph = build_call_graph(index)
        assert "pkg.jobs:job" in graph.roots
        assert "pkg.jobs:job" in graph.reachable

    def test_roots_from_jobspec_fn_constant(self, tmp_path):
        # The fn= keyword follows a module-level string constant, the
        # DEFAULT_TEAM_SOURCE pattern.
        index = _index(tmp_path, {
            "jobs.py": (
                'DEFAULT = "pkg.jobs:work"\n'
                "def work():\n    pass\n"
                "def submit(JobSpec):\n"
                "    return JobSpec(key='k', fn=DEFAULT)\n"
            ),
        })
        graph = build_call_graph(index)
        assert "pkg.jobs:work" in graph.roots

    def test_reachability_crosses_modules_and_reports_chain(self, tmp_path):
        index = _index(tmp_path, {
            "jobs.py": (
                "from .helpers import step\n"
                "def job():\n    return step()\n"
                'REF = "pkg.jobs:job"\n'
            ),
            "helpers.py": (
                "from .core import kernel\n"
                "def step():\n    return kernel()\n"
            ),
            "core.py": "def kernel():\n    return 1\n",
        })
        graph = build_call_graph(index)
        assert "pkg.core:kernel" in graph.reachable
        assert graph.chain("pkg.core:kernel") == [
            "pkg.jobs:job", "pkg.helpers:step", "pkg.core:kernel",
        ]
        assert "pkg.core" in graph.worker_modules()

    def test_constructor_chain_resolves_without_cha_blowup(self, tmp_path):
        # Cls(...).run() resolves to Cls.run, NOT to every class with a
        # .run method.
        index = _index(tmp_path, {
            "jobs.py": (
                "from .work import Worker\n"
                "def job():\n    return Worker().run()\n"
                'REF = "pkg.jobs:job"\n'
            ),
            "work.py": (
                "class Worker:\n"
                "    def run(self):\n        return 1\n"
            ),
            "other.py": (
                "class Unrelated:\n"
                "    def run(self):\n        return 2\n"
            ),
        })
        graph = build_call_graph(index)
        assert "pkg.work:Worker.run" in graph.reachable
        assert "pkg.other:Unrelated.run" not in graph.reachable

    def test_local_var_constructor_type_inference(self, tmp_path):
        index = _index(tmp_path, {
            "jobs.py": (
                "from .work import Worker\n"
                "def job():\n"
                "    w = Worker()\n"
                "    return w.run()\n"
                'REF = "pkg.jobs:job"\n'
            ),
            "work.py": (
                "class Worker:\n"
                "    def __init__(self):\n        self.n = 1\n"
                "    def run(self):\n        return self.helper()\n"
                "    def helper(self):\n        return self.n\n"
            ),
        })
        graph = build_call_graph(index)
        # constructor edge, method edge, and self.-dispatch all present
        for q in ("pkg.work:Worker.__init__", "pkg.work:Worker.run",
                  "pkg.work:Worker.helper"):
            assert q in graph.reachable, q

    def test_unresolvable_ref_recorded_not_rooted(self, tmp_path):
        index = _index(tmp_path, {
            "jobs.py": 'REF = "pkg.jobs:nonexistent"\n',
        })
        graph = build_call_graph(index)
        assert graph.roots == {}
        assert [r[0] for r in graph.unresolved_refs] == ["pkg.jobs:nonexistent"]

    def test_external_refs_ignored(self, tmp_path):
        index = _index(tmp_path, {
            "jobs.py": 'REF = "other.package:fn"\n',
        })
        graph = build_call_graph(index)
        assert graph.roots == {}
        assert graph.unresolved_refs == []
