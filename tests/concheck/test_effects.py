"""Effect inference: REPRO601-603 fixtures + lattice propagation."""

from .conftest import codes, messages_for

_JOB = 'REF = "pkg.jobs:job"\n'


class TestGlobalMutation:
    def test_global_statement_write_fires_601(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "_CACHE = None\n"
                "def job():\n"
                "    global _CACHE\n"
                "    _CACHE = 42\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO601"]
        [msg] = messages_for(bundle, "REPRO601")
        assert "escapes: module global pkg.jobs._CACHE" in msg
        assert "worker-reachable via pkg.jobs:job" in msg
        assert bundle["effect_summary"]["global-mutating"] == 1

    def test_class_attribute_write_fires_601(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "class Config:\n"
                "    mode = 'fast'\n"
                "def job():\n"
                "    Config.mode = 'slow'\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO601"]
        assert "class attribute pkg.jobs:Config.mode" in bundle["findings"][0]["message"]

    def test_environ_write_fires_601(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import os\n"
                "def job():\n"
                "    os.environ['OMP_NUM_THREADS'] = '1'\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO601"]

    def test_deep_mutation_raises_job_level_via_fixpoint(self, fixture_pkg):
        # The hazard sits two calls below the root; the *site* is
        # reported in helpers.py, and the job's effect level rises to
        # global-mutating transitively.
        bundle = fixture_pkg({
            "jobs.py": (
                "from .helpers import step\n"
                "def job():\n    return step()\n" + _JOB
            ),
            "helpers.py": (
                "STATE = {}\n"
                "def step():\n    return poke()\n"
                "def poke():\n"
                "    global STATE\n"
                "    STATE = {'hit': True}\n"
            ),
        })
        assert codes(bundle) == ["REPRO601"]
        assert bundle["findings"][0]["path"].endswith("helpers.py")
        assert bundle["effect_summary"]["global-mutating"] == 3  # job, step, poke
        assert bundle["escapes"]["pkg.jobs:job"] == [
            "module global pkg.helpers.STATE"
        ]

    def test_instance_attribute_write_is_clean(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "class Acc:\n"
                "    def __init__(self):\n"
                "        self.total = 0\n"
                "    def add(self, x):\n"
                "        self.total += x\n"
                "def job():\n"
                "    a = Acc()\n"
                "    a.add(3)\n"
                "    return a.total\n" + _JOB
            ),
        })
        assert codes(bundle) == []
        assert bundle["effect_summary"]["global-mutating"] == 0

    def test_enter_exit_save_restore_exempt(self, fixture_pkg):
        # The no_grad pattern: paired save/restore context manager.
        bundle = fixture_pkg({
            "jobs.py": (
                "_FLAG = True\n"
                "class no_flag:\n"
                "    def __enter__(self):\n"
                "        global _FLAG\n"
                "        self.prev = _FLAG\n"
                "        _FLAG = False\n"
                "        return self\n"
                "    def __exit__(self, *exc):\n"
                "        global _FLAG\n"
                "        _FLAG = self.prev\n"
                "def job():\n"
                "    with no_flag():\n"
                "        return 1\n" + _JOB
            ),
        })
        assert codes(bundle) == []

    def test_try_finally_restore_exempt(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "_MODE = 'a'\n"
                "def job():\n"
                "    global _MODE\n"
                "    prev = _MODE\n"
                "    _MODE = 'b'\n"
                "    try:\n"
                "        return 1\n"
                "    finally:\n"
                "        _MODE = prev\n" + _JOB
            ),
        })
        assert codes(bundle) == []


class TestCallToCallMemory:
    def test_mutable_default_list_fires_602(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": "def job(acc=[]):\n    acc.append(1)\n    return acc\n" + _JOB,
        })
        assert codes(bundle) == ["REPRO602"]

    def test_mutable_default_dict_call_fires_602(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": "def job(cache=dict()):\n    return cache\n" + _JOB,
        })
        assert codes(bundle) == ["REPRO602"]

    def test_none_default_is_clean(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "def job(acc=None):\n"
                "    acc = [] if acc is None else acc\n"
                "    return acc\n" + _JOB
            ),
        })
        assert codes(bundle) == []


class TestEnvironmentReads:
    def test_wall_clock_fires_advisory_603(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import time\n"
                "def job():\n"
                "    return time.perf_counter()\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO603"]
        assert bundle["failures"] == []  # advisory: never blocks
        assert bundle["effect_summary"]["io"] == 1

    def test_getenv_fires_603_deep(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "from .helpers import knob\n"
                "def job():\n    return knob()\n" + _JOB
            ),
            "helpers.py": (
                "import os\n"
                "def knob():\n    return os.getenv('THREADS', '1')\n"
            ),
        })
        assert codes(bundle) == ["REPRO603"]
        # io propagates up to the root through the fixpoint
        assert bundle["effect_summary"]["io"] == 2

    def test_unreachable_hazard_not_reported(self, fixture_pkg):
        # Same hazard, but nothing roots the module: parent-side code
        # may read clocks freely.
        bundle = fixture_pkg({
            "jobs.py": "import time\ndef job():\n    return time.time()\n",
        })
        assert bundle["worker_roots"] == []
        assert codes(bundle) == []


class TestLattice:
    def test_pure_and_deterministic_split(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import numpy as np\n"
                "def pure_helper(x):\n"
                "    return x + 1\n"
                "def job(x):\n"
                "    return np.sqrt(pure_helper(x))\n" + _JOB
            ),
        })
        assert codes(bundle) == []
        # job calls numpy (external -> deterministic); helper is pure
        assert bundle["effect_summary"]["pure"] == 1
        assert bundle["effect_summary"]["deterministic"] == 1
