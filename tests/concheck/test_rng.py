"""Deep RNG & ordering discipline: REPRO604-606 fixtures."""

from .conftest import codes, messages_for

_JOB = 'REF = "pkg.jobs:job"\n'


class TestGlobalRng:
    def test_legacy_np_random_deep_fires_604(self, fixture_pkg):
        # Three calls below the root — invisible to any intra-file audit
        # of the job's module.
        bundle = fixture_pkg({
            "jobs.py": (
                "from .a import step\n"
                "def job():\n    return step()\n" + _JOB
            ),
            "a.py": "from .b import draw\ndef step():\n    return draw()\n",
            "b.py": (
                "import numpy as np\n"
                "def draw():\n    return np.random.shuffle([1, 2])\n"
            ),
        })
        assert codes(bundle) == ["REPRO604"]
        [msg] = messages_for(bundle, "REPRO604")
        assert "pkg.jobs:job -> pkg.a:step -> pkg.b:draw" in msg
        assert bundle["failures"]  # blocking

    def test_stdlib_random_fires_604(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import random\n"
                "def job():\n    return random.choice([1, 2])\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO604"]

    def test_os_urandom_fires_604(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import os\n"
                "def job():\n    return os.urandom(8)\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO604"]

    def test_generator_method_draws_are_clean(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "def job(rng):\n"
                "    return rng.random() + rng.choice([1, 2])\n" + _JOB
            ),
        })
        assert codes(bundle) == []


class TestFreshGenerators:
    def test_unseeded_default_rng_fires_605(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import numpy as np\n"
                "def job():\n"
                "    rng = np.random.default_rng()\n"
                "    return rng.random()\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO605"]

    def test_unseeded_seedsequence_fires_605(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import numpy as np\n"
                "def job():\n"
                "    return np.random.SeedSequence().spawn(2)\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO605"]

    def test_entropy_derived_seed_fires_605(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import time\n"
                "import numpy as np\n"
                "def job():\n"
                "    rng = np.random.default_rng(int(time.time()))\n"
                "    return rng.random()\n" + _JOB
            ),
        })
        assert "REPRO605" in codes(bundle)

    def test_config_seed_passes(self, fixture_pkg):
        # The blessed pattern: seed threaded through parameters/config.
        bundle = fixture_pkg({
            "jobs.py": (
                "import numpy as np\n"
                "def job(config):\n"
                "    rng = np.random.default_rng(config.seed)\n"
                "    return rng.random()\n" + _JOB
            ),
        })
        assert codes(bundle) == []

    def test_spawned_seedsequence_passes(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import numpy as np\n"
                "def job(seed, idx):\n"
                "    child = np.random.SeedSequence(seed).spawn(idx + 1)[idx]\n"
                "    return np.random.default_rng(child).random()\n" + _JOB
            ),
        })
        assert codes(bundle) == []


class TestUnorderedIteration:
    def test_set_iteration_deep_fires_606(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "from .agg import reduce_pins\n"
                "def job(pins):\n    return reduce_pins(pins)\n" + _JOB
            ),
            "agg.py": (
                "def reduce_pins(pins):\n"
                "    total = 0.0\n"
                "    for p in set(pins):\n"
                "        total += p * 0.1\n"
                "    return total\n"
            ),
        })
        assert codes(bundle) == ["REPRO606"]

    def test_listdir_comprehension_fires_606(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import os\n"
                "def job(d):\n"
                "    return [n for n in os.listdir(d)]\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO606"]

    def test_sorted_set_passes(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "def job(pins):\n"
                "    total = 0.0\n"
                "    for p in sorted(set(pins)):\n"
                "        total += p\n"
                "    return total\n" + _JOB
            ),
        })
        assert codes(bundle) == []
