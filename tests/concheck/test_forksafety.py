"""Fork & pickle safety: REPRO607-610 fixtures."""

from .conftest import codes, messages_for

_JOB = 'REF = "pkg.jobs:job"\n'


class TestPayloads:
    def test_lambda_in_payload_fires_607(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "def job(f):\n    return f\n" + _JOB +
                "def submit(JobSpec):\n"
                "    return JobSpec(key='k', fn=REF, args=(lambda x: x,))\n"
            ),
        })
        assert "REPRO607" in codes(bundle)

    def test_open_handle_in_payload_fires_607(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "def job(fh):\n    return fh\n" + _JOB +
                "def submit(JobSpec, path):\n"
                "    return JobSpec(key='k', fn=REF,\n"
                "                   kwargs={'fh': open(path)})\n"
            ),
        })
        assert "REPRO607" in codes(bundle)

    def test_generator_in_payload_fires_607(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "def job(it):\n    return it\n" + _JOB +
                "def submit(JobSpec, xs):\n"
                "    return JobSpec(key='k', fn=REF,\n"
                "                   args=((x * 2 for x in xs),))\n"
            ),
        })
        assert "REPRO607" in codes(bundle)

    def test_plain_data_payload_is_clean(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "def job(xs, scale):\n    return [x * scale for x in xs]\n"
                + _JOB +
                "def submit(JobSpec):\n"
                "    return JobSpec(key='k', fn=REF,\n"
                "                   args=([1, 2, 3],), kwargs={'scale': 2.0})\n"
            ),
        })
        assert codes(bundle) == []


class TestDottedRefs:
    def test_unresolvable_ref_fires_608(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": 'REF = "pkg.jobs:gone_with_the_refactor"\n',
        })
        assert codes(bundle) == ["REPRO608"]
        [msg] = messages_for(bundle, "REPRO608")
        assert "resolve_callable would fail at dispatch" in msg

    def test_lambda_as_fn_fires_608(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "def submit(JobSpec):\n"
                "    return JobSpec(key='k', fn=lambda: 1)\n"
            ),
        })
        assert codes(bundle) == ["REPRO608"]

    def test_local_closure_as_fn_fires_608(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "def submit(JobSpec):\n"
                "    def inner():\n"
                "        return 1\n"
                "    return JobSpec(key='k', fn=inner)\n"
            ),
        })
        assert codes(bundle) == ["REPRO608"]
        assert "hoist it to module level" in bundle["findings"][0]["message"]

    def test_method_ref_resolves_clean(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "class Builder:\n"
                "    def build(self):\n        return 1\n"
                'REF = "pkg.jobs:Builder.build"\n'
            ),
        })
        assert codes(bundle) == []
        assert bundle["worker_roots"] == ["pkg.jobs:Builder.build"]


class TestImportTimeEffects:
    def test_module_scope_rng_seed_fires_609(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import numpy as np\n"
                "np.random.seed(0)\n"
                "def job():\n    return 1\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO609"]

    def test_module_scope_open_fires_609(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "_BANNER = open('/etc/hostname').read()\n"
                "def job():\n    return _BANNER\n" + _JOB
            ),
        })
        assert "REPRO609" in codes(bundle)

    def test_guarded_import_effect_still_fires_609(self, fixture_pkg):
        # Effects behind a module-level ``if`` still run per worker.
        bundle = fixture_pkg({
            "jobs.py": (
                "import os\n"
                "if os.name == 'posix':\n"
                "    os.putenv('X', '1')\n"
                "def job():\n    return 1\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO609"]

    def test_registration_calls_at_import_are_clean(self, fixture_pkg):
        # Deterministic in-process bookkeeping at import is the normal
        # pattern (register_code, decorators) — not a side effect.
        bundle = fixture_pkg({
            "jobs.py": (
                "from .registry import register\n"
                "register('job-v1')\n"
                "def job():\n    return 1\n" + _JOB
            ),
            "registry.py": (
                "TABLE = {}\n"
                "def register(name):\n"
                "    TABLE[name] = True\n"
            ),
        })
        assert codes(bundle) == []

    def test_non_worker_module_import_effects_ignored(self, fixture_pkg):
        # The same effect in a module no worker imports is out of scope.
        bundle = fixture_pkg({
            "jobs.py": "def job():\n    return 1\n" + _JOB,
            "parent_only.py": (
                "import numpy as np\n"
                "np.random.seed(0)\n"
            ),
        })
        assert codes(bundle) == []


class TestForkUnsafeResources:
    def test_module_scope_lock_fires_610_advisory(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import threading\n"
                "_LOCK = threading.Lock()\n"
                "def job():\n"
                "    with _LOCK:\n"
                "        return 1\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO610"]
        assert bundle["failures"] == []  # advisory

    def test_module_scope_pool_fires_610(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "from concurrent.futures import ThreadPoolExecutor\n"
                "_POOL = ThreadPoolExecutor(2)\n"
                "def job():\n    return 1\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO610"]

    def test_lock_inside_function_is_clean(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import threading\n"
                "def job():\n"
                "    lock = threading.Lock()\n"
                "    with lock:\n"
                "        return 1\n" + _JOB
            ),
        })
        assert codes(bundle) == []
