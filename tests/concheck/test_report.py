"""Bundle shape, baseline diffing, noqa suppression, and the real tree."""

from repro.concheck import (
    SCHEMA,
    baseline_from_concheck,
    check_concheck_baseline,
    concheck,
)

from .conftest import codes

_JOB = 'REF = "pkg.jobs:job"\n'


class TestBundle:
    def test_bundle_shape(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": "def job(x):\n    return x + 1\n" + _JOB,
        })
        assert bundle["schema"] == SCHEMA
        assert bundle["package"] == "pkg"
        assert bundle["worker_roots"] == ["pkg.jobs:job"]
        assert bundle["reachable_functions"] == 1
        assert bundle["worker_modules"] == ["pkg.jobs"]
        assert bundle["findings"] == []
        assert bundle["failures"] == []

    def test_advisory_findings_never_fail(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import time\n"
                "def job():\n    return time.perf_counter()\n" + _JOB
            ),
        })
        assert bundle["by_code"] == {"REPRO603": 1}
        assert bundle["failures"] == []


class TestBaseline:
    def test_round_trip_is_clean(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": "def job(x):\n    return x\n" + _JOB,
        })
        baseline = baseline_from_concheck(bundle)
        assert check_concheck_baseline(bundle, baseline) == []
        # The slice is path-free: stable across checkouts.
        assert "findings" not in baseline
        assert "escapes" not in baseline

    def test_new_worker_root_drifts(self, fixture_pkg):
        before = fixture_pkg({
            "jobs.py": "def job(x):\n    return x\n" + _JOB,
        })
        baseline = baseline_from_concheck(before)
        after = fixture_pkg({
            "jobs.py": (
                "def job(x):\n    return x\n"
                "def job2(x):\n    return x\n"
                + _JOB + 'REF2 = "pkg.jobs:job2"\n'
            ),
        })
        problems = check_concheck_baseline(after, baseline)
        assert any("new worker root: pkg.jobs:job2" in p for p in problems)
        assert any("reachable_functions changed 1 -> 2" in p for p in problems)

    def test_disappeared_worker_root_drifts(self, fixture_pkg):
        before = fixture_pkg({
            "jobs.py": "def job(x):\n    return x\n" + _JOB,
        })
        baseline = baseline_from_concheck(before)
        after = fixture_pkg({"jobs.py": "def job(x):\n    return x\n"})
        problems = check_concheck_baseline(after, baseline)
        assert any("worker root disappeared: pkg.jobs:job" in p for p in problems)

    def test_new_finding_drifts_by_code(self, fixture_pkg):
        before = fixture_pkg({
            "jobs.py": "def job(x):\n    return x\n" + _JOB,
        })
        baseline = baseline_from_concheck(before)
        after = fixture_pkg({
            "jobs.py": (
                "import random\n"
                "def job(x):\n    return random.choice([x])\n" + _JOB
            ),
        })
        problems = check_concheck_baseline(after, baseline)
        assert any("REPRO604 count changed 0 -> 1 (+1)" in p for p in problems)


class TestNoqa:
    def test_targeted_noqa_suppresses(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import random\n"
                "def job(x):\n"
                "    return random.choice([x])  # noqa: REPRO604\n" + _JOB
            ),
        })
        assert codes(bundle) == []

    def test_blanket_noqa_suppresses(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import random\n"
                "def job(x):\n"
                "    return random.choice([x])  # noqa\n" + _JOB
            ),
        })
        assert codes(bundle) == []

    def test_wrong_code_noqa_does_not_suppress(self, fixture_pkg):
        bundle = fixture_pkg({
            "jobs.py": (
                "import random\n"
                "def job(x):\n"
                "    return random.choice([x])  # noqa: REPRO605\n" + _JOB
            ),
        })
        assert codes(bundle) == ["REPRO604"]

    def test_noqa_on_durability_finding(self, fixture_pkg):
        bundle = fixture_pkg({
            "store.py": (
                "def save_checkpoint(state, path):\n"
                "    path.write_text(state)  # noqa: REPRO611\n"
            ),
        })
        assert codes(bundle) == []


class TestRealTree:
    def test_repro_package_is_certified(self):
        bundle = concheck()
        assert bundle["package"] == "repro"
        # The re-derived universe must find every orchestrated entry
        # point from source alone (no registry trust).
        assert bundle["worker_roots"] == [
            "repro.contest.evaluate:_table2_job",
            "repro.contest.teams:contest_teams",
            "repro.train.dataset:_design_samples_job",
        ]
        assert bundle["reachable_functions"] >= 50
        assert bundle["failures"] == []
