"""Recovery policies under injected faults: rollback, backoff, fallback."""

import numpy as np
import pytest

from repro.models import build_model
from repro.resilience import (
    DivergenceGuard,
    EstimatorOutputError,
    FaultInjected,
    TrainingDiverged,
    inject_fault,
    validate_level_map,
)
from repro.train import Trainer

from .conftest import make_dataset, train_config


class TestValidateLevelMap:
    def test_accepts_valid_map(self):
        level_map = np.full((8, 8), 3.0)
        assert validate_level_map(level_map) is level_map

    @pytest.mark.parametrize(
        "bad, match",
        [
            (np.zeros((4, 4, 2)), "2-D"),
            (np.zeros((0, 0)), "2-D"),
            (np.array([["a", "b"], ["c", "d"]]), "dtype"),
            (np.full((4, 4), np.nan), "non-finite"),
            (np.full((4, 4), np.inf), "non-finite"),
            (np.full((4, 4), -1.0), "range"),
            (np.full((4, 4), 9.0), "range"),
        ],
    )
    def test_rejects_garbage(self, bad, match):
        with pytest.raises(EstimatorOutputError, match=match):
            validate_level_map(bad)


class TestDivergenceGuard:
    def test_nan_and_inf_always_divergent(self):
        guard = DivergenceGuard()
        assert guard.is_divergent(float("nan"))
        assert guard.is_divergent(float("inf"))

    def test_explosion_relative_to_best(self):
        guard = DivergenceGuard(factor=10.0)
        guard.observe(1.0)
        assert not guard.is_divergent(5.0)
        assert guard.is_divergent(11.0)

    def test_no_baseline_no_explosion_check(self):
        assert not DivergenceGuard(factor=10.0).is_divergent(1e9)

    def test_retry_budget_is_bounded(self):
        guard = DivergenceGuard(max_retries=2, backoff=0.5)
        assert guard.request_rollback(0, float("nan"), 1e-3) == 0.5
        assert guard.request_rollback(0, float("nan"), 5e-4) == 0.5
        with pytest.raises(TrainingDiverged) as err:
            guard.request_rollback(0, float("nan"), 2.5e-4)
        assert err.value.retries == 2
        assert err.value.epoch == 0


class TestTrainingRollback:
    def test_nan_at_step_n_rolls_back_and_finishes(self, tiny_dataset):
        """The acceptance scenario: NaN gradient at step N -> rollback
        with lr backoff, training completes with a finite curve."""
        model = build_model("unet", "tiny")
        with inject_fault(
            "repro.nn.loss:CrossEntropyLoss2d.__call__", nth=4, mode="corrupt"
        ) as fault:
            result = Trainer(train_config(epochs=4, batch_size=4)).train(
                model, tiny_dataset
            )
        assert fault.fired
        assert len(result.recoveries) == 1
        assert result.recoveries[0]["retry"] == 1
        assert result.epochs == 4
        assert all(np.isfinite(loss) for loss in result.losses)

    def test_rollback_restarts_from_last_good_epoch(self, tiny_dataset):
        """The poisoned epoch's loss never enters the curve, and the
        curve matches the fault-free run up to the rollback point."""
        model_ref = build_model("unet", "tiny")
        result_ref = Trainer(train_config(epochs=2, batch_size=4)).train(
            model_ref, make_dataset()
        )
        model = build_model("unet", "tiny")
        with inject_fault(
            "repro.nn.loss:CrossEntropyLoss2d.__call__", nth=3, mode="corrupt"
        ):
            result = Trainer(train_config(epochs=2, batch_size=4)).train(
                model, make_dataset()
            )
        # Epoch 1 (calls 1-2) is untouched in both runs.
        assert result.losses[0] == result_ref.losses[0]
        assert all(np.isfinite(loss) for loss in result.losses)

    def test_persistent_nan_raises_structured_error(self, tiny_dataset):
        model = build_model("unet", "tiny")
        with inject_fault(
            "repro.nn.loss:CrossEntropyLoss2d.__call__",
            nth=1, mode="corrupt", repeat=True,
        ):
            with pytest.raises(TrainingDiverged) as err:
                Trainer(
                    train_config(epochs=4, batch_size=4, divergence_retries=2)
                ).train(model, tiny_dataset)
        assert err.value.retries == 2
        assert not np.isfinite(err.value.loss)
        # Each rollback halves the lr (default backoff 0.5).
        assert err.value.lr == pytest.approx(1e-3 * 0.25)

    def test_guard_disabled_propagates_nan(self, tiny_dataset):
        model = build_model("unet", "tiny")
        with inject_fault(
            "repro.nn.loss:CrossEntropyLoss2d.__call__",
            nth=1, mode="corrupt", repeat=True,
        ):
            result = Trainer(
                train_config(epochs=1, batch_size=4, divergence_retries=0)
            ).train(model, tiny_dataset)
        assert not np.isfinite(result.losses[0])

    def test_empty_dataset_raises(self):
        from repro.train import CongestionDataset

        model = build_model("unet", "tiny")
        with pytest.raises(ValueError, match="empty dataset"):
            Trainer(train_config(epochs=1)).train(model, CongestionDataset())


def _tiny_placer_config():
    from repro.placement import GPConfig, PlacerConfig

    return PlacerConfig(
        gp=GPConfig(bins=16, max_iters=80),
        inflation_rounds=1,
        stage1_iters=60,
        stage2_iters=25,
    )


class TestEstimatorFallback:
    def test_estimator_raising_in_round_1_falls_back_to_rudy(
        self, fresh_tiny_design
    ):
        from repro.placement import place_design

        with inject_fault(
            "repro.placement.estimators:RudyEstimator.__call__", nth=1
        ) as fault:
            outcome = place_design(
                fresh_tiny_design, config=_tiny_placer_config()
            )
        assert fault.fired
        assert outcome.degraded
        assert len(outcome.incidents) == 1
        incident = outcome.incidents[0]
        assert incident.stage == "estimate/round1"
        assert incident.action == "fallback:rudy"
        assert "FaultInjected" in incident.error
        assert outcome.hpwl > 0  # the flow still completed

    def test_garbage_output_falls_back_to_rudy(self, fresh_tiny_design):
        from repro.placement import MacroPlacer

        def nan_estimator(design, x, y):
            grid = design.device.tile_cols
            return np.full((grid, grid), np.nan)

        placer = MacroPlacer(
            fresh_tiny_design, estimator=nan_estimator,
            config=_tiny_placer_config(),
        )
        outcome = placer.run()
        assert outcome.degraded
        assert "non-finite" in outcome.incidents[0].error
        assert outcome.hpwl > 0

    def test_clean_run_has_no_incidents(self, fresh_tiny_design):
        from repro.placement import place_design

        outcome = place_design(fresh_tiny_design, config=_tiny_placer_config())
        assert outcome.incidents == []
        assert not outcome.degraded

    def test_fallback_disabled_propagates(self, fresh_tiny_design):
        from dataclasses import replace

        from repro.placement import place_design

        config = replace(_tiny_placer_config(), estimator_fallback=False)
        with inject_fault(
            "repro.placement.estimators:RudyEstimator.__call__", nth=1
        ):
            with pytest.raises(FaultInjected):
                place_design(fresh_tiny_design, config=config)
