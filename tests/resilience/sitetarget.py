"""A tiny patch target for exercising the fault-injection harness."""

import numpy as np


def produce(n: int) -> np.ndarray:
    """Return a small deterministic array (the 'healthy' output)."""
    return np.ones((n, n))


class Producer:
    """Method-injection target."""

    def compute(self, n: int) -> np.ndarray:
        return np.full((n, n), 2.0)
