"""The fault-injection harness itself: deterministic, replayable, clean."""

import numpy as np
import pytest

from repro.resilience import FaultInjected, inject_fault, nan_poison


class TestInjectFault:
    def test_raises_on_nth_call_only(self):
        with inject_fault("tests.resilience.sitetarget:produce", nth=2) as fault:
            from tests.resilience import sitetarget

            assert sitetarget.produce(3).shape == (3, 3)
            with pytest.raises(FaultInjected):
                sitetarget.produce(3)
            assert sitetarget.produce(3).shape == (3, 3)
        assert [r.fired for r in fault.log] == [False, True, False]
        assert fault.fired

    def test_repeat_mode_keeps_firing(self):
        from tests.resilience import sitetarget

        with inject_fault(
            "tests.resilience.sitetarget:produce", nth=2, repeat=True
        ):
            sitetarget.produce(2)
            for _ in range(3):
                with pytest.raises(FaultInjected):
                    sitetarget.produce(2)

    def test_original_restored_on_exit(self):
        from tests.resilience import sitetarget

        original = sitetarget.produce
        with inject_fault("tests.resilience.sitetarget:produce", nth=1):
            assert sitetarget.produce is not original
        assert sitetarget.produce is original

    def test_original_restored_after_exception(self):
        from tests.resilience import sitetarget

        original = sitetarget.produce
        with pytest.raises(FaultInjected):
            with inject_fault("tests.resilience.sitetarget:produce", nth=1):
                sitetarget.produce(2)
        assert sitetarget.produce is original

    def test_corrupt_mode_is_seeded_and_replayable(self):
        from tests.resilience import sitetarget

        outputs = []
        for _ in range(2):
            with inject_fault(
                "tests.resilience.sitetarget:produce",
                nth=1,
                mode="corrupt",
                seed=7,
            ):
                outputs.append(sitetarget.produce(8).copy())
        # Same seed -> identical NaN pattern on both replays.
        assert np.array_equal(
            np.isnan(outputs[0]), np.isnan(outputs[1])
        )
        assert np.isnan(outputs[0]).any()

    def test_method_patching(self):
        from tests.resilience import sitetarget

        with inject_fault(
            "tests.resilience.sitetarget:Producer.compute", nth=1
        ):
            with pytest.raises(FaultInjected):
                sitetarget.Producer().compute(2)
        assert sitetarget.Producer().compute(2).shape == (2, 2)

    def test_custom_exception_and_message(self):
        from tests.resilience import sitetarget

        with inject_fault(
            "tests.resilience.sitetarget:produce",
            nth=1,
            exception=TimeoutError,
            message="simulated deadline",
        ):
            with pytest.raises(TimeoutError, match="simulated deadline"):
                sitetarget.produce(2)

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="mode"):
            inject_fault("tests.resilience.sitetarget:produce", mode="explode")
        with pytest.raises(ValueError, match="1-based"):
            inject_fault("tests.resilience.sitetarget:produce", nth=0)
        with pytest.raises(ValueError, match="package.module:attr"):
            inject_fault("tests.resilience.sitetarget")


class TestNanPoison:
    def test_poisons_ndarray_in_seeded_positions(self):
        rng1 = np.random.default_rng(3)
        rng2 = np.random.default_rng(3)
        a = np.zeros(64)
        b = np.zeros(64)
        nan_poison(a, rng1)
        nan_poison(b, rng2)
        assert np.array_equal(np.isnan(a), np.isnan(b))
        assert np.isnan(a).sum() == 8  # size // 8

    def test_non_array_becomes_nan(self):
        assert np.isnan(nan_poison(3.0, np.random.default_rng(0)))
