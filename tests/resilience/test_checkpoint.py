"""Checkpoint bundles: atomic, checksummed, fingerprinted, rolling."""

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import SGD, Adam
from repro.resilience import (
    Checkpoint,
    CheckpointCorrupt,
    CheckpointManager,
    CheckpointMismatch,
    fingerprint_of,
    load_checkpoint,
    save_checkpoint,
)


def _bundle(seed=0, epoch=3) -> Checkpoint:
    rng = np.random.default_rng(seed)
    model = build_model("unet", "tiny")
    optimizer = Adam(model.parameters(), lr=1e-3)
    # Take a real optimizer step so the moments are non-trivial.
    for p in model.parameters():
        p.grad = rng.normal(size=p.data.shape)
    optimizer.step()
    return Checkpoint(
        model_state=model.state_dict(),
        optimizer_state=optimizer.state_dict(),
        rng_state=rng.bit_generator.state,
        epoch=epoch,
        losses=[1.5, 1.2, 1.0][:epoch],
        fingerprint={"lr": 1e-3, "batch_size": 4},
        extra={"lr_scale": 0.5},
    )


class TestRoundTrip:
    def test_everything_survives(self, tmp_path):
        bundle = _bundle()
        path = save_checkpoint(bundle, tmp_path / "ck.npz")
        restored = load_checkpoint(path)
        assert restored.epoch == bundle.epoch
        assert restored.losses == bundle.losses
        assert restored.rng_state == bundle.rng_state
        assert restored.fingerprint == bundle.fingerprint
        assert restored.extra == bundle.extra
        for key, arr in bundle.model_state.items():
            assert np.array_equal(restored.model_state[key], arr)
        assert restored.optimizer_state["step"] == 1
        for slot in ("m", "v"):
            for a, b in zip(
                restored.optimizer_state[slot], bundle.optimizer_state[slot]
            ):
                assert np.array_equal(a, b)

    def test_rng_state_restores_stream(self, tmp_path):
        rng = np.random.default_rng(9)
        rng.normal(size=10)
        bundle = _bundle()
        bundle.rng_state = rng.bit_generator.state
        expected = np.random.default_rng(0)
        expected.bit_generator.state = rng.bit_generator.state
        path = save_checkpoint(bundle, tmp_path / "ck.npz")
        restored = load_checkpoint(path)
        fresh = np.random.default_rng(0)
        fresh.bit_generator.state = restored.rng_state
        assert np.array_equal(fresh.normal(size=5), expected.normal(size=5))


class TestAtomicity:
    def test_no_temp_file_left_behind(self, tmp_path):
        save_checkpoint(_bundle(), tmp_path / "ck.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["ck.npz"]

    def test_overwrite_is_replace_not_append(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(_bundle(epoch=1), path)
        save_checkpoint(_bundle(epoch=3), path)
        assert load_checkpoint(path).epoch == 3


class TestIntegrity:
    def test_bit_flip_is_detected(self, tmp_path):
        path = save_checkpoint(_bundle(), tmp_path / "ck.npz")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path)

    def test_truncation_is_detected(self, tmp_path):
        path = save_checkpoint(_bundle(), tmp_path / "ck.npz")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path)

    def test_garbage_file_is_detected(self, tmp_path):
        path = tmp_path / "ck.npz"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointCorrupt):
            load_checkpoint(path)


class TestFingerprint:
    def test_mismatched_resume_is_refused(self, tmp_path):
        path = save_checkpoint(_bundle(), tmp_path / "ck.npz")
        with pytest.raises(CheckpointMismatch, match="lr"):
            load_checkpoint(path, expected_fingerprint={"lr": 5e-4, "batch_size": 4})

    def test_matching_resume_is_accepted(self, tmp_path):
        path = save_checkpoint(_bundle(), tmp_path / "ck.npz")
        load_checkpoint(path, expected_fingerprint={"lr": 1e-3, "batch_size": 4})

    def test_fingerprint_of_drops_volatile_knobs(self):
        fp = fingerprint_of(
            {"lr": 1e-3, "epochs": 50, "resume": True, "checkpoint_dir": "/x",
             "checkpoint_every": 2, "log_every": 1, "sanitize": True}
        )
        assert fp == {"lr": 1e-3}


class TestManager:
    def test_rolling_last_and_best(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.load_last() is None
        manager.save(_bundle(epoch=1), is_best=True)
        manager.save(_bundle(epoch=2), is_best=False)
        manager.save(_bundle(epoch=3), is_best=True)
        assert manager.load_last().epoch == 3
        assert manager.load_best().epoch == 3
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "best.ckpt.npz", "last.ckpt.npz",
        ]

    def test_best_lags_last(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_bundle(epoch=1), is_best=True)
        manager.save(_bundle(epoch=2), is_best=False)
        assert manager.load_last().epoch == 2
        assert manager.load_best().epoch == 1


class TestStartupScan:
    """Crash debris is quarantined at construction, never trusted."""

    def test_clean_directory_stays_untouched(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_bundle(epoch=1), is_best=True)
        manager = CheckpointManager(tmp_path)  # rescan
        assert manager.quarantined == []
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "best.ckpt.npz", "last.ckpt.npz",
        ]

    def test_leftover_tmp_file_is_quarantined(self, tmp_path):
        (tmp_path / "last.ckpt.npz.tmp").write_bytes(b"torn mid-write")
        manager = CheckpointManager(tmp_path)
        assert [p.name for p in manager.quarantined] == ["last.ckpt.npz.tmp"]
        assert not (tmp_path / "last.ckpt.npz.tmp").exists()
        assert (tmp_path / "quarantine" / "last.ckpt.npz.tmp").exists()

    def test_corrupt_last_is_quarantined_on_scan(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_bundle(epoch=1), is_best=True)
        (tmp_path / "last.ckpt.npz").write_bytes(b"garbage")
        manager = CheckpointManager(tmp_path)
        assert [p.name for p in manager.quarantined] == ["last.ckpt.npz"]
        # Resume falls back to the surviving best bundle.
        assert manager.load_last().epoch == 1

    def test_load_last_falls_back_when_corruption_postdates_scan(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_bundle(epoch=1), is_best=True)
        manager.save(_bundle(epoch=2), is_best=False)
        (tmp_path / "last.ckpt.npz").write_bytes(b"garbage")
        restored = manager.load_last()
        assert restored is not None and restored.epoch == 1
        assert [p.name for p in manager.quarantined] == ["last.ckpt.npz"]

    def test_all_bundles_corrupt_returns_none(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_bundle(epoch=1), is_best=True)
        (tmp_path / "last.ckpt.npz").write_bytes(b"garbage")
        (tmp_path / "best.ckpt.npz").write_bytes(b"also garbage")
        manager = CheckpointManager(tmp_path)
        assert manager.load_last() is None
        assert len(manager.quarantined) == 2

    def test_quarantine_names_never_collide(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for _ in range(2):
            (tmp_path / "x.tmp").write_bytes(b"debris")
            manager._quarantine(tmp_path / "x.tmp")
        names = sorted(p.name for p in (tmp_path / "quarantine").iterdir())
        assert names == ["x.tmp", "x.tmp.1"]

    def test_fingerprint_mismatch_still_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(_bundle(epoch=1))
        with pytest.raises(CheckpointMismatch):
            manager.load_last(expected_fingerprint={"lr": 9.0, "batch_size": 4})

    def test_scan_can_be_disabled(self, tmp_path):
        (tmp_path / "last.ckpt.npz.tmp").write_bytes(b"torn")
        manager = CheckpointManager(tmp_path, scan=False)
        assert manager.quarantined == []
        assert (tmp_path / "last.ckpt.npz.tmp").exists()


class TestOptimizerStateDict:
    def test_adam_round_trip_continues_identically(self):
        rng = np.random.default_rng(1)

        def fresh():
            model = build_model("unet", "tiny")
            return model, Adam(model.parameters(), lr=1e-3)

        model_a, opt_a = fresh()
        grads = [rng.normal(size=p.data.shape) for p in model_a.parameters()]
        for p, g in zip(model_a.parameters(), grads):
            p.grad = g
        opt_a.step()

        model_b, opt_b = fresh()
        model_b.load_state_dict(model_a.state_dict())
        opt_b.load_state_dict(opt_a.state_dict())
        # One more identical step from restored state must match exactly.
        for opt, model in ((opt_a, model_a), (opt_b, model_b)):
            for p, g in zip(model.parameters(), grads):
                p.grad = g.copy()
            opt.step()
        for pa, pb in zip(model_a.parameters(), model_b.parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_sgd_velocity_round_trip(self):
        from repro.nn.module import Parameter

        pa, pb = Parameter(np.zeros(3)), Parameter(np.zeros(3))
        opt_a = SGD([pa], lr=0.1, momentum=0.9)
        pa.grad = np.ones(3)
        opt_a.step()
        opt_b = SGD([pb], lr=0.1, momentum=0.9)
        opt_b.load_state_dict(opt_a.state_dict())
        pb.data[...] = pa.data
        pa.grad = np.ones(3)
        pb.grad = np.ones(3)
        opt_a.step()
        opt_b.step()
        assert np.array_equal(pa.data, pb.data)

    def test_shape_mismatch_rejected(self):
        from repro.nn.module import Parameter

        opt = Adam([Parameter(np.zeros(3))], lr=1e-3)
        state = opt.state_dict()
        state["m"] = [np.zeros(4)]
        with pytest.raises(ValueError, match="shape mismatch"):
            opt.load_state_dict(state)

    def test_length_mismatch_rejected(self):
        from repro.nn.module import Parameter

        opt = Adam([Parameter(np.zeros(3))], lr=1e-3)
        state = opt.state_dict()
        state["v"] = []
        with pytest.raises(ValueError, match="arrays for"):
            opt.load_state_dict(state)
