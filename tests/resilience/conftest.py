"""Fixtures for the fault-tolerance suite.

The CI fault-injection job runs this suite with ``REPRO_SANITIZE=1``,
which flips every trainer config built through :func:`train_config`
to ``sanitize=True`` — recovery paths and the repro.lint runtime
sanitizers are then exercised together.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.train import CongestionDataset, Sample, TrainConfig


def train_config(**kwargs) -> TrainConfig:
    """A TrainConfig honouring the CI suite's REPRO_SANITIZE switch."""
    kwargs.setdefault("sanitize", os.environ.get("REPRO_SANITIZE") == "1")
    return TrainConfig(**kwargs)


def make_dataset(seed: int = 0, n_train: int = 8, grid: int = 16) -> CongestionDataset:
    """Learnable toy task: label = quantized RUDY channel."""
    rng = np.random.default_rng(seed)
    dataset = CongestionDataset()
    for _ in range(n_train):
        features = rng.uniform(0, 1, size=(6, grid, grid))
        labels = np.clip((features[3] * 8).astype(np.int64), 0, 7)
        dataset.train.append(Sample(features, labels, "Design_T"))
    dataset.eval = dataset.train[:2]
    return dataset


@pytest.fixture
def tiny_dataset() -> CongestionDataset:
    return make_dataset()
