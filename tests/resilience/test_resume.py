"""Resume semantics: interrupted runs continue bit-for-bit.

The headline regression test the resilience layer must hold forever:
a run checkpointed at epoch k and resumed produces a loss curve and
final ``state_dict`` *bitwise-equal* to the uninterrupted run — which
is only possible if model, Adam moments, and the batch-shuffling RNG
all restore exactly.
"""

import numpy as np
import pytest

from repro.models import build_model
from repro.resilience import (
    CheckpointMismatch,
    FaultInjected,
    inject_fault,
)

from .conftest import make_dataset, train_config


def _train(cfg, dataset):
    from repro.train import Trainer

    model = build_model("unet", "tiny")
    result = Trainer(cfg).train(model, dataset)
    return model, result


class TestResumeDeterminism:
    def test_resumed_run_is_bitwise_equal_to_uninterrupted(self, tmp_path):
        # Uninterrupted 6-epoch reference run.
        model_ref, result_ref = _train(
            train_config(epochs=6, checkpoint_dir=str(tmp_path / "ref")),
            make_dataset(),
        )
        # Same run stopped after 3 epochs, then resumed to 6.
        ckpt = str(tmp_path / "split")
        _train(train_config(epochs=3, checkpoint_dir=ckpt), make_dataset())
        model_res, result_res = _train(
            train_config(epochs=6, checkpoint_dir=ckpt, resume=True),
            make_dataset(),
        )
        assert result_res.resumed_from_epoch == 3
        assert result_res.losses == result_ref.losses
        ref_state = model_ref.state_dict()
        res_state = model_res.state_dict()
        assert set(ref_state) == set(res_state)
        for key in ref_state:
            assert np.array_equal(ref_state[key], res_state[key]), key

    def test_checkpoint_every_k_still_matches(self, tmp_path):
        model_ref, result_ref = _train(train_config(epochs=5), make_dataset())
        ckpt = str(tmp_path / "k2")
        # Kill during epoch 3 with only even-epoch checkpoints (2 steps
        # per epoch): the resume restarts from epoch 2, replaying 3.
        with pytest.raises(FaultInjected):
            with inject_fault("repro.nn:clip_grad_norm", nth=5):
                _train(
                    train_config(
                        epochs=5, checkpoint_dir=ckpt, checkpoint_every=2
                    ),
                    make_dataset(),
                )
        model_res, result_res = _train(
            train_config(
                epochs=5, checkpoint_dir=ckpt, checkpoint_every=2, resume=True
            ),
            make_dataset(),
        )
        assert result_res.resumed_from_epoch == 2
        assert result_res.losses == result_ref.losses
        for key, arr in model_ref.state_dict().items():
            assert np.array_equal(arr, model_res.state_dict()[key]), key


class TestKillAndResume:
    def test_killed_mid_epoch_then_resumed_matches(self, tmp_path):
        """E2E: a crash mid-run loses at most the unfinished epoch."""
        model_ref, result_ref = _train(train_config(epochs=4), make_dataset())
        ckpt = str(tmp_path / "killed")
        # Kill the run partway through epoch 3 (batch granularity:
        # 8 samples / batch_size 4 = 2 optimizer steps per epoch).
        with pytest.raises(FaultInjected):
            with inject_fault("repro.nn:clip_grad_norm", nth=5):
                _train(
                    train_config(epochs=4, checkpoint_dir=ckpt), make_dataset()
                )
        model_res, result_res = _train(
            train_config(epochs=4, checkpoint_dir=ckpt, resume=True),
            make_dataset(),
        )
        assert result_res.resumed_from_epoch == 2
        assert result_res.losses == result_ref.losses
        for key, arr in model_ref.state_dict().items():
            assert np.array_equal(arr, model_res.state_dict()[key]), key


class TestResumeSafety:
    def test_mismatched_config_is_refused(self, tmp_path):
        ckpt = str(tmp_path)
        _train(train_config(epochs=2, checkpoint_dir=ckpt), make_dataset())
        with pytest.raises(CheckpointMismatch, match="lr"):
            _train(
                train_config(epochs=4, lr=5e-4, checkpoint_dir=ckpt, resume=True),
                make_dataset(),
            )

    def test_mismatched_model_is_refused(self, tmp_path):
        from repro.train import Trainer

        ckpt = str(tmp_path)
        _train(train_config(epochs=1, checkpoint_dir=ckpt), make_dataset())
        other = build_model("ours", "tiny")
        with pytest.raises(CheckpointMismatch, match="model"):
            Trainer(
                train_config(epochs=2, checkpoint_dir=ckpt, resume=True)
            ).train(other, make_dataset())

    def test_resume_without_checkpoint_trains_fresh(self, tmp_path):
        model, result = _train(
            train_config(epochs=2, checkpoint_dir=str(tmp_path), resume=True),
            make_dataset(),
        )
        assert result.resumed_from_epoch == 0
        assert result.epochs == 2

    def test_extending_epoch_budget_is_allowed(self, tmp_path):
        """epochs is volatile: resuming with a bigger budget is the
        whole point of resumable checkpoints."""
        ckpt = str(tmp_path)
        _train(train_config(epochs=2, checkpoint_dir=ckpt), make_dataset())
        _, result = _train(
            train_config(epochs=4, checkpoint_dir=ckpt, resume=True),
            make_dataset(),
        )
        assert result.resumed_from_epoch == 2
        assert result.epochs == 4
