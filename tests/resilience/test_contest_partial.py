"""Contest evaluation survives per-design failures with a manifest."""

import pytest

from repro.contest import (
    Table2Result,
    contest_teams,
    format_table2,
    run_table2,
)
from repro.contest.scoring import ContestScore
from repro.resilience import FaultInjected, inject_fault

_DESIGNS = ("Design_116", "Design_120")


def _one_team():
    return [contest_teams()[0]]  # UTDA: RUDY, single inflation round


class TestPartialTable2:
    def test_one_failing_design_yields_partial_scores(self):
        with inject_fault(
            "repro.contest.evaluate:evaluate_team_on_design", nth=2
        ) as fault:
            result = run_table2(_one_team(), _DESIGNS, scale=1.0 / 256.0)
        assert fault.fired
        assert not result.complete
        # The surviving design is scored, the failing one is manifested.
        assert list(result.scores["UTDA"]) == ["Design_116"]
        manifest = result.error_manifest()
        assert [
            (entry["team"], entry["design"]) for entry in manifest
        ] == [("UTDA", "Design_120")]
        # Failures are structured: exception type + traceback tail, not
        # just a display string.
        assert manifest[0]["type"] == "FaultInjected"
        assert "FaultInjected" in manifest[0]["error"]
        assert any("FaultInjected" in line for line in manifest[0]["traceback"])
        # Averages are computed over what survived.
        assert "UTDA" in result.averages()

    def test_fail_fast_mode_still_available(self):
        with inject_fault(
            "repro.contest.evaluate:evaluate_team_on_design", nth=1
        ):
            with pytest.raises(FaultInjected):
                run_table2(
                    _one_team(), _DESIGNS[:1], scale=1.0 / 256.0,
                    resilient=False,
                )

    def test_format_appends_error_manifest(self):
        result = Table2Result()
        result.add(
            ContestScore(
                design="Design_116", team="UTDA",
                s_ir=100.0, s_dr=10, t_macro_minutes=1.0, t_pr_hours=2.0,
            )
        )
        result.add_error("UTDA", "Design_120", "RuntimeError: boom")
        table = format_table2(result)
        assert "partial results" in table
        assert "Design_120" in table
        assert "RuntimeError: boom" in table

    def test_clean_result_is_complete(self):
        result = Table2Result()
        assert result.complete
        result.add_error("UTDA", "Design_120", "x")
        assert not result.complete

    def test_all_designs_failing_keeps_team_out_of_averages(self):
        result = Table2Result()
        result.add_error("UTDA", "Design_116", "x")
        assert result.averages() == {}
        # format must not crash on a result with errors only.
        assert "partial results" in format_table2(result)
