"""Analysis utilities: correlation, forward selection, report export."""

import numpy as np
import pytest

from repro.analysis import (
    correlate_features,
    forward_selection,
    rows_to_csv,
    rows_to_markdown,
)
from repro.features import FEATURE_NAMES


def _correlated_stack(rng, grid=16):
    """Features where channel 3 (RUDY) drives the labels."""
    features = rng.uniform(0, 1, size=(2, 6, grid, grid))
    labels = np.clip((features[:, 3] * 7).round(), 0, 7)
    return features, labels


class TestCorrelation:
    def test_names_and_order(self, rng):
        features, labels = _correlated_stack(rng)
        results = correlate_features(features, labels)
        assert [r.name for r in results] == list(FEATURE_NAMES)

    def test_driving_feature_ranks_first(self, rng):
        features, labels = _correlated_stack(rng)
        results = correlate_features(features, labels)
        best = max(results, key=lambda r: abs(r.pearson))
        assert best.name == "rudy"
        assert best.pearson > 0.9

    def test_uncorrelated_features_near_zero(self, rng):
        features, labels = _correlated_stack(rng)
        by_name = {r.name: r for r in correlate_features(features, labels)}
        assert abs(by_name["macro_map"].pearson) < 0.2

    def test_single_sample_accepted(self, rng):
        features, labels = _correlated_stack(rng)
        results = correlate_features(features[0], labels[0])
        assert len(results) == 6

    def test_constant_feature_yields_zero(self, rng):
        features, labels = _correlated_stack(rng)
        features[:, 0] = 0.5
        by_name = {r.name: r for r in correlate_features(features, labels)}
        assert by_name["macro_map"].pearson == 0.0

    def test_batch_mismatch_rejected(self, rng):
        features, labels = _correlated_stack(rng)
        with pytest.raises(ValueError, match="batch"):
            correlate_features(features, labels[:1])

    def test_row_rendering(self, rng):
        features, labels = _correlated_stack(rng)
        row = correlate_features(features, labels)[0].row()
        assert "pearson" in row and "macro_map" in row


class TestForwardSelection:
    def test_picks_driver_first(self, rng):
        features, labels = _correlated_stack(rng)
        ranking = forward_selection(features, labels)
        assert ranking[0][0] == "rudy"
        assert ranking[0][1] > 0.8

    def test_r2_monotone_nondecreasing(self, rng):
        features, labels = _correlated_stack(rng)
        ranking = forward_selection(features, labels)
        r2s = [r2 for _, r2 in ranking]
        assert all(b >= a - 1e-9 for a, b in zip(r2s, r2s[1:]))

    def test_max_features_cap(self, rng):
        features, labels = _correlated_stack(rng)
        ranking = forward_selection(features, labels, max_features=2)
        assert len(ranking) == 2


class TestReports:
    ROWS = [
        {"design": "Design_116", "ACC": 0.885, "S_IR": 5},
        {"design": "Design_120", "ACC": 0.855, "S_IR": 2},
    ]

    def test_csv_roundtrip(self):
        text = rows_to_csv(self.ROWS)
        lines = text.strip().splitlines()
        assert lines[0] == "design,ACC,S_IR"
        assert lines[1].startswith("Design_116,0.885")

    def test_markdown_structure(self):
        text = rows_to_markdown(self.ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("| design | ACC")
        assert lines[1].startswith("| ---")
        assert len(lines) == 4

    def test_empty_rows(self):
        assert rows_to_csv([]) == ""
        assert rows_to_markdown([]) == ""

    def test_inconsistent_columns_rejected(self):
        bad = [{"a": 1}, {"b": 2}]
        with pytest.raises(ValueError, match="columns"):
            rows_to_csv(bad)
        with pytest.raises(ValueError, match="columns"):
            rows_to_markdown(bad)

    def test_float_formatting_in_markdown(self):
        text = rows_to_markdown([{"x": 0.123456}])
        assert "0.123 " in text or "0.123|" in text or "0.123" in text
