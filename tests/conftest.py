"""Shared fixtures: tiny designs/devices sized for fast unit tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch import FPGADevice, SiteType
from repro.netlist import MLCAD2023_SPECS, Design, Instance, Net, generate_design


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_device() -> FPGADevice:
    """A 16×16 device with one column of each macro type."""
    pattern = (
        SiteType.CLB,
        SiteType.CLB,
        SiteType.DSP,
        SiteType.CLB,
        SiteType.BRAM,
        SiteType.CLB,
        SiteType.URAM,
        SiteType.CLB,
    )
    return FPGADevice(
        num_cols=16,
        num_rows=16,
        column_types=pattern * 2,
        tile_cols=16,
        tile_rows=16,
        name="tiny",
    )


@pytest.fixture(scope="session")
def tiny_design() -> Design:
    """A scaled-down contest design (fast to place/route)."""
    return generate_design(MLCAD2023_SPECS["Design_116"], scale=1.0 / 256.0)


@pytest.fixture
def fresh_tiny_design() -> Design:
    """Like ``tiny_design`` but mutable per-test (placement state)."""
    return generate_design(MLCAD2023_SPECS["Design_116"], scale=1.0 / 256.0)


@pytest.fixture(scope="session")
def placed_tiny_design() -> Design:
    """A tiny design with the full flow already run (shared, read-only)."""
    from repro.placement import GPConfig, PlacerConfig, place_design

    design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1.0 / 256.0)
    place_design(
        design,
        config=PlacerConfig(
            gp=GPConfig(bins=16, max_iters=150),
            inflation_rounds=1,
            stage1_iters=120,
            stage2_iters=40,
        ),
    )
    return design


def make_manual_design(device: FPGADevice) -> Design:
    """A 6-instance hand-built design for exact-value tests."""
    from repro.arch import ResourceType

    instances = [
        Instance("c0", ResourceType.LUT, {ResourceType.LUT: 8.0}),
        Instance("c1", ResourceType.LUT, {ResourceType.LUT: 8.0}),
        Instance("c2", ResourceType.LUT, {ResourceType.LUT: 4.0}),
        Instance("d0", ResourceType.DSP),
        Instance("b0", ResourceType.BRAM),
        Instance("io", ResourceType.LUT, {ResourceType.LUT: 0.0}, movable=False),
    ]
    nets = [
        Net((0, 1)),
        Net((1, 2, 3)),
        Net((0, 4)),
        Net((2, 5), weight=2.0),
    ]
    return Design("manual", device, instances, nets)


@pytest.fixture
def manual_design(tiny_device: FPGADevice) -> Design:
    return make_manual_design(tiny_device)


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. array ``x``."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        old = x[idx]
        x[idx] = old + eps
        f_plus = f()
        x[idx] = old - eps
        f_minus = f()
        x[idx] = old
        grad[idx] = (f_plus - f_minus) / (2 * eps)
    return grad
