"""Macro refinement: HPWL never worsens, legality is preserved."""

import numpy as np
import pytest

from repro.arch import ResourceType, SiteType
from repro.netlist import MLCAD2023_SPECS, generate_design
from repro.placement import (
    GPConfig,
    PlacerConfig,
    legalize,
    place_design,
    refine_macros,
)


@pytest.fixture(scope="module")
def legal_design():
    design = generate_design(MLCAD2023_SPECS["Design_136"], scale=1 / 256)
    place_design(
        design,
        config=PlacerConfig(
            gp=GPConfig(bins=16, max_iters=150),
            inflation_rounds=1,
            stage1_iters=120,
            stage2_iters=40,
        ),
    )
    return design


class TestRefineMacros:
    def test_hpwl_never_worse(self, legal_design):
        before = legal_design.hpwl()
        result = refine_macros(legal_design, legal_design.x, legal_design.y)
        assert result.hpwl_after <= before + 1e-6
        assert result.hpwl_before == pytest.approx(before)
        assert 0.0 <= result.improvement <= 1.0

    def test_swaps_preserve_site_legality(self, legal_design):
        result = refine_macros(legal_design, legal_design.x, legal_design.y)
        device = legal_design.device
        site_of = {
            ResourceType.DSP: SiteType.DSP,
            ResourceType.BRAM: SiteType.BRAM,
            ResourceType.URAM: SiteType.URAM,
        }
        for res, site in site_of.items():
            cols = set(device.columns_of_type(site).tolist())
            for inst in legal_design.instances_of(res):
                if legal_design.instances[int(inst)].movable:
                    assert int(result.x[int(inst)]) in cols

    def test_no_duplicate_sites_after_refinement(self, legal_design):
        result = refine_macros(legal_design, legal_design.x, legal_design.y)
        macros = legal_design.macro_indices()
        sites = {
            (float(result.x[m]), float(result.y[m])) for m in macros
        }
        assert len(sites) == len(macros)

    def test_cascades_untouched(self, legal_design):
        x0 = legal_design.x.copy()
        y0 = legal_design.y.copy()
        result = refine_macros(legal_design, x0, y0)
        for cascade in legal_design.cascades:
            for inst in cascade.instances:
                assert result.x[inst] == x0[inst]
                assert result.y[inst] == y0[inst]
            assert cascade.is_satisfied(result.x, result.y)

    def test_annealing_mode_never_commits_a_net_loss(self, legal_design):
        before = legal_design.hpwl()
        result = refine_macros(
            legal_design, legal_design.x, legal_design.y,
            max_passes=2, temperature=5.0, seed=1,
        )
        assert result.hpwl_after <= before + 1e-6

    def test_improves_a_deliberately_bad_macro_order(self):
        """Reverse macros within their columns: refinement must recover."""
        design = generate_design(MLCAD2023_SPECS["Design_136"], scale=1 / 256)
        rng = np.random.default_rng(3)
        x = rng.uniform(0, design.device.width, design.num_instances)
        y = rng.uniform(0, design.device.height, design.num_instances)
        legal = legalize(design, x, y)
        design.set_placement(legal.x, legal.y)
        result = refine_macros(design, legal.x, legal.y, max_passes=4)
        assert result.hpwl_after < result.hpwl_before
        assert result.moves_accepted > 0


class TestRefineCells:
    def test_never_worse_and_legal(self, legal_design):
        from repro.placement import refine_cells

        before = legal_design.hpwl()
        result = refine_cells(legal_design, legal_design.x, legal_design.y)
        assert result.hpwl_after <= before + 1e-6
        # Swaps preserve one-cluster-per-site legality.
        taken = set()
        for inst in legal_design.instances_of(ResourceType.LUT):
            instance = legal_design.instances[int(inst)]
            if not instance.movable or sum(instance.demand.values()) == 0:
                continue
            key = (float(result.x[int(inst)]), float(result.y[int(inst)]))
            assert key not in taken
            taken.add(key)

    def test_improves_shuffled_cells(self):
        from repro.placement import legalize, refine_cells

        design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
        rng = np.random.default_rng(5)
        x = rng.uniform(0, design.device.width, design.num_instances)
        y = rng.uniform(0, design.device.height, design.num_instances)
        legal = legalize(design, x, y)
        design.set_placement(legal.x, legal.y)
        result = refine_cells(design, legal.x, legal.y, max_passes=3)
        assert result.hpwl_after < result.hpwl_before
        assert result.moves_accepted > 0

    def test_fenced_cells_stay_in_region(self, legal_design):
        from repro.placement import refine_cells

        result = refine_cells(legal_design, legal_design.x, legal_design.y)
        for region in legal_design.regions:
            for inst in region.instances:
                if not legal_design.instances[inst].movable:
                    continue
                assert region.contains(
                    np.array([result.x[inst]]), np.array([result.y[inst]])
                )[0] or not legal_design.instances[inst].resource.is_macro
