"""Congestion-driven net weighting."""

import numpy as np
import pytest

from repro.placement import (
    GPConfig,
    PlacerConfig,
    apply_congestion_net_weights,
    place_design,
    reset_net_weights,
)


class TestApplyWeights:
    def test_no_hot_cells_no_change(self, fresh_tiny_design):
        d = fresh_tiny_design
        before = d.net_weights.copy()
        n = apply_congestion_net_weights(
            d, np.zeros((16, 16)), d.x, d.y
        )
        assert n == 0
        np.testing.assert_allclose(d.net_weights, before)

    def test_only_overlapping_nets_upweighted(self, fresh_tiny_design):
        d = fresh_tiny_design
        reset_net_weights(d)
        before = d.net_weights.copy()
        levels = np.zeros((16, 16))
        levels[0, 0] = 7.0  # hot corner
        n = apply_congestion_net_weights(d, levels, d.x, d.y, factor=2.0)
        changed = ~np.isclose(d.net_weights, before)
        assert changed.sum() == n
        # Nets fully away from the corner keep their weight.
        assert n < d.num_nets

    def test_cap_respected(self, fresh_tiny_design):
        d = fresh_tiny_design
        reset_net_weights(d)
        levels = np.full((16, 16), 7.0)
        for _ in range(10):
            apply_congestion_net_weights(d, levels, d.x, d.y, factor=2.0, cap=4.0)
        assert d.net_weights.max() <= 4.0 + 1e-9

    def test_factor_validation(self, fresh_tiny_design):
        d = fresh_tiny_design
        with pytest.raises(ValueError, match="factor"):
            apply_congestion_net_weights(d, np.zeros((4, 4)), d.x, d.y, factor=0.5)

    def test_reset(self, fresh_tiny_design):
        d = fresh_tiny_design
        levels = np.full((16, 16), 7.0)
        apply_congestion_net_weights(d, levels, d.x, d.y, factor=3.0)
        reset_net_weights(d)
        np.testing.assert_allclose(
            d.net_weights, [net.weight for net in d.nets]
        )

    def test_hot_box_overlap_uses_prefix_sums_correctly(self, manual_design):
        d = manual_design
        x = np.array([0.0, 2.0, 4.0, 14.0, 15.0, 8.0])
        y = np.array([0.0, 0.0, 0.0, 14.0, 15.0, 8.0])
        d.set_placement(x, y)
        levels = np.zeros((16, 16))
        levels[14, 14] = 7.0  # only the far corner is hot
        reset_net_weights(d)
        apply_congestion_net_weights(d, levels, d.x, d.y, factor=2.0)
        # net2 spans (0,0)-(14,14)... check: net 2 connects inst 0 and 4.
        assert d.net_weights[2] == pytest.approx(2.0)
        # net0 connects inst 0,1 near origin -> untouched.
        assert d.net_weights[0] == pytest.approx(1.0)


class TestFlowIntegration:
    def test_placer_flag_runs(self):
        from repro.netlist import MLCAD2023_SPECS, generate_design

        design = generate_design(MLCAD2023_SPECS["Design_120"], scale=1 / 256)
        outcome = place_design(
            design,
            config=PlacerConfig(
                gp=GPConfig(bins=16, max_iters=100),
                inflation_rounds=1,
                stage1_iters=80,
                stage2_iters=20,
                net_weighting=True,
            ),
        )
        assert outcome.legal
        assert "nets_reweighted" in outcome.inflation_stats[0]
