"""Legalization: legality of macros, cascades, regions, cells."""

import numpy as np
import pytest

from repro.arch import ResourceType, SiteType
from repro.placement import legalize, legalize_cells, legalize_macros


@pytest.fixture(scope="module")
def legalized(tiny_design):
    design = tiny_design
    result = legalize(design, design.x, design.y)
    return design, result


class TestMacroLegalization:
    def test_no_failures(self, legalized):
        _, result = legalized
        assert result.legal, result.failures

    def test_macros_on_matching_columns(self, legalized):
        design, result = legalized
        device = design.device
        site_of = {
            ResourceType.DSP: SiteType.DSP,
            ResourceType.BRAM: SiteType.BRAM,
            ResourceType.URAM: SiteType.URAM,
        }
        for res, site in site_of.items():
            cols = set(device.columns_of_type(site).tolist())
            for inst in design.instances_of(res):
                if not design.instances[inst].movable:
                    continue
                assert result.x[inst] == int(result.x[inst])
                assert int(result.x[inst]) in cols

    def test_integer_rows(self, legalized):
        design, result = legalized
        macros = design.macro_indices()
        np.testing.assert_allclose(result.y[macros] % 1.0, 0.0)

    def test_no_two_macros_same_site(self, legalized):
        design, result = legalized
        macros = design.macro_indices()
        sites = {(float(result.x[m]), float(result.y[m])) for m in macros}
        assert len(sites) == len(macros)

    def test_cascades_satisfied(self, legalized):
        design, result = legalized
        for cascade in design.cascades:
            assert cascade.is_satisfied(result.x, result.y), cascade

    def test_region_constrained_macros_inside(self, legalized):
        design, result = legalized
        for region in design.regions:
            for inst in region.instances:
                if design.instances[inst].is_macro:
                    assert region.contains(
                        np.array([result.x[inst]]), np.array([result.y[inst]])
                    )[0]

    def test_displacement_reported(self, legalized):
        _, result = legalized
        assert result.total_displacement >= 0
        assert result.max_displacement <= result.total_displacement + 1e-9


class TestCellLegalization:
    def test_cells_on_clb_columns(self, legalized):
        design, result = legalized
        device = design.device
        clb_cols = set(device.columns_of_type(SiteType.CLB).tolist())
        for inst in design.instances_of(ResourceType.LUT):
            instance = design.instances[inst]
            if not instance.movable or sum(instance.demand.values()) == 0:
                continue
            assert int(result.x[inst]) in clb_cols

    def test_one_cluster_per_site(self, legalized):
        design, result = legalized
        taken = set()
        for inst in design.instances_of(ResourceType.LUT):
            instance = design.instances[inst]
            if not instance.movable or sum(instance.demand.values()) == 0:
                continue
            key = (float(result.x[inst]), float(result.y[inst]))
            assert key not in taken
            taken.add(key)


class TestPartialAPIs:
    def test_macro_only_pass_leaves_cells(self, tiny_design):
        result = legalize_macros(tiny_design, tiny_design.x, tiny_design.y)
        assert result.legal or result.failures  # returns a result either way

    def test_cells_only_pass(self, tiny_design):
        result = legalize_cells(tiny_design, tiny_design.x, tiny_design.y)
        assert result.legal

    def test_inputs_not_mutated(self, tiny_design):
        x0 = tiny_design.x.copy()
        y0 = tiny_design.y.copy()
        legalize(tiny_design, tiny_design.x, tiny_design.y)
        np.testing.assert_allclose(tiny_design.x, x0)
        np.testing.assert_allclose(tiny_design.y, y0)


class TestFindWindowVectorized:
    """The sliding-window scan must match a reference row-by-row scan.

    ``_find_window`` was vectorized (prefix-sum window counts instead
    of a per-row Python loop) after the scaling lint flagged the nest;
    this pins exact equivalence, first-minimum tie-break included.
    """

    @staticmethod
    def _reference(occupied, length, target, lo, hi):
        best, best_cost = None, None
        for start in range(lo, hi - length + 1):
            if occupied[start:start + length].any():
                continue
            center = start + 0.5 * (length - 1)
            cost = abs(center - target)
            if best_cost is None or cost < best_cost:
                best, best_cost = start, cost
        return best

    def test_matches_reference_on_random_occupancies(self):
        from repro.placement.legalize import _find_window

        rng = np.random.default_rng(7)
        for _ in range(300):
            rows = int(rng.integers(4, 96))
            occupied = rng.random(rows) < rng.random()
            length = int(rng.integers(1, 6))
            lo = int(rng.integers(0, rows))
            hi = int(rng.integers(lo, rows + 1))
            target = float(rng.uniform(-2, rows + 2))
            got = _find_window(occupied, length, target, lo, hi)
            want = self._reference(occupied, length, target, lo, hi)
            assert got == want, (rows, length, lo, hi, target)

    def test_full_and_empty_columns(self):
        from repro.placement.legalize import _find_window

        free = np.zeros(16, dtype=bool)
        assert _find_window(free, 4, 8.0, 0, 16) == 6  # centered window
        assert _find_window(~free, 4, 8.0, 0, 16) is None
        assert _find_window(free, 5, 0.0, 0, 4) is None  # span too short
