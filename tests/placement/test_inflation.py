"""Instance inflation, Eqs. 11-13."""

import numpy as np
import pytest

from repro.placement import (
    ElectrostaticSystem,
    InflationConfig,
    inflate_all_fields,
    inflate_field,
    lookup_levels,
)


@pytest.fixture
def system(fresh_tiny_design):
    return ElectrostaticSystem(fresh_tiny_design, bins=16)


def _uniform_levels(value: float, grid: int = 16) -> np.ndarray:
    return np.full((grid, grid), value)


class TestLookupLevels:
    def test_maps_positions_to_grid(self, system):
        design = system.design
        level_map = np.zeros((16, 16))
        level_map[0, 0] = 7.0
        members = np.array([0])
        x = np.array([0.1] + [0.0] * (design.num_instances - 1))
        y = np.array([0.1] + [0.0] * (design.num_instances - 1))
        levels = lookup_levels(level_map, design, x, y, members)
        assert levels[0] == 7.0

    def test_clips_out_of_range(self, system):
        design = system.design
        level_map = np.zeros((16, 16))
        level_map[15, 15] = 5.0
        members = np.array([0])
        x = np.full(design.num_instances, 1e9)
        y = np.full(design.num_instances, 1e9)
        assert lookup_levels(level_map, design, x, y, members)[0] == 5.0


class TestEq11:
    def test_no_inflation_at_or_below_level_3(self, system):
        x, y = system.design.x, system.design.y
        base = system.fields["CLB"].areas.copy()
        stats = inflate_field(system, "CLB", _uniform_levels(3.0), x, y)
        np.testing.assert_allclose(system.fields["CLB"].areas, base)
        assert stats["inflated"] == 0

    def test_inflation_factor_formula(self, system):
        """At level Y the factor is min(max(1, Y-2)^2.5, eps)."""
        x, y = system.design.x, system.design.y
        field = system.fields["URAM"]  # tiny field -> tau likely 1
        base = field.areas.copy()
        config = InflationConfig(epsilon=100.0)
        stats = inflate_field(system, "URAM", _uniform_levels(4.0), x, y, config)
        expected_factor = (4.0 - 2.0) ** 2.5  # = 5.657
        if stats["tau"] == pytest.approx(1.0):
            np.testing.assert_allclose(field.areas, base * expected_factor)

    def test_epsilon_caps_inflation(self, system):
        x, y = system.design.x, system.design.y
        field = system.fields["URAM"]
        base = field.areas.copy()
        config = InflationConfig(epsilon=2.0)
        stats = inflate_field(system, "URAM", _uniform_levels(7.0), x, y, config)
        if stats["tau"] == pytest.approx(1.0):
            np.testing.assert_allclose(field.areas, 2.0 * base)

    def test_fractional_levels_between_3_and_4_inflate(self, system):
        x, y = system.design.x, system.design.y
        field = system.fields["URAM"]
        base = field.areas.copy()
        inflate_field(system, "URAM", _uniform_levels(3.5), x, y)
        assert np.all(field.areas > base)


class TestEq12Eq13:
    def test_tau_caps_total_area_at_capacity(self, system):
        x, y = system.design.x, system.design.y
        field = system.fields["DSP"]  # 90% utilized -> little headroom
        config = InflationConfig(epsilon=100.0)
        stats = inflate_field(system, "DSP", _uniform_levels(7.0), x, y, config)
        assert stats["tau"] < 1.0
        assert field.total_area <= field.total_capacity + 1e-6

    def test_tau_one_when_headroom(self, system):
        x, y = system.design.x, system.design.y
        stats = inflate_field(
            system, "URAM", _uniform_levels(4.0), x, y, InflationConfig()
        )
        # URAM is ~10% utilized; modest inflation fits entirely.
        assert stats["tau"] == pytest.approx(1.0)

    def test_area_added_consistent(self, system):
        x, y = system.design.x, system.design.y
        field = system.fields["CLB"]
        before = field.total_area
        stats = inflate_field(system, "CLB", _uniform_levels(5.0), x, y)
        assert field.total_area == pytest.approx(before + stats["area_added"])


class TestInflateAll:
    def test_all_fields_reported(self, system):
        x, y = system.design.x, system.design.y
        stats = inflate_all_fields(system, _uniform_levels(4.5), x, y)
        assert set(stats) == set(system.fields)
        for entry in stats.values():
            assert {"inflated", "area_added", "tau"} <= set(entry)

    def test_spatially_selective(self, system):
        """Only instances inside hot grids inflate."""
        design = system.design
        x = design.x.copy()
        y = design.y.copy()
        field = system.fields["CLB"]
        # Left half hot, right half cold; move half the members each side.
        half = len(field.members) // 2
        x[field.members[:half]] = 2.0
        x[field.members[half:]] = 14.0
        level_map = np.zeros((16, 16))
        level_map[:8, :] = 6.0
        base = field.areas.copy()
        inflate_field(system, "CLB", level_map, x, y)
        assert np.all(field.areas[:half] > base[:half])
        np.testing.assert_allclose(field.areas[half:], base[half:])
