"""Electrostatic density system: deposition, Poisson solve, overflow."""

import numpy as np
import pytest

from repro.arch import ResourceType, SiteType
from repro.placement import ElectrostaticSystem
from repro.placement.density import FIELD_GROUPS


@pytest.fixture
def system(fresh_tiny_design):
    return ElectrostaticSystem(fresh_tiny_design, bins=16)


class TestFields:
    def test_expected_fields_exist(self, system):
        assert set(system.fields) <= set(FIELD_GROUPS)
        assert "CLB" in system.fields
        assert "DSP" in system.fields

    def test_clb_area_is_max_of_lut_ff(self, system):
        design = system.design
        field = system.fields["CLB"]
        lut_col = list(ResourceType).index(ResourceType.LUT)
        ff_col = list(ResourceType).index(ResourceType.FF)
        member = field.members[0]
        expected = max(
            design.demand_matrix[member, lut_col] / 8.0,
            design.demand_matrix[member, ff_col] / 16.0,
        )
        assert field.areas[0] == pytest.approx(expected)

    def test_capacity_positive_only_on_matching_columns(self, system):
        cap = system.fields["DSP"].capacity
        device = system.design.device
        bins = system.bins
        col_width = device.num_cols / bins
        dsp_cols = set(device.columns_of_type(SiteType.DSP))
        for b in range(bins):
            covered = {
                c for c in dsp_cols
                if b * col_width - 1 < c < (b + 1) * col_width
            }
            if cap[b].sum() > 0:
                assert covered


class TestDeposition:
    def test_mass_conserved(self, system):
        x = system.design.x
        y = system.design.y
        for field in system.fields.values():
            density, *_ = system._deposit(field, x, y)
            assert density.sum() == pytest.approx(field.areas.sum())

    def test_single_point_bilinear(self, system):
        field = system.fields["DSP"]
        x = system.design.x.copy()
        y = system.design.y.copy()
        member = field.members[0]
        # Put the macro exactly at a bin center: all mass in one bin.
        x[member] = 0.5 * system.bin_w
        y[member] = 0.5 * system.bin_h
        density, *_ = system._deposit(field, x, y)
        assert density[0, 0] >= field.areas[0] - 1e-9


class TestPoisson:
    def test_uniform_density_gives_zero_field(self, system):
        rho = np.zeros((16, 16))
        phi, ex, ey = system._solve_poisson(rho)
        np.testing.assert_allclose(ex, 0.0, atol=1e-9)
        np.testing.assert_allclose(ey, 0.0, atol=1e-9)

    def test_point_charge_field_points_outward(self, system):
        rho = np.zeros((16, 16))
        rho[8, 8] = 1.0
        _, ex, ey = system._solve_poisson(rho)
        # Field to the right of the charge pushes right (+x).
        assert ex[10, 8] > 0
        assert ex[6, 8] < 0
        assert ey[8, 10] > 0
        assert ey[8, 6] < 0

    def test_energy_positive_for_clustered_charge(self, system):
        x = np.full(system.design.num_instances, 8.0)
        y = np.full(system.design.num_instances, 8.0)
        energies, fx, fy = system.energy_and_forces(x, y)
        assert energies["CLB"] > 0


class TestForcesAndOverflow:
    def test_forces_spread_a_cluster(self, system):
        """Forces on a stacked placement push instances apart."""
        n = system.design.num_instances
        x = np.full(n, 8.0)
        y = np.full(n, 8.0)
        rng = np.random.default_rng(0)
        x += rng.normal(0, 0.05, n)
        _, fx, fy = system.energy_and_forces(x, y)
        members = system.fields["CLB"].members
        right = members[x[members] > 8.0]
        left = members[x[members] < 8.0]
        # On average, instances right of center are pushed right.
        assert fx[right].mean() > 0
        assert fx[left].mean() < 0

    def test_overflow_high_when_stacked(self, system):
        n = system.design.num_instances
        overflow = system.overflow(np.full(n, 8.0), np.full(n, 8.0))
        assert overflow["CLB"] > 0.5

    def test_overflow_zero_when_spread_to_columns(self, system):
        """Macros snapped evenly to their columns have no overflow."""
        design = system.design
        x = design.x.copy()
        y = design.y.copy()
        device = design.device
        for name in ("DSP", "BRAM", "URAM"):
            field = system.fields[name]
            site = {"DSP": SiteType.DSP, "BRAM": SiteType.BRAM, "URAM": SiteType.URAM}[name]
            cols = device.columns_of_type(site)
            for i, member in enumerate(field.members):
                x[member] = cols[i % len(cols)] + 0.5
                y[member] = (i // len(cols)) % device.num_rows
        overflow = system.overflow(x, y)
        for name in ("DSP", "BRAM", "URAM"):
            assert overflow[name] == pytest.approx(0.0, abs=1e-9)

    def test_field_weights_scale_forces(self, system):
        n = system.design.num_instances
        x = np.full(n, 8.0)
        y = np.full(n, 8.0)
        _, fx1, _ = system.energy_and_forces(x, y, field_weights={"CLB": 1.0})
        _, fx2, _ = system.energy_and_forces(x, y, field_weights={"CLB": 2.0})
        members = system.fields["CLB"].members
        only_clb = np.setdiff1d(
            members, np.concatenate([f.members for n2, f in system.fields.items() if n2 != "CLB"])
        )
        np.testing.assert_allclose(fx2[only_clb], 2.0 * fx1[only_clb], atol=1e-12)


class TestAreaMutation:
    def test_set_areas_and_inflate(self, system):
        field = system.fields["CLB"]
        base = field.areas.copy()
        system.inflate("CLB", np.full(base.shape, 2.0))
        np.testing.assert_allclose(field.areas, 2 * base)
        system.set_areas("CLB", base)
        np.testing.assert_allclose(field.areas, base)

    def test_shape_mismatch_rejected(self, system):
        with pytest.raises(ValueError):
            system.inflate("CLB", np.ones(3))
        with pytest.raises(ValueError):
            system.set_areas("CLB", np.ones(3))


class TestFieldForceNorms:
    def test_norms_positive_for_clustered(self, system):
        n = system.design.num_instances
        x = np.full(n, 8.0)
        y = np.full(n, 8.0)
        norms = system.field_force_norms(x, y)
        assert set(norms) == set(system.fields)
        for value in norms.values():
            assert value > 0

    def test_norms_match_direct_force_rms(self, system):
        """field_force_norms equals the RMS of energy_and_forces output
        restricted to one field (checked via a single-field weight)."""
        design = system.design
        rng = np.random.default_rng(0)
        n = design.num_instances
        x = rng.uniform(0, 16, n)
        y = rng.uniform(0, 16, n)
        norms = system.field_force_norms(x, y)
        weights = {name: 0.0 for name in system.fields}
        weights["DSP"] = 1.0
        _, fx, fy = system.energy_and_forces(x, y, field_weights=weights)
        members = system.fields["DSP"].members
        rms = float(np.sqrt(np.mean(fx[members] ** 2 + fy[members] ** 2)))
        assert rms == pytest.approx(norms["DSP"], rel=1e-6)
