"""Analytical congestion estimators (RUDY and pin-density-aware)."""

import numpy as np

from repro.placement import PinDensityAwareEstimator, RudyEstimator


class TestRudyEstimator:
    def test_output_shape_and_range(self, tiny_design):
        estimator = RudyEstimator(grid=16)
        levels = estimator(tiny_design, tiny_design.x, tiny_design.y)
        assert levels.shape == (16, 16)
        assert levels.min() >= 0 and levels.max() <= 7
        assert levels.dtype == np.float64

    def test_gain_monotone(self, tiny_design):
        low = RudyEstimator(grid=16, gain=0.5)(
            tiny_design, tiny_design.x, tiny_design.y
        )
        high = RudyEstimator(grid=16, gain=2.0)(
            tiny_design, tiny_design.x, tiny_design.y
        )
        assert high.sum() >= low.sum()

    def test_clustered_placement_is_hotter(self, fresh_tiny_design):
        design = fresh_tiny_design
        estimator = RudyEstimator(grid=16)
        spread_rng = np.random.default_rng(0)
        n = design.num_instances
        design.set_placement(
            spread_rng.uniform(0, design.device.width, n),
            spread_rng.uniform(0, design.device.height, n),
        )
        spread_levels = estimator(design, design.x, design.y)
        design.set_placement(
            np.full(n, 0.5 * design.device.width)
            + spread_rng.normal(0, 0.8, n),
            np.full(n, 0.5 * design.device.height)
            + spread_rng.normal(0, 0.8, n),
        )
        clustered_levels = estimator(design, design.x, design.y)
        assert clustered_levels.max() >= spread_levels.max()


class TestPinDensityAwareEstimator:
    def test_output_shape(self, tiny_design):
        estimator = PinDensityAwareEstimator(grid=16)
        levels = estimator(tiny_design, tiny_design.x, tiny_design.y)
        assert levels.shape == (16, 16)
        assert levels.max() <= 7

    def test_pin_weight_adds_demand(self, tiny_design):
        plain = PinDensityAwareEstimator(grid=16, pin_weight=0.0)(
            tiny_design, tiny_design.x, tiny_design.y
        )
        weighted = PinDensityAwareEstimator(grid=16, pin_weight=1.0)(
            tiny_design, tiny_design.x, tiny_design.y
        )
        assert weighted.sum() >= plain.sum()

    def test_zero_pin_weight_matches_rudy(self, tiny_design):
        hybrid = PinDensityAwareEstimator(grid=16, gain=1.0, pin_weight=0.0)(
            tiny_design, tiny_design.x, tiny_design.y
        )
        rudy = RudyEstimator(grid=16, gain=1.0)(
            tiny_design, tiny_design.x, tiny_design.y
        )
        np.testing.assert_allclose(hybrid, rudy)


class TestSweep:
    def test_sweep_yields_varied_configs(self):
        from repro.placement import sweep_configs

        configs = list(sweep_configs(10, seed=1))
        assert len(configs) == 10
        seeds = {c.gp.seed for c in configs}
        assert len(seeds) > 5  # varied GP seeds
        rounds = {c.inflation_rounds for c in configs}
        assert rounds <= {0, 1, 2}
        assert len(rounds) >= 2

    def test_sweep_deterministic(self):
        from repro.placement import sweep_configs

        a = [c.gp.seed for c in sweep_configs(5, seed=3)]
        b = [c.gp.seed for c in sweep_configs(5, seed=3)]
        assert a == b

    def test_stage1_within_budget(self):
        from repro.placement import sweep_configs

        for config in sweep_configs(20, seed=0, gp_iters=100):
            assert 1 <= config.stage1_iters <= 100


class TestOracleEstimator:
    def test_matches_router_levels(self, placed_tiny_design):
        from repro.placement import OracleEstimator
        from repro.routing import congestion_report, route_design

        design = placed_tiny_design
        g = design.device.tile_cols
        oracle = OracleEstimator(grid=g)
        levels = oracle(design, design.x, design.y)
        report = congestion_report(route_design(design))
        # Same geometry (tile grid is square for the tiny device).
        if report.level_map.shape == (g, g):
            np.testing.assert_allclose(levels, report.level_map)

    def test_restores_placement(self, fresh_tiny_design):
        from repro.placement import OracleEstimator

        design = fresh_tiny_design
        x0 = design.x.copy()
        y0 = design.y.copy()
        probe_x = np.zeros_like(x0)
        probe_y = np.zeros_like(y0)
        OracleEstimator(grid=16)(design, probe_x, probe_y)
        np.testing.assert_allclose(design.x, x0)
        np.testing.assert_allclose(design.y, y0)

    def test_resizes_to_requested_grid(self, placed_tiny_design):
        from repro.placement import OracleEstimator

        levels = OracleEstimator(grid=8)(
            placed_tiny_design, placed_tiny_design.x, placed_tiny_design.y
        )
        assert levels.shape == (8, 8)
