"""Region tension and cascade group mapping."""

import numpy as np
import pytest

from repro.arch import CascadeShape, RegionConstraint, ResourceType
from repro.netlist import Design, Instance, Net
from repro.placement import GroupMap, RegionTension

from ..conftest import numerical_gradient


def _design_with_region(tiny_device):
    instances = [
        Instance("a", ResourceType.LUT),
        Instance("b", ResourceType.LUT),
        Instance("fixed", ResourceType.LUT, {ResourceType.LUT: 0.0}, movable=False),
    ]
    nets = [Net((0, 1))]
    regions = [RegionConstraint(2.0, 2.0, 8.0, 8.0, frozenset({0, 2}))]
    return Design("r", tiny_device, instances, nets, regions=regions)


class TestRegionTension:
    def test_fixed_instances_excluded(self, tiny_device):
        design = _design_with_region(tiny_device)
        tension = RegionTension(design)
        assert tension.num_constrained == 1

    def test_penalty_zero_inside(self, tiny_device):
        design = _design_with_region(tiny_device)
        tension = RegionTension(design)
        x = np.array([4.0, 0.0, 0.0])
        y = np.array([4.0, 0.0, 0.0])
        penalty, gx, gy = tension.penalty_and_grad(x, y)
        assert penalty == 0.0
        np.testing.assert_allclose(gx, 0.0)

    def test_penalty_quadratic_outside(self, tiny_device):
        design = _design_with_region(tiny_device)
        tension = RegionTension(design)
        x = np.array([10.0, 0.0, 0.0])  # 2 beyond xhi=8
        y = np.array([4.0, 0.0, 0.0])
        penalty, gx, gy = tension.penalty_and_grad(x, y)
        assert penalty == pytest.approx(4.0)
        assert gx[0] == pytest.approx(4.0)  # d/dx (x-8)^2 = 2*2

    def test_gradient_matches_numerical(self, tiny_device, rng):
        design = _design_with_region(tiny_device)
        tension = RegionTension(design)
        x = rng.uniform(0, 16, 3)
        y = rng.uniform(0, 16, 3)

        def f():
            return tension.penalty_and_grad(x, y)[0]

        _, gx, gy = tension.penalty_and_grad(x, y)
        np.testing.assert_allclose(numerical_gradient(f, x), gx, atol=1e-6)
        np.testing.assert_allclose(numerical_gradient(f, y), gy, atol=1e-6)

    def test_violation_count_and_clamp(self, tiny_device):
        design = _design_with_region(tiny_device)
        tension = RegionTension(design)
        x = np.array([10.0, 0.0, 0.0])
        y = np.array([4.0, 0.0, 0.0])
        assert tension.violation_count(x, y) == 1
        cx, cy = tension.clamp(x, y)
        assert tension.violation_count(cx, cy) == 0
        assert cx[1] == 0.0  # unconstrained untouched


def _design_with_cascade(tiny_device):
    instances = [
        Instance("d0", ResourceType.DSP),
        Instance("d1", ResourceType.DSP),
        Instance("d2", ResourceType.DSP),
        Instance("c", ResourceType.LUT),
        Instance("io", ResourceType.LUT, {ResourceType.LUT: 0.0}, movable=False),
    ]
    nets = [Net((0, 3)), Net((2, 3))]
    cascades = [CascadeShape((0, 1, 2))]
    design = Design("c", tiny_device, instances, nets, cascades=cascades)
    design.set_placement(
        np.array([4.0, 4.0, 4.0, 8.0, 0.0]), np.array([2.0, 3.0, 4.0, 8.0, 0.0])
    )
    return design


class TestGroupMap:
    def test_group_count(self, tiny_device):
        design = _design_with_cascade(tiny_device)
        groups = GroupMap(design)
        # 1 cascade group + 1 singleton (instance 3); IO fixed.
        assert groups.num_groups == 2

    def test_expand_applies_offsets(self, tiny_device):
        design = _design_with_cascade(tiny_device)
        groups = GroupMap(design)
        gx, gy = groups.initial_variables()
        x, y = groups.expand(gx, gy)
        # Cascade members share x and are exactly 1 site apart in y.
        assert x[0] == x[1] == x[2]
        assert y[1] - y[0] == pytest.approx(1.0)
        assert y[2] - y[1] == pytest.approx(1.0)
        # Fixed instance keeps its location.
        assert x[4] == 0.0 and y[4] == 0.0

    def test_reduce_grad_sums_members(self, tiny_device):
        design = _design_with_cascade(tiny_device)
        groups = GroupMap(design)
        grad_x = np.array([1.0, 2.0, 3.0, 10.0, 99.0])
        grad_y = np.zeros(5)
        ggx, _ = groups.reduce_grad(grad_x, grad_y)
        cascade_gid = groups.group_of[0]
        single_gid = groups.group_of[3]
        assert ggx[cascade_gid] == pytest.approx(6.0)
        assert ggx[single_gid] == pytest.approx(10.0)
        # Fixed instance gradient is dropped entirely.
        assert ggx.sum() == pytest.approx(16.0)

    def test_clamp_keeps_chain_on_device(self, tiny_device):
        design = _design_with_cascade(tiny_device)
        groups = GroupMap(design)
        gy = np.full(groups.num_groups, 100.0)
        gx = np.full(groups.num_groups, 100.0)
        gx, gy = groups.clamp_variables(gx, gy)
        x, y = groups.expand(gx, gy)
        assert y[2] <= tiny_device.height - 1.0  # top of chain inside

    def test_duplicate_cascade_membership_rejected(self, tiny_device):
        instances = [
            Instance("d0", ResourceType.DSP),
            Instance("d1", ResourceType.DSP),
            Instance("c", ResourceType.LUT),
        ]
        design = Design(
            "bad", tiny_device, instances, [Net((0, 2))],
            cascades=[CascadeShape((0, 1))],
        )
        design.cascades.append(CascadeShape((1, 0)))
        with pytest.raises(ValueError, match="multiple"):
            GroupMap(design)

    def test_expand_reduce_adjoint_property(self, tiny_device, rng):
        """reduce_grad is the exact transpose of expand (linear maps)."""
        design = _design_with_cascade(tiny_device)
        groups = GroupMap(design)
        gx = rng.normal(size=groups.num_groups)
        gy = rng.normal(size=groups.num_groups)
        vx = rng.normal(size=design.num_instances)
        vy = rng.normal(size=design.num_instances)
        x, y = groups.expand(gx, gy)
        rx, ry = groups.reduce_grad(vx, vy)
        # <expand(g), v> == <g, reduce(v)> up to the fixed-instance and
        # offset constants, which cancel in the difference of two expands.
        gx2 = gx + 1e-3 * rng.normal(size=gx.shape)
        x2, _ = groups.expand(gx2, gy)
        lhs = float(((x2 - x) * vx).sum())
        rhs = float(((gx2 - gx) * rx).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)
