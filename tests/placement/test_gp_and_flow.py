"""Global placer dynamics and the Fig. 6 flow contract."""

import numpy as np
import pytest

from repro.netlist import MLCAD2023_SPECS, generate_design
from repro.placement import (
    GlobalPlacer,
    GPConfig,
    MacroPlacer,
    PlacerConfig,
    RudyEstimator,
    place_design,
)


@pytest.fixture
def gp(fresh_tiny_design):
    return GlobalPlacer(
        fresh_tiny_design, GPConfig(bins=16, max_iters=100, seed=3)
    )


class TestGlobalPlacer:
    def test_step_returns_metrics(self, gp):
        metrics = gp.step()
        assert "wl" in metrics
        assert np.isfinite(metrics["wl"])

    def test_overflow_decreases_after_warmup(self, gp):
        """ePlace-style trajectory: collapse during WL-dominated warmup,
        then monotone spreading once the density multiplier has grown."""
        gp.run(max_iters=60)
        after_warmup = gp.overflow()["CLB"]
        gp.run(max_iters=200)
        final = gp.overflow()["CLB"]
        assert final < after_warmup

    def test_positions_inside_device(self, gp):
        gp.run(max_iters=50)
        x, y = gp.positions()
        device = gp.design.device
        assert x.min() >= 0 and x.max() <= device.width
        assert y.min() >= 0 and y.max() <= device.height

    def test_fixed_instances_never_move(self, gp):
        design = gp.design
        fixed = np.flatnonzero(~design.movable_mask)
        x0 = design.x[fixed].copy()
        gp.run(max_iters=30)
        x, y = gp.positions()
        np.testing.assert_allclose(x[fixed], x0)

    def test_cascade_members_stay_aligned_during_gp(self, gp):
        gp.run(max_iters=30)
        x, y = gp.positions()
        for cascade in gp.design.cascades:
            idx = list(cascade.instances)
            assert np.allclose(x[idx], x[idx[0]])
            np.testing.assert_allclose(np.diff(y[idx]), 1.0)

    def test_commit_writes_back(self, gp):
        gp.run(max_iters=20)
        gp.commit()
        x, y = gp.positions()
        np.testing.assert_allclose(gp.design.x, np.clip(x, 0, None), atol=1e-6)

    def test_gates_met_consistent_with_overflow(self, gp):
        overflow = gp.overflow()
        expected = overflow["CLB"] < 0.15 and all(
            overflow.get(k, 0.0) < 0.25 for k in ("DSP", "BRAM", "URAM")
        )
        assert gp.gates_met() == expected

    def test_run_respects_stop_predicate(self, gp):
        calls = []

        def stop(placer):
            calls.append(placer.state.iteration)
            return True

        gp.run(max_iters=100, stop_when=stop, check_every=5)
        assert gp.state.iteration == 5
        assert calls


class TestFig6Flow:
    @pytest.fixture(scope="class")
    def outcome(self):
        design = generate_design(MLCAD2023_SPECS["Design_197"], scale=1 / 256)
        config = PlacerConfig(
            gp=GPConfig(bins=16, max_iters=150),
            inflation_rounds=2,
            stage1_iters=150,
            stage2_iters=40,
        )
        return place_design(design, config=config), design

    def test_flow_completes_and_is_legal(self, outcome):
        result, _ = outcome
        assert result.legal, result.legalization.failures

    def test_inflation_ran_requested_rounds(self, outcome):
        result, _ = outcome
        assert len(result.inflation_stats) == 2

    def test_overflow_improves_from_stage1(self, outcome):
        result, _ = outcome
        assert result.final_overflow["CLB"] <= result.stage1_overflow["CLB"] + 0.05

    def test_placement_written_to_design(self, outcome):
        result, design = outcome
        np.testing.assert_allclose(design.x, result.x)
        np.testing.assert_allclose(design.y, result.y)

    def test_runtime_recorded(self, outcome):
        result, _ = outcome
        assert 0 < result.t_macro_minutes < 10  # paper's no-penalty regime

    def test_hpwl_positive(self, outcome):
        result, _ = outcome
        assert result.hpwl > 0

    def test_custom_estimator_used(self):
        calls = []

        def estimator(design, x, y):
            calls.append(design.name)
            return np.zeros((16, 16))

        design = generate_design(MLCAD2023_SPECS["Design_197"], scale=1 / 256)
        config = PlacerConfig(
            gp=GPConfig(bins=16, max_iters=60),
            inflation_rounds=2,
            stage1_iters=60,
            stage2_iters=10,
        )
        MacroPlacer(design, estimator=estimator, config=config).run()
        assert len(calls) == 2

    def test_default_estimator_is_rudy(self, fresh_tiny_design):
        placer = MacroPlacer(fresh_tiny_design)
        assert isinstance(placer.estimator, RudyEstimator)
