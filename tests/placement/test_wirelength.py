"""Wirelength models: HPWL exactness, WA convergence and gradients."""

import numpy as np
import pytest

from repro.placement import hpwl, wa_wirelength, wa_wirelength_grad

from ..conftest import numerical_gradient


class TestHPWL:
    def test_matches_design_method(self, tiny_design):
        assert hpwl(tiny_design, tiny_design.x, tiny_design.y) == pytest.approx(
            tiny_design.hpwl()
        )

    def test_translation_invariant(self, manual_design, rng):
        d = manual_design
        x = rng.uniform(2, 10, d.num_instances)
        y = rng.uniform(2, 10, d.num_instances)
        base = hpwl(d, x, y)
        assert hpwl(d, x + 1.0, y + 2.0) == pytest.approx(base)


class TestWAWirelength:
    def test_upper_bounds_hpwl(self, manual_design, rng):
        d = manual_design
        x = rng.uniform(0, 15, d.num_instances)
        y = rng.uniform(0, 15, d.num_instances)
        # WA is a lower bound of HPWL that tightens as gamma -> 0.
        wa = wa_wirelength(d, x, y, gamma=0.05)
        assert wa == pytest.approx(hpwl(d, x, y), rel=0.05)

    def test_converges_to_hpwl_with_small_gamma(self, manual_design, rng):
        d = manual_design
        x = rng.uniform(0, 15, d.num_instances)
        y = rng.uniform(0, 15, d.num_instances)
        errors = [
            abs(wa_wirelength(d, x, y, gamma) - hpwl(d, x, y))
            for gamma in (4.0, 1.0, 0.25)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_gradient_matches_numerical(self, manual_design, rng):
        d = manual_design
        x = rng.uniform(0, 15, d.num_instances)
        y = rng.uniform(0, 15, d.num_instances)
        gamma = 1.5
        wl, gx, gy = wa_wirelength_grad(d, x, y, gamma)
        assert wl == pytest.approx(wa_wirelength(d, x, y, gamma))

        def fx():
            return wa_wirelength(d, x, y, gamma)

        np.testing.assert_allclose(numerical_gradient(fx, x), gx, atol=1e-5)

        def fy():
            return wa_wirelength(d, x, y, gamma)

        np.testing.assert_allclose(numerical_gradient(fy, y), gy, atol=1e-5)

    def test_gradient_pulls_pins_together(self, manual_design):
        """For a 2-pin net, gradients point toward each other."""
        d = manual_design
        x = np.full(d.num_instances, 8.0)
        y = np.full(d.num_instances, 8.0)
        x[0], x[1] = 2.0, 14.0
        _, gx, _ = wa_wirelength_grad(d, x, y, gamma=1.0)
        # Moving instance 0 right decreases WL -> positive gradient sign
        # convention: grad points uphill, so grad_x[0] < 0 < grad_x[1].
        assert gx[0] < 0 < gx[1]

    def test_coincident_pins_zero_gradient(self, manual_design):
        d = manual_design
        x = np.full(d.num_instances, 5.0)
        y = np.full(d.num_instances, 5.0)
        wl, gx, gy = wa_wirelength_grad(d, x, y, gamma=1.0)
        assert wl == pytest.approx(0.0, abs=1e-9)
        np.testing.assert_allclose(gx, 0.0, atol=1e-9)

    def test_numerical_stability_large_coordinates(self, manual_design):
        d = manual_design
        x = np.linspace(0, 1e4, d.num_instances)
        y = np.linspace(0, 1e4, d.num_instances)
        wl, gx, gy = wa_wirelength_grad(d, x, y, gamma=0.01)
        assert np.all(np.isfinite([wl])) and np.all(np.isfinite(gx))


class TestLSEWirelength:
    def test_upper_bounds_hpwl(self, manual_design, rng):
        from repro.placement import lse_wirelength

        d = manual_design
        x = rng.uniform(0, 15, d.num_instances)
        y = rng.uniform(0, 15, d.num_instances)
        assert lse_wirelength(d, x, y, gamma=1.0) >= hpwl(d, x, y) - 1e-9

    def test_converges_to_hpwl(self, manual_design, rng):
        from repro.placement import lse_wirelength

        d = manual_design
        x = rng.uniform(0, 15, d.num_instances)
        y = rng.uniform(0, 15, d.num_instances)
        errors = [
            abs(lse_wirelength(d, x, y, g) - hpwl(d, x, y))
            for g in (4.0, 1.0, 0.25)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_gradient_matches_numerical(self, manual_design, rng):
        from repro.placement import lse_wirelength, lse_wirelength_grad

        d = manual_design
        x = rng.uniform(0, 15, d.num_instances)
        y = rng.uniform(0, 15, d.num_instances)
        wl, gx, gy = lse_wirelength_grad(d, x, y, 1.5)
        assert wl == pytest.approx(lse_wirelength(d, x, y, 1.5))

        def f():
            return lse_wirelength(d, x, y, 1.5)

        np.testing.assert_allclose(numerical_gradient(f, x), gx, atol=1e-5)
        np.testing.assert_allclose(numerical_gradient(f, y), gy, atol=1e-5)

    def test_gp_runs_with_lse_model(self, fresh_tiny_design):
        from repro.placement import GlobalPlacer, GPConfig

        gp = GlobalPlacer(
            fresh_tiny_design,
            GPConfig(bins=16, max_iters=30, wirelength_model="lse"),
        )
        metrics = gp.run(max_iters=30)
        assert np.isfinite(metrics["hpwl"])
