"""Model registry, baselines and the model-backed estimator."""

import numpy as np
import pytest

from repro.models import (
    MODEL_NAMES,
    MFATransformerNet,
    ModelEstimator,
    PGNNNet,
    ProsNet,
    UNet,
    build_model,
)
from repro.nn import Tensor


class TestRegistry:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_build_and_forward(self, name, rng):
        model = build_model(name, "tiny", grid=32)
        x = rng.normal(size=(1, 6, 32, 32))
        logits = model(Tensor(x))
        assert logits.shape == (1, 8, 32, 32)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("resnext")

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            build_model("unet", "huge")

    def test_preset_sizes_ordered(self):
        tiny = build_model("ours", "tiny", grid=32).num_parameters()
        fast = build_model("ours", "fast", grid=32).num_parameters()
        assert tiny < fast

    def test_expected_types(self):
        assert isinstance(build_model("unet", "tiny"), UNet)
        assert isinstance(build_model("pgnn", "tiny"), PGNNNet)
        assert isinstance(build_model("pros2", "tiny"), ProsNet)
        assert isinstance(build_model("ours", "tiny"), MFATransformerNet)

    def test_only_ours_has_transformer(self):
        """Table I note: Ours is the only hybrid CNN-transformer model."""
        for name in ("unet", "pgnn", "pros2"):
            model = build_model(name, "tiny")
            assert not any(
                type(m).__name__ == "TransformerStack" for m in model.modules()
            )
        ours = build_model("ours", "tiny")
        assert any(
            type(m).__name__ == "TransformerStack" for m in ours.modules()
        )


class TestBaselineModels:
    @pytest.mark.parametrize("cls", [UNet, PGNNNet, ProsNet])
    def test_trains_one_step(self, cls, rng):
        from repro import nn

        model = cls(base_channels=4, seed=0)
        loss_fn = nn.CrossEntropyLoss2d(8)
        opt = nn.Adam(model.parameters(), lr=1e-3)
        x = rng.normal(size=(2, 6, 16, 16))
        y = rng.integers(0, 8, size=(2, 16, 16))
        logits = model(Tensor(x))
        loss0 = loss_fn(logits, y)
        loss0.backward()
        opt.step()
        loss1 = loss_fn(model(Tensor(x)), y)
        assert loss1.item() < loss0.item()

    def test_pgnn_gnn_branch_changes_output(self, rng):
        model = PGNNNet(base_channels=4, gnn_channels=4, seed=0)
        x = rng.normal(size=(1, 6, 16, 16))
        base = model(Tensor(x)).data
        for layer in model.gnn:
            layer.w_neigh.weight.data[...] = 0.0
            layer.w_self.weight.data[...] = 0.0
            layer.w_self.bias.data[...] = 0.0
        ablated = model(Tensor(x)).data
        assert not np.allclose(base, ablated)

    def test_pgnn_aggregation_is_fixed(self):
        model = PGNNNet(base_channels=4, gnn_channels=4, seed=0)
        params = {name for name, _ in model.named_parameters()}
        assert not any("_aggregate" in p for p in params)


class TestModelEstimator:
    def test_level_map_shape_and_range(self, tiny_design):
        model = build_model("unet", "tiny")
        estimator = ModelEstimator(model, model_grid=32, out_grid=16)
        levels = estimator(tiny_design, tiny_design.x, tiny_design.y)
        assert levels.shape == (16, 16)
        assert np.all(levels >= 0) and np.all(levels <= 7)

    def test_default_out_grid_is_model_grid(self, tiny_design):
        model = build_model("unet", "tiny")
        estimator = ModelEstimator(model, model_grid=32)
        levels = estimator(tiny_design, tiny_design.x, tiny_design.y)
        assert levels.shape == (32, 32)


class TestModelEstimatorModes:
    def test_argmax_mode_integer_levels(self, tiny_design):
        model = build_model("unet", "tiny")
        estimator = ModelEstimator(model, model_grid=32, out_grid=32, mode="argmax")
        levels = estimator(tiny_design, tiny_design.x, tiny_design.y)
        np.testing.assert_allclose(levels % 1.0, 0.0)

    def test_unknown_mode_rejected(self, tiny_design):
        model = build_model("unet", "tiny")
        estimator = ModelEstimator(model, model_grid=32, mode="median")
        with pytest.raises(ValueError, match="unknown mode"):
            estimator(tiny_design, tiny_design.x, tiny_design.y)


class TestLookaheadLegalization:
    def test_lookahead_runs_and_differs(self, fresh_tiny_design):
        from repro.placement import GlobalPlacer, GPConfig

        gp = GlobalPlacer(fresh_tiny_design, GPConfig(bins=16, max_iters=60))
        gp.run(max_iters=60)
        x, y = gp.positions()
        model = build_model("unet", "tiny")
        raw = ModelEstimator(model, model_grid=32, out_grid=16)
        look = ModelEstimator(
            model, model_grid=32, out_grid=16, lookahead_legalize=True
        )
        a = raw(fresh_tiny_design, x, y)
        b = look(fresh_tiny_design, x, y)
        assert a.shape == b.shape == (16, 16)

    def test_lookahead_does_not_mutate_design(self, fresh_tiny_design):
        d = fresh_tiny_design
        x0 = d.x.copy()
        model = build_model("unet", "tiny")
        look = ModelEstimator(
            model, model_grid=32, out_grid=16, lookahead_legalize=True
        )
        look(d, d.x, d.y)
        np.testing.assert_allclose(d.x, x0)
