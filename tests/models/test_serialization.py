"""Checkpoint round-trips for every model in the zoo."""

import numpy as np
import pytest

from repro.models import MODEL_NAMES, build_model
from repro.nn import load_module, save_module


@pytest.mark.parametrize("name", MODEL_NAMES)
class TestCheckpointRoundTrip:
    def test_predictions_identical_after_reload(self, name, tmp_path, rng):
        model = build_model(name, "tiny", grid=32, seed=3)
        # Perturb from init so the test is not trivially passing.
        for _, param in model.named_parameters():
            param.data += rng.normal(0, 0.01, param.data.shape)
        x = rng.normal(size=(1, 6, 32, 32))
        expected = model.predict_proba(x)

        path = tmp_path / f"{name}.npz"
        save_module(model, path)
        fresh = build_model(name, "tiny", grid=32, seed=99)
        load_module(fresh, path)
        np.testing.assert_allclose(fresh.predict_proba(x), expected, atol=1e-12)

    def test_state_dict_complete(self, name, rng):
        model = build_model(name, "tiny", grid=32)
        state = model.state_dict()
        param_names = {n for n, _ in model.named_parameters()}
        buffer_names = {n for n, _ in model.named_buffers()}
        assert set(state) == param_names | buffer_names

    def test_mismatched_architecture_rejected(self, name, tmp_path):
        model = build_model(name, "tiny", grid=32)
        path = tmp_path / f"{name}.npz"
        save_module(model, path)
        bigger = build_model(name, "fast", grid=32)
        with pytest.raises((KeyError, ValueError)):
            load_module(bigger, path)
