"""Model building blocks: ResNetDown, UpBlock, GridGraphConv, base helpers."""

import numpy as np
import pytest

from repro.models import GridGraphConv, ResNetDown, ResidualStage, UpBlock
from repro.models.base import CongestionModel
from repro.nn import Tensor


class TestResNetDown:
    def test_halves_spatial_doubles_channels(self, rng):
        block = ResNetDown(4, 8, rng=rng)
        out = block(Tensor(rng.normal(size=(2, 4, 16, 16))))
        assert out.shape == (2, 8, 8, 8)

    def test_shortcut_carries_signal(self, rng):
        """Zeroing the main path leaves the (BN-scaled) shortcut alive."""
        block = ResNetDown(3, 6, rng=rng)
        block.conv1.weight.data[...] = 0.0
        block.conv2.weight.data[...] = 0.0
        out = block(Tensor(rng.normal(size=(1, 3, 8, 8))))
        assert float(np.abs(out.data).sum()) > 0


class TestResidualStage:
    def test_shape(self, rng):
        stage = ResidualStage(4, 8, rng=rng)
        out = stage(Tensor(rng.normal(size=(1, 4, 8, 8))))
        assert out.shape == (1, 8, 4, 4)


class TestUpBlock:
    def test_with_skip(self, rng):
        block = UpBlock(8, 4, 6, rng=rng)
        x = Tensor(rng.normal(size=(1, 8, 4, 4)))
        skip = Tensor(rng.normal(size=(1, 4, 8, 8)))
        assert block(x, skip).shape == (1, 6, 8, 8)

    def test_without_skip(self, rng):
        block = UpBlock(8, 0, 6, rng=rng)
        x = Tensor(rng.normal(size=(1, 8, 4, 4)))
        assert block(x).shape == (1, 6, 8, 8)


class TestGridGraphConv:
    def test_aggregation_is_neighbour_mean(self, rng):
        layer = GridGraphConv(1, 1, rng=rng)
        # Identity the self path, isolate the neighbour path.
        layer.w_self.weight.data[...] = 0.0
        layer.w_self.bias.data[...] = 0.0
        layer.w_neigh.weight.data[...] = 1.0
        x = np.zeros((1, 1, 5, 5))
        x[0, 0, 2, 2] = 4.0
        out = layer(Tensor(x)).data
        # Each 4-neighbour of the center receives 4 * 0.25 = 1.
        assert out[0, 0, 1, 2] == pytest.approx(1.0)
        assert out[0, 0, 2, 1] == pytest.approx(1.0)
        assert out[0, 0, 2, 2] == pytest.approx(0.0)  # not its own neighbour
        assert out[0, 0, 0, 0] == pytest.approx(0.0)

    def test_multi_channel_no_crosstalk(self, rng):
        layer = GridGraphConv(2, 2, rng=rng)
        layer.w_self.weight.data[...] = 0.0
        layer.w_self.bias.data[...] = 0.0
        # Neighbour mix = identity per channel.
        layer.w_neigh.weight.data[...] = 0.0
        layer.w_neigh.weight.data[0, 0, 0, 0] = 1.0
        layer.w_neigh.weight.data[1, 1, 0, 0] = 1.0
        x = np.zeros((1, 2, 5, 5))
        x[0, 0, 2, 2] = 4.0
        out = layer(Tensor(x)).data
        assert out[0, 0, 1, 2] == pytest.approx(1.0)
        assert out[0, 1, 1, 2] == pytest.approx(0.0)


class TestBaseHelpers:
    def test_expected_is_probability_weighted(self, rng):
        class Fixed(CongestionModel):
            def forward(self, x):
                n = x.shape[0]
                logits = np.full((n, 8, 2, 2), -100.0)
                logits[:, 3] = 0.0  # all mass on level 3
                logits[:, 5] = 0.0  # and level 5 equally
                return Tensor(logits)

        model = Fixed()
        feats = rng.normal(size=(1, 6, 2, 2))
        expected = model.predict_expected(feats)
        np.testing.assert_allclose(expected, 4.0, atol=1e-9)  # (3+5)/2
        levels = model.predict_levels(feats)
        assert set(np.unique(levels)) <= {3, 5}


class TestPresetContracts:
    def test_paper_preset_uses_12_layers(self):
        from repro.models import build_model

        model = build_model("ours", "paper", grid=32)
        assert model.transformer.num_layers == 12
        assert model.base_channels == 16

    def test_fast_preset_smaller_than_paper(self):
        from repro.models import build_model

        fast = build_model("ours", "fast", grid=32)
        paper = build_model("ours", "paper", grid=32)
        assert fast.num_parameters() < paper.num_parameters()
