"""MFA block, PAM, CAM (Fig. 3)."""

import numpy as np

from repro.models import ChannelAttention, MFABlock, PositionAttention
from repro.nn import Tensor


class TestPositionAttention:
    def test_shape_preserved(self, rng):
        pam = PositionAttention(4, rng=rng)
        out = pam(Tensor(rng.normal(size=(2, 4, 8, 8))))
        assert out.shape == (2, 4, 8, 8)

    def test_identity_at_init(self, rng):
        """alpha starts at 0, so PAM is the identity before training."""
        pam = PositionAttention(4, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 4, 4)))
        np.testing.assert_allclose(pam(x).data, x.data)

    def test_alpha_enables_mixing(self, rng):
        pam = PositionAttention(4, rng=rng)
        pam.alpha.data[...] = 1.0
        x = Tensor(rng.normal(size=(1, 4, 4, 4)))
        assert not np.allclose(pam(x).data, x.data)

    def test_token_pooling_kicks_in(self, rng):
        pam = PositionAttention(2, max_tokens=16, rng=rng)
        assert pam._pool_factor(16, 16) == 4
        assert pam._pool_factor(4, 4) == 1
        pam.alpha.data[...] = 1.0
        out = pam(Tensor(rng.normal(size=(1, 2, 16, 16))))
        assert out.shape == (1, 2, 16, 16)

    def test_gradients_flow(self, rng):
        pam = PositionAttention(4, rng=rng)
        pam.alpha.data[...] = 0.5
        x = Tensor(rng.normal(size=(1, 4, 4, 4)), requires_grad=True)
        (pam(x) ** 2).sum().backward()
        assert x.grad is not None
        assert pam.alpha.grad is not None


class TestChannelAttention:
    def test_shape_preserved(self, rng):
        cam = ChannelAttention(6)
        out = cam(Tensor(rng.normal(size=(2, 6, 5, 5))))
        assert out.shape == (2, 6, 5, 5)

    def test_identity_at_init(self, rng):
        cam = ChannelAttention(6)
        x = Tensor(rng.normal(size=(1, 6, 4, 4)))
        np.testing.assert_allclose(cam(x).data, x.data)

    def test_beta_enables_mixing(self, rng):
        cam = ChannelAttention(6)
        cam.beta.data[...] = 1.0
        x = Tensor(rng.normal(size=(1, 6, 4, 4)))
        assert not np.allclose(cam(x).data, x.data)

    def test_gradients_flow(self, rng):
        cam = ChannelAttention(4)
        cam.beta.data[...] = 0.7
        x = Tensor(rng.normal(size=(1, 4, 3, 3)), requires_grad=True)
        (cam(x) ** 2).sum().backward()
        assert x.grad is not None


class TestMFABlock:
    def test_shape_contract_fig3(self, rng):
        """Input and output shapes are identical at every scale of Fig. 5."""
        for channels, size in ((8, 16), (16, 8), (32, 4)):
            block = MFABlock(channels, rng=rng)
            x = Tensor(rng.normal(size=(1, channels, size, size)))
            assert block(x).shape == (1, channels, size, size)

    def test_channel_reduction_factor(self, rng):
        block = MFABlock(32, reduction=16, rng=rng)
        assert block.pam_reduce.conv.out_channels == 2
        block_small = MFABlock(8, reduction=16, rng=rng)
        assert block_small.pam_reduce.conv.out_channels == 1  # floor at 1

    def test_residual_wrapper(self, rng):
        """With the restore conv zeroed, the block reduces to identity."""
        block = MFABlock(4, rng=rng)
        block.restore.weight.data[...] = 0.0
        block.restore.bias.data[...] = 0.0
        x = Tensor(rng.normal(size=(1, 4, 4, 4)))
        np.testing.assert_allclose(block(x).data, x.data)

    def test_all_parameters_trainable(self, rng):
        block = MFABlock(8, rng=rng)
        x = Tensor(rng.normal(size=(2, 8, 8, 8)))
        (block(x) ** 2).sum().backward()
        grads = [p.grad is not None for _, p in block.named_parameters()]
        # alpha/beta start at zero so their branches may be dead, but the
        # main path (reduces + restore) must receive gradients.
        assert block.restore.weight.grad is not None
        assert block.pam_reduce.conv.weight.grad is not None
        assert sum(grads) >= len(grads) - 2
