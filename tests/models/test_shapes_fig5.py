"""Fig. 5 shape contract: every stated tensor dimension, asserted.

The paper gives exact shapes for each stage: encoder outputs
[C, H/2], [2C, H/4], [4C, H/8], [8C, H/16]; MFA blocks preserve their
input scale; the transformer consumes [8C, H/16, W/16] as [C_t, L]
tokens; the decoder emits [2C, H/8], [C, H/4], [C/2, H/2] and finally
8 x H x W before the softmax that yields the 1 x H x W level map.
"""

import numpy as np
import pytest

from repro.models import MFATransformerNet
from repro.nn import Tensor

H = 32  # H = W; must be divisible by 16
C = 8


@pytest.fixture(scope="module")
def model():
    return MFATransformerNet(
        in_channels=6, base_channels=C, num_transformer_layers=2,
        grid=H, seed=0,
    )


@pytest.fixture(scope="module")
def rng_module():
    return np.random.default_rng(0)


class TestEncoderShapes:
    def test_down_stack(self, model, rng_module):
        x = Tensor(rng_module.normal(size=(1, 6, H, H)))
        d1 = model.down1(x)
        d2 = model.down2(d1)
        d3 = model.down3(d2)
        d4 = model.down4(d3)
        assert d1.shape == (1, C, H // 2, H // 2)
        assert d2.shape == (1, 2 * C, H // 4, H // 4)
        assert d3.shape == (1, 4 * C, H // 8, H // 8)
        assert d4.shape == (1, 8 * C, H // 16, H // 16)

    def test_mfa_blocks_preserve_scales(self, model, rng_module):
        for mfa, ch, size in (
            (model.mfa1, C, H // 2),
            (model.mfa2, 2 * C, H // 4),
            (model.mfa3, 4 * C, H // 8),
            (model.mfa4, 8 * C, H // 16),
            (model.mfa_bottleneck, 8 * C, H // 16),
        ):
            x = Tensor(rng_module.normal(size=(1, ch, size, size)))
            assert mfa(x).shape == (1, ch, size, size)


class TestTransformerShapes:
    def test_token_geometry(self, model):
        assert model.transformer.tokens == (H // 16) ** 2
        assert model.transformer.in_channels == 8 * C

    def test_roundtrip(self, model, rng_module):
        x = Tensor(rng_module.normal(size=(2, 8 * C, H // 16, H // 16)))
        assert model.transformer(x).shape == (2, 8 * C, H // 16, H // 16)

    def test_layer_count_configurable(self):
        m = MFATransformerNet(
            base_channels=4, num_transformer_layers=5, grid=16, seed=0
        )
        assert m.transformer.num_layers == 5


class TestDecoderShapes:
    def test_up_stack(self, model, rng_module):
        z = Tensor(rng_module.normal(size=(1, 8 * C, H // 16, H // 16)))
        s3 = Tensor(rng_module.normal(size=(1, 4 * C, H // 8, H // 8)))
        s2 = Tensor(rng_module.normal(size=(1, 2 * C, H // 4, H // 4)))
        s1 = Tensor(rng_module.normal(size=(1, C, H // 2, H // 2)))
        u1 = model.up1(z, s3)
        u2 = model.up2(u1, s2)
        u3 = model.up3(u2, s1)
        u4 = model.up4(u3)
        assert u1.shape == (1, 2 * C, H // 8, H // 8)
        assert u2.shape == (1, C, H // 4, H // 4)
        assert u3.shape == (1, C // 2, H // 2, H // 2)
        assert u4.shape == (1, 8, H, H)


class TestEndToEnd:
    def test_logits_shape(self, model, rng_module):
        x = rng_module.normal(size=(2, 6, H, H))
        logits = model(Tensor(x))
        assert logits.shape == (2, 8, H, H)

    def test_level_map_is_1xHxW(self, model, rng_module):
        x = rng_module.normal(size=(1, 6, H, H))
        levels = model.predict_levels(x)
        assert levels.shape == (1, H, H)
        assert levels.min() >= 0 and levels.max() <= 7

    def test_softmax_head_distribution(self, model, rng_module):
        x = rng_module.normal(size=(1, 6, H, H))
        proba = model.predict_proba(x)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-10)

    def test_expected_levels_real_valued(self, model, rng_module):
        x = rng_module.normal(size=(1, 6, H, H))
        expected = model.predict_expected(x)
        assert expected.shape == (1, H, H)
        assert np.all(expected >= 0) and np.all(expected <= 7)

    def test_grid_must_divide_16(self):
        with pytest.raises(ValueError, match="divisible"):
            MFATransformerNet(grid=20)

    def test_paper_default_transformer_depth(self):
        """Section V-A: L = 12 transformer layers by default."""
        m = MFATransformerNet(base_channels=2, grid=16, seed=0)
        assert m.transformer.num_layers == 12
