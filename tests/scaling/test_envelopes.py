"""Envelope fitting against synthetic samplers with planted defects.

A ``FakeSampler`` answers ``sample(grid)`` from closed-form cost
formulas, so each test plants exactly one asymptotic defect — a cubic
node over budget, a non-polynomial cost, a structure break, a peak the
planner contradicts — and asserts the certifier's verdict.
"""

import hashlib

from repro.scaling.envelopes import (
    GridSample,
    Regime,
    _budget_findings,
    _densify_candidates,
    _fit_regime,
    build_regimes,
    node_budget,
)

# Stage is the second scope component (repro.ir.cost._stage_of).
NODES = (
    ("matmul", "op", "net.encoder.attn1"),  # contraction: budget 4
    ("add", "op", "net.decoder.conv1"),  # elementwise: budget 2
    ("mul", "op", "net.decoder.head"),  # elementwise: budget 2
)


class FakeSampler:
    """Closed-form costs; per-node formulas are overridable per test."""

    model = "fake"
    preset = "tiny"
    batch = 1
    seed = 0

    def __init__(self, flops=None, train_peak=None, signature=None):
        self._flops = flops or (
            lambda g: (g**4, 5 * g * g, 3 * g * g)
        )
        self._train_peak = train_peak or (lambda g: 30 * g * g)
        self._signature = signature or (lambda g: "sig")

    def sample(self, grid: int) -> GridSample:
        g = grid
        return GridSample(
            grid=g,
            signature=self._signature(g),
            nodes=NODES,
            flops=self._flops(g),
            bytes_=(8 * g * g, 4 * g * g, 4 * g * g),
            fwd_peak=12 * g * g + 7,
            train_peak=self._train_peak(g),
            grad_bytes_total=8 * g * g,
            tape_entries=10,
        )


def one_regime():
    regime = Regime(lo=16, hi=128, grids=list(range(16, 129, 16)))
    regime.finalize()
    return regime


def fit(sampler):
    findings = []
    regime = one_regime()
    doc = _fit_regime(sampler, regime, findings, sampler.model)
    return doc, findings


class TestNodeBudget:
    def test_contractions_and_attention_get_an_extra_area(self):
        assert node_budget("matmul", "encoder.conv1") == 4
        assert node_budget("softmax", "decoder.pam1.score") == 4
        assert node_budget("add", "encoder.conv1") == 2
        # "cams" the variable is not "cam" the attention module.
        assert node_budget("add", "encoder.downcast") == 2


class TestDensify:
    def test_step_aligned_and_deterministic(self):
        a = _densify_candidates([64, 96], 64, 96)
        assert a == _densify_candidates([64, 96], 64, 96) == [80]
        b = _densify_candidates([16, 128], 16, 128)
        assert all(g % 16 == 0 and 16 < g < 128 for g in b)
        assert b[0] == 64  # farthest from both anchors first


class TestFitRegime:
    def test_clean_sampler_certifies_exactly(self):
        doc, findings = fit(FakeSampler())
        assert findings == []
        assert doc["total"]["flops"]["degree"] == 4
        # Stage sums: encoder holds the quartic, decoder stays at area.
        assert doc["stages"]["encoder"]["flops"]["degree"] == 4
        assert doc["stages"]["decoder"]["flops"]["degree"] == 2
        mem = doc["memory"]
        assert mem["fwd_peak"]["degree"] == 2
        assert mem["fwd_peak"]["coeffs"] == ["7", "0", "12"]
        assert mem["fwd_peak"]["held_out"]["rel_err"] == 0.0
        assert mem["tape_entries"]["degree"] == 0
        assert mem["grad_bytes_total"]["leading"] == "8"

    def test_peak_envelope_fits_the_asymptotic_branch(self):
        # max(40000, 30 G^2): the constant buffer dominates below G=48,
        # so the envelope must certify from 48 up, not force one
        # polynomial through the argmax switch.
        sampler = FakeSampler(train_peak=lambda g: max(40000, 30 * g * g))
        doc, findings = fit(sampler)
        assert findings == []
        entry = doc["memory"]["train_peak"]
        assert entry["valid_from"] == 48
        assert entry["degree"] == 2 and entry["leading"] == "30"
        assert entry["held_out"]["rel_err"] == 0.0

    def test_planted_cubic_node_fires_701(self):
        sampler = FakeSampler(
            flops=lambda g: (g**4, 5 * g * g, g**3)  # node 2 budget is 2
        )
        doc, findings = fit(sampler)
        _budget_findings(doc, findings, sampler.model)
        hits = [f for f in findings if f["code"] == "REPRO701"]
        assert len(hits) == 1
        assert hits[0]["blocking"] is True
        assert "node 2" in hits[0]["message"]
        assert "G^3" in hits[0]["message"]
        # The stage the cubic lands in goes over its stage budget too.
        assert any(
            f["code"] == "REPRO702" and "'decoder'" in f["message"]
            for f in findings
        )

    def test_non_polynomial_cost_is_blocking_707(self):
        sampler = FakeSampler(
            flops=lambda g: (g**4, 5 * g * g, 2**g)  # exponential node
        )
        doc, findings = fit(sampler)
        hits = [f for f in findings if f["code"] == "REPRO707"]
        assert hits and all(f["blocking"] for f in hits)
        assert "no exact polynomial fit" in hits[0]["message"]
        # The unfittable node is excluded rather than mis-certified.
        assert doc["total"]["flops"]["degree"] == 4

    def test_planner_contradiction_at_held_out_fires_703(self):
        regime = one_regime()
        held = regime.held_out
        sampler = FakeSampler(
            train_peak=lambda g: 30 * g * g + (100000 if g == held else 0)
        )
        findings = []
        _fit_regime(sampler, regime, findings, sampler.model)
        hits = [f for f in findings if f["code"] == "REPRO703"]
        assert len(hits) == 1 and hits[0]["blocking"] is True
        assert "held-out grid 128" in hits[0]["message"]

    def test_within_budget_sampler_emits_only_advisory_ranking(self):
        doc, findings = fit(FakeSampler())
        _budget_findings(doc, findings, "fake")
        assert [f["code"] for f in findings] == ["REPRO710"]
        assert findings[0]["blocking"] is False
        assert "encoder (G^4)" in findings[0]["message"]


class TestBuildRegimes:
    def test_structure_change_splits_and_bisects_the_boundary(self):
        sampler = FakeSampler(
            signature=lambda g: "A" if g < 100 else "B"
        )
        regimes, findings = build_regimes(sampler, (64, 96, 128, 192))
        assert findings == []
        assert len(regimes) == 2
        left, right = regimes
        assert left.hi == 96 and right.lo == 112  # bisection tightened it
        assert left.lo == 16  # lowest regime extends to the floor
        assert left.held_out == left.grids[-1]

    def test_instability_inside_a_regime_is_708(self):
        sampler = FakeSampler(
            signature=lambda g: "C" if g == 80 else "A"
        )
        regimes, findings = build_regimes(sampler, (64, 96))
        assert [f["code"] for f in findings] == ["REPRO708"]
        assert findings[0]["blocking"] is True
        assert "grid 80" in findings[0]["message"]

    def test_fake_signature_helper_is_deterministic(self):
        # Guards the synthetic harness itself: identical grids must
        # produce identical samples or regime grouping is meaningless.
        sampler = FakeSampler()
        a, b = sampler.sample(64), sampler.sample(64)
        assert a == b
        assert hashlib.sha256(repr(a).encode()) is not None
