"""Sealed scalecheck bundle: fingerprint, baseline slice, drift."""

import json

import pytest

from repro.scaling.report import (
    MODEL_NAMES,
    SCHEMA,
    baseline_from_scaling,
    check_scaling_baseline,
    has_blocking,
    scalecheck,
)


@pytest.fixture(scope="module")
def flow_bundle():
    return scalecheck("flow")


@pytest.fixture(scope="module")
def unet_bundle():
    return scalecheck("unet", preset="tiny", measure=False)


class TestRegistrySync:
    def test_model_names_match_the_registry(self):
        # Kept in sync by this test, not an import, so the lint half of
        # scalecheck works without the model stack importable.
        from repro.models.registry import MODEL_NAMES as REGISTRY

        assert tuple(REGISTRY) == MODEL_NAMES


class TestBundle:
    def test_flow_bundle_shape(self, flow_bundle):
        b = flow_bundle
        assert b["schema"] == SCHEMA
        assert b["models"] == {}
        assert b["flow"] is not None
        assert b["failures"] == []
        assert not has_blocking(b)
        assert len(b["fingerprint"]) == 64

    def test_model_bundle_certifies_envelopes(self, unet_bundle):
        report = unet_bundle["models"]["unet"]
        assert report["regimes"], "at least one regime"
        regime = report["regimes"][-1]
        assert regime["total"]["flops"]["degree"] >= 2
        assert "fwd_peak" in regime["memory"]
        assert "train_peak" in regime["memory"]
        assert unet_bundle["flow"] is None  # model target skips the lint

    def test_fingerprint_is_stable_across_runs(self, flow_bundle):
        again = scalecheck("flow")
        assert again["fingerprint"] == flow_bundle["fingerprint"]

    def test_fingerprint_covers_only_the_deterministic_slice(self, unet_bundle):
        # Mutating a non-slice field (timing-ish metadata) must not
        # change the seal; mutating a certified exponent must.
        import copy

        from repro.scaling.report import _fingerprint

        bundle = copy.deepcopy(unet_bundle)
        bundle["models"]["unet"]["ladder"] = [1, 2, 3]
        assert _fingerprint(bundle) == unet_bundle["fingerprint"]
        regime = bundle["models"]["unet"]["regimes"][-1]
        regime["total"]["flops"]["degree"] += 1
        assert _fingerprint(bundle) != unet_bundle["fingerprint"]


class TestBaseline:
    def test_round_trip_is_clean(self, unet_bundle):
        doc = baseline_from_scaling(unet_bundle)
        assert check_scaling_baseline(unet_bundle, doc) == []

    def test_exponent_drift_is_reported(self, unet_bundle):
        doc = json.loads(json.dumps(baseline_from_scaling(unet_bundle)))
        entry = next(e for e in doc["entries"] if e["stage"] == "(total)")
        entry["flops_degree"] += 1
        problems = check_scaling_baseline(unet_bundle, doc)
        assert any("flops_degree changed" in p for p in problems)

    def test_leading_coefficient_drift_is_reported(self, unet_bundle):
        doc = json.loads(json.dumps(baseline_from_scaling(unet_bundle)))
        entry = next(e for e in doc["entries"] if e["stage"] == "(total)")
        entry["flops_leading"] = "999999"
        problems = check_scaling_baseline(unet_bundle, doc)
        assert any("flops_leading changed" in p for p in problems)

    def test_flow_in_baseline_but_model_only_run(self, flow_bundle, unet_bundle):
        doc = baseline_from_scaling(flow_bundle)
        problems = check_scaling_baseline(unet_bundle, doc)
        assert any("flow lint in baseline but not run" in p for p in problems)

    def test_flow_order_drift_is_reported(self, flow_bundle):
        doc = json.loads(json.dumps(baseline_from_scaling(flow_bundle)))
        doc["flow"]["max_order"]["placement"] += 1
        problems = check_scaling_baseline(flow_bundle, doc)
        assert any(
            "flow module 'placement' max nest order changed" in p
            for p in problems
        )
