"""Exact rational polynomial fitting: the substrate of every 7xx claim."""

from fractions import Fraction

from repro.scaling.polyfit import Poly, fit_minimal, fit_suffix, interpolate


def poly_of(*coeffs):
    return Poly(tuple(Fraction(c) for c in coeffs))


class TestPoly:
    def test_evaluation_is_exact(self):
        p = poly_of(2, 0, 3)  # 3x^2 + 2
        assert p(5) == Fraction(77)
        assert p(Fraction(1, 2)) == Fraction(11, 4)

    def test_degree_and_leading(self):
        p = poly_of(1, 2, 3)
        assert p.degree == 2
        assert p.leading == Fraction(3)

    def test_add_strips_cancelled_leading_terms(self):
        p = poly_of(0, 0, 1) + poly_of(1, 0, -1)
        assert p.degree == 0
        assert p(10) == Fraction(1)

    def test_to_json_keeps_exact_rationals_as_strings(self):
        doc = Poly((Fraction(1, 3), Fraction(2))).to_json()
        assert doc == {"degree": 1, "leading": "2", "coeffs": ["1/3", "2"]}


class TestInterpolate:
    def test_recovers_known_polynomial(self):
        target = poly_of(7, -2, 0, 5)  # 5x^3 - 2x + 7
        points = [(x, int(target(x))) for x in (1, 2, 3, 4)]
        assert interpolate(points).coeffs == target.coeffs

    def test_rational_coefficients_survive(self):
        # y = x(x-1)/2 — binomial(x, 2) — has leading coefficient 1/2.
        points = [(x, x * (x - 1) // 2) for x in (0, 1, 2)]
        p = interpolate(points)
        assert p.leading == Fraction(1, 2)
        assert p(10) == Fraction(45)


class TestFitMinimal:
    def test_finds_minimal_degree(self):
        xs = [1, 2, 3, 4, 5, 6]
        ys = [3 * x * x + 1 for x in xs]
        p = fit_minimal(xs, ys)
        assert p is not None and p.degree == 2
        assert p(100) == 30001

    def test_rejects_non_polynomial_data(self):
        xs = [1, 2, 3, 4, 5, 6, 7]
        ys = [2**x for x in xs]
        assert fit_minimal(xs, ys) is None

    def test_verification_points_are_mandatory(self):
        # Three samples of a quadratic: an exact degree-2 interpolant
        # exists, but certifying it would leave zero verification
        # points — the fit must refuse rather than pass through.
        xs, ys = [1, 2, 3], [1, 4, 9]
        assert fit_minimal(xs, ys) is None
        assert fit_minimal(xs, ys, min_verify=0).degree == 2

    def test_max_degree_caps_the_search(self):
        xs = [1, 2, 3, 4, 5, 6, 7]
        ys = [x**3 for x in xs]
        assert fit_minimal(xs, ys, max_degree=2) is None
        assert fit_minimal(xs, ys, max_degree=3).degree == 3


class TestFitSuffix:
    def test_fits_asymptotic_branch_of_a_max(self):
        # max(100, x^2): the constant branch wins until x = 10.
        xs = list(range(2, 20, 2))
        ys = [max(100, x * x) for x in xs]
        fitted = fit_suffix(xs, ys)
        assert fitted is not None
        poly, start = fitted
        assert xs[start] == 10
        assert poly.degree == 2 and poly(50) == 2500

    def test_whole_series_polynomial_starts_at_zero(self):
        xs = [1, 2, 3, 4, 5]
        ys = [7 * x for x in xs]
        poly, start = fit_suffix(xs, ys)
        assert start == 0 and poly.degree == 1

    def test_returns_none_when_no_suffix_fits(self):
        xs = [1, 2, 3, 4, 5, 6, 7, 8]
        ys = [2**x for x in xs]
        assert fit_suffix(xs, ys) is None
