"""Loop-nest lint: planted nests, hot-path scans, list abuse, noqa.

Each test writes a tiny package under ``tmp_path`` (never imported —
the lint is AST-only) planting exactly one complexity hazard or its
vectorized twin, and asserts the verdict.  The planted package is named
``repro`` when a test needs the hard-coded hot roots to resolve.
"""

from repro.scaling.nests import NEST_BUDGETS, audit_nests


def audit(tmp_path, files, package="repro"):
    root = tmp_path / package
    root.mkdir(exist_ok=True)
    (root / "__init__.py").write_text("")
    for name, source in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        init = path.parent / "__init__.py"
        if not init.exists():
            init.write_text("")
        path.write_text(source)
    return audit_nests(root=root, package=package)


def codes(findings):
    return [f["code"] for f in findings]


TRIPLE_NEST = """
def stamp(rows, cols, sites):
    total = 0.0
    for r in rows:
        for c in cols:
            for s in sites:
                total += 1.0
    return total
"""


class TestNestBudgets:
    def test_triple_nest_in_placement_fires_704(self, tmp_path):
        findings, summary = audit(tmp_path, {"placement/core.py": TRIPLE_NEST})
        assert codes(findings) == ["REPRO704"]
        f = findings[0]
        assert f["blocking"] is True
        assert "order 3" in f["message"] and "budget is 2" in f["message"]
        # Anchored at the deepest loop — the level to eliminate.
        assert f["line"] == 6
        assert summary["max_order"]["placement"] == 3

    def test_same_nest_within_routing_budget_is_clean(self, tmp_path):
        findings, summary = audit(tmp_path, {"routing/maze.py": TRIPLE_NEST})
        assert findings == []
        assert summary["max_order"]["routing"] == 3

    def test_interprocedural_nest_blames_the_caller(self, tmp_path):
        # helper is at budget (order 2); the caller's extra net loop
        # pushes the chain to 3, so the caller is the root cause.
        findings, _ = audit(tmp_path, {"placement/chain.py": """
def helper(rows, cols):
    for r in rows:
        for c in cols:
            pass

def caller(nets, rows, cols):
    for n in nets:
        helper(rows, cols)
"""})
        assert codes(findings) == ["REPRO704"]
        assert "caller" in findings[0]["function"]
        assert "caller -> helper" in findings[0]["message"]

    def test_root_cause_reported_once_not_per_caller(self, tmp_path):
        # inner is over budget by itself; outer only inherits it.
        findings, _ = audit(tmp_path, {"placement/deep.py": """
def inner(rows, cols, sites):
    for r in rows:
        for c in cols:
            for s in sites:
                pass

def outer(nets, rows, cols, sites):
    for n in nets:
        inner(rows, cols, sites)
"""})
        assert codes(findings) == ["REPRO704"]
        assert findings[0]["function"].endswith(":inner")

    def test_noqa_on_the_deepest_loop_suppresses(self, tmp_path):
        findings, _ = audit(tmp_path, {"placement/core.py": """
def stamp(rows, cols, sites):
    for r in rows:
        for c in cols:
            for s in sites:  # noqa: REPRO704
                pass
"""})
        assert findings == []

    def test_iteration_count_loops_do_not_count(self, tmp_path):
        findings, summary = audit(tmp_path, {"placement/solver.py": """
def relax(rows, max_iters):
    for it in range(max_iters):
        while rows:
            for r in rows:
                pass
"""})
        assert findings == []
        # Only the rows loop is grid-order; range(max_iters)/while are
        # documented under-approximations.
        assert summary["max_order"]["placement"] == 1

    def test_all_caps_constants_are_not_grids(self, tmp_path):
        findings, summary = audit(tmp_path, {"placement/tables.py": """
SITES = {"a": 1}

def lookup():
    out = []
    for s in sorted(SITES):
        out.append(s)
    return out
"""})
        assert findings == []
        assert summary["max_order"]["placement"] == 0


class TestHotPathScans:
    HOT_TREE = {
        "placement/nesterov.py": """
from .scanner import gather, slow_scan

class GlobalPlacer:
    def step(self, grad):
        return slow_scan(grad) + gather(grad)
""",
        "placement/scanner.py": """
import numpy as np

def slow_scan(grad: np.ndarray) -> float:
    total = 0.0
    for i in range(len(grad)):
        total += grad[i]
    return total

def gather(x: np.ndarray) -> float:
    total = 0.0
    items = [1, 2]
    for members in items:
        total += x[members]
    return total
""",
    }

    def test_scan_reachable_from_hot_root_fires_705(self, tmp_path):
        findings, summary = audit(tmp_path, dict(self.HOT_TREE))
        hits = [f for f in findings if f["code"] == "REPRO705"]
        assert [f["function"] for f in hits] == [
            "repro.placement.scanner:slow_scan"
        ]
        assert "vectorize" in hits[0]["message"]
        assert summary["hot_roots"] == ["repro.placement.nesterov:GlobalPlacer.step"]

    def test_fancy_indexing_is_not_a_scan(self, tmp_path):
        # gather() subscripts with a loop variable too, but its loop is
        # not range()/enumerate(): the variable may be an index array
        # (vectorized fancy indexing), so it must stay silent.
        findings, _ = audit(tmp_path, dict(self.HOT_TREE))
        assert not any(
            f["function"].endswith(":gather") for f in findings
        )

    def test_same_scan_outside_the_hot_closure_is_silent(self, tmp_path):
        files = {"placement/scanner.py": self.HOT_TREE["placement/scanner.py"]}
        findings, _ = audit(tmp_path, files)
        assert findings == []

    def test_noqa_suppresses_705(self, tmp_path):
        files = dict(self.HOT_TREE)
        files["placement/scanner.py"] = files["placement/scanner.py"].replace(
            "for i in range(len(grad)):",
            "for i in range(len(grad)):  # noqa: REPRO705",
        )
        findings, _ = audit(tmp_path, files)
        assert not any(f["code"] == "REPRO705" for f in findings)


class TestListAbuse:
    def test_pop_front_and_in_on_list_fire_706(self, tmp_path):
        findings, _ = audit(tmp_path, {"routing/queue.py": """
def drain(nets):
    queue = list(nets)
    seen = []
    hit = 0
    for net in nets:
        queue.pop(0)
        if net in seen:
            hit += 1
    return hit
"""})
        assert codes(findings) == ["REPRO706", "REPRO706"]
        messages = " ".join(f["message"] for f in findings)
        assert "list.pop(k)" in messages and "'in' on a list" in messages

    def test_pop_last_and_set_membership_are_clean(self, tmp_path):
        findings, _ = audit(tmp_path, {"routing/queue.py": """
def drain(nets):
    stack = list(nets)
    seen = set()
    hit = 0
    for net in nets:
        stack.pop()
        stack.pop(-1)
        if net in seen:
            hit += 1
    return hit
"""})
        assert findings == []


class TestRealTree:
    def test_flow_code_is_certified_clean(self):
        findings, summary = audit_nests()
        assert findings == []
        for module, order in summary["max_order"].items():
            assert order <= NEST_BUDGETS[module], (module, order)
        assert len(summary["hot_roots"]) == 3
