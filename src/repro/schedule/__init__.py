"""Verified execution-plan compilation over the tensor IR.

The static half of the IR-compiled execution engine (see ROADMAP):

* :mod:`repro.schedule.plan` — the ``repro.schedule/v1``
  :class:`ExecutionPlan` artifact: canonical order, fusion groups with
  legality proofs, arena buffer assignment, copy-elision certificates,
  dtype pins, content + graph fingerprints.
* :mod:`repro.schedule.compiler` — :func:`compile_plan`: turns a traced
  :class:`repro.ir.Graph` (and optionally its autograd tape) into a
  sealed plan, folding in the REPRO106/107/303/305 analyses as
  *decisions* instead of advisories.
* :mod:`repro.schedule.verify` — :func:`verify_plan`: an independent
  translation-validation pass that re-derives every safety claim from
  the graph alone and emits blocking REPRO401–408 findings.
* :mod:`repro.schedule.report` — the ``repro plancheck`` drivers and
  the ``benchmarks/schedule_baseline.json`` slice.

The compiler and verifier intentionally share no legality reasoning;
``SCHEDULE_RULES`` is the registry view of the 4xx codes.
"""

from repro.diagnostics import codes_for

from .compiler import compile_plan
from .plan import (
    SCHEMA,
    ArenaSlot,
    CopyElision,
    ExecutionPlan,
    FusionGroup,
    graph_fingerprint,
)
from .report import (
    baseline_from_plan_bundle,
    check_schedule_baseline,
    plan_model,
    plan_registry,
)
from .verify import verify_plan

__all__ = [
    "SCHEMA",
    "SCHEDULE_RULES",
    "ExecutionPlan",
    "FusionGroup",
    "ArenaSlot",
    "CopyElision",
    "graph_fingerprint",
    "compile_plan",
    "verify_plan",
    "plan_model",
    "plan_registry",
    "baseline_from_plan_bundle",
    "check_schedule_baseline",
]

SCHEDULE_RULES = codes_for("schedule")
