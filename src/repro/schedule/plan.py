"""The :class:`ExecutionPlan` artifact (schema ``repro.schedule/v1``).

A plan is the *static half* of an IR-compiled execution engine: a
deterministic, JSON-serializable description of how a traced
:class:`repro.ir.Graph` should be replayed — which nodes run (and in
what canonical order), which elementwise chains fuse into one kernel,
where every SSA value lives inside one preallocated arena, which
``copy`` nodes are elided into aliases, and the dtype every step is
pinned to.  Nothing in the plan is advisory: every claim carries enough
structure for :mod:`repro.schedule.verify` to re-derive its safety from
the graph alone and reject the plan if anything fails (REPRO401–408).

Two fingerprints tie the artifact down:

* ``graph_fingerprint`` — a SHA-256 over the canonical structure of the
  traced graph (op, inputs, shape, dtype, aliasing, attrs; *not* source
  paths, so the hash is machine-portable).  A plan replayed against a
  graph with a different fingerprint is stale (REPRO408).
* ``fingerprint`` — a SHA-256 over the canonical JSON of the plan's own
  content.  Any post-compile tampering breaks it (also REPRO408).

Serialization is canonical: ``to_json`` emits sorted keys and int-keyed
maps as decimal strings, so two independent compilations of the same
graph produce byte-identical artifacts (the determinism regression in
``tests/schedule`` pins this).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.ir.graph import Graph

__all__ = [
    "SCHEMA",
    "ExecutionPlan",
    "FusionGroup",
    "ArenaSlot",
    "CopyElision",
    "graph_fingerprint",
]

SCHEMA = "repro.schedule/v1"


def graph_fingerprint(graph: Graph) -> str:
    """Machine-portable structural hash of a traced graph.

    Covers everything the executor semantics depend on — op identity,
    operand wiring, shapes, dtypes, aliasing, structural attributes,
    node kinds and the output list — and deliberately excludes source
    paths and scopes (attribution metadata that varies across checkouts
    but never changes what the graph computes).
    """
    h = hashlib.sha256()
    for node in graph:
        h.update(
            repr(
                (
                    node.id,
                    node.op,
                    node.inputs,
                    node.shape,
                    node.dtype.str,
                    node.alias_of,
                    node.kind,
                    node.attrs,
                )
            ).encode()
        )
    h.update(repr(tuple(graph.outputs)).encode())
    return f"sha256:{h.hexdigest()}"


@dataclass(frozen=True)
class FusionGroup:
    """One fused elementwise chain with its explicit legality proof.

    ``nodes`` lists the chain members in execution order.  ``proof``
    records the properties the compiler established (single consumer
    per interior link, uniform dtype/element count, no view of an
    interior escaping the group).  The verifier does not *trust* the
    proof — it re-derives every property — but the proof makes the
    compiler's claim explicit and auditable in the artifact.
    """

    nodes: tuple[int, ...]
    ops: tuple[str, ...]
    proof: dict

    def to_dict(self) -> dict:
        return {
            "nodes": list(self.nodes),
            "ops": list(self.ops),
            "proof": dict(self.proof),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FusionGroup":
        return cls(
            nodes=tuple(int(n) for n in d["nodes"]),
            ops=tuple(d["ops"]),
            proof=dict(d["proof"]),
        )


@dataclass(frozen=True)
class ArenaSlot:
    """One SSA value's home inside the preallocated arena."""

    offset: int
    bytes: int

    def to_dict(self) -> dict:
        return {"offset": self.offset, "bytes": self.bytes}

    @classmethod
    def from_dict(cls, d: dict) -> "ArenaSlot":
        return cls(offset=int(d["offset"]), bytes=int(d["bytes"]))


@dataclass(frozen=True)
class CopyElision:
    """Certificate that one ``copy`` node may become a zero-cost alias.

    ``copy`` is the copy node, ``source`` the buffer it would have
    duplicated.  The certificate asserts the conditions under which
    aliasing is observationally equivalent to copying: the source is a
    private intermediate (never caller-visible), nothing reads it after
    the copy, and — for training plans — no backward closure retains it.
    """

    copy: int
    source: int

    def to_dict(self) -> dict:
        return {"copy": self.copy, "source": self.source}

    @classmethod
    def from_dict(cls, d: dict) -> "CopyElision":
        return cls(copy=int(d["copy"]), source=int(d["source"]))


@dataclass
class ExecutionPlan:
    """A compiled, verifiable replay recipe for one traced graph."""

    model: str
    preset: str
    grid: int
    batch: int
    direction: str  # "forward" | "training"
    graph_fingerprint: str
    dtype_pin: str  # plan-wide execution dtype (the traced default)
    node_pins: dict[int, str]  # node id -> pinned result dtype
    order: tuple[int, ...]  # canonical execution order (op nodes)
    dead: tuple[int, ...]  # op nodes excluded as dead (REPRO106)
    cse: dict[int, int]  # duplicate op node -> representative (REPRO107)
    fusion_groups: tuple[FusionGroup, ...]
    arena_slots: dict[int, ArenaSlot]  # buffer node -> arena placement
    arena_bytes: int
    bound_bytes: int  # the PR 3/4 memory-planner bound checked against
    bound_kind: str  # "plan_memory" | "plan_training_memory"
    copy_elisions: tuple[CopyElision, ...]
    tape_entries: int = 0  # training plans: tape length
    backward_order: tuple[int, ...] = ()  # reachable tape indices, reversed
    grad_slots: dict[int, ArenaSlot] = field(default_factory=dict)
    fingerprint: str = ""  # content hash; filled by seal()

    # -- serialization ---------------------------------------------------------

    def _content_dict(self) -> dict:
        """Everything except the self-hash, in canonical form."""
        return {
            "schema": SCHEMA,
            "model": self.model,
            "preset": self.preset,
            "grid": self.grid,
            "batch": self.batch,
            "direction": self.direction,
            "graph_fingerprint": self.graph_fingerprint,
            "dtype_pin": self.dtype_pin,
            "node_pins": {str(k): v for k, v in sorted(self.node_pins.items())},
            "order": list(self.order),
            "eliminated": {
                "dead": list(self.dead),
                "cse": {str(k): v for k, v in sorted(self.cse.items())},
            },
            "fusion_groups": [g.to_dict() for g in self.fusion_groups],
            "arena": {
                "bytes": self.arena_bytes,
                "bound_bytes": self.bound_bytes,
                "bound_kind": self.bound_kind,
                "slots": {
                    str(k): v.to_dict()
                    for k, v in sorted(self.arena_slots.items())
                },
            },
            "copy_elisions": [e.to_dict() for e in self.copy_elisions],
            "tape_entries": self.tape_entries,
            "backward_order": list(self.backward_order),
            "grad_slots": {
                str(k): v.to_dict() for k, v in sorted(self.grad_slots.items())
            },
        }

    def seal(self) -> "ExecutionPlan":
        """Stamp the content fingerprint; returns self for chaining."""
        payload = json.dumps(
            self._content_dict(), sort_keys=True, separators=(",", ":")
        )
        self.fingerprint = f"sha256:{hashlib.sha256(payload.encode()).hexdigest()}"
        return self

    def to_dict(self) -> dict:
        d = self._content_dict()
        d["fingerprint"] = self.fingerprint
        return d

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, d: dict) -> "ExecutionPlan":
        if d.get("schema") != SCHEMA:
            raise ValueError(
                f"not a {SCHEMA} plan (schema={d.get('schema')!r})"
            )
        arena = d["arena"]
        eliminated = d["eliminated"]
        return cls(
            model=d["model"],
            preset=d["preset"],
            grid=int(d["grid"]),
            batch=int(d["batch"]),
            direction=d["direction"],
            graph_fingerprint=d["graph_fingerprint"],
            dtype_pin=d["dtype_pin"],
            node_pins={int(k): v for k, v in d["node_pins"].items()},
            order=tuple(int(n) for n in d["order"]),
            dead=tuple(int(n) for n in eliminated["dead"]),
            cse={int(k): int(v) for k, v in eliminated["cse"].items()},
            fusion_groups=tuple(
                FusionGroup.from_dict(g) for g in d["fusion_groups"]
            ),
            arena_slots={
                int(k): ArenaSlot.from_dict(v)
                for k, v in arena["slots"].items()
            },
            arena_bytes=int(arena["bytes"]),
            bound_bytes=int(arena["bound_bytes"]),
            bound_kind=arena["bound_kind"],
            copy_elisions=tuple(
                CopyElision.from_dict(e) for e in d["copy_elisions"]
            ),
            tape_entries=int(d.get("tape_entries", 0)),
            backward_order=tuple(int(i) for i in d.get("backward_order", ())),
            grad_slots={
                int(k): ArenaSlot.from_dict(v)
                for k, v in d.get("grad_slots", {}).items()
            },
            fingerprint=d.get("fingerprint", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExecutionPlan":
        return cls.from_dict(json.loads(text))

    # -- summaries -------------------------------------------------------------

    def fused_nodes(self) -> int:
        return sum(len(g.nodes) for g in self.fusion_groups)

    def summary(self) -> dict:
        """The small stat block reports and baselines are built from."""
        return {
            "direction": self.direction,
            "planned_nodes": len(self.order),
            "dead_eliminated": len(self.dead),
            "cse_shared": len(self.cse),
            "fusion_groups": len(self.fusion_groups),
            "fused_nodes": self.fused_nodes(),
            "copy_elisions": len(self.copy_elisions),
            "arena_bytes": self.arena_bytes,
            "bound_bytes": self.bound_bytes,
            "bound_kind": self.bound_kind,
            "arena_slots": len(self.arena_slots),
            "grad_slots": len(self.grad_slots),
            "tape_entries": self.tape_entries,
            "fingerprint": self.fingerprint,
            "graph_fingerprint": self.graph_fingerprint,
        }
