"""Independent plan verifier: translation validation for ExecutionPlans.

``verify_plan`` takes a plan plus the traced graph (and tape, for
training plans) and re-derives every safety property the plan claims —
**from the graph alone**, using none of the compiler's legality
reasoning.  This module deliberately re-implements reachability, value
resolution, residency intervals, structural equality and the pointwise
op universe from scratch, so a bug in :mod:`repro.schedule.compiler`
cannot also blind the check that would have caught it (the
translation-validation argument: the pair is only as wrong as *both*
halves being wrong in the same way).

Every check emits a blocking diagnostic through the central registry:

========  ==============================================================
REPRO401  two arena slots overlap in address while both values are live
REPRO402  a fusion group crosses an aliasing or multi-consumer edge,
          mixes dtypes/sizes, or fuses away a value someone else needs
REPRO403  a copy-elision certificate is invalid: the source is an
          output, tape-retained, or read again after the copy
REPRO404  plan/graph topology mismatch — a planned node the graph does
          not justify, a reachable node the plan dropped, a misclaimed
          CSE pair, a missing/forged arena slot
REPRO405  the order is not the canonical deterministic schedule
REPRO406  the arena exceeds the memory planner's bound (or a slot
          exceeds the arena, or the recorded bound is forged)
REPRO407  a dtype pin contradicts the dtype the trace derived
REPRO408  the plan fingerprint does not match the graph or its own
          content (stale or tampered artifact)
========  ==============================================================

The verifier is intentionally *stricter in address reuse and looser in
residency* than the compiler: it uses minimal last-use lifetimes (plus
output and tape retention), so any overlap it reports is a genuine
unsafe replay, while the compiler's scope-extended intervals keep real
plans comfortably disjoint.
"""

from __future__ import annotations

import json

from repro.ir.graph import Graph
from repro.ir.passes import node_finding
from repro.ir.trace import TapeEntry
from repro.lint.rules import LintDiagnostic

from .plan import ExecutionPlan, graph_fingerprint

__all__ = ["verify_plan"]

# The verifier's own pointwise universe (independent of the compiler's
# FUSABLE_OPS and of repro.perf.fusion.ELEMENTWISE_OPS — keep it that
# way; convergence is asserted by tests, not by imports).
_POINTWISE = frozenset(
    {
        "add", "subtract", "multiply", "divide", "negative", "exp", "log",
        "sqrt", "tanh", "abs", "power", "maximum", "minimum", "where",
        "clip", "square",
    }
)


def _plan_finding(code: str, message: str) -> LintDiagnostic:
    return LintDiagnostic("<plan>", 0, 0, code, message)


def _reachable(graph: Graph) -> set[int]:
    """Ids backward-reachable from any output (verifier's own walk)."""
    seen: set[int] = set()
    frontier = list(graph.outputs)
    while frontier:
        nid = frontier.pop()
        if nid in seen:
            continue
        seen.add(nid)
        node = graph[nid]
        frontier.extend(node.inputs)
        if node.alias_of is not None:
            frontier.append(node.alias_of)
    return seen


def _storage(graph: Graph, nid: int) -> int:
    """Walk the view chain down to the node that owns the bytes."""
    node = graph[nid]
    while node.alias_of is not None:
        node = graph[node.alias_of]
    return node.id


def _struct_equal(graph: Graph, a: int, b: int, memo: dict) -> bool:
    """Value equality by recursive structure (the CSE claim checker).

    Distinct from the compiler's hash-interning: this compares the two
    claimed nodes directly, so an interning collision in the compiler
    would be caught here.
    """
    if a == b:
        return True
    key = (a, b) if a < b else (b, a)
    if key in memo:
        return memo[key]
    na, nb = graph[a], graph[b]
    if na.kind != "op" or nb.kind != "op":
        return memo.setdefault(key, False)
    if (
        na.op != nb.op
        or na.attrs != nb.attrs
        or na.dtype != nb.dtype
        or na.shape != nb.shape
        or len(na.inputs) != len(nb.inputs)
    ):
        return memo.setdefault(key, False)
    memo[key] = True  # cycle guard (SSA graphs are acyclic, but cheap)
    ok = all(
        _struct_equal(graph, ia, ib, memo)
        for ia, ib in zip(na.inputs, nb.inputs)
    )
    memo[key] = ok
    return ok


def verify_plan(
    plan: ExecutionPlan,
    graph: Graph,
    tape: list[TapeEntry] | None = None,
) -> list[LintDiagnostic]:
    """Re-derive every safety claim in ``plan``; return blocking findings."""
    findings: list[LintDiagnostic] = []
    n = len(graph)
    t = len(tape) if tape else 0
    end = n + t

    # ---- REPRO408: fingerprints ---------------------------------------------
    actual_fp = graph_fingerprint(graph)
    if plan.graph_fingerprint != actual_fp:
        findings.append(
            _plan_finding(
                "REPRO408",
                f"plan was compiled against graph {plan.graph_fingerprint[:19]}… "
                f"but this graph hashes to {actual_fp[:19]}…",
            )
        )
    payload = json.dumps(
        plan._content_dict(), sort_keys=True, separators=(",", ":")
    )
    import hashlib

    content_fp = f"sha256:{hashlib.sha256(payload.encode()).hexdigest()}"
    if plan.fingerprint != content_fp:
        findings.append(
            _plan_finding(
                "REPRO408",
                "plan content does not hash to its recorded fingerprint "
                "(tampered or never sealed)",
            )
        )

    # ---- REPRO405: canonical deterministic ordering -------------------------
    if any(b <= a for a, b in zip(plan.order, plan.order[1:])):
        findings.append(
            _plan_finding(
                "REPRO405",
                "order is not strictly ascending: the canonical schedule "
                "is SSA id order, anything else is nondeterministic",
            )
        )
    if any(
        b >= a for a, b in zip(plan.backward_order, plan.backward_order[1:])
    ):
        findings.append(
            _plan_finding(
                "REPRO405",
                "backward_order is not strictly descending tape index order",
            )
        )

    # ---- REPRO404: topology -------------------------------------------------
    def valid_op(nid: int) -> bool:
        return 0 <= nid < n and graph[nid].kind == "op"

    reachable = _reachable(graph)
    order_set = set(plan.order)
    elided = {e.copy: e.source for e in plan.copy_elisions}

    for nid in plan.order:
        if not valid_op(nid):
            findings.append(
                _plan_finding("REPRO404", f"order lists %{nid}, not an op node")
            )
        elif nid not in reachable:
            findings.append(
                node_finding(
                    graph[nid], "REPRO404",
                    "planned node is dead (unreachable from every output)",
                )
            )
    for nid in plan.dead:
        if not valid_op(nid):
            findings.append(
                _plan_finding("REPRO404", f"dead lists %{nid}, not an op node")
            )
        elif nid in reachable:
            findings.append(
                node_finding(
                    graph[nid], "REPRO404",
                    "node marked dead but an output depends on it",
                )
            )
    memo: dict = {}
    for dup, rep in plan.cse.items():
        if not valid_op(dup) or not valid_op(rep) or rep not in order_set:
            findings.append(
                _plan_finding(
                    "REPRO404",
                    f"cse maps %{dup} -> %{rep} but the representative is "
                    "not a planned op node",
                )
            )
            continue
        if not _struct_equal(graph, dup, rep, memo):
            findings.append(
                node_finding(
                    graph[dup], "REPRO404",
                    f"cse claims %{dup} duplicates %{rep} but the two are "
                    "not structurally equal",
                )
            )
    claimed = order_set | set(plan.dead) | set(plan.cse)
    for node in graph:
        if node.kind == "op" and node.id not in claimed:
            findings.append(
                node_finding(
                    graph[node.id], "REPRO404",
                    "op node missing from the plan (not ordered, dead or "
                    "CSE-mapped)",
                )
            )

    def resolve(nid: int) -> int:
        """Storage a read of ``nid`` lands on under this plan's claims."""
        buf = _storage(graph, nid)
        buf = plan.cse.get(buf, buf)
        buf = _storage(graph, buf)
        return elided.get(buf, buf)

    for nid in plan.order:
        if not valid_op(nid):
            continue
        for input_id in graph[nid].inputs:
            mapped = plan.cse.get(input_id, input_id)
            node = graph[mapped] if 0 <= mapped < n else None
            if node is not None and node.kind == "op" and (
                mapped not in order_set or mapped >= nid
            ):
                findings.append(
                    node_finding(
                        graph[nid], "REPRO404",
                        f"consumes %{input_id} which the plan never "
                        "computes beforehand",
                    )
                )

    # Arena slot inventory: exactly one slot per planned materialized
    # value that is not an elided copy; sizes must match the node.
    for nid in plan.order:
        if not valid_op(nid):
            continue
        node = graph[nid]
        has_slot = nid in plan.arena_slots
        if node.bytes > 0 and nid not in elided and not has_slot:
            findings.append(
                node_finding(
                    node, "REPRO404",
                    "materialized value has no arena slot",
                )
            )
        if (node.bytes == 0 or nid in elided) and has_slot:
            findings.append(
                node_finding(
                    node, "REPRO404",
                    "arena slot assigned to a value that owns no bytes "
                    "under this plan",
                )
            )
    for nid, slot in plan.arena_slots.items():
        if nid not in order_set:
            findings.append(
                _plan_finding(
                    "REPRO404", f"arena slot for unplanned node %{nid}"
                )
            )
        elif slot.bytes != graph[nid].bytes:
            findings.append(
                node_finding(
                    graph[nid], "REPRO404",
                    f"arena slot is {slot.bytes} bytes but the value needs "
                    f"{graph[nid].bytes}",
                )
            )

    # Training topology: backward order and gradient slots must match
    # the tape's own reachable-closure structure.
    grad_begin: dict[int, int] = {}
    reachable_entries: set[int] = set()
    if not tape and (
        plan.grad_slots or plan.backward_order or plan.tape_entries
    ):
        findings.append(
            _plan_finding(
                "REPRO404",
                "forward plan carries training artifacts (grad slots, "
                "backward order or tape entries)",
            )
        )
    if tape:
        by_out = {entry.out: entry for entry in tape}
        frontier = [by_out[o] for o in graph.outputs if o in by_out]
        while frontier:
            entry = frontier.pop()
            if entry.index in reachable_entries:
                continue
            reachable_entries.add(entry.index)
            for pid, req in zip(entry.parents, entry.parent_requires_grad):
                if req and pid in by_out:
                    frontier.append(by_out[pid])
        if plan.tape_entries != t:
            findings.append(
                _plan_finding(
                    "REPRO404",
                    f"plan records {plan.tape_entries} tape entries, "
                    f"tape has {t}",
                )
            )
        expected_backward = tuple(
            entry.index
            for entry in reversed(tape)
            if entry.index in reachable_entries
        )
        if plan.backward_order != expected_backward:
            findings.append(
                _plan_finding(
                    "REPRO404",
                    "backward_order does not match the tape's reachable "
                    "closures",
                )
            )
        grad_begin = {o: n for o in graph.outputs}
        for entry in tape:
            if entry.index not in reachable_entries:
                continue
            pos = n + (t - 1 - entry.index)
            for pid, req in zip(entry.parents, entry.parent_requires_grad):
                if req and pid is not None:
                    grad_begin[pid] = min(grad_begin.get(pid, end), pos)
        if set(plan.grad_slots) != set(grad_begin):
            findings.append(
                _plan_finding(
                    "REPRO404",
                    "grad_slots do not cover exactly the values the tape "
                    "accumulates gradients for",
                )
            )

    # ---- REPRO403: copy-elision certificates --------------------------------
    for cert in plan.copy_elisions:
        if not valid_op(cert.copy) or cert.copy not in order_set:
            findings.append(
                _plan_finding(
                    "REPRO403",
                    f"elision for %{cert.copy}, which the plan never runs",
                )
            )
            continue
        copy_node = graph[cert.copy]
        problems = []
        if copy_node.op != "copy":
            problems.append(f"op is {copy_node.op!r}, only `copy` may alias")
        src_ok = valid_op(cert.source)
        if src_ok:
            src = graph[cert.source]
            read = _storage(graph, copy_node.inputs[0]) if copy_node.inputs else -1
            read = plan.cse.get(read, read)
            if read != cert.source:
                problems.append(
                    f"copy actually reads %{read}, not the claimed source"
                )
            if src.kind != "op" or src.bytes <= 0:
                problems.append("source is not a materialized op value")
            if src.dtype != copy_node.dtype or src.size != copy_node.size:
                problems.append("source and copy differ in dtype or size")
            if cert.source not in plan.arena_slots:
                problems.append("source owns no arena slot to alias")
            if any(resolve(o) == cert.source for o in graph.outputs):
                problems.append("source is a graph output")
            later = [
                nid
                for nid in plan.order
                if nid > cert.copy and valid_op(nid) and any(
                    plan.cse.get(_storage(graph, i), _storage(graph, i))
                    == cert.source
                    for i in graph[nid].inputs
                )
            ]
            if later:
                problems.append(
                    f"source is read again at %{later[0]} after the copy"
                )
            if tape:
                for entry in tape:
                    held = [entry.out, *entry.parents, *entry.captured]
                    if any(
                        h is not None
                        and plan.cse.get(_storage(graph, h), _storage(graph, h))
                        == cert.source
                        for h in held
                    ):
                        problems.append(
                            f"source is retained by tape entry {entry.index}"
                        )
                        break
        else:
            problems.append("claimed source is not an op node")
        for problem in problems:
            findings.append(
                node_finding(
                    copy_node, "REPRO403", f"invalid elision: {problem}"
                )
            )

    # ---- REPRO402: fusion legality ------------------------------------------
    direct_readers: dict[int, list[int]] = {}
    for nid in plan.order:
        if not valid_op(nid):
            continue
        for input_id in graph[nid].inputs:
            mapped = plan.cse.get(input_id, input_id)
            direct_readers.setdefault(mapped, []).append(nid)
    output_storage = {resolve(o) for o in graph.outputs}
    tape_held: set[int] = set()
    if tape:
        for entry in tape:
            for h in (entry.out, *entry.parents, *entry.captured):
                if h is not None:
                    tape_held.add(plan.cse.get(_storage(graph, h), _storage(graph, h)))

    for group in plan.fusion_groups:
        chain = group.nodes
        problems = []
        if len(chain) < 2:
            problems.append("group has fewer than two nodes")
        if any(b <= a for a, b in zip(chain, chain[1:])):
            problems.append("members are not in ascending SSA order")
        bad = [nid for nid in chain if not valid_op(nid) or nid not in order_set]
        if bad:
            problems.append(f"member %{bad[0]} is not a planned op node")
        else:
            head = graph[chain[0]]
            for nid in chain:
                node = graph[nid]
                if node.op not in _POINTWISE or node.bytes <= 0:
                    problems.append(
                        f"%{nid} ({node.op}) is not a materialized "
                        "pointwise op"
                    )
                if node.dtype != head.dtype or node.size != head.size:
                    problems.append(
                        f"%{nid} breaks dtype/size uniformity"
                    )
            for prev, nxt in zip(chain, chain[1:]):
                readers = direct_readers.get(prev, [])
                if readers != [nxt]:
                    problems.append(
                        f"%{prev} is not consumed exactly once by %{nxt} "
                        f"(readers: {sorted(set(readers))})"
                    )
            for nid in chain[:-1]:  # interiors become kernel temporaries
                if any(node.alias_of == nid for node in graph):
                    problems.append(
                        f"a view escapes fused interior %{nid}"
                    )
                if nid in output_storage:
                    problems.append(
                        f"fused interior %{nid} is a graph output"
                    )
                if nid in tape_held:
                    problems.append(
                        f"fused interior %{nid} is retained by the tape"
                    )
                if nid in elided or nid in set(elided.values()):
                    problems.append(
                        f"fused interior %{nid} participates in a copy "
                        "elision"
                    )
        anchor = (
            graph[chain[0]]
            if chain and valid_op(chain[0])
            else None
        )
        for problem in problems:
            findings.append(
                node_finding(anchor, "REPRO402", f"illegal fusion: {problem}")
                if anchor is not None
                else _plan_finding("REPRO402", f"illegal fusion: {problem}")
            )

    # ---- REPRO407: dtype pins -----------------------------------------------
    traced_default = graph.meta.get("dtype", "")
    if plan.dtype_pin != traced_default:
        findings.append(
            _plan_finding(
                "REPRO407",
                f"plan pins dtype {plan.dtype_pin!r} but the trace ran at "
                f"{traced_default!r}",
            )
        )
    for nid in plan.order:
        if not valid_op(nid):
            continue
        pin = plan.node_pins.get(nid)
        actual = graph[nid].dtype.name
        if pin != actual:
            findings.append(
                node_finding(
                    graph[nid], "REPRO407",
                    f"pinned to {pin!r} but the lattice derives {actual!r}",
                )
            )
    for nid in plan.node_pins:
        if nid not in order_set:
            findings.append(
                _plan_finding(
                    "REPRO407", f"dtype pin for unplanned node %{nid}"
                )
            )

    # ---- residency intervals (minimal last-use lifetimes) -------------------
    begin: dict[int, int] = {}
    finish: dict[int, int] = {}
    for nid, slot in plan.arena_slots.items():
        if nid not in order_set or not valid_op(nid):
            continue
        begin[nid] = nid
        finish[nid] = nid
    for nid in plan.order:
        if not valid_op(nid):
            continue
        for input_id in graph[nid].inputs:
            buf = resolve(input_id)
            if buf in finish:
                finish[buf] = max(finish[buf], nid)
    for out in graph.outputs:
        buf = resolve(out)
        if buf in finish:
            finish[buf] = end
    if tape:
        for entry in tape:
            out_buf = resolve(entry.out)
            if out_buf in finish:
                finish[out_buf] = end
            if entry.index in reachable_entries:
                pos = n + (t - 1 - entry.index)
                for h in (*entry.parents, *entry.captured):
                    if h is None:
                        continue
                    buf = resolve(h)
                    if buf in finish:
                        finish[buf] = max(finish[buf], pos)

    # ---- REPRO406: arena vs planner bound -----------------------------------
    expected_bound = None
    if tape is None and plan.direction == "forward":
        from repro.ir.memory import plan_memory

        if plan.bound_kind != "plan_memory":
            findings.append(
                _plan_finding(
                    "REPRO406",
                    f"forward plan bounded by {plan.bound_kind!r}",
                )
            )
        else:
            expected_bound = int(plan_memory(graph)["peak_bytes"])
    elif tape is not None and plan.direction == "training":
        from repro.adjoint.memory import plan_training_memory

        if plan.bound_kind != "plan_training_memory":
            findings.append(
                _plan_finding(
                    "REPRO406",
                    f"training plan bounded by {plan.bound_kind!r}",
                )
            )
        else:
            expected_bound = int(
                plan_training_memory(graph, tape)["train_peak_bytes"]
            )
    else:
        findings.append(
            _plan_finding(
                "REPRO404",
                f"plan direction {plan.direction!r} does not match the "
                f"artifacts supplied (tape={'yes' if tape else 'no'})",
            )
        )
    if expected_bound is not None and plan.bound_bytes != expected_bound:
        findings.append(
            _plan_finding(
                "REPRO406",
                f"recorded planner bound {plan.bound_bytes} != "
                f"re-derived {expected_bound}",
            )
        )
    if plan.arena_bytes > plan.bound_bytes:
        findings.append(
            _plan_finding(
                "REPRO406",
                f"arena needs {plan.arena_bytes} bytes, exceeding the "
                f"{plan.bound_kind} bound of {plan.bound_bytes}",
            )
        )
    all_slots: list[tuple[str, int, int, int, int, int]] = []
    for nid, slot in plan.arena_slots.items():
        if nid in begin:
            all_slots.append(
                (f"%{nid}", nid, slot.offset, slot.bytes,
                 begin[nid], finish[nid])
            )
    for pid, slot in plan.grad_slots.items():
        at = grad_begin.get(pid, n)
        all_slots.append((f"grad(%{pid})", pid, slot.offset, slot.bytes, at, end))
    for label, _, offset, nbytes, _, _ in all_slots:
        if offset < 0 or offset + nbytes > plan.arena_bytes:
            findings.append(
                _plan_finding(
                    "REPRO406",
                    f"slot {label} [{offset}, {offset + nbytes}) lies "
                    f"outside the {plan.arena_bytes}-byte arena",
                )
            )

    # ---- REPRO401: address overlap between live values ----------------------
    by_offset = sorted(all_slots, key=lambda s: (s[2], s[1]))
    for i, (la, _, off_a, sz_a, b_a, e_a) in enumerate(by_offset):
        for lb, _, off_b, sz_b, b_b, e_b in by_offset[i + 1:]:
            if off_b >= off_a + sz_a:
                break  # sorted by offset: nothing further can overlap a
            if e_a < b_b or e_b < b_a:
                continue  # address shared, lifetimes disjoint: legal reuse
            findings.append(
                _plan_finding(
                    "REPRO401",
                    f"{la} and {lb} share arena bytes "
                    f"[{off_b}, {min(off_a + sz_a, off_b + sz_b)}) while "
                    f"both are live ({la}: [{b_a}, {e_a}], {lb}: "
                    f"[{b_b}, {e_b}])",
                )
            )
    return findings
