"""``repro plancheck`` drivers: compile + verify plans, report, baseline.

One report per registry model per grid: the forward plan (and, with
``backward=True``, the training plan over the autograd tape), each
compiled by :func:`repro.schedule.compiler.compile_plan` and immediately
re-checked by the independent :func:`repro.schedule.verify.verify_plan`.
Any REPRO401–408 finding is a *failure* — a verified-plan contract
violation, not an advisory.

The baseline slice (``benchmarks/schedule_baseline.json``) pins the
deterministic skeleton of every plan — node/fusion/elision counts,
arena and bound bytes, and the full plan fingerprint — so CI catches
both semantic drift (a pass got more or less aggressive) and
nondeterminism (same graph, different artifact) in one exact diff.
"""

from __future__ import annotations

from repro.diagnostics import is_blocking
from repro.ir.report import serialize_finding

from .compiler import compile_plan
from .plan import SCHEMA, ExecutionPlan
from .verify import verify_plan

__all__ = [
    "SCHEMA",
    "plan_model",
    "plan_registry",
    "baseline_from_plan_bundle",
    "check_schedule_baseline",
]


def _traced(model_name: str, *, preset: str, grid: int, batch: int,
            backward: bool):
    """Trace once; return (graph, tape-or-None) with plan metadata set."""
    from repro.models.registry import build_model

    model = build_model(model_name, preset=preset, grid=grid)
    shape = (batch, 6, grid, grid)
    if backward:
        from repro.ir.trace import trace_tape

        graph, tape = trace_tape(
            model, shape, input_vrange=(0.0, 1.0), name=model_name
        )
    else:
        from repro.ir.trace import trace

        graph = trace(
            model, shape, input_vrange=(0.0, 1.0), name=model_name
        )
        tape = None
    graph.meta.update({"preset": preset, "grid": grid, "batch": batch})
    return graph, tape


def _section(plan: ExecutionPlan, findings) -> dict:
    return {
        "summary": plan.summary(),
        "plan": plan.to_dict(),
        "findings": [serialize_finding(f) for f in findings],
    }


def plan_model(
    model_name: str,
    *,
    preset: str = "fast",
    grid: int = 64,
    batch: int = 1,
    backward: bool = False,
) -> dict:
    """Compile + verify plan(s) for one registry model (JSON-ready)."""
    graph, tape = _traced(
        model_name, preset=preset, grid=grid, batch=batch, backward=backward
    )
    forward_plan = compile_plan(graph)
    all_findings = list(verify_plan(forward_plan, graph))
    report = {
        "schema": SCHEMA,
        "model": model_name,
        "preset": preset,
        "grid": grid,
        "batch": batch,
        "forward": _section(forward_plan, all_findings),
    }
    if tape is not None:
        training_plan = compile_plan(graph, tape)
        training_findings = verify_plan(training_plan, graph, tape)
        report["training"] = _section(training_plan, training_findings)
        all_findings.extend(training_findings)
    report["failures"] = [
        str(f) for f in all_findings if is_blocking(f.code)
    ]
    return report


def plan_registry(
    models=None,
    *,
    preset: str = "fast",
    grids=(64,),
    batch: int = 1,
    backward: bool = False,
) -> dict:
    """Plan every requested model at every grid; one combined bundle."""
    from repro.models.registry import MODEL_NAMES

    reports = [
        plan_model(
            name, preset=preset, grid=grid, batch=batch, backward=backward
        )
        for name in (models or MODEL_NAMES)
        for grid in grids
    ]
    codes = sorted(
        {
            f["code"]
            for r in reports
            for section in ("forward", "training")
            if section in r
            for f in r[section]["findings"]
        }
    )
    return {
        "schema": SCHEMA,
        "reports": reports,
        "distinct_codes": codes,
        "failures": [f for r in reports for f in r["failures"]],
    }


def baseline_from_plan_bundle(bundle: dict) -> dict:
    """Reduce a plancheck bundle to the invariant slice CI pins.

    Everything recorded is deterministic by construction: counts, byte
    totals, and the sealed plan fingerprints.  A fingerprint change with
    unchanged counts is exactly the nondeterminism/semantic-drift signal
    this baseline exists to catch.
    """
    entries = []
    for report in bundle["reports"]:
        fwd = report["forward"]["summary"]
        entry = {
            "model": report["model"],
            "preset": report["preset"],
            "grid": report["grid"],
            "planned_nodes": fwd["planned_nodes"],
            "dead_eliminated": fwd["dead_eliminated"],
            "cse_shared": fwd["cse_shared"],
            "fusion_groups": fwd["fusion_groups"],
            "fused_nodes": fwd["fused_nodes"],
            "copy_elisions": fwd["copy_elisions"],
            "arena_bytes": fwd["arena_bytes"],
            "bound_bytes": fwd["bound_bytes"],
            "plan_fingerprint": fwd["fingerprint"],
        }
        if "training" in report:
            train = report["training"]["summary"]
            entry.update(
                {
                    "tape_entries": train["tape_entries"],
                    "grad_slots": train["grad_slots"],
                    "train_copy_elisions": train["copy_elisions"],
                    "train_arena_bytes": train["arena_bytes"],
                    "train_bound_bytes": train["bound_bytes"],
                    "train_plan_fingerprint": train["fingerprint"],
                }
            )
        entries.append(entry)
    return {"schema": SCHEMA, "entries": entries}


def check_schedule_baseline(bundle: dict, baseline: dict) -> list[str]:
    """Exact-match diff of the plan slice; returns mismatch messages."""
    from repro.baselines import diff_entries

    return diff_entries(
        baseline.get("entries", []),
        baseline_from_plan_bundle(bundle)["entries"],
        verb="planned",
        missing_field_hint="re-run with --backward?",
    )
