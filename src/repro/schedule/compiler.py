"""The plan compiler: traced graph (+ optional tape) -> :class:`ExecutionPlan`.

``compile_plan`` cashes in the analysis stack built by PRs 3–5.  The
advisory passes (REPRO106/107 dead/CSE, REPRO303 redundant copies,
REPRO305 fusion chains) describe *opportunities*; this module turns the
same reasoning into *decisions* recorded in a serializable artifact:

1. **Dead elimination** — op nodes unreachable from any output are
   excluded from the execution order entirely.
2. **CSE sharing** — structurally identical materialized subgraphs are
   computed once: every duplicate maps to its representative and the
   two share one arena slot (the representative's).
3. **Fusion groups** — maximal single-consumer elementwise chains, each
   with an explicit legality proof (single consumer per interior link,
   uniform dtype and element count, no view of an interior escaping).
4. **Arena coloring** — every materialized SSA value gets an offset in
   one preallocated arena, assigned by address-ordered best-fit over
   scope-extended liveness intervals (the same lifetime rules the PR 3/4
   planners use, so the arena is comparable to — and checked against —
   their peak-memory bound).
5. **Copy elision** — ``copy`` nodes whose source is a private
   intermediate with no later reader become zero-cost aliases, each
   carrying a :class:`~repro.schedule.plan.CopyElision` certificate.
6. **Dtype pinning** — every planned node is pinned to the dtype the
   trace derived, and the whole plan to the traced default dtype.

With a ``tape`` (from :func:`repro.ir.trace.trace_tape`) the plan covers
a full training step: liveness honours tape retention (every tape output
survives to the end of the backward walk; closure captures survive until
their closure runs; dead-branch captures leak to the end, exactly as the
runtime behaves), gradient buffers join the arena, and the arena is
checked against ``plan_training_memory`` instead of ``plan_memory``.

The compiler is deliberately *not* trusted: :mod:`repro.schedule.verify`
re-derives every safety property above from the graph alone, with no
shared legality code, and rejects the plan (REPRO401–408) if anything
here is wrong.
"""

from __future__ import annotations

from repro.ir.graph import Graph
from repro.ir.memory import plan_memory
from repro.ir.trace import TapeEntry

from .plan import ArenaSlot, CopyElision, ExecutionPlan, FusionGroup, graph_fingerprint

__all__ = ["compile_plan", "FUSABLE_OPS"]

# Materialized elementwise primitives a fused kernel can chain.  This is
# the same op universe the REPRO305 advisory prices; the verifier keeps
# its own independent copy (repro.schedule.verify._POINTWISE).
FUSABLE_OPS = frozenset(
    {
        "add", "subtract", "multiply", "divide", "negative", "exp", "log",
        "sqrt", "tanh", "abs", "power", "maximum", "minimum", "where",
        "clip", "square",
    }
)

_END = "end"  # symbolic "after the last timeline position"


def _reachable_ops(graph: Graph) -> set[int]:
    """Op nodes from which some graph output is reachable (backwards)."""
    seen: set[int] = set()
    stack = list(graph.outputs) + [graph.buffer_of(o) for o in graph.outputs]
    while stack:
        nid = stack.pop()
        if nid in seen:
            continue
        seen.add(nid)
        node = graph[nid]
        stack.extend(node.inputs)
        if node.alias_of is not None:
            stack.append(node.alias_of)
    return {nid for nid in seen if graph[nid].kind == "op"}


def _intern_cse(graph: Graph, reachable: set[int]) -> dict[int, int]:
    """Map each duplicate materialized op node to its representative.

    Structural interning mirrors the REPRO107 analysis: two op nodes are
    one value when op, attrs, dtype, shape and (recursively interned)
    operands agree; leaves are identified by node id.  Only reachable,
    materialized (bytes > 0) duplicates are eliminated — a duplicate
    view costs nothing, and eliminating an unreachable node is the dead
    pass's job.
    """
    interned: dict[tuple, int] = {}
    keys: dict[int, int] = {}
    first_of: dict[int, int] = {}
    mapping: dict[int, int] = {}
    for node in graph:
        if node.kind != "op":
            keys[node.id] = -node.id - 1
            continue
        key = (
            node.op,
            node.attrs,
            node.dtype.str,
            node.shape,
            tuple(keys[i] for i in node.inputs),
        )
        gid = interned.setdefault(key, len(interned))
        keys[node.id] = gid
        if node.id not in reachable:
            continue
        rep = first_of.setdefault(gid, node.id)
        if rep != node.id and node.bytes > 0:
            mapping[node.id] = rep
    return mapping


def compile_plan(
    graph: Graph,
    tape: list[TapeEntry] | None = None,
    *,
    min_fuse: int = 2,
) -> ExecutionPlan:
    """Compile a verified-replay plan for ``graph`` (and optional tape)."""
    n = len(graph)
    t = len(tape) if tape else 0
    end = n + t  # one timeline: forward node positions, then tape reversed

    def backward_pos(index: int) -> int:
        return n + (t - 1 - index)

    reachable = _reachable_ops(graph)
    cse = _intern_cse(graph, reachable)

    def canon(nid: int) -> int:
        """Buffer a value's reads actually land on: views resolved onto
        their buffer, duplicates onto their representative."""
        buf = graph.buffer_of(nid)
        return cse.get(buf, buf)

    order = tuple(
        node.id
        for node in graph
        if node.kind == "op" and node.id in reachable and node.id not in cse
    )
    order_set = set(order)
    dead = tuple(
        node.id
        for node in graph
        if node.kind == "op" and node.id not in reachable
    )

    # -- liveness intervals --------------------------------------------------
    # Replay lifetimes are *minimal*: a value lives from its defining
    # step to its last read (plus output / tape retention).  The eager
    # planners additionally model Python locals pinning buffers to scope
    # exit; a plan replay has no locals, which is part of why the arena
    # fits under their peak even with fragmentation.
    born: dict[int, int] = {}
    dies: dict[int, int] = {}
    for nid in order:
        node = graph[nid]
        if node.bytes > 0:
            born[nid] = nid
            dies[nid] = nid
    for nid in order:
        for input_id in graph[nid].inputs:
            buf = canon(input_id)
            if buf in dies:
                dies[buf] = max(dies[buf], nid)
    live_out = {canon(o) for o in graph.outputs}
    for buf in live_out:
        if buf in dies:
            dies[buf] = end

    # -- training: tape retention + gradient buffers ---------------------------
    tape_pinned: set[int] = set()
    grad_born: dict[int, int] = {}
    backward_order: tuple[int, ...] = ()
    if tape:
        by_out = {entry.out: entry for entry in tape}
        reachable_entries: set[int] = set()
        stack = [by_out[o] for o in graph.outputs if o in by_out]
        while stack:
            entry = stack.pop()
            if entry.index in reachable_entries:
                continue
            reachable_entries.add(entry.index)
            for pid, requires in zip(entry.parents, entry.parent_requires_grad):
                if requires and pid in by_out:
                    stack.append(by_out[pid])
        backward_order = tuple(
            entry.index
            for entry in reversed(tape)
            if entry.index in reachable_entries
        )
        for entry in tape:
            # backward() holds every tape tensor until the walk finishes.
            out_buf = canon(entry.out)
            tape_pinned.add(out_buf)
            if out_buf in dies:
                dies[out_buf] = end
            # Captures die when their closure runs; dead-branch closures
            # never run, so their captures survive the whole step.
            pos = (
                backward_pos(entry.index)
                if entry.index in reachable_entries
                else end
            )
            for group in (entry.parents, entry.captured):
                for nid in group:
                    if nid is None:
                        continue
                    buf = canon(nid)
                    tape_pinned.add(buf)
                    if buf in dies:
                        dies[buf] = max(dies[buf], pos)
        grad_born = {o: n for o in graph.outputs}
        for entry in tape:
            if entry.index not in reachable_entries:
                continue
            pos = backward_pos(entry.index)
            for pid, requires in zip(entry.parents, entry.parent_requires_grad):
                if requires and pid is not None:
                    grad_born[pid] = min(grad_born.get(pid, end), pos)

    # -- copy elision ----------------------------------------------------------
    # A `copy` may become an alias when its source is a private op
    # intermediate nobody reads afterwards (and, in a training plan, no
    # backward closure retains).  `copy_reshape` is excluded: it
    # materializes precisely because the source is non-contiguous, so an
    # alias would not be layout-equivalent.
    last_read: dict[int, int] = {}
    for nid in order:
        for input_id in graph[nid].inputs:
            buf = canon(input_id)
            last_read[buf] = max(last_read.get(buf, buf), nid)

    elisions: list[CopyElision] = []
    elided_to: dict[int, int] = {}  # copy node -> source buffer it aliases
    for nid in order:
        node = graph[nid]
        if node.op != "copy" or node.bytes <= 0:
            continue
        src_buf = canon(node.inputs[0])
        src = graph[src_buf]
        if (
            src.kind == "op"
            and src.bytes > 0
            and src_buf in born
            and src.dtype == node.dtype
            and src.size == node.size
            and src_buf not in live_out
            and src_buf not in tape_pinned
            and last_read.get(src_buf, nid) == nid
        ):
            elisions.append(CopyElision(copy=nid, source=src_buf))
            elided_to[nid] = src_buf
            # The alias extends the source's residency over every use of
            # the (former) copy; the two share one arena slot.
            dies[src_buf] = max(dies[src_buf], dies.pop(nid, nid))
            born.pop(nid, None)

    # -- fusion groups ---------------------------------------------------------
    # Direct value -> consumer map with CSE applied: a read of a
    # duplicate is a read of its representative.
    consumers: dict[int, list[int]] = {nid: [] for nid in order}
    for nid in order:
        for input_id in graph[nid].inputs:
            target = cse.get(input_id, input_id)
            if target in consumers:
                consumers[target].append(nid)

    def fusable(nid: int) -> bool:
        node = graph[nid]
        return node.op in FUSABLE_OPS and node.bytes > 0 and nid not in elided_to

    next_link: dict[int, int] = {}
    for nid in order:
        if not fusable(nid):
            continue
        # Linking *from* nid makes it a fused interior (a kernel
        # temporary): it must be a pure transient — not a graph output
        # and not retained by any backward closure.
        if nid in live_out or nid in tape_pinned:
            continue
        users = consumers[nid]
        if len(users) != 1:
            continue
        succ = graph[users[0]]
        if (
            fusable(succ.id)
            and succ.size == graph[nid].size
            and succ.dtype == graph[nid].dtype
        ):
            next_link[nid] = succ.id
    has_pred = set(next_link.values())

    groups: list[FusionGroup] = []
    for nid in order:
        if nid in has_pred or nid not in next_link:
            continue
        chain = [nid]
        while chain[-1] in next_link:
            chain.append(next_link[chain[-1]])
        if len(chain) < min_fuse:
            continue
        head = graph[chain[0]]
        groups.append(
            FusionGroup(
                nodes=tuple(chain),
                ops=tuple(graph[c].op for c in chain),
                proof={
                    "single_consumer": True,
                    "uniform_dtype": head.dtype.name,
                    "uniform_size": head.size,
                    "no_view_escape": not any(
                        node.alias_of in chain[:-1] for node in graph
                    ),
                    "no_alias_consumer": True,
                    "transient_bytes": sum(
                        graph[c].bytes for c in chain[:-1]
                    ),
                },
            )
        )

    # -- arena coloring --------------------------------------------------------
    # Greedy-by-size dynamic storage allocation (the TFLite/TVM arena
    # heuristic): place the fattest intervals first at the lowest offset
    # that collides with no already-placed, lifetime-overlapping slot.
    # Deterministic tie-break by (size desc, born, key).
    slot_intervals = [
        (graph[buf].bytes, born[buf], dies[buf], buf) for buf in born
    ]
    for pid, at in sorted(grad_born.items()):
        node = graph[pid]
        nbytes = node.size * node.dtype.itemsize
        slot_intervals.append((nbytes, at, end, -pid - 1))  # grads keyed <0

    arena_slots: dict[int, ArenaSlot] = {}
    grad_slots: dict[int, ArenaSlot] = {}
    placed: list[tuple[int, int, int, int]] = []  # (offset, size, born, dies)
    arena_bytes = 0
    for nbytes, b, d, key in sorted(
        slot_intervals, key=lambda s: (-s[0], s[1], s[3])
    ):
        conflicts = sorted(
            (off, sz)
            for off, sz, b2, d2 in placed
            if b <= d2 and b2 <= d  # lifetimes overlap: must not touch
        )
        offset = 0
        for off, sz in conflicts:
            if off - offset >= nbytes:
                break  # first gap low enough and wide enough
            offset = max(offset, off + sz)
        placed.append((offset, nbytes, b, d))
        arena_bytes = max(arena_bytes, offset + nbytes)
        slot = ArenaSlot(offset=offset, bytes=nbytes)
        if key >= 0:
            arena_slots[key] = slot
        else:
            grad_slots[-key - 1] = slot

    # -- memory-planner bound --------------------------------------------------
    if tape:
        from repro.adjoint.memory import plan_training_memory

        bound = plan_training_memory(graph, tape)["train_peak_bytes"]
        bound_kind = "plan_training_memory"
    else:
        bound = plan_memory(graph)["peak_bytes"]
        bound_kind = "plan_memory"

    dtype_pin = graph.meta.get("dtype", "")
    plan = ExecutionPlan(
        model=graph.meta.get("model", ""),
        preset=graph.meta.get("preset", ""),
        grid=int(graph.meta.get("grid", 0)),
        batch=int(graph.meta.get("batch", 1)),
        direction="training" if tape else "forward",
        graph_fingerprint=graph_fingerprint(graph),
        dtype_pin=dtype_pin,
        node_pins={nid: graph[nid].dtype.name for nid in order},
        order=order,
        dead=dead,
        cse=dict(sorted(cse.items())),
        fusion_groups=tuple(groups),
        arena_slots=arena_slots,
        arena_bytes=arena_bytes,
        bound_bytes=int(bound),
        bound_kind=bound_kind,
        copy_elisions=tuple(elisions),
        tape_entries=t,
        backward_order=backward_order,
        grad_slots=grad_slots,
    )
    assert len(order_set) == len(order)
    return plan.seal()
