"""Shadow execution: measure float32 error against a float64 oracle.

Following the ``repro.perf.validate`` discipline — every static claim
gets checked against a measurement — this harness runs each registry
model's forward *and* backward once in float32 and once in float64,
with bit-identical weights and inputs, and reports the measured
scale-relative error of the output and of every parameter gradient.

The oracle shares the float32 run's exact weights: the model is built
under the float32 default dtype, then its parameters and buffers are
promoted to float64 — an exact conversion (every float32 value is
representable in float64), so the two runs differ *only* in rounding.
The driver compares the measured errors against the certified envelope
(REPRO809 blocking when measurement exceeds certificate, REPRO810
advisory when the certificate is >100x slack).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.registry import build_model
from ..nn.tensor import Tensor
from ..perf.report import default_dtype

__all__ = ["ShadowResult", "shadow_run"]

_TINY = 1e-300


@dataclass(frozen=True)
class ShadowResult:
    """Measured float32-vs-float64 error of one forward+backward run."""

    model: str
    preset: str
    grid: int
    batch: int
    forward_error: float   # scale-relative: max|d(out)| / max|out_64|
    forward_abs: float     # absolute: max|out_32 - out_64|
    backward_error: float  # worst scale-relative parameter-gradient error
    worst_param: str       # which parameter gradient was worst
    grad_abs: dict         # param name -> absolute gradient error


def _abs_rel(lhs: np.ndarray, ref: np.ndarray) -> tuple[float, float]:
    diff = float(np.max(np.abs(lhs.astype(np.float64) - ref)))
    scale = float(np.max(np.abs(ref)))
    return diff, diff / max(scale, _TINY)


def shadow_run(
    model_name: str,
    *,
    preset: str = "fast",
    grid: int = 32,
    batch: int = 1,
    in_channels: int = 6,
    seed: int = 0,
) -> ShadowResult:
    """Run ``model_name`` forward+backward at float32 and float64.

    Deterministic for fixed arguments up to the BLAS the runtime links
    (measured values are therefore *never* part of the byte-stable
    baseline slice — only the certified envelopes are).
    """
    with default_dtype(np.float32):
        model = build_model(
            model_name, preset=preset, grid=grid, seed=seed,
            in_channels=in_channels,
        )
    model.eval()
    rng = np.random.default_rng(seed + 1)
    x32 = rng.random((batch, in_channels, grid, grid)).astype(np.float32)

    with default_dtype(np.float32):
        out32 = model(Tensor(x32))
        out32.backward(np.ones(out32.data.shape, dtype=np.float32))
    out32_data = np.asarray(out32.data, dtype=np.float64)
    grads32 = {
        name: np.array(p.grad, copy=True)
        for name, p in model.named_parameters()
        if p.grad is not None
    }

    # Exact promotion: same weights, wider accumulation.
    for p in model.parameters():
        p.data = p.data.astype(np.float64)
        p.grad = None
    for m in model.modules():
        for name, buf in list(m._buffers.items()):
            m.register_buffer(name, buf.astype(np.float64))

    with default_dtype(np.float64):
        out64 = model(Tensor(x32.astype(np.float64)))
        out64.backward(np.ones(out64.data.shape, dtype=np.float64))
    out64_data = np.asarray(out64.data)

    forward_abs, forward_error = _abs_rel(out32_data, out64_data)
    backward_error, worst_param = 0.0, ""
    grad_abs: dict = {}
    for name, p in model.named_parameters():
        g32 = grads32.get(name)
        if g32 is None or p.grad is None:
            continue
        diff, err = _abs_rel(g32, np.asarray(p.grad))
        grad_abs[name] = diff
        if err > backward_error:
            backward_error, worst_param = err, name
    return ShadowResult(
        model=model_name, preset=preset, grid=grid, batch=batch,
        forward_error=forward_error, forward_abs=forward_abs,
        backward_error=backward_error, worst_param=worst_param,
        grad_abs=grad_abs,
    )
