"""Numerical-safety certificates for compiled execution plans.

`repro.schedule` plans three transformations that can change results:
pointwise fusion, execution reordering, and the REPRO301 dtype pin.
This module prices each of them against the rounding-error envelope and
either issues an explicit certificate or a blocking finding:

* ``REPRO804`` — a fusion group is *error-neutral* iff every member is
  an elementwise op from the fusable set, the group carries one uniform
  dtype, and no reduction is fused into the chain.  Fused pointwise
  chains evaluate each element in the same order as the unfused ops, so
  they replay bitwise; a fused reduction or a mixed-dtype chain would
  reassociate or re-round, and is refused.  Reductions themselves are
  certified order-preserving: each executes as a single op whose
  operand sequence the plan cannot permute.
* ``REPRO805`` — each dtype-pin decision is priced as that node's share
  of the output error envelope at the pinned roundoff minus its share
  at float64 (``amp * seed * (u_pin - u64)``, scale-relative).  A pin
  whose price exceeds the budget blocks; so does a pin under which the
  interval domain proves overflow (``check_stability(pins=...)``, the
  dtype-aware REPRO101 threshold).
"""

from __future__ import annotations

import math

from ..ir.passes import node_finding
from ..ir.stability import check_stability
from ..lint.rules import LintDiagnostic
from ..schedule.compiler import FUSABLE_OPS
from .envelope import UNIT_ROUNDOFF, _mul, _TINY

__all__ = ["certify_plan"]

_REDUCTIONS = (
    "sum", "mean", "var", "matmul", "einsum", "col2im", "max", "amax",
    "amin",
)


def _group_verdict(group, graph) -> tuple[bool, str]:
    dtypes = {graph[nid].dtype.name for nid in group.nodes}
    for nid, op in zip(group.nodes, group.ops):
        if op in _REDUCTIONS:
            return False, (
                f"reduction {op!r} (%{nid}) inside a fused chain "
                "reassociates the summation order"
            )
        if op not in FUSABLE_OPS:
            return False, (
                f"op {op!r} (%{nid}) is not in the fusable elementwise set"
            )
    if len(dtypes) > 1:
        return False, (
            "mixed dtypes "
            + "/".join(sorted(dtypes))
            + " re-round interior values at a different precision"
        )
    return True, (
        "elementwise chain, uniform "
        + next(iter(dtypes), "dtype")
        + ", per-element evaluation order preserved"
    )


def certify_plan(plan, graph, fenv, *, budget: float) -> dict:
    """Certificates + findings for ``plan`` given the forward envelope.

    ``fenv`` must be the envelope of ``graph`` at the plan's pinned
    roundoff (float32 for REPRO301-pinned plans).  Returns
    ``{"certificates": [...], "findings": [...]}`` — every fusion group
    and the dtype-pin decision appear in exactly one of the two.
    """
    findings: list = []
    certificates: list = []

    # -- REPRO804: fusion groups and summation order ---------------------------
    for group in plan.fusion_groups:
        neutral, reason = _group_verdict(group, graph)
        cert = {
            "kind": "fusion",
            "nodes": list(group.nodes),
            "ops": list(group.ops),
            "error_neutral": neutral,
            "reason": reason,
        }
        certificates.append(cert)
        if not neutral:
            findings.append(
                node_finding(
                    graph[group.nodes[0]],
                    "REPRO804",
                    f"planned fusion of ops {list(group.ops)} is not "
                    f"error-neutral: {reason}",
                )
            )
    reductions = [
        nid for nid in plan.order
        if graph[nid].kind == "op" and graph[nid].op in _REDUCTIONS
    ]
    certificates.append({
        "kind": "summation_order",
        "reductions": len(reductions),
        "error_neutral": True,
        "reason": "each reduction executes as a single op; the plan "
                  "orders nodes, never a reduction's operand sequence",
    })

    # -- REPRO805: dtype-pin pricing -------------------------------------------
    pin = plan.dtype_pin or "float64"
    u_pin = UNIT_ROUNDOFF.get(pin, UNIT_ROUNDOFF["float64"])
    u64 = UNIT_ROUNDOFF["float64"]
    out_mag = max(
        (fenv.nodes[i].mag for i in graph.outputs), default=_TINY
    )
    scale = max(out_mag, _TINY)
    worst_rel, worst_node, priced = 0.0, None, 0
    for nid in plan.order:
        env = fenv.nodes.get(nid)
        if env is None or env.seed == 0.0:
            continue
        priced += 1
        amp = fenv.amps.get(nid, 0.0)
        price = _mul(amp, env.seed) * (u_pin - u64) / scale
        if price > worst_rel or (
            math.isinf(price) and worst_node is None
        ):
            worst_rel, worst_node = price, nid
        if price > budget:
            findings.append(
                node_finding(
                    graph[nid],
                    "REPRO805",
                    f"pinning {graph[nid].op!r} to {pin} contributes "
                    f"{price:.3e} relative error to the output "
                    f"(budget {budget:.1e}); keep this node at float64",
                )
            )
    for f in check_stability(graph, pins=plan.node_pins)["findings"]:
        if f.code == "REPRO101":
            findings.append(LintDiagnostic(
                f.path, f.line, f.col, "REPRO805",
                f"{pin} pin reaches overflow: {f.message}",
            ))
    certificates.append({
        "kind": "dtype_pin",
        "dtype": pin,
        "nodes_priced": priced,
        "worst_node": worst_node,
        "worst_contribution_rel": f"{worst_rel:.6e}",
        "budget": f"{budget:.1e}",
        "within_budget": bool(worst_rel <= budget),
    })
    return {"certificates": certificates, "findings": findings}
