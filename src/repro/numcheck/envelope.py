"""First-order rounding-error envelopes over the forward tensor IR.

Every SSA node gets a :class:`NodeEnvelope` — a linearized model of the
worst-case per-element absolute rounding error of its value:

``delta(n) = seed(n) * u  +  sum_i coeff(n, i) * delta(input_i)``

where ``u`` is the unit roundoff of the compute dtype (2^-24 for
float32, 2^-53 for float64).  The linearization keeps the envelope
*u-linear*: one structural propagation serves every precision, so the
float32 and float64 envelopes — and their difference, which prices a
REPRO301 dtype pin — come from the same sweep evaluated at two values
of ``u``.

Magnitudes come from two sources, and we take the tighter:

* the value-interval domain that :mod:`repro.ir.symbolic` already
  propagates (``node.vrange``), and
* per-op magnitude rules (e.g. ``|a @ b| <= k * |a| * |b|``) that stay
  finite where the sign-only interval contraction does not.

A reverse sweep computes each node's *amplification* — the sensitivity
of the chosen outputs' error to that node's local seed.  The identity

``delta(out) == sum_n amp(n) * seed(n) * u``

decomposes the certified bound into per-node contributions, which is
what prices individual dtype-pin decisions (REPRO805) and makes the
envelope auditable in tests.

All arithmetic is plain python floats (IEEE double, round-to-nearest),
so envelopes are bitwise deterministic across runs and machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..ir.graph import Graph, Node

__all__ = [
    "UNIT_ROUNDOFF",
    "NodeEnvelope",
    "ForwardEnvelope",
    "forward_envelope",
    "unit_roundoff",
]

#: Unit roundoff (half ulp of 1.0) per IEEE dtype.
UNIT_ROUNDOFF = {
    "float32": 2.0 ** -24,
    "float64": 2.0 ** -53,
    "float16": 2.0 ** -11,
}

_INF = math.inf
#: Magnitude floor — keeps relative quantities defined at exact zeros.
_TINY = 1e-300

#: Documented *conditioning assumptions* for normalizers (see
#: docs/NUMERICS.md).  The interval domain alone proves only
#: ``var >= 0``, under which LayerNorm's worst-case amplification is
#: ``1/sqrt(eps)`` per layer and every deep bound is vacuous.
#: Certificates are therefore issued under two explicit regime
#: assumptions, recorded in every bundle:
#:
#: * ``VAR_FLOOR`` — every ``var(x) + eps`` normalizer denominator is
#:   at least ``eps + VAR_FLOOR`` (absolute floor, used for bare
#:   ``1/sqrt(var+eps)`` magnitudes), and
#: * ``REL_VAR_FLOOR`` — a normalizer input's variance is at least
#:   ``REL_VAR_FLOOR * sup|x|^2``, i.e. its coefficient of variation is
#:   at least ``sqrt(REL_VAR_FLOOR)``.  A nearly-constant vector at
#:   large scale makes LayerNorm genuinely ill-conditioned (the true
#:   worst case, not an analysis artifact), so a finite certificate
#:   *requires* excluding that regime; REPRO803 screens the sites where
#:   the assumption is load-bearing.
VAR_FLOOR = 1e-2
REL_VAR_FLOOR = 0.25


def unit_roundoff(dtype) -> float:
    """Unit roundoff for ``dtype`` (float64's for non-float dtypes)."""
    return UNIT_ROUNDOFF.get(np.dtype(dtype).name, UNIT_ROUNDOFF["float64"])


def _mul(a: float, b: float) -> float:
    """inf-safe product: anything times a hard zero is zero."""
    if a == 0.0 or b == 0.0:
        return 0.0
    return a * b


@dataclass
class NodeEnvelope:
    """Linearized error model of one SSA node.

    ``mag``
        Supremum of ``|value|`` per element (finite where provable).
    ``coeffs``
        ``(input_node_id, c)`` pairs: incoming absolute error is
        amplified by ``c`` through this op.
    ``seed``
        Local rounding mass *per unit roundoff*: the op's own
        contribution to the output error is ``seed * u``.
    ``exact``
        True for ops that introduce no rounding of their own (views,
        pad, gather, comparisons).
    ``cap``
        Structural bound on the node's absolute error, independent of
        incoming error.  A max-shifted softmax quotient, for instance,
        is *computed* in ``[0, 1 + O(u)]`` no matter how wrong its
        scores are (the shift subtracts the computed max from the
        computed scores, so every computed exponent is <= 0), and its
        true value lies in ``[0, 1]`` — so the error saturates at
        ``1 + O(u)`` where the linear model diverges.
    """

    mag: float
    coeffs: tuple = ()
    seed: float = 0.0
    exact: bool = False
    note: str = ""
    cap: float = _INF


@dataclass
class ForwardEnvelope:
    """Envelope of a whole forward graph at one compute precision."""

    graph: Graph
    u: float
    nodes: dict = field(default_factory=dict)   # id -> NodeEnvelope
    deltas: dict = field(default_factory=dict)  # id -> absolute error bound
    amps: dict = field(default_factory=dict)    # id -> output amplification
    unsupported: tuple = ()

    def mag(self, node_id: int) -> float:
        return self.nodes[node_id].mag

    def delta(self, node_id: int) -> float:
        return self.deltas[node_id]

    def relative(self, node_id: int) -> float:
        """Scale-relative error bound: ``delta / max(|value|)``.

        Relative to the *output scale*, not element-wise — elements near
        zero of a large-dynamic-range array carry the array's absolute
        error, which is the quantity the shadow harness measures.
        """
        mag = self.nodes[node_id].mag
        delta = self.deltas[node_id]
        if math.isinf(delta) or math.isnan(delta):
            return _INF
        return delta / max(mag, _TINY)

    def contribution(self, node_id: int) -> float:
        """This node's share of the output error: ``amp * seed * u``."""
        env = self.nodes[node_id]
        return _mul(self.amps.get(node_id, 0.0), env.seed) * self.u

    def output_delta(self) -> float:
        return max(
            (self.deltas[i] for i in self.graph.outputs), default=0.0
        )

    def output_relative(self) -> float:
        return max(
            (self.relative(i) for i in self.graph.outputs), default=0.0
        )


def _mag_from_vrange(node: Node) -> float:
    lo, hi = node.vrange
    if math.isinf(lo) or math.isinf(hi):
        return _INF
    return max(abs(lo), abs(hi))


def _lo_abs(node: Node) -> float:
    """Infimum of ``|value|`` — 0 unless the interval excludes zero."""
    lo, hi = node.vrange
    if lo > 0.0:
        return lo
    if hi < 0.0:
        return -hi
    return 0.0


def _softmax_quotient(node: Node, graph: Graph) -> bool:
    """True for ``exp(s) / sum(exp(s))`` with a max-shifted ``s``.

    The shift subtracts the *computed* max of the *computed* scores, so
    every computed exponent is <= 0, every computed exp is <= 1, and
    the computed denominator dominates its largest term — the computed
    quotient lands in ``[0, 1 + O(u)]`` regardless of how wrong the
    scores are.  Since the true quotient is in ``[0, 1]``, the error
    saturates where the linear model diverges.
    """
    num, den = (graph[i] for i in node.inputs)
    if num.kind != "op" or num.op != "exp":
        return False
    shift = graph[num.inputs[0]]
    if shift.meta.get("max_shifted") is None and not (shift.vrange[1] <= 0.0):
        return False
    return den.kind == "op" and den.op == "sum" and num.id in den.inputs


def _var_plus_eps(node: Node, graph: Graph):
    """Return the eps constant if ``node`` is ``var(x) + eps``, else None."""
    if node.op != "add" or node.kind != "op":
        return None
    a, b = (graph[i] for i in node.inputs)
    for var, eps in ((a, b), (b, a)):
        if var.kind == "op" and var.op == "var" and eps.kind == "const":
            lo, hi = eps.vrange
            if lo == hi and lo > 0.0:
                return lo
    return None


def _assumed_lo(node: Node, graph: Graph) -> float:
    """``_lo_abs`` strengthened by the VAR_FLOOR normalizer assumption."""
    lo = _lo_abs(node)
    if node.kind != "op":
        return lo
    eps = _var_plus_eps(node, graph)
    if eps is not None:
        return max(lo, eps + VAR_FLOOR)
    if node.op == "sqrt":
        return max(lo, math.sqrt(_assumed_lo(graph[node.inputs[0]], graph)))
    return lo


def _match_normalizer(node: Node, graph: Graph):
    """Match ``(x - mean(x)) * (1 / sqrt(var(x) + eps))``; return parts."""
    if node.op != "multiply" or len(node.inputs) != 2:
        return None
    a, b = (graph[i] for i in node.inputs)
    for centered, inv in ((a, b), (b, a)):
        if centered.kind != "op" or centered.op != "subtract":
            continue
        x, m = (graph[i] for i in centered.inputs)
        if m.kind != "op" or m.op != "mean" or x.id not in m.inputs:
            continue
        if inv.kind != "op" or inv.op != "divide":
            continue
        den = graph[inv.inputs[1]]
        if den.kind != "op" or den.op != "sqrt":
            continue
        inner = graph[den.inputs[0]]
        eps = _var_plus_eps(inner, graph)
        if eps is None:
            continue
        var = next(
            graph[i] for i in inner.inputs
            if graph[i].kind == "op" and graph[i].op == "var"
        )
        d = _axes_count(var, graph[var.inputs[0]])
        return {"x": x, "d": d, "eps": eps}
    return None


def _normalized_bound(node: Node, graph: Graph):
    """Analytic bound for a ``(x - mean(x)) * rsqrt(var(x) + eps)`` product.

    ``sum(x_hat^2) = d * var / (var + eps) < d`` holds identically, so
    ``|x_hat| < sqrt(d)`` regardless of the input interval — the bound
    the plain interval product (``2 * |x| / sqrt(eps)``) cannot see.
    """
    m = _match_normalizer(node, graph)
    if m is None:
        return None
    return math.sqrt(float(m["d"]))


def _normalizer_envelope(node: Node, graph: Graph, fenv: "ForwardEnvelope"):
    """Composite rule for a detected normalization (see REL_VAR_FLOOR).

    Node-by-node envelopes of ``x_hat = (x - mean(x)) * rsqrt(var + eps)``
    suffer the classic interval dependency problem: they pair the
    *maximal* absolute error of ``var`` (attained at ``|x| = sup``) with
    the *minimal* denominator (attained near-constant ``x``) — two
    mutually exclusive worst cases whose product diverges with scale and
    makes deep LayerNorm stacks vacuous.  Treating the pattern as one
    operator linearized under ``var >= REL_VAR_FLOOR * sup|x|^2`` keeps
    the extremes coupled:

    ``|d x_hat| <= 2s|dx| + |x - mu| * (s^3/2) * 4 sup|x| |dx|
               <= 2s (1 + 2/rho) |dx|``   with ``s^2 sup|x|^2 <= 1/rho``.
    """
    m = _match_normalizer(node, graph)
    if m is None:
        return None
    x, d, eps = m["x"], m["d"], m["eps"]
    mx = fenv.nodes[x.id].mag
    if not math.isfinite(mx) or mx <= 0.0:
        return None
    rho = REL_VAR_FLOOR
    s_max = 1.0 / math.sqrt(rho * mx * mx + eps)
    root_d = math.sqrt(float(d))
    coeff_x = 2.0 * s_max * (1.0 + 2.0 / rho)
    # Own rounding mass per unit roundoff: the mean and var summations
    # routed through the composite's sensitivities, the subtract at the
    # input scale, and the sqrt/divide/multiply chain at output scale.
    mean_seed = _sum_seed(d, mx) / d + mx
    var_seed = _sum_seed(d, mx * mx) / d + 3.0 * mx * mx
    seed = (
        s_max * mean_seed
        + mx * s_max ** 3 * var_seed
        + 2.0 * mx * s_max
        + 3.0 * root_d
    )
    return NodeEnvelope(
        mag=min(_mag_from_vrange(node), root_d),
        coeffs=((x.id, coeff_x),), seed=seed,
        note="normalizer composite",
    )


def _axes_count(node: Node, src: Node) -> int:
    """Number of elements reduced per output element."""
    attrs = dict(node.attrs)
    axes = attrs.get("axes")
    if axes is None:
        total = int(np.prod(src.shape)) if src.shape else 1
        out = int(np.prod(node.shape)) if node.shape else 1
        return max(1, total // max(out, 1))
    count = 1
    for ax in axes:
        count *= src.shape[ax]
    return max(1, int(count))


def _einsum_contracted(node: Node, ins: list) -> int:
    """Product of contracted-label extents for an einsum node."""
    subscripts = dict(node.attrs).get("subscripts", "")
    if "->" not in subscripts:
        return 1
    lhs, rhs = subscripts.split("->")
    terms = lhs.split(",")
    extents: dict = {}
    for term, src in zip(terms, ins):
        for label, dim in zip(term, src.shape):
            extents[label] = max(extents.get(label, 1), int(dim))
    k = 1
    for label, dim in extents.items():
        if label not in rhs:
            k *= dim
    return max(1, k)


def _sum_seed(count: int, mag_in: float) -> float:
    """Rounding mass of a ``count``-term sequential summation.

    Classic bound: ``|fl(sum) - sum| <= (count - 1) * u * sum |x_i|``
    (first order), and ``sum |x_i| <= count * mag_in``.
    """
    return _mul(float(count - 1), _mul(float(count), mag_in))


def _envelope_for(node: Node, graph: Graph, fenv: "ForwardEnvelope") -> NodeEnvelope:
    """Per-op forward rule.  Returns the linearized local model.

    Input magnitudes come from the already-propagated envelope (the
    min of vrange- and op-rule-derived bounds), not the raw vrange —
    the op-rule bound is what stays finite through the sign-only
    matmul/einsum interval contraction.
    """
    ins = [graph[i] for i in node.inputs]
    mags = [fenv.nodes[n.id].mag for n in ins]
    vmag = _mag_from_vrange(node)
    op = node.op

    def env(mag, coeffs=(), seed=None, exact=False, note=""):
        # Default local rounding: one correctly-rounded op contributes
        # at most ``u * |result|``.
        if seed is None:
            seed = 0.0 if exact else mag
        return NodeEnvelope(
            mag=mag, coeffs=tuple(coeffs), seed=seed, exact=exact,
            note=note,
        )

    if op in ("add", "subtract"):
        mag = min(vmag, mags[0] + mags[1])
        return env(mag, [(ins[0].id, 1.0), (ins[1].id, 1.0)])
    if op == "negative":
        return env(min(vmag, mags[0]), [(ins[0].id, 1.0)], exact=True)
    if op == "multiply":
        comp = _normalizer_envelope(node, graph, fenv)
        if comp is not None:
            return comp
        mag = min(vmag, _mul(mags[0], mags[1]))
        norm = _normalized_bound(node, graph)
        if norm is not None:
            mag = min(mag, norm)
        return env(mag, [(ins[0].id, mags[1]), (ins[1].id, mags[0])])
    if op == "divide":
        blo = _assumed_lo(ins[1], graph)
        if blo == 0.0:
            return env(vmag, [(ins[0].id, _INF), (ins[1].id, _INF)],
                       note="divisor interval reaches 0")
        mag = min(vmag, mags[0] / blo)
        e = env(mag, [(ins[0].id, 1.0 / blo),
                      (ins[1].id, mags[0] / (blo * blo))])
        if _softmax_quotient(node, graph):
            e.mag = min(e.mag, 1.0)
            e.cap = 1.0 + 4.0 * fenv.u
        return e
    if op == "exp":
        # d(exp x) = exp(x) dx <= mag_out * dx
        mag = min(vmag, math.exp(min(mags[0], 709.0)))
        return env(mag, [(ins[0].id, mag)])
    if op == "log":
        alo = _assumed_lo(ins[0], graph)
        if alo == 0.0:
            return env(vmag, [(ins[0].id, _INF)],
                       note="log operand interval reaches 0")
        return env(vmag, [(ins[0].id, 1.0 / alo)])
    if op == "sqrt":
        alo = _assumed_lo(ins[0], graph)
        coeff = _INF if alo == 0.0 else 0.5 / math.sqrt(alo)
        return env(min(vmag, math.sqrt(mags[0])), [(ins[0].id, coeff)])
    if op == "tanh":
        return env(min(vmag, 1.0), [(ins[0].id, 1.0)])
    if op == "abs":
        return env(min(vmag, mags[0]), [(ins[0].id, 1.0)], exact=True)
    if op == "power":
        # Exponent is a traced const scalar in this substrate.
        p_lo, p_hi = ins[1].vrange
        if p_lo == p_hi and not math.isinf(p_lo):
            p = p_lo
            alo = _assumed_lo(ins[0], graph)
            if p == 2.0:
                return env(min(vmag, mags[0] ** 2),
                           [(ins[0].id, 2.0 * mags[0]), (ins[1].id, 0.0)])
            if p == 0.5:
                coeff = _INF if alo == 0.0 else 0.5 / math.sqrt(alo)
                return env(min(vmag, math.sqrt(mags[0])),
                           [(ins[0].id, coeff), (ins[1].id, 0.0)])
            if p == p // 1 and p > 0:
                deriv = abs(p) * (mags[0] ** max(p - 1, 0.0))
                return env(min(vmag, mags[0] ** p),
                           [(ins[0].id, deriv), (ins[1].id, 0.0)])
            if p < 0:
                if alo == 0.0:
                    return env(vmag, [(ins[0].id, _INF), (ins[1].id, 0.0)],
                               note="negative power of interval reaching 0")
                mag = min(vmag, alo ** p)
                return env(mag, [(ins[0].id, abs(p) * alo ** (p - 1.0)),
                                 (ins[1].id, 0.0)])
        return env(vmag, [(ins[0].id, _INF), (ins[1].id, _INF)],
                   note="non-constant exponent")
    if op in ("maximum", "minimum"):
        mag = min(vmag, max(mags))
        return env(mag, [(ins[0].id, 1.0), (ins[1].id, 1.0)], seed=0.0,
                   exact=True)
    if op == "where":
        # inputs: (condition, x, y); the selection itself is exact.
        mag = min(vmag, max(mags[1], mags[2]))
        return env(mag, [(ins[1].id, 1.0), (ins[2].id, 1.0)], exact=True)
    if op in ("greater", "greater_equal", "less", "less_equal"):
        return env(1.0, [], exact=True)
    if op in (
        "reshape", "copy_reshape", "copy", "transpose", "slice", "squeeze",
        "expand_dims", "broadcast", "repeat", "pad", "im2col",
    ):
        # Data movement: elements are copied, never rounded.
        mag = min(vmag, max(mags, default=0.0))
        return env(mag, [(n.id, 1.0) for n in ins], exact=True)
    if op in ("concatenate", "stack"):
        mag = min(vmag, max(mags, default=0.0))
        return env(mag, [(n.id, 1.0) for n in ins], exact=True)
    if op == "cast":
        # Rounding to the target dtype: one half-ulp of the value.
        mag = min(vmag, mags[0])
        return env(mag, [(ins[0].id, 1.0)], seed=mag)
    if op in ("sum", "mean"):
        count = _axes_count(node, ins[0])
        seed = _sum_seed(count, mags[0])
        coeff = float(count)
        mag = min(vmag, _mul(float(count), mags[0]))
        if op == "mean":
            seed = seed / count + mags[0]  # summation + final divide
            coeff = 1.0
            mag = min(vmag, mags[0])
        return env(mag, [(ins[0].id, coeff)], seed=seed)
    if op == "var":
        count = _axes_count(node, ins[0])
        mag = min(vmag, mags[0] ** 2)
        seed = _sum_seed(count, mags[0] ** 2) / max(count, 1) + 3.0 * mag
        return env(mag, [(ins[0].id, 4.0 * mags[0])], seed=seed)
    if op in ("amax", "amin", "max", "min"):
        return env(min(vmag, mags[0]), [(ins[0].id, 1.0)], exact=True)
    if op == "matmul":
        k = int(ins[0].shape[-1]) if ins[0].shape else 1
        mag = min(vmag, _mul(float(k), _mul(mags[0], mags[1])))
        seed = _mul(float(k), _mul(float(k), _mul(mags[0], mags[1])))
        return env(mag, [(ins[0].id, _mul(float(k), mags[1])),
                         (ins[1].id, _mul(float(k), mags[0]))], seed=seed)
    if op == "einsum":
        k = _einsum_contracted(node, ins)
        prod_all = 1.0
        for m in mags:
            prod_all = _mul(prod_all, m)
        coeffs = []
        for i, src in enumerate(ins):
            others = 1.0
            for j, m in enumerate(mags):
                if j != i:
                    others = _mul(others, m)
            coeffs.append((src.id, _mul(float(k), others)))
        mag = min(vmag, _mul(float(k), prod_all))
        seed = _mul(float(k), _mul(float(k), prod_all))
        return env(mag, coeffs, seed=seed)
    if op == "col2im":
        # Scatter-add: each output cell accumulates up to kernel^2
        # overlapping patch entries.
        kernel = dict(node.attrs).get("kernel", 1)
        overlap = int(kernel) ** 2
        mag = min(vmag, _mul(float(overlap), mags[0]))
        seed = _sum_seed(overlap, mags[0])
        return env(mag, [(ins[0].id, float(overlap))], seed=seed)
    return NodeEnvelope(mag=vmag, coeffs=tuple((n.id, _INF) for n in ins),
                        seed=_INF, note=f"unsupported op {op!r}")


def forward_envelope(graph: Graph, *, u: float) -> ForwardEnvelope:
    """Propagate rounding-error envelopes through ``graph`` at roundoff ``u``.

    Runs the forward delta sweep and the reverse amplification sweep;
    the returned object satisfies (up to float evaluation order)
    ``output_delta() == sum_n contribution(n)`` for finite envelopes on
    graphs where no structural ``cap`` saturates (``<=`` in general —
    the amplification sweep does not model saturation, so the
    contribution decomposition stays an upper bound).
    """
    fenv = ForwardEnvelope(graph=graph, u=u)
    unsupported = []
    for node in graph:
        if node.kind != "op":
            lo, hi = node.vrange
            mag = _INF if math.isinf(lo) or math.isinf(hi) else max(
                abs(lo), abs(hi)
            )
            # Leaves are exact as stored; a float32 leaf already *is*
            # the float32 value, so no quantization seed here — the
            # cross-precision cost of storage is priced by the cast
            # rule and the dtype-pin certificates.
            fenv.nodes[node.id] = NodeEnvelope(mag=mag, exact=True)
            fenv.deltas[node.id] = 0.0
            continue
        env = _envelope_for(node, graph, fenv)
        if env.note.startswith("unsupported"):
            unsupported.append(node.op)
        fenv.nodes[node.id] = env
        delta = _mul(env.seed, u)
        for src_id, coeff in env.coeffs:
            delta += _mul(coeff, fenv.deltas[src_id])
        fenv.deltas[node.id] = min(delta, env.cap)

    # Reverse amplification sweep from the graph outputs.
    amps = {i: 0.0 for i in fenv.nodes}
    for out_id in graph.outputs:
        amps[out_id] = 1.0
    for node in reversed(list(graph)):
        a = amps.get(node.id, 0.0)
        if a == 0.0 or node.kind != "op":
            continue
        for src_id, coeff in fenv.nodes[node.id].coeffs:
            amps[src_id] = amps[src_id] + _mul(a, coeff)
    fenv.amps = amps
    fenv.unsupported = tuple(sorted(set(unsupported)))
    return fenv
