"""Rounding-error envelopes for the backward pass.

Extends the forward envelope (:mod:`repro.numcheck.envelope`) over the
adjoint SSA graph (:mod:`repro.adjoint.graph`).  Each adjoint node gets

* ``gmag`` — supremum of ``|gradient|`` per element, and
* ``gdelta`` — worst-case absolute rounding error of that gradient,

propagated in the adjoint graph's emission order (which is topological).
A vjp node's error has three parts:

``gdelta = L * gdelta_in  +  cross  +  u * round``

where ``L`` bounds the closure's linear amplification of the incoming
gradient error, ``cross`` prices the *primal* activations' forward
error flowing through the closure (the forward envelope's deltas are
evaluated at the same roundoff ``u``), and ``round`` is the closure's
own rounding mass.  Closures are enumerated from the actual autograd
surface (``repro.nn.tensor`` + ``repro.nn.functional``); an op without
a rule yields an infinite envelope and is reported, never guessed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..adjoint.graph import AdjointGraph
from .envelope import (
    REL_VAR_FLOOR,
    ForwardEnvelope,
    _mul,
    _sum_seed,
    _TINY,
    _var_plus_eps,
)

__all__ = ["AdjointEnvelope", "adjoint_envelope"]

_INF = math.inf

#: |d gelu(x)/dx| and |d^2 gelu/dx^2| bounds (tanh approximation).
_GELU_L = 1.2
_GELU_L2 = 1.2
#: inv_std fallback when the captured divide node cannot be identified:
#: 1/sqrt(eps) with the substrate's eps = 1e-5.
_INV_STD_FALLBACK = 1.0 / math.sqrt(1e-5)


@dataclass
class AdjointEnvelope:
    """Backward-pass envelope at one compute precision."""

    adjoint: AdjointGraph
    fenv: ForwardEnvelope
    u: float
    gmags: dict = field(default_factory=dict)
    gdeltas: dict = field(default_factory=dict)
    unsupported: tuple = ()

    def grad_delta(self, primal_id: int) -> float:
        aid = self.adjoint.grad_of.get(primal_id)
        return self.gdeltas[aid] if aid is not None else 0.0

    def grad_relative(self, primal_id: int) -> float:
        aid = self.adjoint.grad_of.get(primal_id)
        if aid is None:
            return 0.0
        return self.gdeltas[aid] / max(self.gmags[aid], _TINY)

    def param_relative(self) -> float:
        """Worst scale-relative gradient error over all trainable leaves."""
        worst = 0.0
        graph = self.adjoint.primal
        for pid, aid in self.adjoint.grad_of.items():
            if graph[pid].kind != "param":
                continue
            worst = max(
                worst, self.gdeltas[aid] / max(self.gmags[aid], _TINY)
            )
        return worst


def _size(shape) -> int:
    return int(np.prod(shape)) if shape else 1


def adjoint_envelope(
    adjoint: AdjointGraph, fenv: ForwardEnvelope, *, u: float,
    seed_mag: float = 1.0,
) -> AdjointEnvelope:
    """Propagate gradient-error envelopes through ``adjoint`` at roundoff ``u``.

    ``seed_mag`` is the magnitude bound of the ``backward()`` seed (the
    shadow harness seeds with ones, hence the default 1.0).
    """
    aenv = AdjointEnvelope(adjoint=adjoint, fenv=fenv, u=u)
    graph = adjoint.primal
    unsupported: list = []

    def pm(pid: int) -> float:
        return fenv.nodes[pid].mag

    def pd(pid: int) -> float:
        return fenv.deltas[pid]

    def captured_mag(entry, op: str, fallback: float):
        """(mag, delta) of the closure-captured node with primal op ``op``."""
        for cid in entry.captured:
            node = graph[cid]
            if node.kind == "op" and node.op == op:
                return pm(cid), pd(cid)
        return fallback, 0.0

    for n in adjoint.nodes:
        if n.kind == "seed":
            aenv.gmags[n.id] = seed_mag
            aenv.gdeltas[n.id] = 0.0
            continue
        if n.kind == "add":
            gmag = sum(aenv.gmags[i] for i in n.inputs)
            gdelta = sum(aenv.gdeltas[i] for i in n.inputs)
            aenv.gmags[n.id] = gmag
            aenv.gdeltas[n.id] = gdelta + _mul(u, gmag)
            continue

        entry = adjoint.tape[n.entry]
        g_id = n.inputs[0]
        mg = aenv.gmags[g_id]
        dg = aenv.gdeltas[g_id]
        out_size = _size(graph[entry.out].shape)
        fan = max(1, out_size // max(_size(n.shape), 1))
        parents = entry.parents
        pidx = [i for i, p in enumerate(parents) if p == n.primal]
        rule = _VJP_RULES.get(n.op)
        if rule is None:
            unsupported.append(n.op)
            aenv.gmags[n.id] = _INF
            aenv.gdeltas[n.id] = _INF
            continue
        gmag, gdelta = 0.0, 0.0
        for i in pidx:
            m, d = rule(
                _Ctx(
                    graph=graph, entry=entry, parent_index=i, fan=fan,
                    mg=mg, dg=dg, u=u, pm=pm, pd=pd,
                    captured_mag=captured_mag,
                )
            )
            gmag, gdelta = max(gmag, m), max(gdelta, d)
        aenv.gmags[n.id] = gmag
        aenv.gdeltas[n.id] = gdelta

    aenv.unsupported = tuple(sorted(set(unsupported)))
    return aenv


@dataclass
class _Ctx:
    """Everything a vjp rule needs, bundled to keep rule signatures flat."""

    graph: object
    entry: object
    parent_index: int
    fan: int
    mg: float
    dg: float
    u: float
    pm: object
    pd: object
    captured_mag: object

    def parent(self, i: int) -> int:
        return self.entry.parents[i]

    def pshape(self, i: int):
        return self.graph[self.parent(i)].shape

    def oshape(self):
        return self.graph[self.entry.out].shape


def _linear(c, L: float, cross: float, round_base: float):
    """Assemble a vjp envelope with an unbroadcast fan-in summation.

    ``L`` amplifies the incoming gradient (value and error alike);
    ``cross`` is the primal-error term per unit incoming gradient
    magnitude; ``round_base`` is the closure's per-element rounding mass
    (before the fan-in summation, whose mass is added here).
    """
    f = float(c.fan)
    gmag = _mul(f, _mul(L, c.mg))
    per = _mul(L, c.dg) + _mul(cross, c.mg) + _mul(c.u, round_base)
    gdelta = _mul(f, per) + _mul(c.u, _sum_seed(c.fan, _mul(L, c.mg)))
    return gmag, gdelta


def _exact(c):
    return c.mg, c.dg


def _r_add(c):
    return _linear(c, 1.0, 0.0, 0.0)


def _r_mul(c):
    other = c.parent(1 - c.parent_index)
    L = c.pm(other)
    return _linear(c, L, c.pd(other), _mul(L, c.mg))


def _r_div(c):
    a, b = c.parent(0), c.parent(1)
    from .envelope import _assumed_lo

    blo = _assumed_lo(c.graph[b], c.graph)
    if blo == 0.0:
        return _INF, _INF
    if c.parent_index == 0:
        L = 1.0 / blo
        cross = c.pd(b) / (blo * blo)
        return _linear(c, L, cross, _mul(L, c.mg))
    L = c.pm(a) / (blo * blo)
    cross = c.pd(a) / (blo * blo) + 2.0 * _mul(c.pm(a), c.pd(b)) / blo ** 3
    return _linear(c, L, cross, _mul(2.0 * L, c.mg))


def _r_pow(c):
    a, b = c.parent(0), c.parent(1)
    p_lo, p_hi = c.graph[b].vrange
    if p_lo != p_hi or math.isinf(p_lo):
        return _INF, _INF
    p = p_lo
    from .envelope import _assumed_lo

    ma, alo = c.pm(a), _assumed_lo(c.graph[a], c.graph)

    def apow(q: float) -> float:
        if q >= 0.0:
            return ma ** q if not math.isinf(ma) else _INF
        return _INF if alo == 0.0 else alo ** q

    L = abs(p) * apow(p - 1.0)
    cross = abs(p * (p - 1.0)) * apow(p - 2.0) * c.pd(a)
    return _linear(c, L, cross, _mul(2.0 * L, c.mg))


def _r_matmul(c):
    a, b = c.parent(0), c.parent(1)
    oshape = c.oshape()
    if c.parent_index == 0:
        k = int(oshape[-1])  # grad_a = g @ b.T contracts the out cols
        other, m_other, d_other = b, c.pm(b), c.pd(b)
    else:
        k = max(1, _size(oshape) // int(oshape[-1]))
        other, m_other, d_other = a, c.pm(a), c.pd(a)
    gmag = _mul(float(k), _mul(m_other, c.mg))
    gdelta = (
        _mul(float(k), _mul(m_other, c.dg) + _mul(d_other, c.mg))
        + _mul(c.u, _mul(float(k), _mul(float(k), _mul(m_other, c.mg))))
    )
    return gmag, gdelta


def _r_exp(c):
    out = c.entry.out
    L = c.pm(out)
    return _linear(c, L, c.pd(out), _mul(L, c.mg))


def _r_log(c):
    from .envelope import _assumed_lo

    a = c.parent(0)
    alo = _assumed_lo(c.graph[a], c.graph)
    if alo == 0.0:
        return _INF, _INF
    L = 1.0 / alo
    return _linear(c, L, c.pd(a) / (alo * alo), _mul(L, c.mg))


def _r_tanh(c):
    out = c.entry.out
    return _linear(c, 1.0, 2.0 * _mul(c.pm(out), c.pd(out)), 3.0 * c.mg)


def _r_sigmoid(c):
    out = c.entry.out
    return _linear(c, 0.25, c.pd(out), c.mg)


def _r_gelu(c):
    a = c.parent(0)
    return _linear(c, _GELU_L, _GELU_L2 * c.pd(a), 4.0 * _GELU_L * c.mg)


def _r_avg_pool(c):
    # grad / kernel^2, broadcast back: one division's rounding.
    return _linear(c, 1.0, 0.0, c.mg)


def _r_upsample(c):
    # Backward sums the scale^2 fan of each input cell.
    scale2 = max(1, _size(c.oshape()) // _size(c.pshape(0)))
    gmag = _mul(float(scale2), c.mg)
    gdelta = _mul(float(scale2), c.dg) + _mul(c.u, _sum_seed(scale2, c.mg))
    return gmag, gdelta


def _conv_counts(c):
    """(t_x, t_w, t_b): contraction lengths of the three conv vjps."""
    i = c.parent_index
    oshape = c.oshape()
    wshape = c.pshape(1)
    t_b = int(oshape[0]) * _size(oshape[2:])
    if i == 0:
        if len(wshape) == 4:
            # conv2d weight (c_out, c_in, k, k); transpose (c_in, c_out, k, k)
            c_out = int(oshape[1])
            k2 = _size(wshape[2:])
        else:
            c_out, k2 = int(oshape[1]), 1
        return c_out * k2, None, t_b
    if i == 1:
        xshape = c.pshape(0)
        return None, int(xshape[0]) * _size(xshape[2:]), t_b
    return None, None, t_b


def _r_conv(c):
    t_x, t_w, t_b = _conv_counts(c)
    i = c.parent_index
    if i == 2:  # bias: plain fan-in sum over batch x spatial
        gmag = _mul(float(t_b), c.mg)
        return gmag, _mul(float(t_b), c.dg) + _mul(
            c.u, _sum_seed(t_b, c.mg)
        )
    if i == 0:
        t, other = t_x, c.parent(1)
    else:
        t, other = t_w, c.parent(0)
    m_o, d_o = c.pm(other), c.pd(other)
    gmag = _mul(float(t), _mul(m_o, c.mg))
    gdelta = (
        _mul(float(t), _mul(m_o, c.dg) + _mul(d_o, c.mg))
        + _mul(c.u, _mul(float(t), _mul(float(t), _mul(m_o, c.mg))))
    )
    return gmag, gdelta


def _softmax_axis_len(c) -> int:
    oshape = c.oshape()
    return max((int(s) for s in oshape), default=1)


def _r_softmax(c):
    out = c.entry.out
    d = _softmax_axis_len(c)
    m_out = min(c.pm(out), 1.0)
    L = 2.0 * m_out
    cross = 4.0 * c.pd(out)
    round_base = _mul(float(d + 3), _mul(m_out, c.mg))
    return _linear(c, L, cross, round_base)


def _r_log_softmax(c):
    # grad = g - probs * sum(g): probs is the captured exp of the output.
    d = _softmax_axis_len(c)
    m_probs, d_probs = c.captured_mag(c.entry, "exp", 1.0)
    m_probs = min(m_probs, 1.0)
    L = 1.0 + _mul(float(d), m_probs)
    cross = _mul(float(d), d_probs)
    round_base = _sum_seed(d, c.mg) + 2.0 * _mul(L, c.mg)
    return _linear(c, L, cross, round_base)


def _norm_shared(c):
    """Shared lookups for batch_norm / layer_norm vjps."""
    is_mag, is_delta = c.captured_mag(c.entry, "divide", _INV_STD_FALLBACK)
    xh_mag, xh_delta = c.captured_mag(c.entry, "multiply", _INF)
    gamma = c.parent(1)
    return is_mag, is_delta, xh_mag, xh_delta, c.pm(gamma), c.pd(gamma)


def _norm_affine(c, xh_mag, xh_delta):
    """gamma/beta vjps: fan-in reductions of g (optionally times x_hat)."""
    r = max(1, _size(c.oshape()) // max(_size(c.pshape(c.parent_index)), 1))
    if c.parent_index == 2:  # beta: sum(g)
        gmag = _mul(float(r), c.mg)
        return gmag, _mul(float(r), c.dg) + _mul(c.u, _sum_seed(r, c.mg))
    # gamma: sum(g * x_hat)
    gmag = _mul(float(r), _mul(xh_mag, c.mg))
    gdelta = (
        _mul(float(r), _mul(xh_mag, c.dg) + _mul(xh_delta, c.mg))
        + _mul(c.u, _sum_seed(r, _mul(xh_mag, c.mg)))
    )
    return gmag, gdelta


def _r_batch_norm(c):
    is_mag, is_delta, xh_mag, xh_delta, g_mag, g_delta = _norm_shared(c)
    if c.parent_index != 0:
        return _norm_affine(c, xh_mag, xh_delta)
    # eval-mode x-grad: g * gamma * inv_std (the traced graphs run eval).
    L = _mul(g_mag, is_mag)
    cross = _mul(g_mag, is_delta) + _mul(is_mag, g_delta)
    return _linear(c, L, cross, _mul(2.0 * L, c.mg))


def _ln_coupled_inv_std(c, is_mag: float, is_delta: float):
    """Re-bound inv_std under the REL_VAR_FLOOR regime (see envelope.py).

    The captured divide's node-by-node forward delta pairs the maximal
    ``var`` error (at ``|x| = sup``) with the minimal denominator (at
    near-constant ``x``) — the same interval dependency problem the
    forward normalizer composite avoids.  With ``var >= rho * sup|x|^2``
    the extremes stay coupled:

    ``|d inv_std| = (s^3/2)|d var| <= (s^3/2)(4 sup|x| |dx| + round)
                 <= 2 s |dx| / (rho sup|x|)  +  (s^3/2) round``.
    """
    x = c.parent(0)
    mx, dx = c.pm(x), c.pd(x)
    if not math.isfinite(mx) or mx <= 0.0:
        return is_mag, is_delta
    eps = 1e-5
    for cid in c.entry.captured:
        node = c.graph[cid]
        if node.kind == "op" and node.op == "divide":
            den = c.graph[node.inputs[1]]
            if den.kind == "op" and den.op == "sqrt":
                found = _var_plus_eps(c.graph[den.inputs[0]], c.graph)
                if found is not None:
                    eps = found
            break
    rho = REL_VAR_FLOOR
    d = int(c.pshape(0)[-1])
    s = 1.0 / math.sqrt(rho * mx * mx + eps)
    var_seed = _sum_seed(d, mx * mx) / max(d, 1) + 3.0 * mx * mx
    coupled = 2.0 * s * dx / (rho * mx) + _mul(c.u, 0.5 * s ** 3 * var_seed)
    return min(is_mag, s), min(is_delta, coupled)


def _r_layer_norm(c):
    is_mag, is_delta, xh_mag, xh_delta, g_mag, g_delta = _norm_shared(c)
    if c.parent_index != 0:
        return _norm_affine(c, xh_mag, xh_delta)
    is_mag, is_delta = _ln_coupled_inv_std(c, is_mag, is_delta)
    d = int(c.pshape(0)[-1])
    shape_f = 2.0 + xh_mag * xh_mag
    L = _mul(is_mag, _mul(g_mag, shape_f))
    cross = (
        _mul(shape_f, _mul(g_mag, is_delta) + _mul(is_mag, g_delta))
        + _mul(is_mag, _mul(g_mag, 2.0 * _mul(xh_mag, xh_delta)))
    )
    round_base = (
        _mul(_sum_seed(d, _mul(g_mag, max(xh_mag, 1.0))), is_mag) / max(d, 1)
        + 6.0 * _mul(L, c.mg)
    )
    return _linear(c, L, cross, round_base)


_VJP_RULES = {
    "__add__": _r_add,
    "__sub__": _r_add,
    "__neg__": lambda c: _exact(c),
    "__mul__": _r_mul,
    "__truediv__": _r_div,
    "__pow__": _r_pow,
    "__matmul__": _r_matmul,
    "sum": _exact,        # broadcast of g back over the reduced axes
    "max": _exact,        # scatter to the argmax
    "reshape": _exact,
    "transpose": _exact,
    "__getitem__": _exact,  # slice-scatter; disjoint destinations
    "exp": _r_exp,
    "log": _r_log,
    "tanh": _r_tanh,
    "sigmoid": _r_sigmoid,
    "relu": _exact,       # mask
    "gelu": _r_gelu,
    "concatenate": _exact,
    "stack": _exact,
    "pad2d": _exact,      # slice
    "max_pool2d": _exact,  # scatter to the argmax
    "avg_pool2d": _r_avg_pool,
    "upsample_nearest": _r_upsample,
    "conv2d": _r_conv,
    "conv_transpose2d": _r_conv,
    "softmax": _r_softmax,
    "log_softmax": _r_log_softmax,
    "batch_norm": _r_batch_norm,
    "layer_norm": _r_layer_norm,
    "dropout": _exact,    # eval-mode identity never records; train: mask
}
