"""Numcheck driver and sealed report (``repro.numcheck/v1``).

``numcheck`` certifies rounding error for a target (a registry model,
``flow`` or ``all``):

1. trace the model forward+backward at the deployment dtype with
   concrete parameter intervals, propagate the forward envelope
   (:mod:`.envelope`) and the adjoint envelope (:mod:`.adjointenv`) at
   float32 *and* float64 roundoff, and certify the scale-relative
   error bound of every output and parameter gradient (REPRO801);
2. screen the graph for cancellation and ill-conditioned reductions
   (:mod:`.screens`, REPRO802/803);
3. compile the execution plan and certify every fusion group and
   dtype-pin decision (:mod:`.certificates`, REPRO804/805);
4. lint the untraced flow code for mixed-precision hazards
   (:mod:`.flowlint`, REPRO806–808);
5. shadow-execute float32 against the float64 oracle at each grid
   (:mod:`.shadow`) and fail REPRO809 when measurement exceeds the
   certificate — the certificate is a *bound*, so a violation means
   the envelope rules are wrong, not the model;
   REPRO810 (advisory) marks certificates with >100x slack.

The bundle is sealed like scalecheck: the fingerprint hashes the
deterministic slice only (certified bounds, certificate verdicts,
static finding counts — never measured errors, which depend on the
linked BLAS).  ``check_numcheck_baseline`` diffs that slice against
``benchmarks/numcheck_baseline.json``.  Static certification results
are cached content-addressed on the source fingerprint (the scaling
trace cache's discipline, same CI cache directory).
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.adjoint.graph import build_adjoint_graph
from repro.baselines import diff_counts, diff_entries
from repro.diagnostics import is_blocking
from repro.ir.passes import filter_noqa
from repro.ir.report import serialize_finding
from repro.ir.trace import trace_tape
from repro.lint.rules import LintDiagnostic
from repro.schedule.compiler import compile_plan

from .adjointenv import adjoint_envelope
from .certificates import certify_plan
from .envelope import UNIT_ROUNDOFF, forward_envelope
from .flowlint import lint_flow
from .screens import screen_cancellation, screen_reductions
from .shadow import shadow_run

__all__ = [
    "SCHEMA",
    "MODEL_NAMES",
    "CERT_GRIDS",
    "DEFAULT_BUDGET",
    "numcheck",
    "numcheck_model",
    "baseline_from_numcheck",
    "check_numcheck_baseline",
    "has_blocking",
]

SCHEMA = "repro.numcheck/v1"

#: Registry models, in certification order (kept in sync with
#: repro.models.MODEL_NAMES by a test, not an import, so the flow-lint
#: half works without the model stack importable).
MODEL_NAMES = ("unet", "pgnn", "pros2", "ours")

#: The two grids every certificate is issued and shadow-validated at.
CERT_GRIDS = (32, 64)

#: Relative-error budget for the certified float32 envelope.  This is a
#: *worst-case* bound budget, not a typical-error tolerance: first-order
#: envelopes accumulate the full contraction length of every matmul and
#: conv, and the attention-branch gradient bound saturates at the
#: softmax error cap (see docs/NUMERICS.md), so the budget sits well
#: above measured error (see REPRO810) but still rejects a graph whose
#: certified error growth is out of control (the registry's worst
#: certified bound is ~1.3e2; an unsound rule or a conditioning
#: regression lands at 1e20+ or inf, far past this ceiling).
DEFAULT_BUDGET = 1e3


def _advisory(code: str, message: str) -> LintDiagnostic:
    return LintDiagnostic("<numcheck>", 0, 0, code, message)


def _serialized(findings) -> list[dict]:
    out = []
    for f in findings:
        doc = serialize_finding(f)
        doc["blocking"] = is_blocking(f.code)
        out.append(doc)
    return out


def _traced(name: str, *, preset: str, grid: int, batch: int, seed: int):
    """Trace one registry model forward+tape at deployment dtype."""
    from repro.models.registry import build_model
    from repro.perf.report import DEPLOY_DTYPE, default_dtype

    with default_dtype(DEPLOY_DTYPE):
        model = build_model(name, preset=preset, grid=grid, seed=seed)
        graph, tape = trace_tape(
            model, (batch, 6, grid, grid), input_vrange=(0.0, 1.0),
            name=name, concrete_params=True,
        )
    graph.meta.update({"preset": preset, "grid": grid, "batch": batch})
    return graph, tape


def _certify_grid(
    name: str, *, preset: str, grid: int, batch: int, seed: int,
    budget: float,
) -> tuple[dict, list]:
    """Static certification of one model at one grid (cacheable)."""
    graph, tape = _traced(
        name, preset=preset, grid=grid, batch=batch, seed=seed
    )
    u32, u64 = UNIT_ROUNDOFF["float32"], UNIT_ROUNDOFF["float64"]
    fenv32 = forward_envelope(graph, u=u32)
    fenv64 = forward_envelope(graph, u=u64)
    adjoint = build_adjoint_graph(graph, tape)
    aenv32 = adjoint_envelope(adjoint, fenv32, u=u32)
    aenv64 = adjoint_envelope(adjoint, fenv64, u=u64)

    forward_abs = fenv32.output_delta() + fenv64.output_delta()
    forward_rel = fenv32.output_relative() + fenv64.output_relative()
    backward_rel = aenv32.param_relative() + aenv64.param_relative()

    # Per-parameter absolute gradient bounds, keyed by the model-local
    # parameter name (the graph prefixes the root module class name).
    grad_bounds: dict[str, float] = {}
    for pid, aid in adjoint.grad_of.items():
        leaf = graph[pid]
        if leaf.kind != "param":
            continue
        local = leaf.name.split(".", 1)[-1]
        grad_bounds[local] = aenv32.gdeltas[aid] + aenv64.gdeltas[aid]

    findings: list = []
    if forward_rel > budget:
        findings.append(_advisory(
            "REPRO801",
            f"{name} preset={preset} grid={grid}: certified forward "
            f"relative-error bound {forward_rel:.3e} exceeds the budget "
            f"{budget:.1e}",
        ))
    if backward_rel > budget:
        findings.append(_advisory(
            "REPRO801",
            f"{name} preset={preset} grid={grid}: certified backward "
            f"relative-error bound {backward_rel:.3e} exceeds the budget "
            f"{budget:.1e}",
        ))
    findings += filter_noqa(screen_cancellation(graph, fenv32))
    findings += filter_noqa(screen_reductions(graph, fenv32))

    plan = compile_plan(graph, tape)
    certified = certify_plan(plan, graph, fenv32, budget=budget)
    findings += certified["findings"]
    fusion_ok = sum(
        1 for c in certified["certificates"]
        if c["kind"] == "fusion" and c["error_neutral"]
    )
    pin_cert = next(
        c for c in certified["certificates"] if c["kind"] == "dtype_pin"
    )

    doc = {
        "grid": grid,
        "forward_rel": forward_rel,
        "backward_rel": backward_rel,
        "forward_abs": forward_abs,
        "grad_bounds": grad_bounds,
        "output_mag": max(
            (fenv32.nodes[i].mag for i in graph.outputs), default=0.0
        ),
        "unsupported": sorted(
            set(fenv32.unsupported)
            | set(aenv32.unsupported)
        ),
        "fusion_groups": len(plan.fusion_groups),
        "fusion_certified": fusion_ok,
        "dtype_pin": pin_cert,
        "certificates": certified["certificates"],
    }
    return doc, findings


def numcheck_model(
    name: str,
    *,
    preset: str = "fast",
    grids: tuple[int, ...] = CERT_GRIDS,
    batch: int = 1,
    seed: int = 0,
    budget: float = DEFAULT_BUDGET,
    measure: bool = True,
    cache_dir: str | None = None,
) -> dict:
    """Certify one registry model's rounding error at every grid."""
    findings: list = []
    per_grid: dict = {}
    for grid in grids:
        cached = _cache_get(
            cache_dir, name, preset=preset, grid=grid, batch=batch,
            seed=seed, budget=budget,
        )
        if cached is not None:
            doc, grid_findings = cached
        else:
            doc, diags = _certify_grid(
                name, preset=preset, grid=grid, batch=batch, seed=seed,
                budget=budget,
            )
            grid_findings = _serialized(diags)
            _cache_put(
                cache_dir, name, (doc, grid_findings), preset=preset,
                grid=grid, batch=batch, seed=seed, budget=budget,
            )
        findings.extend(grid_findings)

        if measure:
            shadow = shadow_run(
                name, preset=preset, grid=grid, batch=batch, seed=seed
            )
            doc = dict(doc)
            doc["measured"] = {
                "forward": shadow.forward_error,
                "backward": shadow.backward_error,
                "worst_param": shadow.worst_param,
            }
            findings.extend(
                _serialized(_shadow_verdict(name, doc, shadow))
            )
        per_grid[str(grid)] = doc

    return {
        "schema": SCHEMA,
        "model": name,
        "preset": preset,
        "budget": budget,
        "grids": per_grid,
        "findings": findings,
    }


def _shadow_verdict(name: str, doc: dict, shadow) -> list:
    """Compare measured error against the certificate (REPRO809/810).

    Both sides are *absolute* per-element errors — the only comparison
    where a violation is unambiguously an unsound envelope rule rather
    than a denominator mismatch.
    """
    findings = []
    where = f"{name} preset={shadow.preset} grid={shadow.grid}"
    cert_fwd = float(doc["forward_abs"])
    if shadow.forward_abs > cert_fwd:
        findings.append(_advisory(
            "REPRO809",
            f"{where}: measured forward error {shadow.forward_abs:.3e} "
            f"exceeds the certified envelope {cert_fwd:.3e}; the "
            "envelope rules are unsound for this graph",
        ))
    elif shadow.forward_abs > 0.0 and cert_fwd > 100.0 * shadow.forward_abs:
        findings.append(_advisory(
            "REPRO810",
            f"{where}: certified forward envelope has "
            f"{cert_fwd / shadow.forward_abs:.1e}x slack over the "
            "measured error (worst-case bound, expected to be "
            "conservative)",
        ))
    bounds = doc["grad_bounds"]
    worst_slack, any_measured = 0.0, False
    for pname, measured in sorted(shadow.grad_abs.items()):
        cert = bounds.get(pname)
        if cert is None:
            continue
        if measured > float(cert):
            findings.append(_advisory(
                "REPRO809",
                f"{where}: measured gradient error of {pname} "
                f"({measured:.3e}) exceeds its certified envelope "
                f"({float(cert):.3e}); the adjoint envelope rules are "
                "unsound for this graph",
            ))
        elif measured > 0.0:
            any_measured = True
            worst_slack = max(worst_slack, float(cert) / measured)
    if any_measured and worst_slack > 100.0 and not any(
        f.code == "REPRO809" for f in findings
    ):
        findings.append(_advisory(
            "REPRO810",
            f"{where}: certified gradient envelopes have up to "
            f"{worst_slack:.1e}x slack over the measured error "
            "(worst-case bound, expected to be conservative)",
        ))
    return findings


# -- content-addressed cache (scaling-cache discipline) ------------------------


def _fingerprint_sources() -> str:
    """Source fingerprint covering everything that determines a cert."""
    from repro.scaling.envelopes import _source_fingerprint

    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256(_source_fingerprint().encode())
    for pkg in ("numcheck", "schedule"):
        pkg_dir = os.path.join(root, pkg)
        for dirpath, dirnames, filenames in sorted(os.walk(pkg_dir)):
            dirnames.sort()
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                with open(os.path.join(dirpath, fname), "rb") as fh:
                    digest.update(fh.read())
    return digest.hexdigest()


def _cache_path(cache_dir, name, **key) -> str | None:
    if not cache_dir:
        return None
    payload = [name, sorted(key.items()), _fingerprint_sources()]
    digest = hashlib.sha256(
        json.dumps(payload, default=str).encode()
    ).hexdigest()[:32]
    return os.path.join(cache_dir, f"numcheck-{digest}.json")


def _cache_get(cache_dir, name, **key):
    path = _cache_path(cache_dir, name, **key)
    if path is None or not os.path.exists(path):
        return None
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        return doc["report"], doc["findings"]
    except (OSError, ValueError, KeyError):
        return None


def _cache_put(cache_dir, name, value, **key) -> None:
    path = _cache_path(cache_dir, name, **key)
    if path is None:
        return
    os.makedirs(cache_dir, exist_ok=True)
    doc, findings = value
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"report": doc, "findings": findings}, fh)


# -- bundle --------------------------------------------------------------------


def numcheck(
    target: str = "all",
    *,
    preset: str = "fast",
    grids: tuple[int, ...] = CERT_GRIDS,
    batch: int = 1,
    seed: int = 0,
    budget: float = DEFAULT_BUDGET,
    measure: bool = True,
    cache_dir: str | None = None,
    root: str | None = None,
) -> dict:
    """Certify rounding error for ``target``: a model, ``flow`` or ``all``."""
    if target == "all":
        names, do_flow = MODEL_NAMES, True
    elif target == "flow":
        names, do_flow = (), True
    else:
        names, do_flow = (target,), False

    models: dict = {}
    flow = None
    findings: list[dict] = []
    for name in names:
        report = numcheck_model(
            name, preset=preset, grids=grids, batch=batch, seed=seed,
            budget=budget, measure=measure, cache_dir=cache_dir,
        )
        models[name] = report
        findings.extend(report["findings"])
    if do_flow:
        linted = lint_flow(root)
        flow = {
            "findings": _serialized(linted["findings"]),
            "audited_files": linted["audited_files"],
        }
        findings.extend(flow["findings"])

    by_code: dict[str, int] = {}
    for f in findings:
        by_code[f["code"]] = by_code.get(f["code"], 0) + 1

    bundle = {
        "schema": SCHEMA,
        "target": target,
        "preset": preset,
        "grids": list(grids),
        "budget": budget,
        "models": models,
        "flow": flow,
        "by_code": dict(sorted(by_code.items())),
        "findings": findings,
        "failures": [f["message"] for f in findings if f["blocking"]],
    }
    bundle["fingerprint"] = _fingerprint(bundle)
    return bundle


def _fingerprint(bundle: dict) -> str:
    """Seal over the deterministic slice only (never measured errors)."""
    slice_ = baseline_from_numcheck(bundle)
    return hashlib.sha256(
        json.dumps(slice_, sort_keys=True).encode()
    ).hexdigest()


#: Codes whose counts depend on the measured (BLAS-/machine-dependent)
#: shadow errors — excluded from the byte-stable baseline slice, like
#: perf excludes REPRO310 wall-clock validation.
_MEASURED_CODES = ("REPRO809", "REPRO810")


def baseline_from_numcheck(bundle: dict) -> dict:
    """Reduce a numcheck bundle to its deterministic, path-free slice."""
    entries: list[dict] = []
    for name in sorted(bundle["models"]):
        report = bundle["models"][name]
        for grid in sorted(report["grids"], key=int):
            doc = report["grids"][grid]
            pin = doc["dtype_pin"]
            entries.append({
                "model": name,
                "preset": report["preset"],
                "grid": int(grid),
                "forward_rel": f"{doc['forward_rel']:.6e}",
                "backward_rel": f"{doc['backward_rel']:.6e}",
                "fusion_groups": doc["fusion_groups"],
                "fusion_certified": doc["fusion_certified"],
                "dtype_pin": pin["dtype"],
                "pin_within_budget": pin["within_budget"],
                "unsupported": list(doc["unsupported"]),
            })
    by_code = {
        code: n for code, n in bundle["by_code"].items()
        if code not in _MEASURED_CODES
    }
    doc: dict = {
        "schema": SCHEMA,
        "budget": f"{bundle['budget']:.1e}",
        "entries": entries,
        "by_code": by_code,
    }
    if bundle.get("flow") is not None:
        flow_codes: dict[str, int] = {}
        for f in bundle["flow"]["findings"]:
            flow_codes[f["code"]] = flow_codes.get(f["code"], 0) + 1
        doc["flow"] = {
            "audited_files": len(bundle["flow"]["audited_files"]),
            "by_code": dict(sorted(flow_codes.items())),
        }
    return doc


def check_numcheck_baseline(bundle: dict, baseline: dict) -> list[str]:
    """Diff the deterministic slice against a pinned baseline."""
    reduced = baseline_from_numcheck(bundle)
    problems = diff_entries(
        baseline.get("entries", []),
        reduced["entries"],
        key=("model", "preset", "grid"),
        verb="certified",
    )
    want_flow = baseline.get("flow")
    got_flow = reduced.get("flow")
    if want_flow is not None and got_flow is None:
        problems.append("flow lint in baseline but not run (target was a model)")
    elif want_flow is not None:
        problems += diff_counts(
            want_flow.get("by_code", {}),
            got_flow["by_code"],
            label="flow {key} count changed",
        )
    problems += diff_counts(
        baseline.get("by_code", {}),
        reduced["by_code"],
        label="{key} count changed",
    )
    return problems


def has_blocking(bundle: dict) -> bool:
    return any(is_blocking(f["code"]) for f in bundle["findings"])
