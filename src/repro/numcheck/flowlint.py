"""Mixed-precision accumulation lint over the untraced flow code.

The tracer sees the model graphs; the placer/router/feature pipeline is
plain numpy the envelope cannot reach.  These AST rules cover the three
precision hazards that matter there:

* ``REPRO806`` (blocking) — a ``cumsum``/``bincount`` accumulation
  whose operand is explicitly marked float32 (``astype(np.float32)``,
  ``dtype=np.float32``): grid-sized running sums at 24-bit precision
  lose low-order mass exactly where the congestion integrals
  (:mod:`repro.features.grids`) need it.  Untyped accumulations are not
  flagged — numpy's default float64 is the safe case.
* ``REPRO807`` (advisory) — ``np.exp`` without a visible stabilizer:
  no max/min shift in the argument, no clip/negation bound, no
  log-domain pairing.  The flow's real ``exp`` sites (the wirelength
  LSE kernels, the Metropolis acceptance, the log-domain gamma) all
  carry one of these shapes and stay silent.
* ``REPRO808`` (advisory) — an ``allclose``/``isclose`` tolerance
  literal tighter than float32 unit roundoff (2^-24): a comparison no
  float32 pipeline can be expected to pass is a latent flaky test, not
  a precision guarantee.

Findings honour per-line ``# noqa: REPRO80x`` suppressions via the
shared lint machinery.
"""

from __future__ import annotations

import ast
import os

from ..lint.rules import LintDiagnostic, _noqa_lines

__all__ = ["FLOW_PACKAGES", "lint_flow", "lint_source"]

#: Same flow surface the scaling nest lint certifies.
FLOW_PACKAGES = ("placement", "routing", "features", "netlist")

#: Float32 unit roundoff — the floor below which no float32 result can
#: be meaningfully compared.
_U32 = 2.0 ** -24

_ACCUMULATORS = ("cumsum", "bincount")
_GUARD_FRAGMENTS = ("max", "min", "log", "shift", "clip")


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _names_in(node: ast.AST):
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _is_float32_marked(node: ast.AST) -> bool:
    """Whether the expression subtree pins itself to float32."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "float32":
            return True
        if isinstance(sub, ast.Name) and sub.id.endswith("_f32"):
            return True
    return False


def _exp_is_guarded(arg: ast.AST) -> bool:
    if isinstance(arg, ast.UnaryOp) and isinstance(arg.op, ast.USub):
        return True  # exp(-x): bounded above by 1 for x >= 0 idioms
    if isinstance(arg, ast.BinOp) and isinstance(arg.op, (ast.Div, ast.Mult)):
        # exp(-x / t) and exp(-x * s): the Metropolis-acceptance shape.
        if _exp_is_guarded(arg.left):
            return True
    for name in _names_in(arg):
        low = name.lower()
        if any(frag in low for frag in _GUARD_FRAGMENTS):
            return True
    return False


def _tolerance_literals(call: ast.Call):
    for kw in call.keywords:
        if kw.arg in ("atol", "rtol") and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, float):
                yield kw.arg, kw.value.value


class _FlowVisitor(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.findings: list[LintDiagnostic] = []

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            LintDiagnostic(
                self.path, getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0), code, message,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name in _ACCUMULATORS:
            operands = list(node.args) + [
                kw.value for kw in node.keywords
            ]
            receiver = (
                [node.func.value]
                if isinstance(node.func, ast.Attribute)
                else []
            )
            if any(_is_float32_marked(o) for o in operands + receiver):
                self._report(
                    node, "REPRO806",
                    f"{name}() accumulates a float32-marked operand: "
                    "grid-sized running sums need float64 headroom "
                    "(accumulate first, demote after)",
                )
        elif name == "exp":
            if node.args and not _exp_is_guarded(node.args[0]):
                self._report(
                    node, "REPRO807",
                    "np.exp without a visible stabilizer (max-shift, "
                    "clip, negation bound or log-domain pairing); "
                    "unbounded arguments overflow float32 at ~88.7",
                )
        elif name in ("allclose", "isclose"):
            for arg, value in _tolerance_literals(node):
                if 0.0 < value < _U32:
                    self._report(
                        node, "REPRO808",
                        f"{name}({arg}={value:g}) is tighter than float32 "
                        f"unit roundoff ({_U32:.3g}); no float32 result "
                        "can certify to this tolerance",
                    )
        self.generic_visit(node)


def lint_source(source: str, path: str) -> list[LintDiagnostic]:
    """Lint one flow module's source text (exposed for fixtures/tests)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    visitor = _FlowVisitor(path)
    visitor.visit(tree)
    suppressed = _noqa_lines(source)
    kept = []
    for f in visitor.findings:
        codes = suppressed.get(f.line, ())
        if codes is None or (codes and f.code in codes):
            continue
        kept.append(f)
    return kept


def lint_flow(root: str | None = None) -> dict:
    """Lint every module of the flow packages under ``root``.

    ``root`` defaults to the installed ``repro`` package directory.
    Returns ``{"findings": [...], "audited_files": [...]}`` with
    repo-relative paths and a stable file order.
    """
    if root is None:
        # .../src/repro/numcheck/flowlint.py -> .../src
        root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
    findings: list[LintDiagnostic] = []
    audited: list[str] = []
    for package in FLOW_PACKAGES:
        pkg_dir = os.path.join(root, "repro", package)
        if not os.path.isdir(pkg_dir):
            continue
        for fname in sorted(os.listdir(pkg_dir)):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(pkg_dir, fname)
            rel = os.path.join("repro", package, fname)
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            audited.append(rel)
            findings.extend(lint_source(source, rel))
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return {"findings": findings, "audited_files": audited}
