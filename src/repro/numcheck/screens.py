"""Interval-domain screens for cancellation and ill-conditioned reductions.

These are *screens*, not proofs of failure: they flag sites where the
value intervals admit catastrophic relative-error growth.  Both are
advisory — the blocking verdicts come from the envelope bound (REPRO801)
and the shadow harness (REPRO809), which price the actual impact.

* ``REPRO802`` — a ``subtract`` whose operand intervals overlap with
  nonzero width, whose result interval contains 0, and whose operands
  carry incoming rounding error: the classic catastrophic-cancellation
  shape, where relative error is unbounded even though absolute error
  is fine.  Exact-centering idioms are exempt: the substrate's
  max-shifted softmax (``meta["max_shifted"]``) and mean/max centering
  ``x - reduce(x)``, both of which cancel *exactly rounded* quantities
  by design.
* ``REPRO803`` — a ``sum``/``mean`` over >= ``_MIN_COUNT`` mixed-sign
  summands whose total can reach 0: the condition number
  ``sum|x| / |sum x|`` is unbounded on the interval.  Softmax and
  log-sum-exp denominators never fire (their summands are ``exp`` >= 0).
"""

from __future__ import annotations

import math

from ..ir.graph import Graph, Node
from ..ir.passes import node_finding

__all__ = ["screen_cancellation", "screen_reductions"]

#: Reductions shorter than this cannot lose meaningful accuracy.
_MIN_COUNT = 16

_CENTER_REDUCTIONS = ("mean", "max", "amax", "min", "amin")


def _overlap_width(a: Node, b: Node) -> float:
    lo = max(a.vrange[0], b.vrange[0])
    hi = min(a.vrange[1], b.vrange[1])
    return hi - lo


def _is_centering(a: Node, b: Node, graph: Graph) -> bool:
    """``a - reduce(a)`` — subtracting a reduction of yourself."""
    if b.op in _CENTER_REDUCTIONS and a.id in b.inputs:
        return True
    # mean spelled as ``sum(a) * (1/n)`` — the Tensor.mean lowering.
    if b.op == "multiply":
        return any(
            graph[i].op == "sum" and a.id in graph[i].inputs
            for i in b.inputs
        )
    return False


def screen_cancellation(graph: Graph, fenv) -> list:
    """REPRO802 findings for ``graph`` given its forward envelope."""
    findings = []
    for node in graph:
        if node.kind != "op" or node.op != "subtract":
            continue
        if node.meta.get("max_shifted") is not None:
            continue
        a, b = (graph[i] for i in node.inputs)
        if a.kind != "op" and b.kind != "op":
            continue  # leaf-minus-leaf carries no incoming error
        if _is_centering(a, b, graph) or _is_centering(b, a, graph):
            continue
        lo, hi = node.vrange
        if not (lo <= 0.0 <= hi):
            continue
        width = _overlap_width(a, b)
        if not (width > 0.0) and not math.isnan(width):
            continue
        incoming = fenv.deltas.get(a.id, 0.0) + fenv.deltas.get(b.id, 0.0)
        if incoming == 0.0:
            continue
        findings.append(
            node_finding(
                node,
                "REPRO802",
                "catastrophic cancellation: operand intervals "
                f"[{a.vrange[0]:.3g}, {a.vrange[1]:.3g}] and "
                f"[{b.vrange[0]:.3g}, {b.vrange[1]:.3g}] overlap and the "
                "difference can reach 0 while the operands carry rounding "
                "error; restructure (factor, fused op, or compensated "
                "subtraction) or widen the tolerance budget",
            )
        )
    return findings


def screen_reductions(graph: Graph, fenv) -> list:
    """REPRO803 findings: ill-conditioned mixed-sign reductions."""
    findings = []
    for node in graph:
        if node.kind != "op" or node.op not in ("sum", "mean"):
            continue
        src = graph[node.inputs[0]]
        count = _reduce_count(node, src)
        if count < _MIN_COUNT:
            continue
        slo, shi = src.vrange
        if not (math.isfinite(slo) and math.isfinite(shi)):
            continue  # sign-only interval: the screen would be vacuous
        if not (slo < 0.0 < shi):
            continue  # single-sign summands: condition number is 1
        lo, hi = node.vrange
        if not (lo <= 0.0 <= hi):
            continue
        findings.append(
            node_finding(
                node,
                "REPRO803",
                f"ill-conditioned {node.op} over {count} mixed-sign "
                f"summands in [{slo:.3g}, {shi:.3g}]: the total can cancel "
                "to 0, so relative accuracy is unbounded; reorder into "
                "same-sign partial sums or accumulate in float64",
            )
        )
    return findings


def _reduce_count(node: Node, src: Node) -> int:
    axes = dict(node.attrs).get("axes")
    if axes is None:
        import numpy as np

        total = int(np.prod(src.shape)) if src.shape else 1
        out = int(np.prod(node.shape)) if node.shape else 1
        return max(1, total // max(out, 1))
    count = 1
    for ax in axes:
        count *= src.shape[ax]
    return int(count)
