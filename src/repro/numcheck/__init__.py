"""Static floating-point error-bound certification (REPRO801–810).

The last analyzer band before the IR executor: every other band
certifies shape, memory, cost or determinism — this one certifies
*rounding*.  First-order error envelopes over the forward and adjoint
graphs, interval screens for cancellation, numerical-safety
certificates for every planned fusion and dtype pin, a mixed-precision
lint over the untraced flow code, and a float64 shadow-execution
harness that validates every certificate by measurement.
"""

from repro.diagnostics import codes_for

from .adjointenv import AdjointEnvelope, adjoint_envelope
from .certificates import certify_plan
from .envelope import (
    UNIT_ROUNDOFF,
    ForwardEnvelope,
    NodeEnvelope,
    forward_envelope,
    unit_roundoff,
)
from .flowlint import FLOW_PACKAGES, lint_flow, lint_source
from .report import (
    CERT_GRIDS,
    DEFAULT_BUDGET,
    MODEL_NAMES,
    SCHEMA,
    baseline_from_numcheck,
    check_numcheck_baseline,
    has_blocking,
    numcheck,
    numcheck_model,
)
from .screens import screen_cancellation, screen_reductions
from .shadow import ShadowResult, shadow_run

#: All REPRO80x rules this package can emit, from the central registry.
NUMCHECK_RULES = codes_for("numcheck")

__all__ = [
    "SCHEMA",
    "MODEL_NAMES",
    "CERT_GRIDS",
    "DEFAULT_BUDGET",
    "NUMCHECK_RULES",
    "UNIT_ROUNDOFF",
    "NodeEnvelope",
    "ForwardEnvelope",
    "AdjointEnvelope",
    "ShadowResult",
    "FLOW_PACKAGES",
    "forward_envelope",
    "adjoint_envelope",
    "unit_roundoff",
    "certify_plan",
    "screen_cancellation",
    "screen_reductions",
    "lint_flow",
    "lint_source",
    "shadow_run",
    "numcheck",
    "numcheck_model",
    "baseline_from_numcheck",
    "check_numcheck_baseline",
    "has_blocking",
]
