"""Project-specific AST lint rules for the autograd substrate.

The hand-written backward closures in :mod:`repro.nn` are the class of
code where a silently wrong gradient destroys results without ever
crashing.  These rules encode the conventions that keep the tape
correct:

* ``REPRO001`` — in the backward closure of a broadcastable binary op
  (any op that coerces an operand with ``as_tensor``), every arithmetic
  gradient expression must pass through ``_unbroadcast`` before it is
  handed to ``_accumulate``.  Skipping it produces shape-dependent
  silent corruption the moment an operand is broadcast.
* ``REPRO002`` — ``Module.forward`` must stay on the tape: calling a
  ``np.*`` function directly on a forward input, or ``.numpy()`` on it,
  silently detaches the graph and zeroes every upstream gradient.
* ``REPRO003`` — wiring graph nodes by hand (assigning ``._backward`` /
  ``._parents``) without consulting ``is_grad_enabled()`` builds tape
  inside ``no_grad`` blocks, leaking memory and corrupting inference.
* ``REPRO004`` — mutable default arguments.
* ``REPRO005`` — in-place mutation of ``.data`` inside ``forward``
  methods or backward closures invalidates values captured by backward
  closures between the forward and backward passes.
* ``REPRO006`` — statically evident channel mismatches between
  consecutive layers constructed inside an ``nn.Sequential(...)`` call
  with literal channel counts.
* ``REPRO007`` — module-level imports that are never used.
* ``REPRO008`` — a backward closure reads a loop variable of its
  enclosing function (stale-closure: every recorded op sees the loop's
  final value) or mutates its own output gradient (``out.grad``) in
  place, corrupting accumulation for sibling consumers.

Diagnostics on a line containing ``# noqa: REPROxxx`` (or a bare
``# noqa``) are suppressed.

Rule codes and messages are allocated centrally in
:mod:`repro.diagnostics`; ``RULES`` here is the lint-component view.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.diagnostics import codes_for

__all__ = ["LintDiagnostic", "RULES", "lint_source", "lint_file", "lint_paths"]

# Layer constructors whose first two positional arguments are
# (in_channels/features, out_channels/features); used by REPRO006.
_CHANNEL_LAYERS = {"Conv2d", "ConvTranspose2d", "Linear", "ConvBNReLU"}

RULES = codes_for("lint")


@dataclass(frozen=True)
class LintDiagnostic:
    """One finding: ``path:line:col: code message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class _Context:
    path: str
    suppressed: dict[int, set[str] | None]  # line -> codes (None = all)
    diagnostics: list[LintDiagnostic] = field(default_factory=list)

    def report(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if line in self.suppressed:
            codes = self.suppressed[line]
            if codes is None or code in codes:
                return
        self.diagnostics.append(
            LintDiagnostic(self.path, line, getattr(node, "col_offset", 0), code, message)
        )


def _noqa_lines(source: str) -> dict[int, set[str] | None]:
    """Map line numbers to suppressed rule codes (``None`` = every rule)."""
    suppressed: dict[int, set[str] | None] = {}
    for i, text in enumerate(source.splitlines(), start=1):
        if "# noqa" not in text:
            continue
        _, _, tail = text.partition("# noqa")
        tail = tail.strip()
        if tail.startswith(":"):
            codes = {c.strip() for c in tail[1:].replace(",", " ").split() if c.strip()}
            suppressed[i] = codes or None
        else:
            suppressed[i] = None
    return suppressed


# -- small AST helpers ---------------------------------------------------------


def _call_name(node: ast.Call) -> str:
    """Trailing name of the called expression (``nn.Conv2d`` -> ``Conv2d``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _contains_call_to(tree: ast.AST, name: str) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _call_name(node) == name:
            return True
    return False


def _references_grad_of(expr: ast.AST, grad_holders: set[str]) -> bool:
    """Whether ``expr`` mentions ``<holder>.grad`` for a known holder."""
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "grad"
            and isinstance(node.value, ast.Name)
            and node.value.id in grad_holders
        ):
            return True
    return False


def _is_np_call(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    )


def _iter_functions(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _nested_backward_defs(func: ast.FunctionDef) -> list[ast.FunctionDef]:
    out = []
    for node in ast.walk(func):
        if isinstance(node, ast.FunctionDef) and node is not func and node.name == "backward":
            out.append(node)
    return out


# -- REPRO001: missing _unbroadcast --------------------------------------------


def _check_unbroadcast(tree: ast.AST, ctx: _Context) -> None:
    for func in _iter_functions(tree):
        if func.name == "backward":
            continue
        if not _contains_call_to(func, "as_tensor"):
            continue
        for backward in _nested_backward_defs(func):
            grad_holders = {a.arg for a in backward.args.args}
            for node in ast.walk(backward):
                if not (isinstance(node, ast.Call) and _call_name(node) == "_accumulate"):
                    continue
                if not node.args:
                    continue
                arg = node.args[0]
                # Arithmetic combinations of the output gradient must be
                # summed back to the operand shape; bare names, slices and
                # reduction calls are shape-preserving by construction.
                if not isinstance(arg, (ast.BinOp, ast.UnaryOp)):
                    continue
                if not _references_grad_of(arg, grad_holders):
                    continue
                ctx.report(
                    node,
                    "REPRO001",
                    "gradient expression is not wrapped in _unbroadcast(); "
                    "broadcast operands will receive wrongly-shaped "
                    "(or silently corrupted) gradients",
                )


# -- REPRO002: tape detach inside forward --------------------------------------


def _check_forward_detach(tree: ast.AST, ctx: _Context) -> None:
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        for func in cls.body:
            if not (isinstance(func, ast.FunctionDef) and func.name == "forward"):
                continue
            params = {a.arg for a in func.args.args[1:]}  # skip self
            params |= {a.arg for a in func.args.kwonlyargs}
            for node in ast.walk(func):
                if isinstance(node, ast.Call) and _is_np_call(node):
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id in params:
                            ctx.report(
                                node,
                                "REPRO002",
                                f"np.{_call_name(node)}() applied directly to "
                                f"forward input {arg.id!r} detaches the "
                                "autograd tape; use Tensor ops (or .data "
                                "explicitly if detaching is intended)",
                            )
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "numpy"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in params
                ):
                    ctx.report(
                        node,
                        "REPRO002",
                        f"{node.func.value.id}.numpy() inside forward leaks a "
                        "raw ndarray off the tape",
                    )


# -- REPRO003: graph wiring without grad guard ---------------------------------


def _check_grad_guard(tree: ast.AST, ctx: _Context) -> None:
    for func in _iter_functions(tree):
        wires: list[ast.AST] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            if isinstance(value, ast.Constant) and value.value is None:
                continue  # clearing the tape is always safe
            if isinstance(value, ast.Tuple) and not value.elts:
                continue  # `_parents = ()` is also a tape clear
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr in (
                    "_backward",
                    "_parents",
                ):
                    wires.append(node)
        if not wires:
            continue
        guarded = any(
            (isinstance(n, ast.Call) and _call_name(n) == "is_grad_enabled")
            or (isinstance(n, ast.Name) and n.id == "_GRAD_ENABLED")
            for n in ast.walk(func)
        )
        if guarded:
            continue
        for node in wires:
            ctx.report(
                node,
                "REPRO003",
                "graph node wired (_backward/_parents assigned) without "
                "consulting is_grad_enabled(); this records tape inside "
                "no_grad() blocks",
            )


# -- REPRO004: mutable default arguments ---------------------------------------


def _check_mutable_defaults(tree: ast.AST, ctx: _Context) -> None:
    for func in _iter_functions(tree):
        for default in list(func.args.defaults) + list(func.args.kw_defaults):
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and _call_name(default) in ("list", "dict", "set")
            ):
                ctx.report(
                    default,
                    "REPRO004",
                    f"mutable default argument in {func.name}() is shared "
                    "across calls",
                )


# -- REPRO005: in-place .data mutation in forward/backward ---------------------


def _check_inplace_data(tree: ast.AST, ctx: _Context) -> None:
    def is_data_attr(node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr == "data"

    def scan(func: ast.FunctionDef) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.AugAssign):
                target = node.target
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            else:
                continue
            # x.data += ... / x.data[...] = ... / x.data[...] += ...
            if is_data_attr(target) and isinstance(node, ast.AugAssign):
                pass
            elif isinstance(target, ast.Subscript) and is_data_attr(target.value):
                pass
            else:
                continue
            ctx.report(
                node,
                "REPRO005",
                "in-place mutation of Tensor data between forward and "
                "backward invalidates values captured by backward closures",
            )

    for cls in ast.walk(tree):
        if isinstance(cls, ast.ClassDef):
            for func in cls.body:
                if isinstance(func, ast.FunctionDef) and func.name == "forward":
                    scan(func)
    for func in _iter_functions(tree):
        if func.name == "backward" and func.args.args:
            scan(func)


# -- REPRO006: literal Sequential channel mismatch -----------------------------


def _literal_channels(call: ast.Call) -> tuple[int, int] | None:
    if _call_name(call) not in _CHANNEL_LAYERS or len(call.args) < 2:
        return None
    a, b = call.args[0], call.args[1]
    if isinstance(a, ast.Constant) and isinstance(a.value, int) and (
        isinstance(b, ast.Constant) and isinstance(b.value, int)
    ):
        return a.value, b.value
    return None


def _check_sequential_channels(tree: ast.AST, ctx: _Context) -> None:
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and _call_name(node) == "Sequential"):
            continue
        prev_out: int | None = None
        prev_name = ""
        for arg in node.args:
            if not isinstance(arg, ast.Call):
                prev_out = None
                continue
            channels = _literal_channels(arg)
            name = _call_name(arg)
            if channels is None:
                # Shape-preserving layers pass the count through; anything
                # unknown resets the chain.
                if name not in (
                    "ReLU", "GELU", "Sigmoid", "Identity", "Dropout",
                    "BatchNorm2d", "LayerNorm", "Softmax",
                ):
                    prev_out = None
                continue
            c_in, c_out = channels
            if prev_out is not None and c_in != prev_out:
                ctx.report(
                    arg,
                    "REPRO006",
                    f"{name} expects {c_in} input channels but previous "
                    f"{prev_name} produces {prev_out}",
                )
            prev_out, prev_name = c_out, name


# -- REPRO007: unused module-level imports -------------------------------------


def _check_unused_imports(tree: ast.Module, ctx: _Context, path: str) -> None:
    if Path(path).name == "__init__.py":
        return  # re-export modules intentionally import unused names
    imported: dict[str, ast.AST] = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                imported[name] = node
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imported[alias.asname or alias.name] = node
    if not imported:
        return
    exported: set[str] = set()
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            base = node.value
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                used.add(base.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            exported.add(node.value)  # __all__ strings, doctest names
    for name, node in imported.items():
        if name not in used and name not in exported:
            ctx.report(node, "REPRO007", f"imported name {name!r} is never used")


# -- REPRO008: stale-closure capture / out.grad aliasing in backward -----------


def _binding_names(target: ast.AST) -> set[str]:
    """Names bound by an assignment/loop target (handles tuple unpacking)."""
    names: set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
    return names


def _locals_of(func: ast.FunctionDef) -> set[str]:
    """Every name the function itself binds (params, assigns, loops, withs)."""
    bound = {a.arg for a in func.args.args + func.args.kwonlyargs}
    bound |= {a.arg for a in (func.args.vararg, func.args.kwarg) if a is not None}
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                bound |= _binding_names(target)
        elif isinstance(node, ast.For):
            bound |= _binding_names(node.target)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            bound |= _binding_names(node.optional_vars)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            bound.add(node.name)
    return bound


def _check_backward_closure_hazards(tree: ast.AST, ctx: _Context) -> None:
    for func in _iter_functions(tree):
        if func.name == "backward":
            continue
        for backward in _nested_backward_defs(func):
            # (a) stale-closure capture: the backward body reads a name
            # that is a for-loop target of the *enclosing* function.  By
            # the time any backward runs the loop has finished, so every
            # closure sees the final iteration's value.
            inner = {id(n) for n in ast.walk(backward)}
            outer_loop_vars: set[str] = set()
            for node in ast.walk(func):
                if isinstance(node, ast.For) and id(node) not in inner:
                    outer_loop_vars |= _binding_names(node.target)
            backward_locals = _locals_of(backward)
            captured = outer_loop_vars - backward_locals
            if captured:
                for node in ast.walk(backward):
                    if (
                        isinstance(node, ast.Name)
                        and isinstance(node.ctx, ast.Load)
                        and node.id in captured
                    ):
                        ctx.report(
                            node,
                            "REPRO008",
                            f"backward closure captures loop variable "
                            f"{node.id!r} of {func.name}(); all recorded "
                            "ops will see the loop's final value — bind it "
                            "via a default argument or a per-iteration "
                            "helper instead",
                        )
            # (b) in-place mutation of the closure's own output gradient:
            # sibling consumers accumulate into the same array, so writing
            # through out.grad corrupts their contributions.
            if not backward.args.args:
                continue
            holder = {backward.args.args[0].arg}
            for node in ast.walk(backward):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        base = target.value if isinstance(target, ast.Subscript) else target
                        if (
                            isinstance(base, ast.Attribute)
                            and base.attr == "grad"
                            and isinstance(base.value, ast.Name)
                            and base.value.id in holder
                        ):
                            ctx.report(
                                node,
                                "REPRO008",
                                "backward closure mutates out.grad in place; "
                                "the output gradient is shared with every "
                                "other consumer's accumulation — derive a "
                                "fresh array instead",
                            )
                elif isinstance(node, ast.Call):
                    mutating = isinstance(node.func, ast.Attribute) and node.func.attr in (
                        "at",  # np.<ufunc>.at(out.grad, ...)
                        "copyto",  # np.copyto(out.grad, ...)
                    )
                    hits = [
                        a for a in node.args[:1] if _references_grad_of(a, holder)
                    ] + [
                        k.value
                        for k in node.keywords
                        if k.arg == "out" and _references_grad_of(k.value, holder)
                    ]
                    if (mutating and hits) or (not mutating and any(
                        k.arg == "out" and _references_grad_of(k.value, holder)
                        for k in node.keywords
                    )):
                        ctx.report(
                            node,
                            "REPRO008",
                            "backward closure writes into out.grad via an "
                            "out=/in-place numpy call; the output gradient "
                            "is shared with every other consumer",
                        )


_CHECKS = (
    _check_unbroadcast,
    _check_forward_detach,
    _check_grad_guard,
    _check_mutable_defaults,
    _check_inplace_data,
    _check_sequential_channels,
    _check_backward_closure_hazards,
)


def lint_source(
    source: str, path: str = "<string>", rules: set[str] | None = None
) -> list[LintDiagnostic]:
    """Lint python ``source``; returns diagnostics sorted by position."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintDiagnostic(
                path, exc.lineno or 0, exc.offset or 0, "REPRO000",
                f"syntax error: {exc.msg}",
            )
        ]
    ctx = _Context(path=path, suppressed=_noqa_lines(source))
    for check in _CHECKS:
        check(tree, ctx)
    _check_unused_imports(tree, ctx, path)
    diagnostics = ctx.diagnostics
    if rules is not None:
        diagnostics = [d for d in diagnostics if d.code in rules]
    return sorted(diagnostics, key=lambda d: (d.path, d.line, d.col, d.code))


def lint_file(path: str | Path, rules: set[str] | None = None) -> list[LintDiagnostic]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path), rules)


def lint_paths(
    paths: list[str | Path], rules: set[str] | None = None
) -> list[LintDiagnostic]:
    """Lint files and/or directories (recursing into ``*.py``)."""
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    diagnostics: list[LintDiagnostic] = []
    for f in files:
        diagnostics.extend(lint_file(f, rules))
    return diagnostics
