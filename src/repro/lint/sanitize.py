"""Runtime autograd sanitizers: anomaly mode, mutation and leak detectors.

Opt-in debugging instrumentation for the :mod:`repro.nn` tape.  When no
detector is active the hooks in :mod:`repro.nn.tensor` are a single
``is None`` check per recorded op — zero cost for production training.

Inside ``with detect_anomaly():``

* every recorded op stores **provenance**: the op name (derived from its
  backward closure) and the user-code call site;
* the data of every operand is **fingerprinted** at record time and
  re-checked just before the op's backward closure runs, so in-place
  mutation between forward and backward raises
  :class:`InplaceMutationError` naming the op instead of silently
  corrupting gradients;
* after each backward closure runs, freshly written parent gradients are
  checked for NaN/Inf, so the **first** closure producing a non-finite
  gradient raises :class:`NonFiniteGradientError` with its provenance;
* ops whose graph was recorded but never consumed by a ``backward()``
  call are reported by :meth:`AnomalyDetector.leaked_ops` — the
  leaked-graph detector for training loops.

:func:`unused_parameter_report` is the companion for dead branches: it
lists parameters that received no gradient from the last backward pass.
"""

from __future__ import annotations

import traceback
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..nn import module as _module
from ..nn import tensor as _tensor

__all__ = [
    "AnomalyError",
    "NonFiniteGradientError",
    "InplaceMutationError",
    "GraphLeakError",
    "detect_anomaly",
    "AnomalyDetector",
    "unused_parameter_report",
]

_INTERNAL_DIRS = (
    str(Path(_tensor.__file__).parent),  # repro/nn
    str(Path(__file__).parent),  # repro/lint
)


class AnomalyError(RuntimeError):
    """Base class for sanitizer findings."""


class NonFiniteGradientError(AnomalyError):
    """A backward closure produced a NaN/Inf gradient."""


class InplaceMutationError(AnomalyError):
    """Operand data was mutated between forward and backward."""


class GraphLeakError(AnomalyError):
    """Recorded graph nodes were never consumed by ``backward()``."""


def _fingerprint(arr: np.ndarray):
    """Cheap content fingerprint used to detect in-place mutation.

    Full CRC for ordinarily-sized arrays; a strided byte sample for very
    large ones (heuristic, but in-place bugs rarely touch single
    elements).
    """
    if arr.size <= (1 << 20):
        data = np.ascontiguousarray(arr)
        return (arr.shape, zlib.crc32(data.tobytes()))
    flat = np.ascontiguousarray(arr).reshape(-1)
    sample = flat[:: max(1, flat.size // 4096)]
    return (arr.shape, zlib.crc32(sample.tobytes()))


def _op_name(backward) -> str:
    """``Tensor.__mul__.<locals>.backward`` -> ``Tensor.__mul__``."""
    qualname = getattr(backward, "__qualname__", "<op>")
    return qualname.replace(".<locals>.backward", "")


def _call_site() -> str:
    """First stack frame outside repro.nn / repro.lint (user code)."""
    for frame in reversed(traceback.extract_stack()):
        directory = str(Path(frame.filename).parent)
        if directory not in _INTERNAL_DIRS:
            return f"{frame.filename}:{frame.lineno} in {frame.name}"
    return "<unknown>"


@dataclass
class _OpRecord:
    op: str
    site: str
    parent_fps: list
    pre_bad: set[int] = field(default_factory=set)

    def describe(self) -> str:
        return f"{self.op} (created at {self.site})"


class AnomalyDetector:
    """Context manager installing the tape hook; see module docstring.

    Parameters
    ----------
    check_forward:
        Also raise when an op's *forward* output contains NaN (helps
        locate the origin before backward even runs).
    raise_on_leak:
        Raise :class:`GraphLeakError` on exit if recorded graph nodes
        were never freed by a ``backward()`` call.
    """

    def __init__(self, check_forward: bool = False, raise_on_leak: bool = False):
        self.check_forward = check_forward
        self.raise_on_leak = raise_on_leak
        # id(tensor) -> (tensor, record); strong refs keep ids stable.
        self._records: dict[int, tuple[_tensor.Tensor, _OpRecord]] = {}
        self._leaked: list[_OpRecord] = []

    # -- context protocol ------------------------------------------------------

    def __enter__(self) -> "AnomalyDetector":
        if _tensor._get_tape_hook() is not None:
            raise AnomalyError("an anomaly detector is already active")
        _tensor._set_tape_hook(self._hook)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _tensor._set_tape_hook(None)
        self._leaked = [
            record
            for tensor, record in self._records.values()
            if tensor._backward is not None
        ]
        self._records.clear()
        if self._leaked and self.raise_on_leak and exc_type is None:
            raise GraphLeakError(self.describe_leaks())

    # -- reporting -------------------------------------------------------------

    def leaked_ops(self) -> list[str]:
        """Ops recorded but never consumed by a backward pass."""
        return [record.describe() for record in self._leaked]

    def describe_leaks(self) -> str:
        ops = self.leaked_ops()
        listing = "\n  ".join(ops[:10])
        more = f"\n  ... and {len(ops) - 10} more" if len(ops) > 10 else ""
        return (
            f"{len(ops)} graph node(s) recorded but never freed by "
            f"backward(); wrap inference in no_grad() or call backward():"
            f"\n  {listing}{more}"
        )

    # -- the tape hook ---------------------------------------------------------

    def _hook(self, event: str, out, parents, backward) -> None:
        if event == "record":
            record = _OpRecord(
                op=_op_name(backward),
                site=_call_site(),
                parent_fps=[_fingerprint(p.data) for p in parents],
            )
            self._records[id(out)] = (out, record)
            if self.check_forward and not np.all(np.isfinite(out.data)):
                raise NonFiniteGradientError(
                    f"forward output of {record.describe()} contains "
                    "NaN/Inf values"
                )
            return

        entry = self._records.get(id(out))
        record = entry[1] if entry is not None else None
        if event == "pre":
            if record is not None:
                for i, (parent, fp) in enumerate(zip(parents, record.parent_fps)):
                    if _fingerprint(parent.data) != fp:
                        raise InplaceMutationError(
                            f"operand {i} of {record.describe()} was mutated "
                            "in place between forward and backward; the "
                            "gradient would be computed from the wrong values"
                        )
                record.pre_bad = {
                    i
                    for i, parent in enumerate(parents)
                    if parent.grad is not None
                    and not np.all(np.isfinite(parent.grad))
                }
            return

        if event == "post":
            op = record.describe() if record is not None else "<op>"
            pre_bad = record.pre_bad if record is not None else set()
            for i, parent in enumerate(parents):
                if not parent.requires_grad or parent.grad is None:
                    continue
                if i in pre_bad:
                    continue  # was already non-finite before this closure
                if not np.all(np.isfinite(parent.grad)):
                    raise NonFiniteGradientError(
                        f"backward of {op} produced a non-finite gradient "
                        f"for operand {i} (shape {parent.grad.shape}); this "
                        "is the first closure in the backward pass to do so"
                    )
            self._records.pop(id(out), None)


def detect_anomaly(
    check_forward: bool = False, raise_on_leak: bool = False
) -> AnomalyDetector:
    """``with detect_anomaly():`` — turn on all runtime sanitizers."""
    return AnomalyDetector(check_forward=check_forward, raise_on_leak=raise_on_leak)


def unused_parameter_report(module: _module.Module) -> list[str]:
    """Names of parameters that received no gradient from backward.

    Call right after ``loss.backward()``: a non-empty result means part
    of the model is disconnected from the loss (dead branch, detached
    tape, or an ablation switch you forgot about).
    """
    return [
        name
        for name, param in module.named_parameters()
        if param.requires_grad and param.grad is None
    ]
