"""Static analysis and runtime sanitizers for the numpy DL substrate.

Three independent layers of correctness tooling for :mod:`repro.nn`
(see docs/API.md, "Static analysis & sanitizers"):

* :mod:`repro.lint.rules` — project-specific AST lint rules that walk
  backward closures and ``Module.forward`` bodies for autograd hazards
  (missing ``_unbroadcast``, tape detaches, unguarded graph wiring,
  in-place mutation, literal ``Sequential`` channel mismatches).
* :mod:`repro.lint.shapes` — :class:`ShapeTracer`, an abstract
  interpreter that propagates symbolic ``(N, C, H, W)`` specs through
  module trees without executing numerics; ``build_model`` uses it to
  reject inconsistent architectures at construction time.
* :mod:`repro.lint.sanitize` — opt-in runtime anomaly mode
  (``with detect_anomaly():``) that records op provenance, pinpoints the
  first backward closure producing NaN/Inf gradients, detects in-place
  mutation between forward and backward, and reports leaked graphs and
  unused parameter gradients.

CLI: ``python -m repro.lint src/repro --models`` (also exposed as
``repro lint``).
"""

from .rules import RULES, LintDiagnostic, lint_file, lint_paths, lint_source
from .sanitize import (
    AnomalyDetector,
    AnomalyError,
    GraphLeakError,
    InplaceMutationError,
    NonFiniteGradientError,
    detect_anomaly,
    unused_parameter_report,
)
from .shapes import (
    PAPER_GRIDS,
    ShapeError,
    ShapeSpec,
    ShapeTracer,
    register_shape_rule,
    trace_module,
    validate_model,
    validate_registry_models,
)

__all__ = [
    "RULES",
    "LintDiagnostic",
    "lint_source",
    "lint_file",
    "lint_paths",
    "ShapeSpec",
    "ShapeError",
    "ShapeTracer",
    "register_shape_rule",
    "trace_module",
    "validate_model",
    "validate_registry_models",
    "PAPER_GRIDS",
    "AnomalyError",
    "AnomalyDetector",
    "NonFiniteGradientError",
    "InplaceMutationError",
    "GraphLeakError",
    "detect_anomaly",
    "unused_parameter_report",
]
