"""Static shape inference for :mod:`repro.nn` modules.

:class:`ShapeTracer` is an abstract interpreter over *shapes*: it
propagates a symbolic ``(N, C, H, W)`` spec through a module tree using
per-layer transfer functions, validating every constraint the real
forward pass would enforce (channel counts, pooling divisibility,
encoder/decoder skip agreement, token counts) — without allocating
activations or executing any numerics.  This is what lets
``build_model`` reject a mismatched architecture at construction time
instead of twenty minutes into a training run.

Transfer rules for new module types register with
:func:`register_shape_rule`; composite model rules (the four Table-I
contenders) are installed lazily so importing :mod:`repro.lint` does not
drag in :mod:`repro.models`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .. import nn

__all__ = [
    "ShapeSpec",
    "ShapeError",
    "ShapeTracer",
    "register_shape_rule",
    "trace_module",
    "validate_model",
    "validate_registry_models",
    "PAPER_GRIDS",
]

PAPER_GRIDS = (64, 128, 256, 512)


class ShapeError(ValueError):
    """A statically detectable shape/architecture inconsistency."""


@dataclass(frozen=True)
class ShapeSpec:
    """Abstract tensor value: a shape (and nothing else)."""

    shape: tuple[int, ...]

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def __str__(self) -> str:
        return "x".join(str(d) for d in self.shape)


_RULES: dict[type, Callable] = {}
_MODEL_RULES_LOADED = False


def register_shape_rule(module_type: type):
    """Class decorator-style registration of a shape transfer function.

    The rule receives ``(tracer, module, spec)`` and returns the output
    :class:`ShapeSpec`, raising :class:`ShapeError` (via
    ``tracer.fail``) on any violated constraint.
    """

    def decorator(fn: Callable) -> Callable:
        _RULES[module_type] = fn
        return fn

    return decorator


class ShapeTracer:
    """Propagates :class:`ShapeSpec` values through a module tree."""

    def __init__(self) -> None:
        self._path: list[str] = []

    # -- error reporting -------------------------------------------------------

    @property
    def path(self) -> str:
        return ".".join(self._path) or "<root>"

    def fail(self, message: str) -> None:
        raise ShapeError(f"{self.path}: {message}")

    def expect(self, condition: bool, message: str) -> None:
        if not condition:
            self.fail(message)

    # -- dispatch --------------------------------------------------------------

    def trace(self, module: nn.Module, spec: ShapeSpec, *extra: ShapeSpec) -> ShapeSpec:
        """Apply ``module``'s transfer rule to ``spec``."""
        _ensure_model_rules()
        for klass in type(module).__mro__:
            rule = _RULES.get(klass)
            if rule is not None:
                return rule(self, module, spec, *extra)
        self.fail(
            f"no shape rule registered for {type(module).__name__}; "
            "add one with repro.lint.register_shape_rule"
        )
        raise AssertionError  # unreachable; fail() always raises

    def child(
        self, name: str, module: nn.Module, spec: ShapeSpec, *extra: ShapeSpec
    ) -> ShapeSpec:
        """Trace a named child, extending the diagnostic path."""
        self._path.append(name)
        try:
            return self.trace(module, spec, *extra)
        finally:
            self._path.pop()

    # -- shared helpers --------------------------------------------------------

    def nchw(self, spec: ShapeSpec) -> tuple[int, int, int, int]:
        self.expect(
            spec.ndim == 4, f"expected an NCHW tensor, got {spec.ndim}-d {spec}"
        )
        return spec.shape  # type: ignore[return-value]

    def concat(self, specs: list[ShapeSpec], axis: int = 1) -> ShapeSpec:
        """Concatenate along ``axis``; all other dims must agree."""
        first = specs[0]
        for other in specs[1:]:
            self.expect(
                other.ndim == first.ndim,
                f"concat rank mismatch: {first} vs {other}",
            )
            for dim in range(first.ndim):
                if dim == axis % first.ndim:
                    continue
                self.expect(
                    other.shape[dim] == first.shape[dim],
                    f"concat shape mismatch on axis {dim}: {first} vs {other} "
                    "(encoder/decoder skip shapes must agree)",
                )
        shape = list(first.shape)
        shape[axis] = sum(s.shape[axis] for s in specs)
        return ShapeSpec(tuple(shape))


# -- leaf layer rules ----------------------------------------------------------


@register_shape_rule(nn.Conv2d)
def _conv2d(tracer: ShapeTracer, m: nn.Conv2d, spec: ShapeSpec) -> ShapeSpec:
    n, c, h, w = tracer.nchw(spec)
    tracer.expect(
        c == m.in_channels,
        f"Conv2d expects {m.in_channels} input channels, got {c}",
    )
    k, s, p = m.kernel_size, m.stride, m.padding
    tracer.expect(
        h + 2 * p >= k and w + 2 * p >= k,
        f"spatial dims {(h, w)} smaller than kernel {k} (padding {p})",
    )
    out_h = (h + 2 * p - k) // s + 1
    out_w = (w + 2 * p - k) // s + 1
    return ShapeSpec((n, m.out_channels, out_h, out_w))


@register_shape_rule(nn.ConvTranspose2d)
def _conv_transpose2d(
    tracer: ShapeTracer, m: nn.ConvTranspose2d, spec: ShapeSpec
) -> ShapeSpec:
    n, c, h, w = tracer.nchw(spec)
    tracer.expect(
        c == m.in_channels,
        f"ConvTranspose2d expects {m.in_channels} input channels, got {c}",
    )
    out_h = (h - 1) * m.stride + m.kernel_size - 2 * m.padding
    out_w = (w - 1) * m.stride + m.kernel_size - 2 * m.padding
    tracer.expect(
        out_h > 0 and out_w > 0,
        f"non-positive output size {(out_h, out_w)}",
    )
    return ShapeSpec((n, m.out_channels, out_h, out_w))


@register_shape_rule(nn.Linear)
def _linear(tracer: ShapeTracer, m: nn.Linear, spec: ShapeSpec) -> ShapeSpec:
    tracer.expect(spec.ndim >= 1, "Linear input must have at least 1 dim")
    tracer.expect(
        spec.shape[-1] == m.in_features,
        f"Linear expects {m.in_features} input features, got {spec.shape[-1]}",
    )
    return ShapeSpec(spec.shape[:-1] + (m.out_features,))


@register_shape_rule(nn.BatchNorm2d)
def _batch_norm2d(tracer: ShapeTracer, m: nn.BatchNorm2d, spec: ShapeSpec) -> ShapeSpec:
    _, c, _, _ = tracer.nchw(spec)
    tracer.expect(
        c == m.num_features,
        f"BatchNorm2d expects {m.num_features} channels, got {c}",
    )
    return spec


@register_shape_rule(nn.LayerNorm)
def _layer_norm(tracer: ShapeTracer, m: nn.LayerNorm, spec: ShapeSpec) -> ShapeSpec:
    tracer.expect(
        spec.shape[-1] == m.dim,
        f"LayerNorm expects trailing dim {m.dim}, got {spec.shape[-1]}",
    )
    return spec


@register_shape_rule(nn.GroupNorm)
def _group_norm(tracer: ShapeTracer, m: nn.GroupNorm, spec: ShapeSpec) -> ShapeSpec:
    _, c, _, _ = tracer.nchw(spec)
    tracer.expect(
        c == m.num_channels,
        f"GroupNorm expects {m.num_channels} channels, got {c}",
    )
    return spec


def _identity_rule(tracer: ShapeTracer, m: nn.Module, spec: ShapeSpec) -> ShapeSpec:
    return spec


for _klass in (nn.ReLU, nn.GELU, nn.Sigmoid, nn.Softmax, nn.Dropout, nn.Identity):
    register_shape_rule(_klass)(_identity_rule)


@register_shape_rule(nn.MaxPool2d)
@register_shape_rule(nn.AvgPool2d)
def _pool2d(tracer: ShapeTracer, m, spec: ShapeSpec) -> ShapeSpec:
    n, c, h, w = tracer.nchw(spec)
    k = m.kernel_size
    tracer.expect(
        h % k == 0 and w % k == 0,
        f"spatial dims {(h, w)} not divisible by pooling kernel {k}",
    )
    return ShapeSpec((n, c, h // k, w // k))


@register_shape_rule(nn.UpsampleNearest)
def _upsample(tracer: ShapeTracer, m: nn.UpsampleNearest, spec: ShapeSpec) -> ShapeSpec:
    n, c, h, w = tracer.nchw(spec)
    return ShapeSpec((n, c, h * m.scale, w * m.scale))


@register_shape_rule(nn.Sequential)
def _sequential(tracer: ShapeTracer, m: nn.Sequential, spec: ShapeSpec) -> ShapeSpec:
    for i, layer in enumerate(m):
        spec = tracer.child(str(i), layer, spec)
    return spec


@register_shape_rule(nn.ConvBNReLU)
def _conv_bn_relu(tracer: ShapeTracer, m: nn.ConvBNReLU, spec: ShapeSpec) -> ShapeSpec:
    spec = tracer.child("conv", m.conv, spec)
    return tracer.child("bn", m.bn, spec)


@register_shape_rule(nn.MultiHeadSelfAttention)
def _mhsa(tracer: ShapeTracer, m: nn.MultiHeadSelfAttention, spec: ShapeSpec) -> ShapeSpec:
    tracer.expect(
        spec.ndim == 3, f"attention expects (batch, tokens, dim), got {spec}"
    )
    tracer.expect(
        spec.shape[-1] == m.dim,
        f"attention expects embedding dim {m.dim}, got {spec.shape[-1]}",
    )
    return spec


@register_shape_rule(nn.TransformerLayer)
def _transformer_layer(
    tracer: ShapeTracer, m: nn.TransformerLayer, spec: ShapeSpec
) -> ShapeSpec:
    a = tracer.child("attn", m.attn, tracer.child("norm1", m.norm1, spec))
    h = tracer.child("fc1", m.fc1, tracer.child("norm2", m.norm2, a))
    h = tracer.child("fc2", m.fc2, h)
    tracer.expect(h.shape == spec.shape, f"residual mismatch: {h} vs {spec}")
    return spec


@register_shape_rule(nn.TransformerStack)
def _transformer_stack(
    tracer: ShapeTracer, m: nn.TransformerStack, spec: ShapeSpec
) -> ShapeSpec:
    n, c, h, w = tracer.nchw(spec)
    tracer.expect(
        c == m.in_channels,
        f"TransformerStack expects {m.in_channels} channels, got {c}",
    )
    tracer.expect(
        h * w == m.tokens,
        f"TransformerStack expects {m.tokens} tokens, got {h}x{w}={h * w}",
    )
    z = ShapeSpec((n, h * w, c))
    z = tracer.child("embed", m.embed, z)
    tracer.expect(
        m.pos_embed.shape == (1, m.tokens, m.embed_dim),
        f"position embedding {m.pos_embed.shape} does not cover "
        f"(1, {m.tokens}, {m.embed_dim})",
    )
    for i, layer in enumerate(m.layers):
        z = tracer.child(f"layers.{i}", layer, z)
    z = tracer.child("norm", m.norm, z)
    z = tracer.child("unembed", m.unembed, z)
    tracer.expect(z.shape == (n, h * w, c), f"unembed produced {z}")
    return spec


# -- model composite rules (registered lazily) ---------------------------------


def _ensure_model_rules() -> None:
    """Install transfer rules for :mod:`repro.models` composites."""
    global _MODEL_RULES_LOADED
    if _MODEL_RULES_LOADED:
        return
    _MODEL_RULES_LOADED = True

    from ..models.mfa import ChannelAttention, MFABlock, PositionAttention
    from ..models.ours import MFATransformerNet, ResNetDown, UpBlock
    from ..models.pgnn import GridGraphConv, PGNNNet
    from ..models.pros import ProsNet, ResidualStage
    from ..models.unet import DoubleConv, UNet

    @register_shape_rule(PositionAttention)
    def _pam(tracer: ShapeTracer, m: PositionAttention, spec: ShapeSpec) -> ShapeSpec:
        n, c, h, w = tracer.nchw(spec)
        tracer.expect(
            c == m.channels, f"PAM expects {m.channels} channels, got {c}"
        )
        factor = m._pool_factor(h, w)
        if factor > 1:
            tracer.expect(
                h % factor == 0 and w % factor == 0,
                f"PAM token pooling factor {factor} does not divide "
                f"spatial dims {(h, w)}",
            )
            pooled = ShapeSpec((n, c, h // factor, w // factor))
        else:
            pooled = spec
        tracer.child("query_conv", m.query_conv, pooled)
        tracer.child("key_conv", m.key_conv, pooled)
        tracer.child("value_conv", m.value_conv, pooled)
        return spec

    @register_shape_rule(ChannelAttention)
    def _cam(tracer: ShapeTracer, m: ChannelAttention, spec: ShapeSpec) -> ShapeSpec:
        _, c, _, _ = tracer.nchw(spec)
        tracer.expect(
            c == m.channels, f"CAM expects {m.channels} channels, got {c}"
        )
        return spec

    @register_shape_rule(MFABlock)
    def _mfa_block(tracer: ShapeTracer, m: MFABlock, spec: ShapeSpec) -> ShapeSpec:
        _, c, _, _ = tracer.nchw(spec)
        tracer.expect(
            c == m.channels, f"MFA block expects {m.channels} channels, got {c}"
        )
        p = tracer.child("pam", m.pam, tracer.child("pam_reduce", m.pam_reduce, spec))
        q = tracer.child("cam", m.cam, tracer.child("cam_reduce", m.cam_reduce, spec))
        tracer.expect(p.shape == q.shape, f"PAM/CAM branch mismatch: {p} vs {q}")
        fused = tracer.child("restore", m.restore, p)
        tracer.expect(
            fused.shape == spec.shape,
            f"MFA residual mismatch: restored {fused} vs input {spec}",
        )
        return spec

    @register_shape_rule(ResNetDown)
    def _resnet_down(tracer: ShapeTracer, m: ResNetDown, spec: ShapeSpec) -> ShapeSpec:
        out = tracer.child("bn1", m.bn1, tracer.child("conv1", m.conv1, spec))
        out = tracer.child("bn2", m.bn2, tracer.child("conv2", m.conv2, out))
        res = tracer.child("bn_sc", m.bn_sc, tracer.child("shortcut", m.shortcut, spec))
        tracer.expect(
            out.shape == res.shape,
            f"residual add mismatch: main {out} vs shortcut {res}",
        )
        return out

    def _up_block(
        tracer: ShapeTracer, m: UpBlock, spec: ShapeSpec, skip: ShapeSpec | None
    ) -> ShapeSpec:
        x = tracer.child("up", m.up, spec)
        if skip is not None:
            tracer.expect(
                skip.shape[1] == m.skip_ch,
                f"skip carries {skip.shape[1]} channels but UpBlock was "
                f"built for {m.skip_ch}",
            )
            x = tracer.concat([x, skip], axis=1)
        else:
            tracer.expect(
                m.skip_ch == 0,
                f"UpBlock built for {m.skip_ch} skip channels called "
                "without a skip",
            )
        return tracer.child("fuse", m.fuse, x)

    register_shape_rule(UpBlock)(_up_block)

    @register_shape_rule(DoubleConv)
    def _double_conv(tracer: ShapeTracer, m: DoubleConv, spec: ShapeSpec) -> ShapeSpec:
        return tracer.child("block", m.block, spec)

    @register_shape_rule(ResidualStage)
    def _residual_stage(
        tracer: ShapeTracer, m: ResidualStage, spec: ShapeSpec
    ) -> ShapeSpec:
        x = tracer.child("down", m.down, spec)
        out = tracer.child("bn1", m.bn1, tracer.child("conv1", m.conv1, x))
        out = tracer.child("bn2", m.bn2, tracer.child("conv2", m.conv2, out))
        tracer.expect(
            out.shape == x.shape, f"residual add mismatch: {out} vs {x}"
        )
        return out

    @register_shape_rule(GridGraphConv)
    def _grid_graph_conv(
        tracer: ShapeTracer, m: GridGraphConv, spec: ShapeSpec
    ) -> ShapeSpec:
        n, c, h, w = tracer.nchw(spec)
        tracer.expect(
            c == m.in_ch, f"GridGraphConv expects {m.in_ch} channels, got {c}"
        )
        s = tracer.child("w_self", m.w_self, spec)
        g = tracer.child("w_neigh", m.w_neigh, spec)
        tracer.expect(s.shape == g.shape, f"self/neigh mismatch: {s} vs {g}")
        return s

    @register_shape_rule(UNet)
    def _unet(tracer: ShapeTracer, m: UNet, spec: ShapeSpec) -> ShapeSpec:
        e1 = tracer.child("enc1", m.enc1, spec)
        e2 = tracer.child("enc2", m.enc2, tracer.child("pool", m.pool, e1))
        e3 = tracer.child("enc3", m.enc3, tracer.child("pool", m.pool, e2))
        e4 = tracer.child("enc4", m.enc4, tracer.child("pool", m.pool, e3))
        d3 = tracer.child(
            "dec3", m.dec3, tracer.concat([tracer.child("up3", m.up3, e4), e3])
        )
        d2 = tracer.child(
            "dec2", m.dec2, tracer.concat([tracer.child("up2", m.up2, d3), e2])
        )
        d1 = tracer.child(
            "dec1", m.dec1, tracer.concat([tracer.child("up1", m.up1, d2), e1])
        )
        return tracer.child("head", m.head, d1)

    @register_shape_rule(PGNNNet)
    def _pgnn(tracer: ShapeTracer, m: PGNNNet, spec: ShapeSpec) -> ShapeSpec:
        h = spec
        for i, layer in enumerate(m.gnn):
            h = tracer.child(f"gnn.{i}", layer, h)
        return tracer.child("unet", m.unet, tracer.concat([spec, h]))

    @register_shape_rule(ProsNet)
    def _pros(tracer: ShapeTracer, m: ProsNet, spec: ShapeSpec) -> ShapeSpec:
        s1 = tracer.child("stage1", m.stage1, spec)
        s2 = tracer.child("stage2", m.stage2, s1)
        s3 = tracer.child("stage3", m.stage3, s2)
        s4 = tracer.child("stage4", m.stage4, s3)
        u1 = tracer.child("up1", m.up1, s4, s3)
        u2 = tracer.child("up2", m.up2, u1, s2)
        u3 = tracer.child("up3", m.up3, u2, s1)
        return tracer.child("up4", m.up4, u3, None)

    @register_shape_rule(MFATransformerNet)
    def _ours(tracer: ShapeTracer, m: MFATransformerNet, spec: ShapeSpec) -> ShapeSpec:
        d1 = tracer.child("down1", m.down1, spec)
        d2 = tracer.child("down2", m.down2, d1)
        d3 = tracer.child("down3", m.down3, d2)
        d4 = tracer.child("down4", m.down4, d3)
        s1 = tracer.child("mfa1", m.mfa1, d1)
        s2 = tracer.child("mfa2", m.mfa2, d2)
        s3 = tracer.child("mfa3", m.mfa3, d3)
        s4 = tracer.child("mfa4", m.mfa4, d4)
        z = tracer.child("mfa_bottleneck", m.mfa_bottleneck, s4)
        z = tracer.child("transformer", m.transformer, z)
        u1 = tracer.child("up1", m.up1, z, s3)
        u2 = tracer.child("up2", m.up2, u1, s2)
        u3 = tracer.child("up3", m.up3, u2, s1)
        return tracer.child("up4", m.up4, u3, None)


# -- public entry points -------------------------------------------------------


def trace_module(
    module: nn.Module, in_shape: tuple[int, ...]
) -> ShapeSpec:
    """Infer the output shape of ``module`` for input ``in_shape``."""
    return ShapeTracer().trace(module, ShapeSpec(tuple(in_shape)))


def validate_model(model: nn.Module, in_shape: tuple[int, ...]) -> ShapeSpec:
    """Statically validate ``model`` and check the logit-map contract.

    For :class:`~repro.models.base.CongestionModel` subclasses the output
    must be ``(N, num_classes, H, W)`` with the input's spatial dims.
    Raises :class:`ShapeError` on any inconsistency.
    """
    out = trace_module(model, in_shape)
    from ..models.base import CongestionModel

    if isinstance(model, CongestionModel):
        n, _, h, w = in_shape
        expected = (n, model.num_classes, h, w)
        if out.shape != expected:
            raise ShapeError(
                f"{type(model).__name__}: output {out} does not match the "
                f"(N, {model.num_classes}, H, W) logit contract {expected}"
            )
    return out


def validate_registry_models(
    grids: tuple[int, ...] = PAPER_GRIDS,
    preset: str = "paper",
    in_channels: int = 6,
) -> list[tuple[str, int, ShapeSpec]]:
    """Statically validate every registry model at every grid size.

    Builds each of the four Table-I models (cheap: parameters only, no
    activations) and traces a ``(1, in_channels, grid, grid)`` spec
    through it.  Returns ``(name, grid, out_spec)`` rows; raises
    :class:`ShapeError` on the first failure.
    """
    from ..models.registry import MODEL_NAMES, build_model

    rows = []
    for name in MODEL_NAMES:
        for grid in grids:
            try:
                model = build_model(name, preset, grid=grid, validate=False)
            except ValueError as exc:
                # Constructors may reject a grid outright (e.g. 'ours'
                # requires a multiple of 16); report it as a shape
                # failure rather than crashing the gate.
                raise ShapeError(f"{name} @ {grid}: {exc}") from exc
            out = validate_model(model, (1, in_channels, grid, grid))
            rows.append((name, grid, out))
    return rows
