"""Command-line entry point: ``python -m repro.lint``.

Two independent gates, both usable from CI:

* ``python -m repro.lint <paths...>`` — run the project AST lint rules
  over files/directories; prints ``path:line:col: CODE message`` per
  finding and exits 1 if any fire.
* ``python -m repro.lint --models`` — statically validate the four
  registry models with :class:`~repro.lint.shapes.ShapeTracer` at every
  paper grid size (no numerics executed).

The two can be combined; the exit code is non-zero if either gate
fails.
"""

from __future__ import annotations

import argparse
import sys

from .rules import RULES, lint_paths
from .shapes import PAPER_GRIDS, ShapeError, validate_registry_models

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="static autograd lint + shape checker for the repro codebase",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="python files or directories to lint (recurses into *.py)",
    )
    parser.add_argument(
        "--models", action="store_true",
        help="statically validate the registry models with ShapeTracer",
    )
    parser.add_argument(
        "--grids", default=",".join(str(g) for g in PAPER_GRIDS),
        help="comma-separated grid sizes for --models (default: %(default)s)",
    )
    parser.add_argument(
        "--preset", default="paper", choices=("tiny", "fast", "paper"),
        help="model capacity preset for --models (default: %(default)s)",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to enable (default: all); "
        f"known: {', '.join(sorted(RULES))}",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary line"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.paths and not args.models:
        parser.print_usage(sys.stderr)
        print("repro.lint: error: give paths to lint and/or --models", file=sys.stderr)
        return 2

    failures = 0

    if args.paths:
        rules = None
        if args.select:
            rules = {code.strip() for code in args.select.split(",") if code.strip()}
            unknown = rules - set(RULES) - {"REPRO000"}
            if unknown:
                print(
                    f"repro.lint: error: unknown rule(s) {sorted(unknown)}",
                    file=sys.stderr,
                )
                return 2
        try:
            diagnostics = lint_paths(list(args.paths), rules)
        except OSError as exc:
            print(f"repro.lint: error: {exc}", file=sys.stderr)
            return 2
        for diagnostic in diagnostics:
            print(diagnostic)
        failures += len(diagnostics)

    if args.models:
        try:
            grids = tuple(int(g) for g in args.grids.split(",") if g)
        except ValueError:
            grids = ()
        if not grids:
            print(
                f"repro.lint: error: --grids expects comma-separated "
                f"integers, got {args.grids!r}",
                file=sys.stderr,
            )
            return 2
        try:
            rows = validate_registry_models(grids=grids, preset=args.preset)
        except ShapeError as exc:
            print(f"shape error: {exc}", file=sys.stderr)
            failures += 1
        else:
            if not args.quiet:
                for name, grid, out in rows:
                    print(f"{name:>6} @ {grid:>4}: ok ({out})")

    if not args.quiet:
        noun = "finding" if failures == 1 else "findings"
        print(f"repro.lint: {failures} {noun}")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
