"""Durable, fsync'd JSONL job journal — the crash-recovery substrate.

Every job transition of an orchestrated run (:mod:`repro.orchestrate`)
is appended to one journal file as a single JSON line, flushed and
``fsync``'d before the supervisor proceeds — the same never-lose-a-good
-state discipline :mod:`repro.resilience.checkpoint` applies to
checkpoint bundles, adapted to an append-only log.  A run that is
SIGKILL'd at any instant therefore leaves a journal whose committed
prefix is intact; at worst the final line is truncated (crash
mid-append), which :func:`read_journal` detects and drops, reporting it
so the supervisor can surface a REPRO504 incident.

Record vocabulary (the ``event`` field):

``run_start``
    One per ``run_jobs`` invocation: the ordered job-key list, the root
    seed and the worker count.  A resumed run appends a fresh
    ``run_start`` with ``resume: true``; recovery always validates the
    job set against the *last* one.
``dispatched`` / ``completed`` / ``failed`` / ``quarantined``
    Per-job transitions.  ``completed`` records carry the JSON result
    payload plus a content digest so a corrupt journal line can never
    smuggle a damaged result into a resumed run.

Resume reads the journal, re-verifies every completed payload against
its digest, and returns the surviving results — completed jobs are
skipped, in-flight and failed jobs are re-dispatched.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "JournalError",
    "Journal",
    "JournalRecovery",
    "payload_digest",
    "read_journal",
]


class JournalError(RuntimeError):
    """The journal cannot be used (job-set mismatch on resume, ...)."""


def payload_digest(payload) -> str:
    """Content digest of a JSON-serializable result payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class Journal:
    """Append-only fsync'd JSONL writer.

    ``chaos`` (a :class:`repro.resilience.faults.JournalChaos`) makes the
    Nth append write only a prefix of its line and then simulate a hard
    crash — either raising :class:`ChaosCrash` or ``os._exit``-ing —
    exactly the failure :func:`read_journal` must survive.
    """

    def __init__(self, path: str | os.PathLike, chaos=None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._chaos = chaos
        self.appends = 0

    def append(self, record: dict) -> None:
        """Write one record durably (write + flush + fsync)."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        self.appends += 1
        if self._chaos is not None and self._chaos.fires_on(self.appends):
            # Crash mid-append: commit a torn prefix of the line, then die.
            self._fh.write(line[: max(1, len(line) // 2)])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._chaos.crash()
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class JournalRecovery:
    """Everything a resume needs, reconstructed from one journal file."""

    records: list[dict] = field(default_factory=list)
    completed: dict[str, dict] = field(default_factory=dict)  # key -> payload
    quarantined: set[str] = field(default_factory=set)
    job_keys: list[str] | None = None  # from the last run_start
    seed: int | None = None
    dropped_lines: int = 0  # unparseable lines (torn tail) dropped
    bad_digests: int = 0  # completed records whose payload failed its digest
    duplicate_commits: int = 0  # re-commits of an already-completed job
    conflicting_commits: int = 0  # duplicates whose payload differed

    @property
    def clean(self) -> bool:
        """True when nothing had to be dropped, rejected or contradicted.

        An *identical* re-commit stays clean — a crash between the
        fsync'd commit and the in-memory completion mark makes the
        resumed run redo the job, and a deterministic job reproduces the
        same payload.  A duplicate with a *different* payload means the
        job is not deterministic, which is exactly what parity forbids.
        """
        return (self.dropped_lines == 0 and self.bad_digests == 0
                and self.conflicting_commits == 0)


def read_journal(path: str | os.PathLike) -> JournalRecovery:
    """Parse a journal, dropping any torn/corrupt lines, and fold state.

    Never raises on damaged content: a line that fails to parse (the
    signature of a crash mid-append) or a completed record whose payload
    does not match its digest is dropped and *counted*, so the caller
    can re-run the affected job instead of trusting a damaged result.
    """
    recovery = JournalRecovery()
    text = Path(path).read_text(encoding="utf-8", errors="replace")
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            recovery.dropped_lines += 1
            continue
        if not isinstance(record, dict) or "event" not in record:
            recovery.dropped_lines += 1
            continue
        recovery.records.append(record)
        event = record["event"]
        key = record.get("job")
        if event == "run_start":
            recovery.job_keys = list(record.get("jobs", []))
            recovery.seed = record.get("seed")
        elif event == "completed" and key is not None:
            payload = record.get("result")
            if payload_digest(payload) != record.get("digest"):
                recovery.bad_digests += 1
                continue
            if key in recovery.completed:
                recovery.duplicate_commits += 1
                if recovery.completed[key] != payload:
                    recovery.conflicting_commits += 1
            recovery.completed[key] = payload
            recovery.quarantined.discard(key)
        elif event == "quarantined" and key is not None:
            recovery.quarantined.add(key)
    return recovery
