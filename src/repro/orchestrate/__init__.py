"""Fault-tolerant parallel execution runtime (``REPRO5xx``).

A process-pool supervisor (:mod:`repro.orchestrate.runtime`) that fans
independent jobs — one ``(team, design)`` contest evaluation, one
training-data shard — across worker processes with per-job deadlines, a
heartbeat watchdog, bounded retries with jittered backoff, poison-job
quarantine and worker restart.  Per-job RNG streams are spawned from
one root :class:`numpy.random.SeedSequence` by submission index, so a
parallel run is bitwise-identical to the serial reference.  Every job
transition lands in a durable fsync'd JSONL journal
(:mod:`repro.orchestrate.journal`) from which an interrupted run
resumes exactly; supervision events surface as ``REPRO501``–``506``
incidents registered with :mod:`repro.diagnostics`.

The matching failure-injection side lives in
:mod:`repro.resilience.faults` (``ChaosConfig``, ``JournalChaos``): a
seeded process-level chaos layer the test suite uses to prove each
recovery path.  See ``docs/ORCHESTRATION.md``.
"""

from ..diagnostics import codes_for
from .journal import Journal, JournalError, JournalRecovery, payload_digest, read_journal
from .runtime import (
    CODE_DEADLINE,
    CODE_JOURNAL_RECOVERY,
    CODE_PAYLOAD_INVALID,
    CODE_QUARANTINE,
    CODE_RETRY_EXHAUSTED,
    CODE_WORKER_CRASH,
    JobOutcome,
    JobSpec,
    OrchestrationIncident,
    RunReport,
    RuntimeConfig,
    run_jobs,
)

#: ``{code: message}`` view of the orchestration incident codes.
ORCHESTRATE_RULES = codes_for("orchestrate")

__all__ = [
    "CODE_WORKER_CRASH",
    "CODE_DEADLINE",
    "CODE_QUARANTINE",
    "CODE_JOURNAL_RECOVERY",
    "CODE_RETRY_EXHAUSTED",
    "CODE_PAYLOAD_INVALID",
    "ORCHESTRATE_RULES",
    "Journal",
    "JournalError",
    "JournalRecovery",
    "payload_digest",
    "read_journal",
    "JobSpec",
    "RuntimeConfig",
    "OrchestrationIncident",
    "JobOutcome",
    "RunReport",
    "run_jobs",
]
