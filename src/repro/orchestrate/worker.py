"""Worker-process side of the orchestration runtime.

Each worker is one OS process running :func:`worker_main` over a duplex
pipe to the supervisor.  The protocol is deliberately tiny:

supervisor -> worker
    ``("job", key, attempt, fn_ref, args, kwargs, seed_seq)`` or
    ``("shutdown",)``

worker -> supervisor
    ``("hb", key, attempt)`` — heartbeat, sent by a daemon thread every
    ``heartbeat_interval`` seconds while a job runs;
    ``("result", key, attempt, payload)`` on success;
    ``("error", key, attempt, info)`` on an in-job exception, where
    ``info`` carries the exception type, message and traceback tail.

Job functions are referenced by dotted path (``"module:attr"``) so the
spec stays picklable under every start method, and — when the
supervisor runs seeded — receive their private RNG stream as a
``seed_seq`` keyword (an :class:`numpy.random.SeedSequence` child
spawned by job *index*, never by dispatch order, which is what makes a
parallel run bitwise-identical to a serial one).

The worker never decides policy: deadlines, retries and quarantine all
live in the supervisor, which can SIGKILL this process at any moment.
The only failure logic here is the chaos harness
(:class:`repro.resilience.faults.ChaosConfig`) — seeded sabotage of the
worker itself, used by the chaos test suite to prove the supervisor's
failure semantics.
"""

from __future__ import annotations

import importlib
import os
import signal
import threading
import time
import traceback


def resolve_callable(ref: str):
    """Resolve a ``"package.module:attr"`` (or ``:Class.method``) path."""
    module_path, _, attr_path = ref.partition(":")
    if not attr_path:
        raise ValueError(f"job fn must look like 'package.module:attr', got {ref!r}")
    obj = importlib.import_module(module_path)
    for part in attr_path.split("."):
        obj = getattr(obj, part)
    return obj


def error_info(exc: BaseException, tail: int = 8) -> dict:
    """The structured error payload a failed attempt reports."""
    lines = traceback.format_exception(type(exc), exc, exc.__traceback__)
    flat = "".join(lines).rstrip().splitlines()
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": flat[-tail:],
    }


def _heartbeat_loop(conn, lock, key, attempt, stop, interval: float) -> None:
    while not stop.wait(interval):
        try:
            with lock:
                conn.send(("hb", key, attempt))
        except OSError:  # supervisor is gone; nothing left to report to
            return


def worker_main(conn, worker_id: int, chaos, heartbeat_interval: float) -> None:
    """Process one job at a time until told to shut down."""
    # The supervisor owns interruption (it SIGKILLs); a stray ^C on the
    # process group must not tear workers down mid-protocol.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    lock = threading.Lock()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "shutdown":
            return
        _, key, attempt, fn_ref, args, kwargs, seed_seq = msg
        mode = chaos.decide(key, attempt) if chaos is not None else None
        stop = threading.Event()
        beat = None
        if mode != "freeze":
            beat = threading.Thread(
                target=_heartbeat_loop,
                args=(conn, lock, key, attempt, stop, heartbeat_interval),
                daemon=True,
            )
            beat.start()
        try:
            if mode == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            if mode in ("hang", "freeze"):
                time.sleep(chaos.hang_seconds)
            fn = resolve_callable(fn_ref)
            call_kwargs = dict(kwargs)
            if seed_seq is not None:
                call_kwargs["seed_seq"] = seed_seq
            result = fn(*args, **call_kwargs)
            if mode == "corrupt":
                from ..resilience.faults import corrupt_payload

                result = corrupt_payload(
                    result, chaos.corruption_rng(key, attempt)
                )
            with lock:
                conn.send(("result", key, attempt, result))
        except Exception as exc:
            info = error_info(exc)
            try:
                with lock:
                    conn.send(("error", key, attempt, info))
            except OSError:
                return
        finally:
            stop.set()
            if beat is not None:
                beat.join(timeout=1.0)
