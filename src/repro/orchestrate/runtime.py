"""Fault-tolerant process-pool supervisor with journaled resume.

:func:`run_jobs` fans a list of :class:`JobSpec`\\ s across persistent
worker processes (:mod:`repro.orchestrate.worker`) and supervises them:

- **deadlines** — a job running past ``deadline`` seconds gets its
  worker SIGKILL'd and the job re-dispatched (REPRO502);
- **heartbeat watchdog** — workers heartbeat while computing, so a
  *hung* process (no crash, no result) is detected after
  ``heartbeat_grace`` seconds of silence, not at the deadline;
- **bounded retries** — each failure re-queues the job after an
  exponential backoff with seeded jitter, up to ``max_attempts``;
- **quarantine** — a job that exhausts its budget is quarantined
  (REPRO505 + REPRO503) and the run completes without it;
- **worker restart** — a dead worker slot is restarted with backoff
  whenever work remains, so one poison job cannot drain the pool;
- **deterministic seeding** — per-job RNG streams come from
  ``SeedSequence(seed).spawn(n)`` assigned by *submission index* and
  reused across retries, which makes a parallel run bitwise-identical
  to ``workers=0`` serial execution by construction.

With ``journal_path`` every transition is appended to a durable fsync'd
JSONL journal (:mod:`repro.orchestrate.journal`); ``resume=True`` skips
digest-verified completed jobs from a previous run and re-dispatches
everything else.  Incidents carry ``REPRO501``–``506`` codes from the
central :mod:`repro.diagnostics` registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing import connection, get_all_start_methods, get_context

import numpy as np

from ..diagnostics import spec_of
from .journal import Journal, JournalError, payload_digest, read_journal
from .worker import error_info, worker_main

__all__ = [
    "CODE_WORKER_CRASH",
    "CODE_DEADLINE",
    "CODE_QUARANTINE",
    "CODE_JOURNAL_RECOVERY",
    "CODE_RETRY_EXHAUSTED",
    "CODE_PAYLOAD_INVALID",
    "JobSpec",
    "RuntimeConfig",
    "OrchestrationIncident",
    "JobOutcome",
    "RunReport",
    "run_jobs",
]

CODE_WORKER_CRASH = "REPRO501"
CODE_DEADLINE = "REPRO502"
CODE_QUARANTINE = "REPRO503"
CODE_JOURNAL_RECOVERY = "REPRO504"
CODE_RETRY_EXHAUSTED = "REPRO505"
CODE_PAYLOAD_INVALID = "REPRO506"


def _default_start_method() -> str:
    # fork keeps worker startup cheap (children inherit sys.path and the
    # already-imported repro modules); spawn is the portable fallback.
    return "fork" if "fork" in get_all_start_methods() else "spawn"


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: a picklable dotted callable plus arguments.

    ``fn`` is a ``"package.module:attr"`` reference resolved inside the
    worker, so specs stay picklable under every start method.  When the
    run is seeded the callable additionally receives a ``seed_seq``
    keyword (its private :class:`numpy.random.SeedSequence` child).
    """

    key: str
    fn: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class RuntimeConfig:
    """Supervision policy for one :func:`run_jobs` invocation."""

    workers: int = 2
    deadline: float = 120.0  # per-job wall-clock budget (seconds)
    heartbeat_interval: float = 0.2  # worker heartbeat period
    heartbeat_grace: float = 30.0  # silence tolerated before a kill
    max_attempts: int = 3  # per-job attempt budget
    backoff_base: float = 0.05  # first retry delay (seconds)
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    backoff_jitter: float = 0.25  # +/- fraction of the delay
    restart_backoff: float = 0.05  # delay before restarting a dead slot
    seed: int | None = None  # root of the per-job SeedSequence tree
    start_method: str = field(default_factory=_default_start_method)
    chaos: object | None = None  # resilience.faults.ChaosConfig
    journal_chaos: object | None = None  # resilience.faults.JournalChaos
    validate: object | None = None  # callable(payload) raising on bad
    run_timeout: float | None = None  # whole-run backstop (None = off)
    verbose: bool = False


@dataclass(frozen=True)
class OrchestrationIncident:
    """One supervision event, tagged with its REPRO5xx diagnostic."""

    code: str
    job: str | None
    worker: int | None
    attempt: int | None
    detail: str = ""

    @property
    def message(self) -> str:
        return spec_of(self.code).message

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "job": self.job,
            "worker": self.worker,
            "attempt": self.attempt,
            "detail": self.detail,
        }


@dataclass
class JobOutcome:
    """Terminal state of one job after supervision."""

    key: str
    status: str  # "done" | "quarantined" | "failed"
    attempts: int
    result: object = None
    error: dict | None = None  # {"type", "message", "traceback"} of last failure
    resumed: bool = False  # satisfied from the journal, not re-run


@dataclass
class RunReport:
    """What :func:`run_jobs` returns: outcomes in submission order."""

    outcomes: list[JobOutcome]
    incidents: list[OrchestrationIncident]
    wall_seconds: float

    @property
    def complete(self) -> bool:
        return all(o.status == "done" for o in self.outcomes)

    @property
    def resumed(self) -> int:
        return sum(1 for o in self.outcomes if o.resumed)

    def results(self) -> dict[str, object]:
        """``{job key: payload}`` for every successfully completed job."""
        return {o.key: o.result for o in self.outcomes if o.status == "done"}


class _Job:
    """Mutable supervision state for one submitted JobSpec."""

    __slots__ = (
        "index", "spec", "seed_seq", "attempts", "status",
        "result", "error", "resumed", "ready_at",
    )

    def __init__(self, index: int, spec: JobSpec, seed_seq) -> None:
        self.index = index
        self.spec = spec
        self.seed_seq = seed_seq
        self.attempts = 0
        self.status = "pending"  # pending | running | done | quarantined | failed
        self.result = None
        self.error: dict | None = None
        self.resumed = False
        self.ready_at = 0.0  # monotonic time before which it must not run


class _Worker:
    """One pool slot: a live process, or a corpse awaiting restart."""

    __slots__ = ("wid", "proc", "conn", "job", "dispatched_at", "last_beat", "restart_at")

    def __init__(self, wid: int) -> None:
        self.wid = wid
        self.proc = None
        self.conn = None
        self.job: _Job | None = None
        self.dispatched_at = 0.0
        self.last_beat = 0.0
        self.restart_at = 0.0

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()


class _Supervisor:
    _TICK = 0.02  # event-loop wait quantum (seconds)

    def __init__(self, jobs: list[_Job], config: RuntimeConfig, journal: Journal | None):
        self.jobs = jobs
        self.config = config
        self.journal = journal
        self.incidents: list[OrchestrationIncident] = []
        self.workers = [_Worker(i) for i in range(config.workers)]
        self.ctx = get_context(config.start_method)
        # Jitter timing only — job results never depend on this stream.
        self.rng = np.random.default_rng(0 if config.seed is None else config.seed)

    # -- bookkeeping ----------------------------------------------------------

    def _log(self, record: dict) -> None:
        if self.journal is not None:
            self.journal.append(record)

    def _incident(self, code, job=None, worker=None, attempt=None, detail=""):
        incident = OrchestrationIncident(code, job, worker, attempt, detail)
        self.incidents.append(incident)
        if self.config.verbose:
            print(f"[orchestrate] {code} job={job} worker={worker}: {detail}")

    def _backoff(self, attempt: int) -> float:
        cfg = self.config
        delay = min(cfg.backoff_base * cfg.backoff_factor ** (attempt - 1), cfg.backoff_max)
        return delay * (1.0 + cfg.backoff_jitter * float(self.rng.random()))

    def _fail_attempt(self, job: _Job, reason: str, detail: dict | str) -> None:
        """Record a failed attempt and either re-queue or quarantine."""
        job.error = detail if isinstance(detail, dict) else {
            "type": reason, "message": str(detail), "traceback": [],
        }
        self._log({
            "event": "failed", "job": job.spec.key, "attempt": job.attempts,
            "reason": reason, "detail": job.error,
        })
        if job.attempts >= self.config.max_attempts:
            self._incident(
                CODE_RETRY_EXHAUSTED, job=job.spec.key, attempt=job.attempts,
                detail=f"{job.attempts} attempts failed; last: {reason}",
            )
            self._incident(
                CODE_QUARANTINE, job=job.spec.key, attempt=job.attempts,
                detail="job quarantined after retry budget",
            )
            job.status = "quarantined"
            self._log({
                "event": "quarantined", "job": job.spec.key, "attempts": job.attempts,
            })
        else:
            job.status = "pending"
            job.ready_at = time.monotonic() + self._backoff(job.attempts)

    def _complete(self, job: _Job, payload) -> None:
        validate = self.config.validate
        if validate is not None:
            try:
                validate(payload)
            except Exception as exc:
                self._incident(
                    CODE_PAYLOAD_INVALID, job=job.spec.key, attempt=job.attempts,
                    detail=f"{type(exc).__name__}: {exc}",
                )
                self._fail_attempt(job, "payload-invalid", error_info(exc))
                return
        job.result = payload
        job.status = "done"
        record = {"event": "completed", "job": job.spec.key, "attempt": job.attempts}
        if self.journal is not None:
            record["result"] = payload
            record["digest"] = payload_digest(payload)
        self._log(record)

    # -- worker lifecycle -----------------------------------------------------

    def _spawn_worker(self, slot: _Worker) -> None:
        parent_conn, child_conn = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(
            target=worker_main,
            args=(child_conn, slot.wid, self.config.chaos, self.config.heartbeat_interval),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        slot.proc, slot.conn, slot.job = proc, parent_conn, None

    def _kill_worker(self, slot: _Worker) -> None:
        if slot.proc is not None:
            if slot.proc.is_alive():
                slot.proc.kill()
            slot.proc.join(timeout=5.0)
        if slot.conn is not None:
            slot.conn.close()
        slot.proc, slot.conn, slot.job = None, None, None
        slot.restart_at = time.monotonic() + self.config.restart_backoff

    def _worker_lost(self, slot: _Worker, code: str, detail: str) -> None:
        job = slot.job
        if job is not None:
            self._incident(
                code, job=job.spec.key, worker=slot.wid, attempt=job.attempts, detail=detail,
            )
            self._fail_attempt(job, "worker-lost", detail)
        self._kill_worker(slot)

    def _dispatch(self, slot: _Worker, job: _Job) -> None:
        job.attempts += 1
        job.status = "running"
        slot.job = job
        now = time.monotonic()
        slot.dispatched_at = now
        slot.last_beat = now
        self._log({
            "event": "dispatched", "job": job.spec.key,
            "attempt": job.attempts, "worker": slot.wid,
        })
        try:
            slot.conn.send((
                "job", job.spec.key, job.attempts, job.spec.fn,
                job.spec.args, job.spec.kwargs, job.seed_seq,
            ))
        except (OSError, ValueError) as exc:
            self._worker_lost(slot, CODE_WORKER_CRASH, f"dispatch failed: {exc}")

    # -- event loop -----------------------------------------------------------

    def run(self) -> None:
        started = time.monotonic()
        try:
            while self._unfinished():
                if (
                    self.config.run_timeout is not None
                    and time.monotonic() - started > self.config.run_timeout
                ):
                    self._abort_run()
                    return
                self._reap_and_restart()
                self._dispatch_ready()
                self._drain_messages()
                self._check_watchdogs()
        finally:
            self._shutdown()

    def _unfinished(self) -> bool:
        return any(j.status in ("pending", "running") for j in self.jobs)

    def _abort_run(self) -> None:
        for job in self.jobs:
            if job.status in ("pending", "running"):
                job.status = "failed"
                job.error = {
                    "type": "RunTimeout",
                    "message": f"run exceeded run_timeout={self.config.run_timeout}s",
                    "traceback": [],
                }

    def _reap_and_restart(self) -> None:
        now = time.monotonic()
        pending = any(j.status == "pending" for j in self.jobs)
        for slot in self.workers:
            if slot.proc is not None and not slot.proc.is_alive():
                self._worker_lost(slot, CODE_WORKER_CRASH, "worker process died")
            elif slot.proc is None and pending and now >= slot.restart_at:
                self._spawn_worker(slot)

    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        idle = [s for s in self.workers if s.alive and s.job is None]
        if not idle:
            return
        ready = sorted(
            (j for j in self.jobs if j.status == "pending" and j.ready_at <= now),
            key=lambda j: j.index,
        )
        for slot, job in zip(idle, ready):
            self._dispatch(slot, job)

    def _drain_messages(self) -> None:
        conns = {s.conn: s for s in self.workers if s.alive and s.conn is not None}
        if not conns:
            time.sleep(self._TICK)
            return
        for conn in connection.wait(list(conns), timeout=self._TICK):
            slot = conns[conn]
            try:
                while True:
                    msg = conn.recv()
                    self._handle_message(slot, msg)
                    if not conn.poll():
                        break
            except (EOFError, OSError):
                self._worker_lost(slot, CODE_WORKER_CRASH, "connection closed")

    def _handle_message(self, slot: _Worker, msg) -> None:
        kind, key, attempt = msg[0], msg[1], msg[2]
        job = slot.job
        if job is None or job.spec.key != key or job.attempts != attempt:
            return  # stale: from an attempt we already killed or re-queued
        if kind == "hb":
            slot.last_beat = time.monotonic()
        elif kind == "result":
            slot.job = None
            self._complete(job, msg[3])
        elif kind == "error":
            slot.job = None
            job.status = "pending"  # _fail_attempt re-queues or quarantines
            self._fail_attempt(job, "exception", msg[3])

    def _check_watchdogs(self) -> None:
        now = time.monotonic()
        for slot in self.workers:
            job = slot.job
            if job is None or not slot.alive:
                continue
            if now - slot.dispatched_at > self.config.deadline:
                self._worker_lost(
                    slot, CODE_DEADLINE,
                    f"deadline {self.config.deadline}s exceeded",
                )
            elif now - slot.last_beat > self.config.heartbeat_grace:
                self._worker_lost(
                    slot, CODE_DEADLINE,
                    f"no heartbeat for {self.config.heartbeat_grace}s",
                )

    def _shutdown(self) -> None:
        for slot in self.workers:
            if slot.conn is not None and slot.alive:
                try:
                    slot.conn.send(("shutdown",))
                except (OSError, ValueError):
                    pass
        for slot in self.workers:
            if slot.proc is not None:
                slot.proc.join(timeout=1.0)
                if slot.proc.is_alive():
                    slot.proc.kill()
                    slot.proc.join(timeout=5.0)
            if slot.conn is not None:
                slot.conn.close()
            slot.proc, slot.conn, slot.job = None, None, None


def _run_serial(jobs: list[_Job], config: RuntimeConfig, supervisor: _Supervisor) -> None:
    """In-process executor: same seeding/journal/retry semantics, no pool."""
    from .worker import resolve_callable

    for job in jobs:
        while job.status == "pending":
            job.attempts += 1
            job.status = "running"
            supervisor._log({
                "event": "dispatched", "job": job.spec.key,
                "attempt": job.attempts, "worker": None,
            })
            try:
                fn = resolve_callable(job.spec.fn)
                kwargs = dict(job.spec.kwargs)
                if job.seed_seq is not None:
                    kwargs["seed_seq"] = job.seed_seq
                payload = fn(*job.spec.args, **kwargs)
            except Exception as exc:
                job.status = "pending"
                supervisor._fail_attempt(job, "exception", error_info(exc))
                continue
            supervisor._complete(job, payload)


def run_jobs(
    jobs: list[JobSpec] | tuple[JobSpec, ...],
    config: RuntimeConfig | None = None,
    *,
    journal_path=None,
    resume: bool = False,
) -> RunReport:
    """Execute ``jobs`` under supervision and return a :class:`RunReport`.

    ``workers=0`` runs everything serially in-process with identical
    seeding, journaling, validation and retry semantics — the reference
    a parallel run must match bitwise.  With ``journal_path`` the run is
    durable; ``resume=True`` additionally reads the existing journal,
    keeps digest-verified completed payloads (outcomes flagged
    ``resumed``) and re-dispatches the rest.  Resuming against a journal
    whose job-key set differs raises :class:`JournalError`.
    """
    config = config or RuntimeConfig()
    specs = list(jobs)
    keys = [spec.key for spec in specs]
    if len(set(keys)) != len(keys):
        raise ValueError("job keys must be unique")

    if config.seed is not None:
        children = np.random.SeedSequence(config.seed).spawn(len(specs))
    else:
        children = [None] * len(specs)
    states = [_Job(i, spec, child) for i, (spec, child) in enumerate(zip(specs, children))]

    recovered: dict[str, object] = {}
    recovery = None
    if resume and journal_path is not None:
        from pathlib import Path

        if Path(journal_path).exists():
            recovery = read_journal(journal_path)
            if recovery.job_keys is not None and set(recovery.job_keys) != set(keys):
                raise JournalError(
                    "cannot resume: journal job set does not match submitted jobs "
                    f"(journal has {len(recovery.job_keys)}, submitted {len(keys)})"
                )
            recovered = dict(recovery.completed)

    journal = Journal(journal_path, chaos=config.journal_chaos) if journal_path else None
    started = time.monotonic()
    try:
        supervisor = _Supervisor(states, config, journal)
        if recovery is not None and not recovery.clean:
            supervisor._incident(
                CODE_JOURNAL_RECOVERY,
                detail=(
                    f"dropped {recovery.dropped_lines} torn line(s), "
                    f"rejected {recovery.bad_digests} bad digest(s)"
                ),
            )
        for job in states:
            if job.spec.key in recovered:
                job.status = "done"
                job.result = recovered[job.spec.key]
                job.resumed = True
        supervisor._log({
            "event": "run_start",
            "jobs": keys,
            "seed": config.seed,
            "workers": config.workers,
            "resume": bool(resume),
        })
        if config.workers <= 0:
            _run_serial(states, config, supervisor)
        else:
            supervisor.run()
    finally:
        if journal is not None:
            journal.close()

    outcomes = [
        JobOutcome(
            key=j.spec.key, status=j.status, attempts=j.attempts,
            result=j.result, error=j.error, resumed=j.resumed,
        )
        for j in states
    ]
    return RunReport(
        outcomes=outcomes,
        incidents=supervisor.incidents,
        wall_seconds=time.monotonic() - started,
    )
