"""Congestion-driven net weighting.

Besides cell inflation (Eqs. 11–13), routability-driven placers
commonly *upweight* nets that route through congested regions so the
wirelength objective itself pulls them out of trouble.  This module
implements that lever: every net whose bounding box overlaps a grid
cell with predicted level above the Eq. 1 threshold has its weight
multiplied, compounding over rounds up to a cap.

Off by default in the Fig. 6 flow (the paper inflates only); enable
with ``PlacerConfig(net_weighting=True)`` and measure with the
inflation-strategy ablation bench.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Design

__all__ = ["apply_congestion_net_weights", "reset_net_weights"]


def apply_congestion_net_weights(
    design: Design,
    level_map: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    threshold: float = 3.0,
    factor: float = 1.5,
    cap: float = 4.0,
) -> int:
    """Upweight nets whose bounding box touches hot grid cells.

    Mutates ``design.net_weights`` in place (the WA/LSE gradients and
    HPWL read it on every evaluation).  Returns the number of nets
    reweighted this call.
    """
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    gw, gh = level_map.shape
    device = design.device
    bx = np.clip((x / device.width * gw).astype(np.int64), 0, gw - 1)
    by = np.clip((y / device.height * gh).astype(np.int64), 0, gh - 1)

    hot = level_map > threshold
    if not hot.any():
        return 0
    # Net bounding boxes on the level grid.
    px = bx[design.pin_inst]
    py = by[design.pin_inst]
    num = design.num_nets
    nx0 = np.full(num, gw, dtype=np.int64)
    nx1 = np.full(num, -1, dtype=np.int64)
    ny0 = np.full(num, gh, dtype=np.int64)
    ny1 = np.full(num, -1, dtype=np.int64)
    np.minimum.at(nx0, design.pin_net, px)
    np.maximum.at(nx1, design.pin_net, px)
    np.minimum.at(ny0, design.pin_net, py)
    np.maximum.at(ny1, design.pin_net, py)

    # 2-D prefix sum of the hot mask -> O(1) box overlap queries.
    summed = np.zeros((gw + 1, gh + 1))
    summed[1:, 1:] = np.cumsum(np.cumsum(hot, axis=0), axis=1)
    overlap = (
        summed[nx1 + 1, ny1 + 1]
        - summed[nx0, ny1 + 1]
        - summed[nx1 + 1, ny0]
        + summed[nx0, ny0]
    )
    touched = overlap > 0
    design.net_weights[touched] = np.minimum(
        design.net_weights[touched] * factor, cap
    )
    return int(touched.sum())


def reset_net_weights(design: Design) -> None:
    """Restore the original (construction-time) net weights."""
    design.net_weights = np.asarray([n.weight for n in design.nets])
