"""Smooth wirelength models and gradients.

Global placement minimizes the weighted-average (WA) wirelength, the
differentiable HPWL surrogate used by DREAMPlaceFPGA/elfPlace.  For a
net with pin coordinates :math:`x_i` the WA span along x is

.. math::
    WA_x = \\frac{\\sum_i x_i e^{x_i/\\gamma}}{\\sum_i e^{x_i/\\gamma}}
         - \\frac{\\sum_i x_i e^{-x_i/\\gamma}}{\\sum_i e^{-x_i/\\gamma}}

which approaches ``max(x) - min(x)`` as the smoothing parameter
``gamma`` shrinks.  Everything is evaluated with per-net segment
reductions (``np.add.at`` / ``np.maximum.at``) so the cost is one pass
over the pin arrays.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Design

__all__ = [
    "hpwl",
    "wa_wirelength",
    "wa_wirelength_grad",
    "lse_wirelength",
    "lse_wirelength_grad",
]


def hpwl(design: Design, x: np.ndarray, y: np.ndarray) -> float:
    """Half-perimeter wirelength of placement ``(x, y)``."""
    px = x[design.pin_inst]
    py = y[design.pin_inst]
    num = design.num_nets
    max_x = np.full(num, -np.inf)
    min_x = np.full(num, np.inf)
    max_y = np.full(num, -np.inf)
    min_y = np.full(num, np.inf)
    np.maximum.at(max_x, design.pin_net, px)
    np.minimum.at(min_x, design.pin_net, px)
    np.maximum.at(max_y, design.pin_net, py)
    np.minimum.at(min_y, design.pin_net, py)
    spans = (max_x - min_x) + (max_y - min_y)
    return float((spans * design.net_weights).sum())


def _wa_axis(
    coords: np.ndarray,
    pin_net: np.ndarray,
    num_nets: int,
    gamma: float,
) -> tuple[np.ndarray, np.ndarray]:
    """WA span and per-pin gradient along one axis.

    Returns ``(span_per_net, grad_per_pin)``.
    """
    # Stabilize the exponentials with per-net max/min shifts.
    net_max = np.full(num_nets, -np.inf)
    net_min = np.full(num_nets, np.inf)
    np.maximum.at(net_max, pin_net, coords)
    np.minimum.at(net_min, pin_net, coords)

    ep = np.exp((coords - net_max[pin_net]) / gamma)  # for the max side
    em = np.exp((net_min[pin_net] - coords) / gamma)  # for the min side

    sum_ep = np.zeros(num_nets)
    sum_xep = np.zeros(num_nets)
    sum_em = np.zeros(num_nets)
    sum_xem = np.zeros(num_nets)
    np.add.at(sum_ep, pin_net, ep)
    np.add.at(sum_xep, pin_net, coords * ep)
    np.add.at(sum_em, pin_net, em)
    np.add.at(sum_xem, pin_net, coords * em)

    wa_max = sum_xep / sum_ep
    wa_min = sum_xem / sum_em
    span = wa_max - wa_min

    # d(wa_max)/dx_i = e_i/S * (1 + (x_i - wa_max)/gamma)
    # d(wa_min)/dx_i = m_i/T * (1 - (x_i - wa_min)/gamma)
    gmax = ep / sum_ep[pin_net] * (
        1.0 + (coords - wa_max[pin_net]) / gamma
    )
    gmin = em / sum_em[pin_net] * (
        1.0 - (coords - wa_min[pin_net]) / gamma
    )
    return span, gmax - gmin


def wa_wirelength(
    design: Design, x: np.ndarray, y: np.ndarray, gamma: float
) -> float:
    """Weighted-average wirelength of placement ``(x, y)``."""
    span_x, _ = _wa_axis(x[design.pin_inst], design.pin_net, design.num_nets, gamma)
    span_y, _ = _wa_axis(y[design.pin_inst], design.pin_net, design.num_nets, gamma)
    return float(((span_x + span_y) * design.net_weights).sum())


def _lse_axis(
    coords: np.ndarray,
    pin_net: np.ndarray,
    num_nets: int,
    gamma: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Log-sum-exp span and per-pin gradient along one axis.

    ``LSE_x = γ·log Σ e^{x/γ} + γ·log Σ e^{-x/γ}`` — the other classic
    smooth HPWL surrogate (NTUplace/ePlace lineage).  Unlike WA it is a
    guaranteed *upper* bound of the true span.
    """
    net_max = np.full(num_nets, -np.inf)
    net_min = np.full(num_nets, np.inf)
    np.maximum.at(net_max, pin_net, coords)
    np.minimum.at(net_min, pin_net, coords)

    ep = np.exp((coords - net_max[pin_net]) / gamma)
    em = np.exp((net_min[pin_net] - coords) / gamma)
    sum_ep = np.zeros(num_nets)
    sum_em = np.zeros(num_nets)
    np.add.at(sum_ep, pin_net, ep)
    np.add.at(sum_em, pin_net, em)

    span = (
        net_max - net_min + gamma * (np.log(sum_ep) + np.log(sum_em))
    )
    grad = ep / sum_ep[pin_net] - em / sum_em[pin_net]
    return span, grad


def lse_wirelength(
    design: Design, x: np.ndarray, y: np.ndarray, gamma: float
) -> float:
    """Log-sum-exp wirelength (upper-bound smooth HPWL surrogate)."""
    span_x, _ = _lse_axis(x[design.pin_inst], design.pin_net, design.num_nets, gamma)
    span_y, _ = _lse_axis(y[design.pin_inst], design.pin_net, design.num_nets, gamma)
    return float(((span_x + span_y) * design.net_weights).sum())


def lse_wirelength_grad(
    design: Design, x: np.ndarray, y: np.ndarray, gamma: float
) -> tuple[float, np.ndarray, np.ndarray]:
    """LSE wirelength with its per-instance gradient."""
    pin_x = x[design.pin_inst]
    pin_y = y[design.pin_inst]
    span_x, pin_gx = _lse_axis(pin_x, design.pin_net, design.num_nets, gamma)
    span_y, pin_gy = _lse_axis(pin_y, design.pin_net, design.num_nets, gamma)
    weights = design.net_weights[design.pin_net]
    grad_x = np.zeros_like(x)
    grad_y = np.zeros_like(y)
    np.add.at(grad_x, design.pin_inst, pin_gx * weights)
    np.add.at(grad_y, design.pin_inst, pin_gy * weights)
    total = float(((span_x + span_y) * design.net_weights).sum())
    return total, grad_x, grad_y


def wa_wirelength_grad(
    design: Design, x: np.ndarray, y: np.ndarray, gamma: float
) -> tuple[float, np.ndarray, np.ndarray]:
    """WA wirelength with its gradient w.r.t. every instance position.

    Returns ``(wirelength, grad_x, grad_y)`` where the gradients have one
    entry per instance (pin gradients of an instance are summed).
    """
    pin_x = x[design.pin_inst]
    pin_y = y[design.pin_inst]
    span_x, pin_gx = _wa_axis(pin_x, design.pin_net, design.num_nets, gamma)
    span_y, pin_gy = _wa_axis(pin_y, design.pin_net, design.num_nets, gamma)

    weights = design.net_weights[design.pin_net]
    grad_x = np.zeros_like(x)
    grad_y = np.zeros_like(y)
    np.add.at(grad_x, design.pin_inst, pin_gx * weights)
    np.add.at(grad_y, design.pin_inst, pin_gy * weights)
    total = float(((span_x + span_y) * design.net_weights).sum())
    return total, grad_x, grad_y
