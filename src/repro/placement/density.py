"""Electrostatic density model (ePlace/elfPlace style).

Each resource *field* (CLB, DSP, BRAM, URAM) is an independent
electrostatic system, as in elfPlace/DREAMPlaceFPGA: instances are
positive charges with charge = their site-unit area, the per-bin
capacity acts as the neutralizing background, and the density penalty is
the field energy.  The potential is obtained by solving Poisson's
equation with Neumann boundary conditions via a type-II DCT
(``scipy.fft``), and the force on every instance is the field at its
bin, times its charge.

Instances are deposited with bilinear weights over the four bins nearest
their center, scaled by their (possibly inflated) area, so the
congestion-driven inflation of Eqs. 11–13 directly raises local density
and pushes neighbours away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import fft as sp_fft

from ..arch import FPGADevice, ResourceType, SiteType
from ..netlist import Design

__all__ = ["DensityField", "ElectrostaticSystem", "FIELD_GROUPS"]

# Which netlist resources share one electrostatic field.  LUT+FF share
# the CLB fabric, so (as in elfPlace) they form a single field whose
# site-unit area is max(LUT/8, FF/16).
FIELD_GROUPS: dict[str, tuple[ResourceType, ...]] = {
    "CLB": (ResourceType.LUT, ResourceType.FF),
    "DSP": (ResourceType.DSP,),
    "BRAM": (ResourceType.BRAM,),
    "URAM": (ResourceType.URAM,),
}

_SITE_UNITS = {
    ResourceType.LUT: 8.0,
    ResourceType.FF: 16.0,
    ResourceType.DSP: 1.0,
    ResourceType.BRAM: 1.0,
    ResourceType.URAM: 1.0,
}

_FIELD_SITE = {
    "CLB": SiteType.CLB,
    "DSP": SiteType.DSP,
    "BRAM": SiteType.BRAM,
    "URAM": SiteType.URAM,
}


def _site_area(design: Design, field: str) -> np.ndarray:
    """Per-instance area in site units for one field (0 when not in field)."""
    areas = np.zeros(design.num_instances)
    for res in FIELD_GROUPS[field]:
        col = list(ResourceType).index(res)
        areas = np.maximum(areas, design.demand_matrix[:, col] / _SITE_UNITS[res])
    return areas


@dataclass
class DensityField:
    """One resource field: member instances, areas and bin capacities."""

    name: str
    members: np.ndarray  # instance indices with area > 0
    areas: np.ndarray  # site-unit area per member (mutable: inflation)
    capacity: np.ndarray  # (bins, bins) available sites per bin
    bins: int

    @property
    def total_capacity(self) -> float:
        return float(self.capacity.sum())

    @property
    def total_area(self) -> float:
        return float(self.areas.sum())


class ElectrostaticSystem:
    """Multi-field electrostatics over a ``bins × bins`` grid.

    Parameters
    ----------
    design:
        The netlist; field membership and initial areas derive from its
        demand matrix.
    bins:
        Density grid resolution.  The grid spans the whole device.
    """

    def __init__(self, design: Design, bins: int = 32) -> None:
        self.design = design
        self.device: FPGADevice = design.device
        self.bins = bins
        self.bin_w = self.device.width / bins
        self.bin_h = self.device.height / bins
        self.fields: dict[str, DensityField] = {}
        for name, resources in FIELD_GROUPS.items():
            areas = _site_area(design, name)
            members = np.flatnonzero(areas > 0)
            if members.size == 0:
                continue
            capacity = self._site_capacity_map(name)
            self.fields[name] = DensityField(
                name=name,
                members=members,
                # Fancy indexing already yields a fresh private array;
                # inflation may later mutate it without aliasing `areas`.
                areas=areas[members],
                capacity=capacity,
                bins=bins,
            )

    def _site_capacity_map(self, field: str) -> np.ndarray:
        """Sites of the field's type per bin (site units, not resources)."""
        site_type = _FIELD_SITE[field]
        cap = np.zeros((self.bins, self.bins))
        col_width = self.device.num_cols / self.bins
        rows_per_bin = self.device.num_rows / self.bins
        for x, col_type in enumerate(self.device.column_types):
            if col_type is not site_type:
                continue
            lo = int(x / col_width)
            hi = int((x + 1 - 1e-9) / col_width)
            for b in range(lo, hi + 1):
                left = max(x, b * col_width)
                right = min(x + 1, (b + 1) * col_width)
                cap[b, :] += max(0.0, right - left) * rows_per_bin
        return cap

    # -- deposition --------------------------------------------------------------

    def _deposit(
        self, field: DensityField, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Bilinear scatter of member areas into the bin grid.

        Returns ``(density, ix, iy, fx, fy)`` where ``ix/iy`` are the
        lower bin indices and ``fx/fy`` the fractional offsets, reused by
        the force gather.
        """
        mx = x[field.members] / self.bin_w - 0.5
        my = y[field.members] / self.bin_h - 0.5
        mx = np.clip(mx, 0.0, self.bins - 1.0 - 1e-9)
        my = np.clip(my, 0.0, self.bins - 1.0 - 1e-9)
        ix = mx.astype(np.int64)
        iy = my.astype(np.int64)
        fx = mx - ix
        fy = my - iy

        density = np.zeros((self.bins, self.bins))
        a = field.areas
        np.add.at(density, (ix, iy), a * (1 - fx) * (1 - fy))
        np.add.at(density, (ix + 1, iy), a * fx * (1 - fy))
        np.add.at(density, (ix, iy + 1), a * (1 - fx) * fy)
        np.add.at(density, (ix + 1, iy + 1), a * fx * fy)
        return density, ix, iy, fx, fy

    # -- Poisson solve ------------------------------------------------------------

    def _solve_poisson(self, rho: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Solve ∇²φ = -ρ with Neumann boundaries; return (φ, Ex, Ey)."""
        n = self.bins
        rho_hat = sp_fft.dctn(rho, type=2, norm="ortho")
        kx = np.pi * np.arange(n) / n
        ky = np.pi * np.arange(n) / n
        denom = (
            (2.0 - 2.0 * np.cos(kx))[:, None] / (self.bin_w**2)
            + (2.0 - 2.0 * np.cos(ky))[None, :] / (self.bin_h**2)
        )
        denom[0, 0] = 1.0  # zero mode: potential defined up to a constant
        phi_hat = rho_hat / denom
        phi_hat[0, 0] = 0.0
        phi = sp_fft.idctn(phi_hat, type=2, norm="ortho")
        # Electric field E = -∇φ via central differences.
        ex = np.zeros_like(phi)
        ey = np.zeros_like(phi)
        ex[1:-1, :] = (phi[:-2, :] - phi[2:, :]) / (2.0 * self.bin_w)
        ex[0, :] = (phi[0, :] - phi[1, :]) / self.bin_w
        ex[-1, :] = (phi[-2, :] - phi[-1, :]) / self.bin_w
        ey[:, 1:-1] = (phi[:, :-2] - phi[:, 2:]) / (2.0 * self.bin_h)
        ey[:, 0] = (phi[:, 0] - phi[:, 1]) / self.bin_h
        ey[:, -1] = (phi[:, -2] - phi[:, -1]) / self.bin_h
        return phi, ex, ey

    # -- public API ---------------------------------------------------------------------

    def overflow(self, x: np.ndarray, y: np.ndarray) -> dict[str, float]:
        """Per-field density overflow: Σ max(0, demand − cap) / Σ demand.

        This is the quantity the Fig. 6 flow gates on
        (``Overflow_t < 0.25`` for macros, ``< 0.15`` for LUT/FF).

        Macro fields are measured *after* snapping each member to its
        nearest legal column: legalization will do exactly that snap, so
        a macro hovering one bin away from a DSP column is not actually
        overflowing anything.
        """
        result: dict[str, float] = {}
        for name, field in self.fields.items():
            total = field.areas.sum()
            if total <= 0:
                result[name] = 0.0
                continue
            if name != "CLB":
                # Column-level feasibility: snap each macro to its nearest
                # legal column and measure per-column over-subscription
                # (legalization spreads freely in y within a column).
                cols = self.device.columns_of_type(_FIELD_SITE[name])
                if cols.size == 0:
                    result[name] = 1.0
                    continue
                member_x = x[field.members]
                nearest = np.argmin(
                    np.abs(member_x[:, None] - (cols[None, :] + 0.5)), axis=1
                )
                per_col = np.bincount(
                    nearest, weights=field.areas, minlength=cols.size
                )
                over = np.maximum(
                    0.0, per_col - float(self.device.num_rows)
                ).sum()
                result[name] = float(over / total)
                continue
            density, *_ = self._deposit(field, x, y)
            over = np.maximum(0.0, density - field.capacity).sum()
            result[name] = float(over / total)
        return result

    def energy_and_forces(
        self, x: np.ndarray, y: np.ndarray, field_weights: dict[str, float] | None = None
    ) -> tuple[dict[str, float], np.ndarray, np.ndarray]:
        """Field energies and per-instance forces (negative penalty gradient).

        Returns ``(energy_by_field, force_x, force_y)`` where forces are
        accumulated over all fields an instance belongs to.  The density
        *penalty gradient* used by the optimizer is ``-force``.
        ``field_weights`` rescales each field's force — elfPlace-style
        per-field multipliers, so sparse fields (URAM) still feel a pull
        comparable to the dense CLB field.
        """
        energies: dict[str, float] = {}
        force_x = np.zeros(self.design.num_instances)
        force_y = np.zeros(self.design.num_instances)
        for name, field in self.fields.items():
            weight = 1.0 if field_weights is None else field_weights.get(name, 1.0)
            density, ix, iy, fx, fy = self._deposit(field, x, y)
            # Charge-neutral residual: subtract the scaled capacity so a
            # perfectly spread placement has zero field.
            scale = field.total_area / max(field.total_capacity, 1e-12)
            rho = density - field.capacity * scale
            phi, ex, ey = self._solve_poisson(rho)
            energies[name] = float(0.5 * (rho * phi).sum())
            # Gather field at each member (bilinear, matching deposition).
            exm = (
                ex[ix, iy] * (1 - fx) * (1 - fy)
                + ex[ix + 1, iy] * fx * (1 - fy)
                + ex[ix, iy + 1] * (1 - fx) * fy
                + ex[ix + 1, iy + 1] * fx * fy
            )
            eym = (
                ey[ix, iy] * (1 - fx) * (1 - fy)
                + ey[ix + 1, iy] * fx * (1 - fy)
                + ey[ix, iy + 1] * (1 - fx) * fy
                + ey[ix + 1, iy + 1] * fx * fy
            )
            np.add.at(force_x, field.members, weight * field.areas * exm)
            np.add.at(force_y, field.members, weight * field.areas * eym)
        return energies, force_x, force_y

    def field_force_norms(self, x: np.ndarray, y: np.ndarray) -> dict[str, float]:
        """RMS force per field at the current placement (for λ balancing)."""
        norms: dict[str, float] = {}
        for name, field in self.fields.items():
            density, ix, iy, fx, fy = self._deposit(field, x, y)
            scale = field.total_area / max(field.total_capacity, 1e-12)
            rho = density - field.capacity * scale
            _, ex, ey = self._solve_poisson(rho)
            exm = (
                ex[ix, iy] * (1 - fx) * (1 - fy)
                + ex[ix + 1, iy] * fx * (1 - fy)
                + ex[ix, iy + 1] * (1 - fx) * fy
                + ex[ix + 1, iy + 1] * fx * fy
            )
            eym = (
                ey[ix, iy] * (1 - fx) * (1 - fy)
                + ey[ix + 1, iy] * fx * (1 - fy)
                + ey[ix, iy + 1] * (1 - fx) * fy
                + ey[ix + 1, iy + 1] * fx * fy
            )
            fx_m = field.areas * exm
            fy_m = field.areas * eym
            norms[name] = float(np.sqrt(np.mean(fx_m**2 + fy_m**2)) + 1e-12)
        return norms

    def inflate(self, field_name: str, member_scale: np.ndarray) -> None:
        """Multiply member areas of one field (instance-inflation hook)."""
        field = self.fields[field_name]
        if member_scale.shape != field.areas.shape:
            raise ValueError("member_scale must match field member count")
        field.areas *= member_scale

    def set_areas(self, field_name: str, areas: np.ndarray) -> None:
        """Replace member areas of one field."""
        field = self.fields[field_name]
        if areas.shape != field.areas.shape:
            raise ValueError("areas must match field member count")
        field.areas = areas.astype(np.float64).copy()
