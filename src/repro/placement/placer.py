"""The routability-driven FPGA macro placement flow (Section IV, Fig. 6).

Steps, exactly as the paper's flow chart:

1. **Cascade handling** — macros under one cascade shape constraint are
   merged into a single cluster (via :class:`~repro.placement.cascade.
   GroupMap`, built into the global placer).
2. **Region-aware global placement (stage 1)** — electrostatic GP with
   the region tension term, run until the overflow gates are met
   (``Overflow_t < 0.25`` for DSP/BRAM/URAM, ``< 0.15`` for LUT/FF).
3. **Congestion prediction + instance inflation** — the pluggable
   estimator produces a congestion level map; Eqs. 11–13 inflate
   instances in grids with level > 3.
4. **Stage-2 global placement** — continue with inflated areas so the
   density force spreads the congested neighbourhoods.
5. **Macro legalization** — cascades and macros snap to legal sites,
   then cells are assigned to CLB columns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..netlist import Design
from ..resilience import Incident, validate_level_map
from .estimators import CongestionEstimator, RudyEstimator
from .inflation import InflationConfig, inflate_all_fields
from .legalize import LegalizationResult, legalize
from .nesterov import GlobalPlacer, GPConfig

__all__ = ["PlacerConfig", "PlacementOutcome", "MacroPlacer", "place_design"]


@dataclass
class PlacerConfig:
    """Configuration of the end-to-end flow."""

    gp: GPConfig = field(default_factory=GPConfig)
    inflation: InflationConfig = field(default_factory=InflationConfig)
    inflation_rounds: int = 2
    stage1_iters: int = 400
    stage2_iters: int = 150
    # Extension (off by default — the paper inflates only): also upweight
    # nets overlapping predicted-hot grids (repro.placement.netweight).
    net_weighting: bool = False
    # Graceful degradation: when the configured estimator raises or
    # returns an invalid level map (wrong rank, NaN, out of the 0-7
    # range), fall back to the analytical RUDY estimate for that round
    # and log an Incident instead of killing the whole flow.
    estimator_fallback: bool = True


@dataclass
class PlacementOutcome:
    """Everything downstream evaluation needs about one placement run."""

    design: Design
    x: np.ndarray
    y: np.ndarray
    hpwl: float
    t_macro_minutes: float
    legalization: LegalizationResult
    stage1_overflow: dict[str, float]
    final_overflow: dict[str, float]
    inflation_stats: list[dict[str, dict[str, float]]]
    # Faults survived during the run (estimator fallbacks etc.); empty
    # means the flow ran clean.
    incidents: list[Incident] = field(default_factory=list)

    @property
    def legal(self) -> bool:
        return self.legalization.legal

    @property
    def degraded(self) -> bool:
        """Did any stage run on a fallback path?"""
        return bool(self.incidents)


class MacroPlacer:
    """Runs the Fig. 6 flow with a pluggable congestion estimator."""

    def __init__(
        self,
        design: Design,
        estimator: CongestionEstimator | None = None,
        config: PlacerConfig | None = None,
    ) -> None:
        self.design = design
        self.config = config or PlacerConfig()
        self.estimator = estimator or RudyEstimator(
            grid=design.device.tile_cols
        )
        self.placer = GlobalPlacer(design, self.config.gp)

    def _predict_levels(
        self,
        x: np.ndarray,
        y: np.ndarray,
        round_index: int,
        incidents: list[Incident],
    ) -> np.ndarray:
        """One validated congestion prediction, degrading to RUDY on fault.

        A crashing or garbage-emitting estimator must not kill a
        placement that is minutes or hours in: the analytical RUDY
        estimate (the contest winners' approach) is always computable
        from the current positions, so it is the universal fallback.
        """
        stage = f"estimate/round{round_index + 1}"
        try:
            raw = np.asarray(self.estimator(self.design, x, y))
            return np.asarray(validate_level_map(raw), dtype=np.float64)
        except Exception as exc:
            if not self.config.estimator_fallback:
                raise
            incidents.append(
                Incident(
                    stage=stage,
                    error=f"{type(exc).__name__}: {exc}",
                    action="fallback:rudy",
                )
            )
        fallback = RudyEstimator(grid=self.design.device.tile_cols)
        return np.asarray(
            validate_level_map(fallback(self.design, x, y)), dtype=np.float64
        )

    def run(self) -> PlacementOutcome:
        cfg = self.config
        start = time.perf_counter()
        incidents: list[Incident] = []

        # Stage 1: region-aware global placement until the gates are met.
        self.placer.run(max_iters=cfg.stage1_iters)
        stage1_overflow = self.placer.overflow()

        # Congestion prediction + inflation rounds, each followed by
        # further spreading (stage 2).
        inflation_stats: list[dict[str, dict[str, float]]] = []
        for round_index in range(cfg.inflation_rounds):
            x, y = self.placer.positions()
            level_map = self._predict_levels(x, y, round_index, incidents)
            stats = inflate_all_fields(
                self.placer.system, level_map, x, y, cfg.inflation
            )
            if cfg.net_weighting:
                from .netweight import apply_congestion_net_weights

                stats["nets_reweighted"] = {
                    "count": float(
                        apply_congestion_net_weights(
                            self.design, level_map, x, y
                        )
                    )
                }
            inflation_stats.append(stats)
            self.placer.run(max_iters=cfg.stage2_iters)

        self.placer.commit()
        final_overflow = self.placer.overflow()

        # Macro (and rough cell) legalization.
        x, y = self.placer.positions()
        legalization = legalize(self.design, x, y)
        self.design.set_placement(legalization.x, legalization.y)

        elapsed_min = (time.perf_counter() - start) / 60.0
        return PlacementOutcome(
            design=self.design,
            x=legalization.x,
            y=legalization.y,
            hpwl=self.design.hpwl(),
            t_macro_minutes=elapsed_min,
            legalization=legalization,
            stage1_overflow=stage1_overflow,
            final_overflow=final_overflow,
            inflation_stats=inflation_stats,
            incidents=incidents,
        )


def place_design(
    design: Design,
    estimator: CongestionEstimator | None = None,
    config: PlacerConfig | None = None,
) -> PlacementOutcome:
    """Place ``design`` with the Fig. 6 flow."""
    return MacroPlacer(design, estimator, config).run()
