"""Region tension term for region-aware global placement (Section IV).

The paper adds a *region tension function* to the global placement
objective so that instances assigned to a region constraint are pulled
inside their fence during stage 1.  We use the standard quadratic
distance penalty: for instance ``i`` assigned to region ``r``,

.. math::  T = w \\sum_i d_r(x_i, y_i)^2

where ``d_r`` is the Euclidean distance to the fence rectangle (zero
inside).  The gradient is linear in the outside-distance components,
i.e. a constant-stiffness spring toward the nearest fence point.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Design

__all__ = ["RegionTension"]


class RegionTension:
    """Precomputed region membership with a vectorized penalty/gradient."""

    def __init__(self, design: Design) -> None:
        self.design = design
        self._members: list[np.ndarray] = []
        self._rects: list[tuple[float, float, float, float]] = []
        for region in design.regions:
            members = np.fromiter(
                (i for i in region.instances if design.instances[i].movable),
                dtype=np.int64,
            )
            if members.size:
                self._members.append(members)
                self._rects.append(
                    (region.xlo, region.ylo, region.xhi, region.yhi)
                )

    @property
    def num_constrained(self) -> int:
        return int(sum(m.size for m in self._members))

    def penalty_and_grad(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """Quadratic fence-distance penalty and its gradient."""
        grad_x = np.zeros_like(x)
        grad_y = np.zeros_like(y)
        total = 0.0
        for members, (xlo, ylo, xhi, yhi) in zip(self._members, self._rects):
            mx = x[members]
            my = y[members]
            # Signed outside components (0 inside the fence).
            dx = np.where(mx < xlo, mx - xlo, np.where(mx > xhi, mx - xhi, 0.0))
            dy = np.where(my < ylo, my - ylo, np.where(my > yhi, my - yhi, 0.0))
            total += float((dx**2 + dy**2).sum())
            np.add.at(grad_x, members, 2.0 * dx)
            np.add.at(grad_y, members, 2.0 * dy)
        return total, grad_x, grad_y

    def violation_count(self, x: np.ndarray, y: np.ndarray, tol: float = 1e-6) -> int:
        """Number of constrained instances currently outside their fence."""
        count = 0
        for members, (xlo, ylo, xhi, yhi) in zip(self._members, self._rects):
            mx = x[members]
            my = y[members]
            outside = (
                (mx < xlo - tol)
                | (mx > xhi + tol)
                | (my < ylo - tol)
                | (my > yhi + tol)
            )
            count += int(outside.sum())
        return count

    def clamp(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project constrained instances onto their fences (hard snap)."""
        x = x.copy()
        y = y.copy()
        for members, (xlo, ylo, xhi, yhi) in zip(self._members, self._rects):
            x[members] = np.clip(x[members], xlo, xhi - 1e-6)
            y[members] = np.clip(y[members], ylo, yhi - 1e-6)
        return x, y
