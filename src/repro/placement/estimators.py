"""Congestion estimators that guide instance inflation.

The Fig. 6 flow needs a map of predicted congestion *levels* at the
inflation step.  The contest winners used RUDY-based analytical
estimates; the paper's contribution replaces that with its trained
MFA+transformer model.  Both plug in through the same callable
interface:

    estimator(design, x, y) -> (grid, grid) float level map

Model-backed estimation lives in :class:`repro.models.predictor`
(to keep this package free of a dependency on the model zoo); here we
provide the analytical baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..features import FeatureExtractor
from ..netlist import Design
from ..routing import utilization_to_level

__all__ = [
    "CongestionEstimator",
    "RudyEstimator",
    "PinDensityAwareEstimator",
    "OracleEstimator",
]


class CongestionEstimator(Protocol):
    """Anything that maps a placement to a congestion level map."""

    def __call__(
        self, design: Design, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray: ...


@dataclass
class RudyEstimator:
    """RUDY-based congestion levels (the contest winners' approach [11]).

    The RUDY feature is already normalized to track-budget units, so it
    is a direct utilization estimate; ``gain`` calibrates how eagerly
    RUDY demand is translated into congestion levels.
    """

    grid: int = 64
    gain: float = 1.0

    def __call__(self, design: Design, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        extractor = FeatureExtractor(grid=self.grid)
        features = extractor(design, x, y)
        rudy = features[3]  # RUDY map, utilization units
        return utilization_to_level(self.gain * rudy).astype(np.float64)


@dataclass
class OracleEstimator:
    """Ground-truth congestion: route the current placement and return
    the router's actual level map.

    This is the perfect-information upper bound for inflation guidance —
    no predictor can beat it on its own labels — at the cost of a full
    routing pass per inflation round.  Used by the ablation benches to
    bound how much headroom better prediction can buy (the causal chain
    the paper's Table II relies on).
    """

    grid: int = 64

    def __call__(self, design: Design, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        from ..features import resize_map
        from ..routing import congestion_report, route_design

        old_x, old_y = design.x, design.y
        design.set_placement(x, y)
        try:
            report = congestion_report(route_design(design))
        finally:
            design.x, design.y = old_x, old_y
        levels = report.level_map.astype(np.float64)
        if levels.shape != (self.grid, self.grid):
            levels = resize_map(levels, self.grid, self.grid)
        return levels


@dataclass
class PinDensityAwareEstimator:
    """RUDY augmented with pin density (MPKU-style hybrid estimate).

    Pin-dense grids route worse than RUDY alone suggests; mixing the pin
    RUDY map in recovers part of that signal analytically.  The default
    gain is calibrated *below* 1: over-predicting congestion is as
    harmful as not inflating, because Eq. 12's τ cap then dilutes the
    inflation budget across the whole die instead of the real hotspots
    (see benchmarks/test_ablation_inflation.py).
    """

    grid: int = 64
    gain: float = 0.85
    pin_weight: float = 0.30

    def __call__(self, design: Design, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        extractor = FeatureExtractor(grid=self.grid)
        features = extractor(design, x, y)
        rudy = features[3]
        pin_rudy = features[4]
        mix = self.gain * (rudy + self.pin_weight * pin_rudy)
        return utilization_to_level(mix).astype(np.float64)
