"""Placement parameter sweeps (Section V-A's "varying parameters").

The paper builds its dataset by running the macro placement flow "with
varying parameters to generate 30 different placement results" per
benchmark.  :func:`sample_placer_config` draws one such configuration —
GP seed, learning rate, density-multiplier growth, inflation rounds and
stage-1 budget all vary — and :func:`sweep_configs` yields a whole
sweep.  The training-dataset builder and the examples share this
sampler so "a placement sweep" means the same thing everywhere.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .nesterov import GPConfig
from .placer import PlacerConfig

__all__ = ["sample_placer_config", "sweep_configs"]


def sample_placer_config(
    rng: np.random.Generator,
    gp_iters: int = 400,
    stage2_iters: int = 120,
    bins: int = 32,
    gp_seed: int | None = None,
) -> PlacerConfig:
    """Draw one placement configuration from the sweep distribution.

    ``gp_seed`` pins the GP seed explicitly — the dataset builder
    derives it from a per-placement ``SeedSequence`` child so parallel
    generation reproduces the serial stream — instead of the legacy
    draw from ``rng``.
    """
    gp = GPConfig(
        bins=bins,
        max_iters=gp_iters,
        lr=float(rng.uniform(0.35, 0.55)),
        lambda_growth=float(rng.uniform(1.012, 1.02)),
        seed=int(rng.integers(1_000_000)) if gp_seed is None else int(gp_seed),
    )
    stage1_lo = max(1, int(0.6 * gp_iters))
    return PlacerConfig(
        gp=gp,
        inflation_rounds=int(rng.integers(0, 3)),
        stage1_iters=int(rng.integers(stage1_lo, gp_iters + 1)),
        stage2_iters=stage2_iters,
    )


def sweep_configs(
    count: int,
    seed: int = 0,
    gp_iters: int = 400,
    stage2_iters: int = 120,
    bins: int = 32,
) -> Iterator[PlacerConfig]:
    """Yield ``count`` varied placement configurations (paper: 30)."""
    rng = np.random.default_rng(seed)
    for _ in range(count):
        yield sample_placer_config(
            rng, gp_iters=gp_iters, stage2_iters=stage2_iters, bins=bins
        )
