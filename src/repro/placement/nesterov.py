"""Gradient-based global placement engine.

Minimizes ``WL_WA + λ · Σ_fields energy + w_r · region tension`` over
group variables (cascade clusters move as one, per
:class:`~repro.placement.cascade.GroupMap`).  The density multiplier λ
grows geometrically as in ePlace, the WA smoothing γ anneals, and the
update rule is Nesterov momentum on an RMS-normalized gradient — a
simplification of DREAMPlaceFPGA's Nesterov/Barzilai-Borwein scheme that
is robust at the scales this pure-numpy reproduction runs at.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..netlist import Design
from .cascade import GroupMap
from .density import ElectrostaticSystem
from .regions import RegionTension
from .wirelength import hpwl, lse_wirelength_grad, wa_wirelength_grad

__all__ = ["GPConfig", "GlobalPlacer", "GPState"]

_MACRO_FIELDS = ("DSP", "BRAM", "URAM")


@dataclass
class GPConfig:
    """Hyper-parameters of the global placement engine."""

    bins: int = 32
    max_iters: int = 600
    wirelength_model: str = "wa"  # "wa" (paper baseline) or "lse"
    lr: float = 0.45  # site units per step on the RMS-normalized gradient
    momentum: float = 0.90
    lambda_init: float = 0.02
    lambda_growth: float = 1.015
    gamma_init_bins: float = 4.0  # initial WA gamma, in bin widths
    gamma_final_bins: float = 0.5
    region_weight: float = 0.05
    seed: int = 0
    # Fig. 6 overflow gates: congestion prediction + inflation run when
    # macro overflow < 0.25 and CLB (LUT/FF) overflow < 0.15.
    macro_overflow_gate: float = 0.25
    clb_overflow_gate: float = 0.15
    log_every: int = 0  # 0 disables progress logging


@dataclass
class GPState:
    """Mutable optimizer state exposed to the flow (Fig. 6)."""

    gx: np.ndarray
    gy: np.ndarray
    vx: np.ndarray
    vy: np.ndarray
    iteration: int = 0
    history: list = field(default_factory=list)


class GlobalPlacer:
    """Electrostatic global placer over a design's group variables."""

    def __init__(self, design: Design, config: GPConfig | None = None) -> None:
        self.design = design
        self.config = config or GPConfig()
        self.groups = GroupMap(design)
        self.system = ElectrostaticSystem(design, bins=self.config.bins)
        self.regions = RegionTension(design)
        self._lambda = self.config.lambda_init
        self._density_scale: dict[str, float] | None = None

        gx, gy = self.groups.initial_variables()
        rng = np.random.default_rng(self.config.seed)
        # Tiny jitter breaks the symmetry of a fully stacked start.
        gx = gx + rng.normal(0, 0.25, gx.shape)
        gy = gy + rng.normal(0, 0.25, gy.shape)
        gx, gy = self.groups.clamp_variables(gx, gy)
        self.state = GPState(
            gx=gx,
            gy=gy,
            vx=np.zeros_like(gx),
            vy=np.zeros_like(gy),
        )

    # -- observable quantities ----------------------------------------------------

    def positions(self) -> tuple[np.ndarray, np.ndarray]:
        """Current per-instance coordinates."""
        return self.groups.expand(self.state.gx, self.state.gy)

    def overflow(self) -> dict[str, float]:
        x, y = self.positions()
        return self.system.overflow(x, y)

    def hpwl(self) -> float:
        x, y = self.positions()
        return hpwl(self.design, x, y)

    def gates_met(self) -> bool:
        """Whether the Fig. 6 inflation gates are satisfied."""
        overflow = self.overflow()
        clb_ok = overflow.get("CLB", 0.0) < self.config.clb_overflow_gate
        macro_ok = all(
            overflow.get(name, 0.0) < self.config.macro_overflow_gate
            for name in _MACRO_FIELDS
        )
        return clb_ok and macro_ok

    # -- optimization ----------------------------------------------------------------

    def _gamma(self) -> float:
        cfg = self.config
        bin_w = self.design.device.width / cfg.bins
        progress = min(1.0, self.state.iteration / max(cfg.max_iters, 1))
        log_g = (
            np.log(cfg.gamma_init_bins) * (1 - progress)
            + np.log(cfg.gamma_final_bins) * progress
        )
        return float(np.exp(log_g) * bin_w)

    def _gradient(self) -> tuple[np.ndarray, np.ndarray, dict[str, float]]:
        """Combined objective gradient on group variables, plus metrics."""
        cfg = self.config
        lookahead = cfg.momentum
        gx = self.state.gx + lookahead * self.state.vx
        gy = self.state.gy + lookahead * self.state.vy
        gx, gy = self.groups.clamp_variables(gx, gy)
        x, y = self.groups.expand(gx, gy)

        wl_grad = (
            lse_wirelength_grad
            if cfg.wirelength_model == "lse"
            else wa_wirelength_grad
        )
        wl, wl_gx, wl_gy = wl_grad(self.design, x, y, self._gamma())
        if self._density_scale is None:
            # elfPlace-style per-field balancing: normalize each field's
            # force to the wirelength gradient scale once, so lambda is
            # dimensionless and sparse fields (URAM) are not starved.
            wl_norm = np.sqrt(np.mean(wl_gx**2 + wl_gy**2)) + 1e-12
            field_norms = self.system.field_force_norms(x, y)
            self._density_scale = {
                name: wl_norm / norm for name, norm in field_norms.items()
            }
        energies, fx, fy = self.system.energy_and_forces(
            x, y, field_weights=self._density_scale
        )
        # Density penalty gradient is the negative force.
        dn_gx, dn_gy = -fx, -fy
        dn_scale = 1.0

        rg_pen, rg_gx, rg_gy = self.regions.penalty_and_grad(x, y)

        grad_x = wl_gx + self._lambda * dn_scale * dn_gx + cfg.region_weight * rg_gx
        grad_y = wl_gy + self._lambda * dn_scale * dn_gy + cfg.region_weight * rg_gy
        ggx, ggy = self.groups.reduce_grad(grad_x, grad_y)
        # Precondition: heavy groups (long cascades) move proportionally.
        ggx /= self.groups.group_sizes + 1e-12
        ggy /= self.groups.group_sizes + 1e-12
        metrics = {"wl": wl, "region": rg_pen, **energies}
        return ggx, ggy, metrics

    def step(self) -> dict[str, float]:
        """One Nesterov step; returns the step's metrics."""
        cfg = self.config
        ggx, ggy, metrics = self._gradient()
        rms = np.sqrt(np.mean(ggx**2 + ggy**2)) + 1e-12
        ggx /= rms
        ggy /= rms

        self.state.vx = cfg.momentum * self.state.vx - cfg.lr * ggx
        self.state.vy = cfg.momentum * self.state.vy - cfg.lr * ggy
        self.state.gx, self.state.gy = self.groups.clamp_variables(
            self.state.gx + self.state.vx, self.state.gy + self.state.vy
        )
        self.state.iteration += 1
        self._lambda *= cfg.lambda_growth
        return metrics

    def run(
        self,
        max_iters: int | None = None,
        stop_when=None,
        check_every: int = 10,
    ) -> dict[str, float]:
        """Iterate until ``stop_when(self)`` is true or iterations run out.

        ``stop_when`` defaults to the Fig. 6 overflow gates.
        """
        cfg = self.config
        budget = max_iters if max_iters is not None else cfg.max_iters
        stop = stop_when if stop_when is not None else GlobalPlacer.gates_met
        metrics: dict[str, float] = {}
        for i in range(budget):
            metrics = self.step()
            if cfg.log_every and self.state.iteration % cfg.log_every == 0:
                overflow = self.overflow()
                print(
                    f"iter {self.state.iteration:4d} wl={metrics['wl']:.0f} "
                    f"overflow={ {k: round(v, 3) for k, v in overflow.items()} }"
                )
            if (i + 1) % check_every == 0 and stop(self):
                break
        overflow = self.overflow()
        metrics.update({f"overflow_{k}": v for k, v in overflow.items()})
        metrics["hpwl"] = self.hpwl()
        self.state.history.append(dict(metrics))
        return metrics

    # -- flow hooks --------------------------------------------------------------------

    def apply_inflation(self, field_name: str, new_areas: np.ndarray) -> None:
        """Install inflated areas for one field (Eqs. 11–13 output)."""
        self.system.set_areas(field_name, new_areas)

    def commit(self) -> None:
        """Write the current positions back into the design."""
        x, y = self.positions()
        self.design.set_placement(x, y)
