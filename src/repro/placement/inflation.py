"""Congestion-driven instance inflation (Eqs. 11–13).

Given a predicted congestion *level* map ``Y`` (levels 0–7, penalized
above 3 by Eq. 1), every instance sitting in a grid with ``Y > 3`` has
its area inflated:

.. math::
    A_i^{est} = A_i \\cdot \\min\\{[\\max(1, Y^i_{out} - 2)]^{2.5},\\ \\epsilon\\}

The per-resource increase is then scaled by Eq. 12 so total demand never
exceeds the field capacity, and Eq. 13 commits the update.  The inflated
areas feed straight back into the electrostatic density system, which is
how congestion relief actually happens during stage-2 global placement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netlist import Design
from .density import ElectrostaticSystem

__all__ = ["InflationConfig", "lookup_levels", "inflate_field", "inflate_all_fields"]


@dataclass(frozen=True)
class InflationConfig:
    """Knobs of Eqs. 11–13.

    ``epsilon`` is the paper's empirical over-inflation guard; the level
    threshold (inflate only where ``Y > 3``) and the 2.5 exponent come
    straight from Eq. 11.
    """

    epsilon: float = 10.0
    level_threshold: float = 3.0
    exponent: float = 2.5


def lookup_levels(
    level_map: np.ndarray,
    design: Design,
    x: np.ndarray,
    y: np.ndarray,
    members: np.ndarray,
) -> np.ndarray:
    """Congestion level at each member instance's grid cell.

    ``level_map`` is indexed ``[gx, gy]`` over a uniform grid covering
    the device, matching :mod:`repro.features.grids`.
    """
    gw, gh = level_map.shape
    device = design.device
    gx = np.clip(
        (x[members] / device.width * gw).astype(np.int64), 0, gw - 1
    )
    gy = np.clip(
        (y[members] / device.height * gh).astype(np.int64), 0, gh - 1
    )
    return level_map[gx, gy]


def inflate_field(
    system: ElectrostaticSystem,
    field_name: str,
    level_map: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    config: InflationConfig = InflationConfig(),
) -> dict[str, float]:
    """Apply Eqs. 11–13 to one resource field, in place.

    Returns summary statistics (instances inflated, area added, τ).
    """
    field = system.fields[field_name]
    levels = lookup_levels(level_map, system.design, x, y, field.members)

    areas = field.areas
    # Eq. 11 — only grids with level above the penalty threshold inflate.
    factor = np.minimum(
        np.maximum(1.0, levels - 2.0) ** config.exponent, config.epsilon
    )
    factor = np.where(levels > config.level_threshold, factor, 1.0)
    estimated = areas * factor
    delta = estimated - areas  # ΔA_i, Eq. 11's target increase

    total_delta = float(delta.sum())
    if total_delta <= 0.0:
        return {"inflated": 0, "area_added": 0.0, "tau": 1.0}

    # Eq. 12 — cap total inflation by the field's free capacity.
    free = field.total_capacity - float(areas.sum())
    tau = min(max(free, 0.0) / total_delta, 1.0)

    # Eq. 13 — commit.
    field.areas = areas + tau * delta
    return {
        "inflated": int((delta > 0).sum()),
        "area_added": float(tau * total_delta),
        "tau": float(tau),
    }


def inflate_all_fields(
    system: ElectrostaticSystem,
    level_map: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    config: InflationConfig = InflationConfig(),
) -> dict[str, dict[str, float]]:
    """Apply inflation to every resource field; returns per-field stats."""
    return {
        name: inflate_field(system, name, level_map, x, y, config)
        for name in system.fields
    }
