"""Post-legalization macro refinement (detailed placement for macros).

After legalization snaps macros to sites, a cheap local search often
recovers wirelength lost to displacement: macros of the same site type
exchange sites, or move to free sites, whenever that lowers HPWL.  This
is the standard "macro detailed placement" step analytical flows run
after legalization; the paper's flow (Fig. 6) ends at legalization, so
this module is an *extension* — benchmarked in the ablation suite, off
by default in :func:`repro.placement.place_design`.

Implementation notes: moves are evaluated incrementally — only the nets
touching the moved macros are re-spanned — so a full refinement pass is
O(#macros² · avg-degree) worst case but cheap in practice.  Cascaded
and region-constrained macros are skipped (their legal moves are far
more constrained, and legalization already places them with priority).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..netlist import Design

__all__ = ["RefineResult", "refine_macros", "refine_cells"]


@dataclass
class RefineResult:
    """Outcome of a refinement pass."""

    x: np.ndarray
    y: np.ndarray
    hpwl_before: float
    hpwl_after: float
    moves_accepted: int
    passes: int

    @property
    def improvement(self) -> float:
        """Fractional HPWL reduction."""
        if self.hpwl_before == 0:
            return 0.0
        return 1.0 - self.hpwl_after / self.hpwl_before


class _IncrementalHPWL:
    """Net-span bookkeeping for fast delta evaluation of macro moves."""

    def __init__(self, design: Design, x: np.ndarray, y: np.ndarray) -> None:
        self.design = design
        self.x = x.copy()
        self.y = y.copy()
        # Nets per instance.
        order = np.argsort(design.pin_inst, kind="stable")
        self._inst_sorted = design.pin_inst[order]
        self._nets_sorted = design.pin_net[order]
        self._bounds = np.searchsorted(
            self._inst_sorted, np.arange(design.num_instances + 1)
        )

    def nets_of(self, inst: int) -> np.ndarray:
        lo, hi = self._bounds[inst], self._bounds[inst + 1]
        return np.unique(self._nets_sorted[lo:hi])

    def _net_span(self, net: int) -> float:
        design = self.design
        pins = design.pin_inst[design.pin_net == net]
        px = self.x[pins]
        py = self.y[pins]
        return float(
            (px.max() - px.min() + py.max() - py.min())
            * design.net_weights[net]
        )

    def move_delta(self, movers: list[int], nx: list[float], ny: list[float]) -> float:
        """HPWL delta of moving ``movers`` to the new coordinates."""
        nets = np.unique(
            np.concatenate([self.nets_of(m) for m in movers])
        )
        before = sum(self._net_span(n) for n in nets)
        old = [(self.x[m], self.y[m]) for m in movers]
        for m, mx, my in zip(movers, nx, ny):
            self.x[m] = mx
            self.y[m] = my
        after = sum(self._net_span(n) for n in nets)
        for m, (mx, my) in zip(movers, old):
            self.x[m] = mx
            self.y[m] = my
        return after - before

    def commit(self, movers: list[int], nx: list[float], ny: list[float]) -> None:
        for m, mx, my in zip(movers, nx, ny):
            self.x[m] = mx
            self.y[m] = my


def refine_macros(
    design: Design,
    x: np.ndarray,
    y: np.ndarray,
    max_passes: int = 3,
    temperature: float = 0.0,
    seed: int = 0,
) -> RefineResult:
    """Greedy (or simulated-annealing) macro swap refinement.

    Parameters
    ----------
    design:
        The placed design; ``x``/``y`` must be a *legal* placement.
    max_passes:
        Sweeps over all refinable macro pairs.
    temperature:
        0 gives pure greedy; > 0 accepts uphill swaps with probability
        ``exp(-delta / temperature)`` (annealed to 0 over the passes).
    """
    rng = np.random.default_rng(seed)
    state = _IncrementalHPWL(design, x, y)
    design.set_placement(x, y)
    hpwl_before = design.hpwl()

    in_cascade = {i for c in design.cascades for i in c.instances}
    fenced = {i for r in design.regions for i in r.instances}
    refinable: dict[object, list[int]] = {}
    for inst in design.macro_indices():
        inst = int(inst)
        if inst in in_cascade or inst in fenced:
            continue
        if not design.instances[inst].movable:
            continue
        refinable.setdefault(design.instances[inst].resource, []).append(inst)

    accepted = 0
    passes = 0
    for pass_idx in range(max_passes):
        passes += 1
        improved = False
        temp = temperature * (1.0 - pass_idx / max(max_passes, 1))
        for macros in refinable.values():
            order = rng.permutation(len(macros))
            for ai in order:
                a = macros[int(ai)]
                # Candidate partners: a few random same-type macros.
                partners = rng.choice(
                    macros, size=min(8, len(macros)), replace=False
                )
                for b in partners:
                    b = int(b)
                    if b == a:
                        continue
                    ax, ay = state.x[a], state.y[a]
                    bx, by = state.x[b], state.y[b]
                    delta = state.move_delta([a, b], [bx, ax], [by, ay])
                    accept = delta < -1e-9 or (
                        temp > 0 and rng.random() < np.exp(-delta / temp)
                    )
                    if accept:
                        state.commit([a, b], [bx, ax], [by, ay])
                        accepted += 1
                        if delta < -1e-9:
                            improved = True
        if not improved and temperature == 0.0:
            break

    design.set_placement(state.x, state.y)
    hpwl_after = design.hpwl()
    # Restore only if refinement made things worse (possible with SA).
    if hpwl_after > hpwl_before:
        design.set_placement(x, y)
        return RefineResult(
            x.copy(), y.copy(), hpwl_before, hpwl_before, 0, passes
        )
    return RefineResult(
        state.x, state.y, hpwl_before, hpwl_after, accepted, passes
    )


def refine_cells(
    design: Design,
    x: np.ndarray,
    y: np.ndarray,
    max_passes: int = 2,
    window: float = 6.0,
    candidates: int = 6,
    seed: int = 0,
) -> RefineResult:
    """Greedy cell swap refinement after legalization.

    CLB clusters exchange sites with nearby clusters (within ``window``
    site units) whenever that lowers HPWL — the classic window-based
    detailed placement pass.  Swapping two same-type legal sites keeps
    the placement legal by construction; region-fenced cells only swap
    within their own fence set.
    """
    from ..arch import ResourceType

    rng = np.random.default_rng(seed)
    state = _IncrementalHPWL(design, x, y)
    design.set_placement(x, y)
    hpwl_before = design.hpwl()

    fence_of: dict[int, int] = {}
    for ridx, region in enumerate(design.regions):
        for inst in region.instances:
            fence_of[inst] = ridx
    cells = [
        int(i)
        for i in design.instances_of(ResourceType.LUT)
        if design.instances[int(i)].movable
        and design.demand_matrix[int(i)].sum() > 0
    ]
    if len(cells) < 2:
        return RefineResult(x.copy(), y.copy(), hpwl_before, hpwl_before, 0, 0)
    cell_arr = np.asarray(cells)

    accepted = 0
    passes = 0
    for _ in range(max_passes):
        passes += 1
        improved = False
        order = rng.permutation(len(cells))
        cx = state.x[cell_arr]
        cy = state.y[cell_arr]
        for ai in order:
            a = cells[int(ai)]
            ax, ay = state.x[a], state.y[a]
            near = np.flatnonzero(
                (np.abs(cx - ax) <= window) & (np.abs(cy - ay) <= window)
            )
            if near.size < 2:
                continue
            picks = rng.choice(near, size=min(candidates, near.size), replace=False)
            for bi in picks:
                b = cells[int(bi)]
                if b == a or fence_of.get(a) != fence_of.get(b):
                    continue
                bx, by = state.x[b], state.y[b]
                delta = state.move_delta([a, b], [bx, ax], [by, ay])
                if delta < -1e-9:
                    state.commit([a, b], [bx, ax], [by, ay])
                    cx = state.x[cell_arr]
                    cy = state.y[cell_arr]
                    accepted += 1
                    improved = True
                    break
        if not improved:
            break

    design.set_placement(state.x, state.y)
    return RefineResult(
        state.x, state.y, hpwl_before, design.hpwl(), accepted, passes
    )
