"""Electrostatics-based macro placement flow (Section IV, Fig. 6)."""

from .cascade import GroupMap
from .density import FIELD_GROUPS, DensityField, ElectrostaticSystem
from .estimators import (
    CongestionEstimator,
    OracleEstimator,
    PinDensityAwareEstimator,
    RudyEstimator,
)
from .inflation import (
    InflationConfig,
    inflate_all_fields,
    inflate_field,
    lookup_levels,
)
from .legalize import LegalizationResult, legalize, legalize_cells, legalize_macros
from .nesterov import GlobalPlacer, GPConfig, GPState
from .netweight import apply_congestion_net_weights, reset_net_weights
from .placer import MacroPlacer, PlacementOutcome, PlacerConfig, place_design
from .refine import RefineResult, refine_cells, refine_macros
from .regions import RegionTension
from .sweep import sample_placer_config, sweep_configs
from .wirelength import (
    hpwl,
    lse_wirelength,
    lse_wirelength_grad,
    wa_wirelength,
    wa_wirelength_grad,
)

__all__ = [
    "GroupMap",
    "CongestionEstimator",
    "RudyEstimator",
    "PinDensityAwareEstimator",
    "OracleEstimator",
    "MacroPlacer",
    "PlacerConfig",
    "PlacementOutcome",
    "place_design",
    "RefineResult",
    "refine_macros",
    "refine_cells",
    "apply_congestion_net_weights",
    "reset_net_weights",
    "sample_placer_config",
    "sweep_configs",
    "ElectrostaticSystem",
    "DensityField",
    "FIELD_GROUPS",
    "InflationConfig",
    "inflate_field",
    "inflate_all_fields",
    "lookup_levels",
    "LegalizationResult",
    "legalize",
    "legalize_macros",
    "legalize_cells",
    "GlobalPlacer",
    "GPConfig",
    "GPState",
    "RegionTension",
    "hpwl",
    "wa_wirelength",
    "wa_wirelength_grad",
    "lse_wirelength",
    "lse_wirelength_grad",
]
