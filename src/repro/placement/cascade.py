"""Cascade-shape handling: merge chained macros into single clusters.

Following the technique of DREAMPlaceFPGA-MP [11] that the paper adopts,
macros under the same cascade shape constraint are merged into one large
cluster *before* global placement: the cluster has a single movable
``(x, y)`` and each member keeps a fixed vertical offset (0, 1, 2, …)
inside it.  :class:`GroupMap` realises this as a linear map between the
group variable vector and per-instance coordinates, with the transpose
map accumulating gradients back onto group variables.
"""

from __future__ import annotations

import numpy as np

from ..netlist import Design

__all__ = ["GroupMap"]


class GroupMap:
    """Variable grouping for cascades and fixed instances.

    Every movable instance belongs to exactly one group: cascade members
    share their cascade's group, everything else is a singleton.  Fixed
    instances are not variables at all; their coordinates are constants
    supplied at construction.
    """

    def __init__(self, design: Design) -> None:
        self.design = design
        n = design.num_instances
        group_of = np.full(n, -1, dtype=np.int64)
        offset_y = np.zeros(n)

        num_groups = 0
        in_cascade = np.zeros(n, dtype=bool)
        self.cascade_groups: list[int] = []
        for cascade in design.cascades:
            gid = num_groups
            num_groups += 1
            self.cascade_groups.append(gid)
            for rank, inst in enumerate(cascade.instances):
                if in_cascade[inst]:
                    raise ValueError(
                        f"instance {inst} appears in multiple cascade shapes"
                    )
                in_cascade[inst] = True
                group_of[inst] = gid
                offset_y[inst] = float(rank)

        for inst in range(n):
            if not design.movable_mask[inst] or in_cascade[inst]:
                continue
            group_of[inst] = num_groups
            num_groups += 1

        self.group_of = group_of
        self.offset_y = offset_y
        self.num_groups = num_groups
        self._movable = np.flatnonzero(group_of >= 0)
        self._fixed = np.flatnonzero(group_of < 0)
        self.fixed_x = design.x[self._fixed].copy()
        self.fixed_y = design.y[self._fixed].copy()
        # Total site-unit mass per group, used for gradient preconditioning.
        self.group_sizes = np.bincount(
            group_of[self._movable], minlength=num_groups
        ).astype(np.float64)

    # -- variable <-> instance maps ------------------------------------------------

    def initial_variables(self) -> tuple[np.ndarray, np.ndarray]:
        """Group positions seeded from the design's current placement."""
        gx = np.zeros(self.num_groups)
        gy = np.zeros(self.num_groups)
        counts = np.zeros(self.num_groups)
        gids = self.group_of[self._movable]
        np.add.at(gx, gids, self.design.x[self._movable])
        np.add.at(
            gy, gids, self.design.y[self._movable] - self.offset_y[self._movable]
        )
        np.add.at(counts, gids, 1.0)
        counts[counts == 0] = 1.0
        return gx / counts, gy / counts

    def expand(self, gx: np.ndarray, gy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-instance coordinates from group variables."""
        x = np.empty(self.design.num_instances)
        y = np.empty(self.design.num_instances)
        x[self._fixed] = self.fixed_x
        y[self._fixed] = self.fixed_y
        gids = self.group_of[self._movable]
        x[self._movable] = gx[gids]
        y[self._movable] = gy[gids] + self.offset_y[self._movable]
        return x, y

    def reduce_grad(
        self, grad_x: np.ndarray, grad_y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Accumulate per-instance gradients onto group variables."""
        ggx = np.zeros(self.num_groups)
        ggy = np.zeros(self.num_groups)
        gids = self.group_of[self._movable]
        np.add.at(ggx, gids, grad_x[self._movable])
        np.add.at(ggy, gids, grad_y[self._movable])
        return ggx, ggy

    def clamp_variables(
        self, gx: np.ndarray, gy: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Keep every member of every group inside the device."""
        device = self.design.device
        max_off = np.zeros(self.num_groups)
        np.maximum.at(
            max_off, self.group_of[self._movable], self.offset_y[self._movable]
        )
        gx = np.clip(gx, 0.0, device.width - 1.0)
        gy = np.clip(gy, 0.0, device.height - 1.0 - max_off)
        return gx, gy
