"""Macro and cell legalization.

After global placement, macros (DSP/BRAM/URAM) must land on discrete
sites of their own column type, cascade chains on *consecutive* sites of
one column in order, and region-constrained macros inside their fences
(Section II-A).  The legalizer is a displacement-greedy assigner: items
are processed largest-first (cascade chains before singletons), each
scanning candidate columns outward from its global-placement position
for the free window that minimizes total displacement.

Cells (CLB clusters) get a lighter treatment — slot-per-site assignment
within each CLB column, processed in x order — since the congestion
metric operates at interconnect-tile granularity and only needs cells to
respect column capacities, not LUT-level packing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..arch import ResourceType, SiteType
from ..netlist import Design

__all__ = ["LegalizationResult", "legalize_macros", "legalize_cells", "legalize"]

_MACRO_SITES = {
    ResourceType.DSP: SiteType.DSP,
    ResourceType.BRAM: SiteType.BRAM,
    ResourceType.URAM: SiteType.URAM,
}


@dataclass
class LegalizationResult:
    """Outcome of a legalization pass."""

    x: np.ndarray
    y: np.ndarray
    total_displacement: float
    max_displacement: float
    failures: list[str] = field(default_factory=list)

    @property
    def legal(self) -> bool:
        return not self.failures


def _region_of(design: Design, instances: tuple[int, ...]):
    """The region constraining any of ``instances`` (None if unconstrained)."""
    for region in design.regions:
        if any(i in region.instances for i in instances):
            return region
    return None


def _find_window(
    occupied: np.ndarray, length: int, target: float, lo: int, hi: int
) -> int | None:
    """Lowest-cost start row of a free window of ``length`` in [lo, hi).

    ``occupied`` is the column's boolean occupancy; cost is the distance
    between the window center and ``target``.
    """
    if hi - lo < length:
        return None
    free = ~occupied[lo:hi]
    # Sliding-window free count via prefix sums: window i (start
    # lo + i) is fully free iff the count over its span equals length.
    csum = np.cumsum(free)
    window = csum[length - 1 :] - np.concatenate(([0], csum[:-length]))
    starts = np.nonzero(window == length)[0] + lo
    if starts.size == 0:
        return None
    centers = starts + 0.5 * (length - 1)
    # argmin takes the first minimum, matching the ascending-row scan's
    # tie-break toward the lowest start.
    return int(starts[np.argmin(np.abs(centers - target))])


def legalize_macros(design: Design, x: np.ndarray, y: np.ndarray) -> LegalizationResult:
    """Snap all macros to legal sites, honoring cascades and regions."""
    device = design.device
    x = x.copy()
    y = y.copy()
    failures: list[str] = []

    # Column occupancy per macro site type.
    # Sorted so the occupancy dict has a run-independent key order
    # (REPRO105: set iteration order is not deterministic).
    occupancy: dict[SiteType, dict[int, np.ndarray]] = {}
    for site_type in sorted(set(_MACRO_SITES.values()), key=lambda s: s.value):
        occupancy[site_type] = {
            int(col): np.zeros(device.num_rows, dtype=bool)
            for col in device.columns_of_type(site_type)
        }

    # Build work items: region-constrained items first (they have the
    # fewest options), then by descending chain length.
    in_cascade = {i for c in design.cascades for i in c.instances}
    items: list[tuple[tuple[int, ...], ResourceType]] = []
    for cascade in design.cascades:
        items.append(
            (cascade.instances, design.instances[cascade.instances[0]].resource)
        )
    singles = [
        (int(i),)
        for i in design.macro_indices()
        if int(i) not in in_cascade and design.instances[int(i)].movable
    ]
    items.extend((s, design.instances[s[0]].resource) for s in singles)
    items.sort(
        key=lambda item: (
            _region_of(design, item[0]) is None,  # fenced items first
            -len(item[0]),  # long chains before singletons
        )
    )

    total_disp = 0.0
    max_disp = 0.0
    for instances, resource in items:
        site_type = _MACRO_SITES[resource]
        columns = occupancy[site_type]
        if not columns:
            failures.append(f"no {site_type.value} columns on device")
            continue
        length = len(instances)
        cx = float(np.mean(x[list(instances)]))
        cy = float(np.mean(y[list(instances)])) - 0.5 * (length - 1)

        region = _region_of(design, instances)
        row_lo, row_hi = 0, device.num_rows
        col_pool = np.fromiter(columns.keys(), dtype=np.int64)
        if region is not None:
            col_pool = col_pool[
                (col_pool >= region.xlo) & (col_pool < region.xhi)
            ]
            row_lo = max(0, int(np.ceil(region.ylo)))
            row_hi = min(device.num_rows, int(np.floor(region.yhi)))
        if col_pool.size == 0 or row_hi - row_lo < length:
            failures.append(
                f"no feasible sites for {design.instances[instances[0]].name} "
                f"(cascade length {length})"
            )
            continue

        order = col_pool[np.argsort(np.abs(col_pool - cx))]
        placed = False
        for col in order:
            start = _find_window(columns[int(col)], length, cy, row_lo, row_hi)
            if start is None:
                continue
            columns[int(col)][start : start + length] = True
            idx = np.asarray(instances, dtype=np.int64)
            rows = start + np.arange(length, dtype=np.float64)
            disp = np.hypot(float(col) - x[idx], rows - y[idx])
            total_disp += float(disp.sum())
            max_disp = max(max_disp, float(disp.max()))
            x[idx] = float(col)
            y[idx] = rows
            placed = True
            break
        if not placed:
            failures.append(
                f"could not legalize {design.instances[instances[0]].name} "
                f"(length {length})"
            )

    return LegalizationResult(x, y, total_disp, max_disp, failures)


def legalize_cells(design: Design, x: np.ndarray, y: np.ndarray) -> LegalizationResult:
    """Assign CLB clusters to CLB columns without exceeding capacity.

    Each CLB site hosts one 8-LUT cluster.  Clusters are swept in x
    order and pushed to the nearest column with free rows; within a
    column they take the free row closest to their global-placement y.
    """
    device = design.device
    x = x.copy()
    y = y.copy()
    failures: list[str] = []

    clb_cols = device.columns_of_type(SiteType.CLB)
    col_free: dict[int, list[int]] = {
        int(c): list(range(device.num_rows)) for c in clb_cols
    }
    cells = [
        int(i)
        for i in design.instances_of(ResourceType.LUT)
        if design.instances[int(i)].movable
        and design.demand_matrix[int(i)].sum() > 0
    ]
    cells.sort(key=lambda i: x[i])

    total_disp = 0.0
    max_disp = 0.0
    cols_arr = np.asarray(sorted(col_free), dtype=np.int64)
    for inst in cells:
        order = cols_arr[np.argsort(np.abs(cols_arr - x[inst]))]
        placed = False
        for col in order:
            rows = col_free[int(col)]
            if not rows:
                continue
            pos = int(np.argmin(np.abs(np.asarray(rows) - y[inst])))
            row = rows.pop(pos)
            dx = float(col) - x[inst]
            dy = float(row) - y[inst]
            disp = float(np.hypot(dx, dy))
            total_disp += disp
            max_disp = max(max_disp, disp)
            x[inst] = float(col)
            y[inst] = float(row)
            placed = True
            break
        if not placed:
            failures.append(f"no CLB site left for {design.instances[inst].name}")

    return LegalizationResult(x, y, total_disp, max_disp, failures)


def legalize(design: Design, x: np.ndarray, y: np.ndarray) -> LegalizationResult:
    """Macros first (they are the scarce, constrained resources), then cells."""
    macro_result = legalize_macros(design, x, y)
    cell_result = legalize_cells(design, macro_result.x, macro_result.y)
    return LegalizationResult(
        cell_result.x,
        cell_result.y,
        macro_result.total_displacement + cell_result.total_displacement,
        max(macro_result.max_displacement, cell_result.max_displacement),
        macro_result.failures + cell_result.failures,
    )
