"""Durable-write lint: the tmp + fsync + rename idiom (REPRO611-612).

The crash-recovery proofs in :mod:`repro.resilience.checkpoint` and
:mod:`repro.orchestrate.journal` rest on one filesystem idiom: write
the full payload to a *temporary* name, ``flush`` + ``os.fsync`` the
handle, then ``os.replace`` onto the final path (and the append-only
variant: ``fsync`` after every committed line).  Any durable artifact
written without it has a crash window in which a reader sees a torn
file at the *final* name — exactly the corruption the recovery path
promises cannot happen.

The lint applies to functions that handle durable state, recognized
by name: the function (or its module/class) mentions ``checkpoint`` /
``journal`` / ``artifact`` / ``bundle``, or the function is a
``save_*`` / ``write_*`` entry point.  Scanning only durable writers
keeps scratch/viz output out of scope — a plot writer owes nobody
atomicity.

* ``REPRO611`` (blocking) — a durable write that skips the idiom:
  writing straight to the final path, a temp file that is never
  renamed into place, or append-mode writes with no ``fsync``
  anywhere in the owning function/class.
* ``REPRO612`` (blocking) — the rename half is present but nothing
  ``fsync``'d the written temp first: after a crash the rename can
  survive while the *data* it published does not (metadata commits
  before data), which is the subtlest torn-state bug of the family.
"""

from __future__ import annotations

import ast
import re

from repro.lint.rules import LintDiagnostic

from .index import PackageIndex

__all__ = ["check_durability", "DURABLE_MARKERS"]

# A ``write_pgm``-style scratch/plot writer owes nobody atomicity, so
# the name gate is the durable-state vocabulary plus ``save_*`` entry
# points (state that is loaded back), not every ``write_*`` helper.
DURABLE_MARKERS = ("checkpoint", "journal", "artifact", "bundle")
_DURABLE_FN_RE = re.compile(r"^save_")

_WRITE_METHODS = {"write_text": True, "write_bytes": True}
_NP_SAVERS = {"savez", "savez_compressed", "save"}


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_durable(fn) -> bool:
    haystack = f"{fn.module}.{fn.cls or ''}.{fn.name}".lower()
    if any(marker in haystack for marker in DURABLE_MARKERS):
        return True
    return bool(_DURABLE_FN_RE.match(fn.name))


def _expr_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return ""


def _looks_temp(node: ast.AST) -> bool:
    """The written target is a temporary name (later renamed into place)."""
    text = _expr_text(node).lower()
    return "tmp" in text or "temp" in text or "partial" in text


def _open_mode(call: ast.Call) -> str | None:
    """Mode string of an ``open(...)`` call, default ``"r"``."""
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        if isinstance(call.args[1].value, str):
            return call.args[1].value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            if isinstance(kw.value.value, str):
                return kw.value.value
    return "r" if len(call.args) < 2 else None


def _class_has_fsync(index: PackageIndex, fn) -> bool:
    if fn.cls is None:
        return False
    module = index.modules.get(fn.module)
    if module is None:
        return False
    for method in module.classes.get(fn.cls, {}).values():
        if _fn_has_fsync(method.node):
            return True
    return False


def _fn_has_fsync(fn_node: ast.AST) -> bool:
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Call) and _dotted(node.func).endswith("fsync"):
            return True
    return False


def check_durability(index: PackageIndex) -> list[LintDiagnostic]:
    """REPRO611/612 over every durable-writer function in the package.

    Durability is a property of the write site, not of worker
    reachability — a checkpoint written torn from the parent process is
    just as unrecoverable — so this pass scans the whole package.
    """
    findings: list[LintDiagnostic] = []
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        if not _is_durable(fn):
            continue
        module = index.modules.get(fn.module)

        def report(node: ast.AST, code: str, message: str) -> None:
            line = getattr(node, "lineno", fn.lineno)
            if module is not None and module.suppressed(line, code):
                return
            findings.append(
                LintDiagnostic(
                    fn.path, line, getattr(node, "col_offset", 0), code, message
                )
            )

        writes: list[tuple[ast.AST, bool, str]] = []  # (site, is_temp, kind)
        appends: list[ast.AST] = []
        renames: list[ast.AST] = []
        has_fsync = _fn_has_fsync(fn.node)

        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            tail = name.rsplit(".", 1)[-1]
            if name.endswith(("os.replace", "os.rename")) or (
                tail == "replace" and name.startswith("os.")
            ):
                renames.append(node)
            elif tail == "open" and name in ("open", "io.open"):
                mode = _open_mode(node)
                if mode is None or not any(c in mode for c in "wxa"):
                    continue
                target = node.args[0] if node.args else node
                if "a" in mode:
                    appends.append(node)
                else:
                    writes.append((node, _looks_temp(target), "open"))
            elif tail in _NP_SAVERS and name.startswith(("np.", "numpy.")):
                target = node.args[0] if node.args else node
                # Writing through an already-opened handle is covered by
                # the open() that produced it; only direct-to-path
                # saves are their own write site.
                if isinstance(target, ast.Name) and target.id in ("fh", "f",
                                                                  "handle", "fp"):
                    continue
                writes.append((node, _looks_temp(target), tail))
            elif tail in _WRITE_METHODS:
                base = node.func.value if isinstance(node.func, ast.Attribute) else node
                writes.append((node, _looks_temp(base), tail))

        if not writes and not appends:
            continue

        for site in appends:
            if not (has_fsync or _class_has_fsync(index, fn)):
                report(
                    site, "REPRO611",
                    f"{qualname} appends to a durable log without fsync; a "
                    "crash can lose lines the caller believes committed — "
                    "flush + os.fsync after every committed record",
                )

        temp_writes = [w for w in writes if w[1]]
        final_writes = [w for w in writes if not w[1]]

        for site, _, kind in final_writes:
            report(
                site, "REPRO611",
                f"{qualname} writes durable state directly to its final "
                f"path ({kind}); a crash mid-write leaves a torn file where "
                "recovery expects a complete one — write to a temp name, "
                "fsync, then os.replace",
            )
        if temp_writes and not renames:
            site = temp_writes[0][0]
            report(
                site, "REPRO611",
                f"{qualname} writes a temp file but never renames it into "
                "place; the durable artifact is either stale or missing "
                "after a crash — finish the idiom with os.replace",
            )
        if renames and (temp_writes or final_writes) and not has_fsync:
            report(
                renames[0], "REPRO612",
                f"{qualname} renames into place without fsync of the "
                "written temp; the rename can survive a crash while the "
                "data does not — flush + os.fsync before os.replace",
            )
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return findings
