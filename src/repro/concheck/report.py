"""Concheck driver and machine-readable report (``repro.concheck/v1``).

``concheck`` indexes the package source, re-derives the worker-root
universe, builds the call graph and runs the four pass families.  The
bundle mirrors ``repro.perf/v1``: per-family sections, ``by_code``
counts, serialized findings, and ``failures`` holding the blocking
subset that makes ``repro concheck`` exit non-zero.

``check_concheck_baseline`` diffs the deterministic slice — worker
roots, reachable-universe size, effect summary and per-code counts,
never absolute paths or timings — against
``benchmarks/concheck_baseline.json``, so CI catches a new hazard (or
a silently shrunk worker universe, which would mean the analyzer lost
sight of code it used to certify) as a one-line diff.
"""

from __future__ import annotations

from pathlib import Path

from repro.diagnostics import is_blocking
from repro.ir.report import serialize_finding
from repro.lint.rules import LintDiagnostic

from .callgraph import build_call_graph
from .durability import check_durability
from .effects import infer_effects
from .forksafety import check_fork_safety
from .index import build_index
from .rng import check_rng_discipline

__all__ = ["SCHEMA", "concheck", "baseline_from_concheck", "check_concheck_baseline"]

SCHEMA = "repro.concheck/v1"


def _default_root() -> Path:
    return Path(__file__).resolve().parents[1]


def concheck(root: str | Path | None = None, package: str | None = None) -> dict:
    """Run every concurrency-safety pass over one package tree."""
    root = Path(root) if root is not None else _default_root()
    index = build_index(root, package=package or root.name)
    graph = build_call_graph(index)

    effects = infer_effects(index, graph)
    findings: list[LintDiagnostic] = list(effects["findings"])
    findings += check_rng_discipline(index, graph)
    findings += check_fork_safety(index, graph)
    findings += check_durability(index)
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.code))

    by_code: dict[str, int] = {}
    for f in findings:
        by_code[f.code] = by_code.get(f.code, 0) + 1

    roots = sorted(ref for ref, _, _ in graph.roots.values())
    return {
        "schema": SCHEMA,
        "package": index.package,
        "modules": len(index.modules),
        "functions": len(index.functions),
        "worker_roots": roots,
        "reachable_functions": len(graph.reachable),
        "worker_modules": sorted(graph.worker_modules()),
        "effect_summary": effects["summary"],
        "escapes": effects["escapes"],
        "by_code": dict(sorted(by_code.items())),
        "findings": [serialize_finding(f) for f in findings],
        "failures": [str(f) for f in findings if is_blocking(f.code)],
    }


# -- baseline diffing ----------------------------------------------------------


def baseline_from_concheck(bundle: dict) -> dict:
    """Reduce a concheck bundle to its deterministic slice.

    Worker roots and counts only — no absolute paths, so the baseline
    is stable across checkouts.
    """
    return {
        "schema": SCHEMA,
        "package": bundle["package"],
        "worker_roots": list(bundle["worker_roots"]),
        "reachable_functions": bundle["reachable_functions"],
        "effect_summary": dict(bundle["effect_summary"]),
        "by_code": dict(bundle["by_code"]),
    }


def check_concheck_baseline(bundle: dict, baseline: dict) -> list[str]:
    """Exact-match diff of the deterministic slice; returns mismatches."""
    reduced = baseline_from_concheck(bundle)
    problems: list[str] = []
    if baseline.get("package") not in (None, reduced["package"]):
        problems.append(
            f"package changed {baseline.get('package')} -> {reduced['package']}"
        )
    want_roots = list(baseline.get("worker_roots", []))
    got_roots = reduced["worker_roots"]
    for ref in sorted(set(want_roots) - set(got_roots)):
        problems.append(
            f"worker root disappeared: {ref} (the analyzer lost sight of a "
            "job entry point — or it was removed; --update-baseline if so)"
        )
    for ref in sorted(set(got_roots) - set(want_roots)):
        problems.append(f"new worker root: {ref} (run --update-baseline)")
    want_n = baseline.get("reachable_functions")
    if want_n is not None and want_n != reduced["reachable_functions"]:
        problems.append(
            "reachable_functions changed "
            f"{want_n} -> {reduced['reachable_functions']}"
        )
    from repro.baselines import diff_counts

    problems += diff_counts(
        baseline.get("effect_summary", {}),
        reduced["effect_summary"],
        label="effect level '{key}' count changed",
    )
    problems += diff_counts(
        baseline.get("by_code", {}),
        reduced["by_code"],
        label="{key} count changed",
    )
    return problems
