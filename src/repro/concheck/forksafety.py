"""Fork & pickle safety for the orchestrator boundary (REPRO607-610).

``repro.orchestrate`` ships :class:`JobSpec` payloads to worker
processes and resolves ``"module:attr"`` references in a fresh
interpreter.  Four things break that boundary silently:

* ``REPRO607`` (blocking) — an unpicklable value in a ``JobSpec``
  payload: lambdas, locally-defined closures, generators, open file
  handles, locks.  ``multiprocessing`` raises at submit time at best;
  at worst (fork start method) the object crosses as shared state.
* ``REPRO608`` (blocking) — a dotted job reference that does not
  resolve to a module-level callable in this package: the worker's
  ``resolve_callable`` would raise at dispatch, after the run started.
  Lambdas or nested functions passed where a dotted ref belongs are
  the same bug earlier in its life.
* ``REPRO609`` (blocking) — import-time side effects in a module a
  worker must import: IO, RNG draws, thread starts or environment
  mutation at module scope runs *once per worker process* at import,
  unordered with respect to everything else.
* ``REPRO610`` (advisory) — fork-unsafe resources created at module
  scope in worker modules (threads, locks, sockets, pools, open
  handles): after ``fork()`` the child inherits them in an undefined
  state (held locks stay held, fds are shared).  Advisory because a
  module-scope lock can be deliberate for the parent-side path.
"""

from __future__ import annotations

import ast

from repro.lint.rules import LintDiagnostic

from .callgraph import CallGraph
from .index import PackageIndex

__all__ = ["check_fork_safety"]

_UNPICKLABLE_CALLS = {
    "open": "an open file handle",
    "Lock": "a lock",
    "RLock": "a lock",
    "Condition": "a condition variable",
    "Semaphore": "a semaphore",
    "Event": "an event",
    "Thread": "a thread object",
    "Pool": "a process pool",
    "Popen": "a subprocess handle",
    "socket": "a socket",
    "connect": "a connection object",
}

_FORK_UNSAFE_FACTORIES = {
    "Thread": "thread",
    "Lock": "lock",
    "RLock": "lock",
    "Condition": "condition variable",
    "Semaphore": "semaphore",
    "BoundedSemaphore": "semaphore",
    "Event": "event",
    "Pool": "process pool",
    "ProcessPoolExecutor": "process pool",
    "ThreadPoolExecutor": "thread pool",
    "Popen": "subprocess handle",
    "socket": "socket",
    "open": "open file handle",
}

# Module-scope calls that constitute an import-time side effect.  Pure
# registration (``register_code``, decorators) is deliberately NOT here:
# deterministic in-process bookkeeping at import is the normal pattern.
_IMPORT_EFFECT_TAILS = {
    "open": "file IO",
    "urandom": "OS entropy",
    "putenv": "environment mutation",
    "unsetenv": "environment mutation",
    "start": "thread start",
    "basicConfig": "global logging reconfiguration",
}

# Filesystem mutators need their module prefix to avoid colliding with
# list.remove / set.remove at module scope.
_IMPORT_EFFECT_FULL = {
    "os.mkdir": "filesystem mutation",
    "os.makedirs": "filesystem mutation",
    "os.remove": "filesystem mutation",
    "os.unlink": "filesystem mutation",
    "os.rename": "filesystem mutation",
    "os.replace": "filesystem mutation",
    "shutil.rmtree": "filesystem mutation",
    "random.seed": "global RNG mutation",
    "np.random.seed": "global RNG mutation",
    "numpy.random.seed": "global RNG mutation",
}


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _payload_nodes(call: ast.Call):
    """Expressions that travel in a JobSpec payload (args/kwargs/fn)."""
    for i, arg in enumerate(call.args):
        yield ("fn" if i == 1 else "payload"), arg
    for kw in call.keywords:
        role = "fn" if kw.arg == "fn" else "payload"
        if kw.value is not None:
            yield role, kw.value


def _local_def_names(module) -> dict[str, set[str]]:
    """Function -> names of defs nested inside it (closure candidates)."""
    out: dict[str, set[str]] = {}
    for fn in module.functions.values():
        nested = {
            sub.name
            for stmt in ast.walk(fn.node)
            for sub in [stmt]
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            and sub is not fn.node
        }
        out[fn.name] = nested
    return out


def check_fork_safety(index: PackageIndex, graph: CallGraph) -> list[LintDiagnostic]:
    findings: list[LintDiagnostic] = []

    def report(module, path: str, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if module is not None and module.suppressed(line, code):
            return
        findings.append(
            LintDiagnostic(path, line, getattr(node, "col_offset", 0), code, message)
        )

    # -- REPRO607 / lambda-as-ref half of 608: JobSpec payload contents ------
    for path, _, call, module_name in graph.jobspec_sites:
        module = index.modules.get(module_name)
        nested = _local_def_names(module) if module else {}
        enclosing = _enclosing_function(module, call) if module else None
        local_defs = nested.get(enclosing, set()) if enclosing else set()
        for role, expr in _payload_nodes(call):
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Lambda):
                    code = "REPRO608" if role == "fn" else "REPRO607"
                    what = (
                        "a lambda where a dotted \"module:attr\" reference "
                        "belongs; a fresh worker cannot resolve it"
                        if role == "fn"
                        else "a lambda, which cannot be pickled across the "
                        "process boundary"
                    )
                    report(module, path, sub, code, f"JobSpec carries {what}")
                elif isinstance(sub, ast.GeneratorExp):
                    report(
                        module, path, sub, "REPRO607",
                        "JobSpec payload contains a generator expression; "
                        "generators cannot be pickled — materialize a list",
                    )
                elif isinstance(sub, ast.Call):
                    tail = _dotted(sub.func).rsplit(".", 1)[-1]
                    if tail in _UNPICKLABLE_CALLS:
                        report(
                            module, path, sub, "REPRO607",
                            f"JobSpec payload contains {_UNPICKLABLE_CALLS[tail]} "
                            f"({tail}(...)); it cannot cross the process "
                            "boundary — pass a path or plain data instead",
                        )
                elif isinstance(sub, ast.Name) and sub.id in local_defs:
                    code = "REPRO608" if role == "fn" else "REPRO607"
                    report(
                        module, path, sub, code,
                        f"JobSpec carries locally-defined function "
                        f"'{sub.id}'; a closure is not importable from a "
                        "fresh worker — hoist it to module level and use a "
                        "dotted reference",
                    )

    # -- REPRO608: in-package dotted refs that do not resolve ----------------
    for ref, path, line, why in graph.unresolved_refs:
        module = _module_for_path(index, path)
        node = ast.Constant(value=ref)
        node.lineno, node.col_offset = line, 0
        report(
            module, path, node, "REPRO608",
            f'dotted job reference "{ref}" {why}; the worker\'s '
            "resolve_callable would fail at dispatch, mid-run",
        )

    # -- REPRO609/610: module scope of every worker module -------------------
    for module_name in sorted(graph.worker_modules()):
        module = index.modules.get(module_name)
        if module is None:
            continue
        for stmt in _module_level_statements(module.tree):
            # Bodies that only run when called are not import-time code.
            deferred = {
                sub
                for node in ast.walk(stmt)
                if isinstance(node, ast.Lambda)
                for sub in ast.walk(node.body)
            }
            for node in ast.walk(stmt):
                if node in deferred:
                    continue
                if isinstance(node, ast.Call):
                    name = _dotted(node.func)
                    tail = name.rsplit(".", 1)[-1]
                    effect = _IMPORT_EFFECT_FULL.get(name) or _IMPORT_EFFECT_TAILS.get(tail)
                    if name.startswith(("np.random.", "numpy.random.")) or (
                        name.startswith("random.") and name.count(".") == 1
                    ):
                        effect = effect or "global RNG use"
                    if effect is not None:
                        report(
                            module, module.path, node, "REPRO609",
                            f"import of worker module {module_name} performs "
                            f"{effect} ({name}(...)) at module scope; it "
                            "reruns once per worker process at import time",
                        )
        for name, value in sorted(module.assigns.items()):
            if isinstance(value, ast.Call):
                tail = _dotted(value.func).rsplit(".", 1)[-1]
                kind = _FORK_UNSAFE_FACTORIES.get(tail)
                if kind is not None:
                    report(
                        module, module.path, value, "REPRO610",
                        f"worker module {module_name} creates a {kind} "
                        f"({name} = {tail}(...)) at module scope; fork "
                        "children inherit it in an undefined state",
                    )
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return findings


def _module_level_statements(tree: ast.Module):
    """Top-level statements plus bodies of top-level if/try/for/with."""
    stack = list(tree.body)
    while stack:
        stmt = stack.pop(0)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(stmt, (ast.If, ast.For, ast.While, ast.With, ast.Try)):
            stack.extend(getattr(stmt, "body", []))
            stack.extend(getattr(stmt, "orelse", []))
            stack.extend(getattr(stmt, "finalbody", []))
            for handler in getattr(stmt, "handlers", []):
                stack.extend(handler.body)
            continue
        yield stmt


def _enclosing_function(module, call: ast.Call) -> str | None:
    for fn in module.functions.values():
        for node in ast.walk(fn.node):
            if node is call:
                return fn.name
    return None


def _module_for_path(index: PackageIndex, path: str):
    for module in index.modules.values():
        if module.path == path:
            return module
    return None
